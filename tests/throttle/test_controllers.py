"""Tests for the throttle controllers (dynmg, DYNCTA, LCS) against a live system."""

from __future__ import annotations

import pytest

from repro.config.policies import (
    ArbitrationKind,
    InCoreThrottleParams,
    MultiGearParams,
    PolicyConfig,
    ThrottleKind,
)
from repro.sim.system import SimulatedSystem
from repro.throttle.base import NullThrottleController
from repro.throttle.dyncta import DynctaController
from repro.throttle.dynmg import DynMgController
from repro.throttle.factory import make_throttle_controller
from repro.throttle.incore import InCoreThrottle
from repro.throttle.lcs import LcsController
from repro.trace.generator import generate_trace


class _FakeCore:
    """Just enough of the VectorCore surface for the in-core controller."""

    def __init__(self, core_id, num_windows=4):
        self.core_id = core_id
        self.stat_mem_stall_cycles = 0
        self.stat_idle_cycles = 0
        self.max_running_blocks = num_windows
        self.throttled = False

        class _Cfg:
            num_inst_windows = num_windows

        self.config = _Cfg()

    def set_max_running_blocks(self, value):
        self.max_running_blocks = max(1, min(self.config.num_inst_windows, value))


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (ThrottleKind.NONE, NullThrottleController),
            (ThrottleKind.DYNMG, DynMgController),
            (ThrottleKind.DYNCTA, DynctaController),
            (ThrottleKind.LCS, LcsController),
        ],
    )
    def test_builds_requested_controller(self, kind, cls):
        controller = make_throttle_controller(PolicyConfig(throttle=kind))
        assert type(controller) is cls
        assert controller.name == kind.value


class TestInCoreLogic:
    """Table 4 decision rules, isolated from the simulator."""

    def setup_method(self):
        self.incore = InCoreThrottle(params=InCoreThrottleParams())
        self.core = _FakeCore(0)

    def test_heavy_memory_stall_reduces_blocks(self):
        self.core.stat_mem_stall_cycles = 300   # > 250 upper bound
        assert self.incore.evaluate(self.core, throttled=True, max_blocks=4) == -1

    def test_light_memory_stall_increases_blocks(self):
        self.core.stat_mem_stall_cycles = 100   # < 180 lower bound
        assert self.incore.evaluate(self.core, throttled=True, max_blocks=4) == +1

    def test_mid_band_holds(self):
        self.core.stat_mem_stall_cycles = 200
        assert self.incore.evaluate(self.core, throttled=True, max_blocks=4) == 0

    def test_idleness_adds_a_block(self):
        self.core.stat_mem_stall_cycles = 300
        self.core.stat_idle_cycles = 10          # > 4 -> +1, cancels the -1
        assert self.incore.evaluate(self.core, throttled=True, max_blocks=4) == 0

    def test_unthrottled_cores_are_left_alone(self):
        self.core.stat_mem_stall_cycles = 1000
        assert self.incore.evaluate(self.core, throttled=False, max_blocks=4) == 0

    def test_deltas_are_per_subperiod(self):
        self.core.stat_mem_stall_cycles = 300
        self.incore.evaluate(self.core, True, 4)
        # No new stalls since the last sample -> the delta is 0, which is below the
        # lower bound, so the controller relaxes throttling.
        assert self.incore.evaluate(self.core, True, 4) == +1


def _build_system(policy: PolicyConfig, tiny_system, tiny_workload):
    trace = generate_trace(tiny_workload, tiny_system)
    return SimulatedSystem(tiny_system, policy, trace)


class TestControllersOnLiveSystem:
    def test_dynmg_reacts_to_contention(self, tiny_system, tiny_workload):
        policy = PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            multigear=MultiGearParams(sampling_period=200),
            incore=InCoreThrottleParams(sub_period=50),
        )
        system = _build_system(policy, tiny_system, tiny_workload)
        for cycle in range(3000):
            system.step(cycle)
        controller = system.throttle
        assert isinstance(controller, DynMgController)
        assert controller.samples > 0
        # The memory-bound decode workload must push the gear above zero at least once.
        assert any(gear > 0 for _, _, gear in controller.state.history)
        # Throttled cores are always the fastest subset, never more than 3/4 of cores.
        assert len(controller.throttled_cores) <= int(0.75 * len(system.cores))

    def test_dyncta_adjusts_all_cores(self, tiny_system, tiny_workload):
        policy = PolicyConfig(throttle=ThrottleKind.DYNCTA)
        system = _build_system(policy, tiny_system, tiny_workload)
        for cycle in range(5000):
            system.step(cycle)
        controller = system.throttle
        assert controller.samples > 0

    def test_lcs_fixes_limits_after_first_block(self, tiny_system, tiny_workload):
        policy = PolicyConfig(throttle=ThrottleKind.LCS)
        system = _build_system(policy, tiny_system, tiny_workload)
        # Observation phase: every core starts restricted to one block.
        assert all(core.max_running_blocks == 1 for core in system.cores)
        for cycle in range(20000):
            system.step(cycle)
            if system.finished():
                break
        controller = system.throttle
        assert controller.chosen_limits  # at least one core completed its first block
        for limit in controller.chosen_limits.values():
            assert 1 <= limit <= tiny_system.core.num_inst_windows

    def test_null_controller_never_touches_limits(self, tiny_system, tiny_workload):
        system = _build_system(PolicyConfig(), tiny_system, tiny_workload)
        for cycle in range(1000):
            system.step(cycle)
        assert all(
            core.max_running_blocks == tiny_system.core.num_inst_windows
            for core in system.cores
        )

    def test_dynmg_with_bma_arbitration_coexists(self, tiny_system, tiny_workload):
        policy = PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            arbitration=ArbitrationKind.BALANCED_MSHR_AWARE,
            multigear=MultiGearParams(sampling_period=200),
            incore=InCoreThrottleParams(sub_period=50),
        )
        system = _build_system(policy, tiny_system, tiny_workload)
        for cycle in range(2000):
            system.step(cycle)
        assert system.llc.stats(2000).accesses > 0
