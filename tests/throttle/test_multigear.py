"""Tests for the multi-gear state machine (Algorithm 1, Tables 1 and 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.config.policies import ContentionLevel, MultiGearParams
from repro.throttle.multigear import MultiGearState


def make_state():
    return MultiGearState(params=MultiGearParams())


class TestAlgorithm1:
    def test_starts_at_gear_zero(self):
        assert make_state().gear == 0

    def test_high_contention_steps_up_by_one(self):
        state = make_state()
        assert state.update(0.25) == 1
        assert state.update(0.25) == 2

    def test_low_contention_steps_down(self):
        state = make_state()
        state.update(0.25)
        state.update(0.25)
        assert state.update(0.05) == 1
        assert state.update(0.05) == 0
        assert state.update(0.05) == 0    # never below zero

    def test_normal_contention_holds_gear(self):
        state = make_state()
        state.update(0.25)
        assert state.update(0.15) == 1

    def test_extreme_contention_jumps_two_gears(self):
        state = make_state()
        assert state.update(0.5) == 2
        assert state.update(0.5) == 4

    def test_extreme_near_top_clamps_to_max(self):
        state = make_state()
        for _ in range(3):
            state.update(0.25)           # gear 3
        assert state.update(0.5) == 4    # 3 -> max (not 5)

    def test_never_exceeds_max_gear(self):
        state = make_state()
        for _ in range(10):
            state.update(0.9)
        assert state.gear == 4

    def test_stall_ratio_above_one_is_clamped(self):
        state = make_state()
        assert state.classify(3.0) == ContentionLevel.EXTREME


class TestTable1Fractions:
    @pytest.mark.parametrize(
        "gear,expected",
        [(0, 0), (1, 2), (2, 4), (3, 8), (4, 12)],
    )
    def test_throttled_core_count_for_16_cores(self, gear, expected):
        state = make_state()
        state.gear = gear
        assert state.throttled_core_count(16) == expected

    def test_history_records_transitions(self):
        state = make_state()
        state.update(0.25, cycle=2000)
        state.update(0.05, cycle=4000)
        assert [h[2] for h in state.history] == [1, 0]


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=100))
def test_property_gear_always_within_range(ratios):
    state = make_state()
    for ratio in ratios:
        gear = state.update(ratio)
        assert 0 <= gear <= state.params.max_gear
