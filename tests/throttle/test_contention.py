"""Tests for the contention classifier used by the global controller (Table 3)."""

import pytest

from repro.config.policies import (
    ContentionLevel,
    ContentionThresholds,
    MultiGearParams,
)
from repro.throttle.multigear import MultiGearState


class TestClassifierIntegration:
    """Table 3 thresholds as consumed by the gear state machine."""

    def test_default_thresholds_match_table3(self):
        thresholds = ContentionThresholds()
        assert thresholds.low_upper == pytest.approx(0.1)
        assert thresholds.normal_upper == pytest.approx(0.2)
        assert thresholds.high_upper == pytest.approx(0.375)

    def test_custom_thresholds_shift_behaviour(self):
        loose = MultiGearState(
            params=MultiGearParams(thresholds=ContentionThresholds(0.3, 0.5, 0.8))
        )
        # 0.25 is HIGH for the paper's thresholds but LOW for the loose ones.
        assert loose.classify(0.25) == ContentionLevel.LOW
        default = MultiGearState(params=MultiGearParams())
        assert default.classify(0.25) == ContentionLevel.HIGH

    @pytest.mark.parametrize("ratio", [0.0, 0.1, 0.2, 0.375, 1.0])
    def test_levels_are_monotonic_in_stall_ratio(self, ratio):
        state = MultiGearState(params=MultiGearParams())
        previous = ContentionLevel.LOW
        for r in [0.0, 0.05, 0.15, 0.3, 0.5, 1.0]:
            level = state.classify(r)
            assert level >= previous
            previous = level
