"""Tests for the experiment output formatting."""

from repro.experiments.reporting import format_grid, format_series


class TestFormatSeries:
    def test_contains_all_policies_and_points(self):
        text = format_series(
            "Fig X", "seq", ["4K", "8K"], {"dynmg": [1.1, 1.2], "lcs": [1.0, 0.99]}
        )
        assert "Fig X" in text
        assert "dynmg" in text and "lcs" in text
        assert "1.100" in text and "0.990" in text

    def test_column_alignment(self):
        text = format_series("T", "x", [1, 2, 3], {"p": [1.0, 2.0, 3.0]})
        lines = text.splitlines()
        assert len(lines) == 4  # title, rule, header, one row


class TestFormatGrid:
    def test_rows_rendered(self):
        rows = [
            {"policy": "unopt", "performance": 1.0},
            {"policy": "dynmg+BMA", "performance": 1.26},
        ]
        text = format_grid("Fig 8", rows)
        assert "dynmg+BMA" in text
        assert "1.260" in text

    def test_empty_rows(self):
        assert "(no data)" in format_grid("Empty", [])
