"""Smoke tests for the figure/table harnesses on very small configurations.

These use custom (tiny) sequence lengths so the whole module stays fast; the
full paper-shaped sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.config.policies import PolicyConfig, ThrottleKind
from repro.config.scale import ScaleTier
from repro.experiments.fig7 import run_fig7_throttling
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.tables import run_table2_sampling_sweep
from repro.sim.runner import clear_trace_cache

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_trace_cache()
    yield


class TestFig7Harness:
    def test_throttling_panel_structure(self):
        result = run_fig7_throttling(
            tier=ScaleTier.CI, models=("llama3-70b",), seq_lens=(2048,)
        )
        assert set(result.speedups) == {"llama3-70b"}
        series = result.speedups["llama3-70b"]
        assert set(series) == {"dyncta", "lcs", "dynmg"}
        for values in series.values():
            assert len(values) == 1
            assert 0.5 < values[0] < 2.5
        assert "Fig 7" in result.render()

    def test_geomean_accessor(self):
        result = run_fig7_throttling(
            tier=ScaleTier.CI, models=("llama3-70b",), seq_lens=(2048,)
        )
        assert result.geomean("llama3-70b", "dynmg") == pytest.approx(
            result.speedups["llama3-70b"]["dynmg"][0]
        )


class TestFig8Harness:
    def test_rows_have_all_metrics(self):
        policies = {
            "unoptimized": PolicyConfig(),
            "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
        }
        result = run_fig8(tier=ScaleTier.CI, seq_len=2048, policies=policies)
        assert [row["policy"] for row in result.rows] == ["unoptimized", "dynmg"]
        for row in result.rows:
            assert 0 <= row["l2_hit_rate"] <= 1
            assert 0 <= row["mshr_hit_rate"] <= 1
            assert row["dram_bw_gbps"] > 0
        assert result.rows[0]["performance"] == pytest.approx(1.0)
        assert "Fig 8" in result.render()


class TestFig9Harness:
    def test_normalisation_against_32mb_reference(self):
        policies = {"unoptimized": PolicyConfig()}
        result = run_fig9(
            tier=ScaleTier.CI,
            models=("llama3-70b",),
            seq_len=4096,
            l2_sizes_mib=(16, 32),
            policies=policies,
        )
        series = result.speedups["llama3-70b"]["unoptimized"]
        assert len(series) == 2
        # At the reference size the unoptimized speedup is exactly 1 by construction.
        assert series[1] == pytest.approx(1.0)
        # A smaller cache can never be faster for the unoptimized configuration.
        assert series[0] <= 1.05


class TestParallelHarness:
    def test_fig9_parallel_matches_serial(self):
        """`jobs=2` must reproduce the serial Fig 9 sweep exactly."""

        kwargs = dict(
            tier=ScaleTier.CI,
            models=("llama3-70b",),
            seq_len=2048,
            l2_sizes_mib=(16, 32),
            policies={
                "unoptimized": PolicyConfig(),
                "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
            },
        )
        serial = run_fig9(jobs=1, **kwargs)
        parallel = run_fig9(jobs=2, **kwargs)
        assert parallel.speedups == serial.speedups
        assert {k: v.cycles for k, v in parallel.raw.items()} == {
            k: v.cycles for k, v in serial.raw.items()
        }


class TestTableSweeps:
    def test_sampling_period_sweep_rows(self):
        rows = run_table2_sampling_sweep(
            tier=ScaleTier.CI, seq_len=2048, sampling_periods=(1000, 2000)
        )
        assert len(rows) == 2
        for row in rows:
            assert row["cycles"] > 0
            assert row["speedup"] > 0.5
