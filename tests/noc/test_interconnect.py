"""Tests for the core <-> LLC interconnect."""

from repro.common.address import AddressMap
from repro.common.types import AccessType, MemRequest, MemResponse
from repro.config.system import NoCConfig
from repro.noc.interconnect import Interconnect, STAGING_DEPTH


class Harness:
    def __init__(self, num_slices=2, latency=4, accept=True):
        self.noc = Interconnect(
            NoCConfig(request_latency=latency, response_latency=latency),
            AddressMap(line_size=64, num_slices=num_slices),
            num_cores=2,
            num_slices=num_slices,
        )
        self.accept = accept
        self.delivered: list[list[MemRequest]] = [[] for _ in range(num_slices)]
        self.responses: list[list[MemResponse]] = [[], []]

    def slice_sinks(self):
        def make(i):
            def sink(req, cycle):
                if not self.accept:
                    return False
                self.delivered[i].append(req)
                return True
            return sink
        return [make(i) for i in range(len(self.delivered))]

    def core_sinks(self):
        return [lambda r, c, i=i: self.responses[i].append(r) for i in range(2)]

    def run(self, cycles, start=0):
        for cycle in range(start, start + cycles):
            self.noc.tick(cycle, self.slice_sinks(), self.core_sinks())


def req(addr, core=0):
    return MemRequest(addr=addr, rw=AccessType.READ, core_id=core)


def resp(core=0):
    return MemResponse(
        req_id=1, core_id=core, tb_id=0, line_addr=0x40, rw=AccessType.READ, complete_cycle=0
    )


class TestRequestPath:
    def test_request_delivered_after_latency(self):
        h = Harness(latency=4)
        assert h.noc.send_request(req(0x0), cycle=0)
        h.run(3)
        assert not h.delivered[0]
        h.run(3, start=3)
        assert len(h.delivered[0]) == 1

    def test_routing_by_line_interleaving(self):
        h = Harness(num_slices=2)
        h.noc.send_request(req(0x0), 0)     # line 0 -> slice 0
        h.noc.send_request(req(0x40), 0)    # line 1 -> slice 1
        h.run(10)
        assert len(h.delivered[0]) == 1
        assert len(h.delivered[1]) == 1

    def test_backpressure_when_slice_rejects(self):
        h = Harness(latency=1, accept=False)
        limit = STAGING_DEPTH + 1
        sent = 0
        for i in range(limit + 8):
            if h.noc.send_request(req(0x0), 0):
                sent += 1
            h.run(1, start=i)
        assert sent <= limit
        assert h.noc.backpressure_rejects > 0

    def test_backpressure_releases_when_slice_accepts_again(self):
        h = Harness(latency=1, accept=False)
        for i in range(10):
            h.noc.send_request(req(0x0), i)
            h.run(1, start=i)
        assert not h.noc.can_accept_request(0x0)
        h.accept = True
        h.run(10, start=10)
        assert h.noc.can_accept_request(0x0)
        assert len(h.delivered[0]) > 0


class TestResponsePath:
    def test_response_delivered_to_right_core(self):
        h = Harness(latency=3)
        h.noc.send_response(resp(core=1), cycle=0)
        h.run(10)
        assert len(h.responses[1]) == 1
        assert not h.responses[0]

    def test_extra_delay_applied(self):
        h = Harness(latency=3)
        h.noc.send_response(resp(core=0), cycle=0, extra_delay=5)
        h.run(7)
        assert not h.responses[0]
        h.run(3, start=7)
        assert len(h.responses[0]) == 1

    def test_responses_never_backpressured(self):
        h = Harness()
        for i in range(100):
            h.noc.send_response(resp(core=0), cycle=0)
        h.run(10)
        assert len(h.responses[0]) == 100


class TestEngineSupport:
    def test_has_work_and_stats(self):
        h = Harness()
        assert not h.noc.has_work()
        h.noc.send_request(req(0x0), 0)
        assert h.noc.has_work()
        h.run(10)
        assert not h.noc.has_work()
        assert h.noc.requests_sent == 1
