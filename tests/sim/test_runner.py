"""Tests for the experiment runner (trace caching, policy comparison, speedups)."""

import pytest

from repro.config.policies import PolicyConfig, ThrottleKind
from repro.dataflow.constraints import DataflowConstraints
from repro.sim import runner as runner_module
from repro.sim.runner import (
    PolicyComparison,
    cached_trace,
    clear_trace_cache,
    compare_policies,
    geomean_speedup,
    run_policy,
    trace_cache_size,
)


class TestTraceCache:
    def test_same_workload_returns_same_object(self, tiny_system, tiny_workload):
        clear_trace_cache()
        a = cached_trace(tiny_workload, tiny_system)
        b = cached_trace(tiny_workload, tiny_system)
        assert a is b

    def test_different_seq_len_is_different_trace(self, tiny_system, tiny_workload):
        clear_trace_cache()
        a = cached_trace(tiny_workload, tiny_system)
        b = cached_trace(tiny_workload.with_seq_len(128), tiny_system)
        assert a is not b

    def test_cache_size_change_does_not_invalidate_trace(self, tiny_system, tiny_workload):
        """The trace only depends on line size / workload, not on L2 capacity."""

        clear_trace_cache()
        a = cached_trace(tiny_workload, tiny_system)
        b = cached_trace(tiny_workload, tiny_system.with_l2_size(512 * 1024))
        assert a is b

    def test_constraints_are_part_of_the_key(self, tiny_system, tiny_workload):
        clear_trace_cache()
        default = cached_trace(tiny_workload, tiny_system)
        constrained = cached_trace(
            tiny_workload, tiny_system,
            constraints=DataflowConstraints(output_lines_per_block=2),
        )
        assert default is not constrained
        # Re-passing equal constraints hits the same entry.
        again = cached_trace(
            tiny_workload, tiny_system,
            constraints=DataflowConstraints(output_lines_per_block=2),
        )
        assert again is constrained

    def test_cache_is_bounded_with_lru_eviction(self, tiny_system, tiny_workload, monkeypatch):
        clear_trace_cache()
        monkeypatch.setattr(runner_module, "TRACE_CACHE_MAX_ENTRIES", 2)
        oldest = cached_trace(tiny_workload.with_seq_len(64), tiny_system)
        cached_trace(tiny_workload.with_seq_len(128), tiny_system)
        # Touch the oldest entry so the 128-token trace becomes LRU...
        assert cached_trace(tiny_workload.with_seq_len(64), tiny_system) is oldest
        # ...then overflow: the 128-token trace is evicted, the 64-token kept.
        cached_trace(tiny_workload.with_seq_len(256), tiny_system)
        assert trace_cache_size() == 2
        assert cached_trace(tiny_workload.with_seq_len(64), tiny_system) is oldest
        clear_trace_cache()
        assert trace_cache_size() == 0


class TestRunPolicy:
    def test_returns_labelled_result(self, tiny_system, tiny_workload):
        result = run_policy(tiny_system, tiny_workload, PolicyConfig(), label="base")
        assert result.label == "base"
        assert result.cycles > 0


class TestComparePolicies:
    @pytest.fixture()
    def comparison(self, tiny_system, tiny_workload) -> PolicyComparison:
        policies = {
            "unopt": PolicyConfig(),
            "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
        }
        return compare_policies(tiny_system, tiny_workload, policies, baseline_label="unopt")

    def test_baseline_speedup_is_one(self, comparison):
        assert comparison.speedup("unopt") == pytest.approx(1.0)

    def test_speedups_cover_all_policies(self, comparison):
        assert set(comparison.speedups()) == {"unopt", "dynmg"}

    def test_relative_speedup(self, comparison):
        rel = comparison.relative_speedup("dynmg", "unopt")
        assert rel == pytest.approx(comparison.speedup("dynmg"))

    def test_table_renders(self, comparison):
        table = comparison.table()
        assert "unopt" in table and "dynmg" in table

    def test_unknown_baseline_rejected(self, tiny_system, tiny_workload):
        with pytest.raises(KeyError):
            compare_policies(tiny_system, tiny_workload, {"a": PolicyConfig()}, "missing")

    def test_geomean_speedup_over_comparisons(self, comparison):
        value = geomean_speedup([comparison], "dynmg")
        assert value == pytest.approx(comparison.speedup("dynmg"))
