"""Round-trip serialization of SimResult and its nested statistics."""

from __future__ import annotations

import json

import pytest

from repro.dram.system import DramStats
from repro.llc.llc import LLCStats
from repro.sim.results import CoreResult, SimResult
from repro.sim.simulator import simulate


@pytest.fixture()
def real_result(tiny_system, unopt_policy, tiny_workload) -> SimResult:
    return simulate(tiny_system, unopt_policy, workload=tiny_workload, label="unopt")


class TestStatsRoundTrip:
    def test_llc_stats(self):
        stats = LLCStats(
            hits=10, misses=5, mshr_merges=3, mshr_allocations=5, stall_cycles=7,
            mshr_entry_utilization=0.42, requests_accepted=15, dram_reads=5,
            dram_writes=2, writebacks=1, peak_mshr_occupancy=4,
        )
        assert LLCStats.from_dict(stats.to_dict()) == stats

    def test_dram_stats(self):
        stats = DramStats(
            reads=100, writes=20, row_hits=60, row_misses=40, row_conflicts=20,
            bytes_transferred=7680, busy_cycles=500, avg_queue_wait=3.25,
        )
        assert DramStats.from_dict(stats.to_dict()) == stats

    def test_core_result(self):
        core = CoreResult(
            core_id=3, issued_requests=11, l1_hits=4, mem_stall_cycles=100,
            idle_cycles=20, active_cycles=200, completed_blocks=2,
            final_max_running_blocks=4,
        )
        assert CoreResult.from_dict(core.to_dict()) == core


class TestSimResultRoundTrip:
    def test_equality_through_dict(self, real_result):
        assert SimResult.from_dict(real_result.to_dict()) == real_result

    def test_equality_through_json_text(self, real_result):
        text = json.dumps(real_result.to_dict(), sort_keys=True)
        restored = SimResult.from_dict(json.loads(text))
        assert restored == real_result

    def test_derived_metrics_recompute_identically(self, real_result):
        restored = SimResult.from_dict(real_result.to_dict())
        assert restored.l2_hit_rate == real_result.l2_hit_rate
        assert restored.mshr_hit_rate == real_result.mshr_hit_rate
        assert restored.dram_bandwidth_gbps == real_result.dram_bandwidth_gbps
        assert restored.cache_stall_ratio == real_result.cache_stall_ratio
        assert restored.execution_time_us == real_result.execution_time_us

    def test_dict_keeps_headline_metrics_for_tables(self, real_result):
        data = real_result.to_dict()
        assert "cycles" in data
        assert data["metrics"]["l2_hit_rate"] == real_result.l2_hit_rate
        assert data["metrics"]["cycles"] == real_result.cycles

    def test_cores_restored_as_tuple_of_core_results(self, real_result):
        restored = SimResult.from_dict(real_result.to_dict())
        assert isinstance(restored.cores, tuple)
        assert all(isinstance(core, CoreResult) for core in restored.cores)
        assert restored.cores == real_result.cores


class TestTerminationStatus:
    def test_completed_run_reports_completed_status(self, real_result):
        assert real_result.status == "completed"
        assert real_result.completed
        assert real_result.to_dict()["status"] == "completed"

    def test_status_round_trips(self, real_result):
        from dataclasses import replace

        livelocked = replace(real_result, status="livelock")
        restored = SimResult.from_dict(livelocked.to_dict())
        assert restored.status == "livelock"
        assert not restored.completed
        assert restored == livelocked

    def test_legacy_store_without_status_loads_as_completed(self, real_result):
        # Pre-PR-9 JSONL stores predate the termination-status field; any run
        # they recorded could only have drained successfully.
        data = real_result.to_dict()
        del data["status"]
        restored = SimResult.from_dict(data)
        assert restored.status == "completed"
        assert restored == real_result
