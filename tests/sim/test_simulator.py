"""End-to-end tests of the simulator on small workloads."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.config.policies import PolicyConfig, ThrottleKind
from repro.dataflow.analytical import analyze
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import Simulator, simulate
from repro.sim.system import SimulatedSystem
from repro.trace.generator import generate_trace
from repro.trace.stats import compute_trace_stats
from repro.trace.synthetic import make_shared_hotset_trace, make_stream_trace


class TestSimulateApi:
    def test_requires_exactly_one_input(self, tiny_system, unopt_policy, tiny_workload):
        with pytest.raises(ConfigError):
            simulate(tiny_system, unopt_policy)
        with pytest.raises(ConfigError):
            simulate(
                tiny_system, unopt_policy, workload=tiny_workload,
                trace=make_stream_trace(num_blocks=2),
            )

    def test_workload_path_generates_trace(self, tiny_system, unopt_policy, tiny_workload):
        result = simulate(tiny_system, unopt_policy, workload=tiny_workload)
        assert result.cycles > 0
        assert result.workload == tiny_workload.name

    def test_label_defaults_to_policy_label(self, tiny_system, tiny_workload):
        result = simulate(tiny_system, PolicyConfig(throttle=ThrottleKind.DYNMG),
                          workload=tiny_workload)
        assert result.label == "dynmg"


class TestConservationLaws:
    """Request conservation: everything issued is eventually served exactly once."""

    @pytest.fixture()
    def result_and_trace(self, tiny_system, unopt_policy, tiny_workload):
        trace = generate_trace(tiny_workload, tiny_system)
        sim = Simulator(tiny_system, unopt_policy, trace)
        return sim.run(), trace, sim

    def test_all_thread_blocks_complete(self, result_and_trace):
        result, trace, _ = result_and_trace
        assert result.thread_blocks == len(trace)

    def test_llc_accesses_plus_l1_hits_equals_trace_accesses(self, result_and_trace):
        result, trace, _ = result_and_trace
        stats = compute_trace_stats(trace)
        l1_hits = sum(core.l1_hits for core in result.cores)
        assert result.llc.accesses + l1_hits == stats.total_accesses

    def test_llc_miss_path_conservation(self, result_and_trace):
        """Every cache miss is either merged into an MSHR entry or allocates one."""

        result, _, _ = result_and_trace
        assert result.llc.misses == result.llc.mshr_merges + result.llc.mshr_allocations

    def test_dram_reads_equal_mshr_allocations(self, result_and_trace):
        result, _, _ = result_and_trace
        assert result.llc.dram_reads == result.llc.mshr_allocations
        assert result.dram.reads == result.llc.dram_reads

    def test_noc_requests_match_llc_accepts(self, result_and_trace):
        result, _, _ = result_and_trace
        assert result.noc_requests == result.llc.requests_accepted

    def test_execution_not_faster_than_analytical_bound(
        self, result_and_trace, tiny_system, tiny_workload
    ):
        result, _, _ = result_and_trace
        estimate = analyze(tiny_workload, tiny_system)
        # The cycle-level run includes stalls and queueing, so it can never beat
        # the stall-free analytical bound by more than a rounding margin.
        assert result.cycles >= 0.9 * estimate.dram_bound_cycles

    def test_mshr_entry_utilization_in_range(self, result_and_trace):
        result, _, _ = result_and_trace
        assert 0.0 <= result.mshr_entry_utilization <= 1.0

    def test_hit_rates_in_range(self, result_and_trace):
        result, _, _ = result_and_trace
        assert 0.0 <= result.l2_hit_rate <= 1.0
        assert 0.0 <= result.mshr_hit_rate <= 1.0

    def test_dram_bandwidth_below_peak(self, result_and_trace, tiny_system):
        result, _, _ = result_and_trace
        assert result.dram_bandwidth_gbps <= tiny_system.dram.peak_bandwidth_gbps


class TestDeterminism:
    def test_same_configuration_same_cycles(self, tiny_system, unopt_policy, tiny_workload):
        a = simulate(tiny_system, unopt_policy, workload=tiny_workload)
        b = simulate(tiny_system, unopt_policy, workload=tiny_workload)
        assert a.cycles == b.cycles
        assert a.llc.hits == b.llc.hits
        assert a.dram.reads == b.dram.reads


class TestSyntheticTraces:
    def test_hotset_trace_has_high_hit_or_merge_rate(self, tiny_system, unopt_policy):
        trace = make_shared_hotset_trace(num_blocks=16, lines_per_block=32, hot_lines=32)
        result = simulate(tiny_system, unopt_policy, trace=trace)
        # All blocks read the same 32 lines: after the compulsory misses nearly
        # everything is an L2 hit or an MSHR merge.  A handful of re-fetches can
        # happen in the window between an MSHR release and the storage fill, so
        # DRAM reads stay far below the 512 issued accesses but may exceed 32.
        assert result.l2_hit_rate + result.mshr_hit_rate * (1 - result.l2_hit_rate) > 0.8
        assert result.dram.reads <= 2 * 32

    def test_stream_trace_has_no_reuse(self, tiny_system, unopt_policy):
        trace = make_stream_trace(num_blocks=8, lines_per_block=32)
        result = simulate(tiny_system, unopt_policy, trace=trace)
        assert result.l2_hit_rate < 0.05
        assert result.dram.reads == 8 * 32


class TestEngine:
    def test_max_cycles_guard_raises(self, tiny_system, unopt_policy, tiny_workload):
        trace = generate_trace(tiny_workload, tiny_system)
        sim = Simulator(tiny_system, unopt_policy, trace, max_cycles=50)
        with pytest.raises(SimulationError):
            sim.run()

    def test_engine_rejects_bad_max_cycles(self, tiny_system, unopt_policy, tiny_workload):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, unopt_policy, trace)
        with pytest.raises(SimulationError):
            SimulationEngine(system, max_cycles=0)

    def test_result_summary_and_dict(self, tiny_system, unopt_policy, tiny_workload):
        result = simulate(tiny_system, unopt_policy, workload=tiny_workload)
        assert "cycles" in result.to_dict()
        assert result.workload in result.summary()
