"""Engine liveness layer: watchdog, stall reports and termination statuses.

The scenario-level smoke lives in ``repro.analysis.liveness``; these tests
exercise the machinery underneath it -- ``progress_signature``,
``LivenessWatchdog``, ``build_stall_report`` and the engine's
``raise_on_stall`` plumbing -- against a tiny system with the starvation
injector swapped in (the exact regression class the watchdog exists for).
"""

from __future__ import annotations

import pytest

from repro.analysis.liveness import StarvationInjectedArbiter
from repro.common.errors import LivelockError, SimulationError
from repro.config.policies import ArbitrationKind, PolicyConfig
from repro.sim.engine import SimulationEngine, TerminationStatus
from repro.sim.liveness import (
    LivenessConfig,
    LivenessWatchdog,
    StallReport,
    build_stall_report,
    progress_signature,
)
from repro.sim.runner import generate_trace
from repro.sim.simulator import Simulator
from repro.sim.system import SimulatedSystem

#: Small enough that the injected run fails fast, large enough to clear any
#: legitimate quiet stretch (DRAM round-trips are hundreds of cycles).
TEST_PATIENCE = 10_000


@pytest.fixture()
def cobrra_policy() -> PolicyConfig:
    return PolicyConfig(arbitration=ArbitrationKind.COBRRA).validate()


def build_starved_system(tiny_system, cobrra_policy, tiny_workload) -> SimulatedSystem:
    """A tiny system with the pre-fix (starving) arbiter in every slice."""

    trace = generate_trace(tiny_workload, tiny_system)
    system = SimulatedSystem(tiny_system, cobrra_policy, trace)
    for index, llc_slice in enumerate(system.llc.slices):
        starved = StarvationInjectedArbiter(
            tiny_system.core.num_cores, cobrra_policy.cobrra
        )
        system.llc.arbiters[index] = starved
        llc_slice.arbiter = starved
    return system


class TestProgressSignature:
    def test_signature_changes_while_system_progresses(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, cobrra_policy, trace)
        before = progress_signature(system)
        for cycle in range(256):
            system.step(cycle)
        after = progress_signature(system)
        assert after != before

    def test_signature_is_stable_when_nothing_steps(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, cobrra_policy, trace)
        assert progress_signature(system) == progress_signature(system)


class TestLivenessWatchdog:
    def test_fires_after_patience_without_progress(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, cobrra_policy, trace)
        watchdog = LivenessWatchdog(system, LivenessConfig(patience=100))
        watchdog.observe(0)  # establishes the baseline signature
        watchdog.observe(50)  # within patience: no progress yet tolerated
        with pytest.raises(LivelockError) as excinfo:
            watchdog.observe(100)
        assert excinfo.value.report is not None
        assert excinfo.value.report.first_stuck_cycle == 0
        assert excinfo.value.report.cycle == 100

    def test_disabled_watchdog_never_fires(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, cobrra_policy, trace)
        watchdog = LivenessWatchdog(system, LivenessConfig(patience=1, enabled=False))
        for cycle in (0, 10, 10_000, 10_000_000):
            watchdog.observe(cycle)

    def test_rejects_nonpositive_patience(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, cobrra_policy, trace)
        with pytest.raises(SimulationError):
            LivenessWatchdog(system, LivenessConfig(patience=0))

    def test_livelock_error_is_a_simulation_error(self):
        assert issubclass(LivelockError, SimulationError)


class TestEngineLiveness:
    def test_injected_starvation_raises_structured_livelock(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        system = build_starved_system(tiny_system, cobrra_policy, tiny_workload)
        engine = SimulationEngine(
            system, liveness=LivenessConfig(patience=TEST_PATIENCE)
        )
        with pytest.raises(LivelockError) as excinfo:
            engine.run()
        report = excinfo.value.report
        assert isinstance(report, StallReport)
        assert report.patience == TEST_PATIENCE
        assert report.cycle - report.first_stuck_cycle >= TEST_PATIENCE
        # The smoking gun of the cobrra regression: every block complete, no
        # core requests outstanding, yet responses sit parked in some slice.
        assert report.blocks_completed == report.blocks_total
        assert report.core_outstanding == 0
        assert any(s.response_queue > 0 for s in report.slices)
        # ... and the stuck slices show request priority being granted with an
        # empty request queue (the starvation itself).
        stuck = [s for s in report.slices if s.response_queue > 0]
        assert all(s.request_queue == 0 for s in stuck)
        assert all(s.request_priority_grants > 0 for s in stuck)
        # The message embeds the rendered report, so sweep failure records
        # (which stringify errors) carry the stall state automatically.
        assert "no forward progress since cycle" in str(excinfo.value)

    def test_raise_on_stall_false_returns_livelock_status(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        system = build_starved_system(tiny_system, cobrra_policy, tiny_workload)
        engine = SimulationEngine(
            system, liveness=LivenessConfig(patience=TEST_PATIENCE)
        )
        report = engine.run(raise_on_stall=False)
        assert report.status is TerminationStatus.LIVELOCK
        assert not report.finished
        assert report.stall_report is not None
        assert report.cycles < SimulationEngine(system).max_cycles

    def test_fixed_arbiter_completes_with_completed_status(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, cobrra_policy, trace)
        engine = SimulationEngine(
            system, liveness=LivenessConfig(patience=TEST_PATIENCE)
        )
        report = engine.run()
        assert report.finished
        assert report.status is TerminationStatus.COMPLETED
        assert report.stall_report is None

    def test_simulator_surfaces_livelock_status_in_result(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        sim = Simulator(
            tiny_system,
            cobrra_policy,
            trace,
            liveness=LivenessConfig(patience=TEST_PATIENCE),
        )
        for index, llc_slice in enumerate(sim.system.llc.slices):
            starved = StarvationInjectedArbiter(
                tiny_system.core.num_cores, cobrra_policy.cobrra
            )
            sim.system.llc.arbiters[index] = starved
            llc_slice.arbiter = starved
        result = sim.run(raise_on_stall=False)
        assert result.status == "livelock"
        assert not result.completed

    def test_stall_report_snapshot_matches_live_system(
        self, tiny_system, cobrra_policy, tiny_workload
    ):
        trace = generate_trace(tiny_workload, tiny_system)
        system = SimulatedSystem(tiny_system, cobrra_policy, trace)
        for cycle in range(128):
            system.step(cycle)
        report = build_stall_report(
            system, cycle=127, first_stuck_cycle=64, patience=TEST_PATIENCE
        )
        assert report.cycle == 127
        assert report.first_stuck_cycle == 64
        assert len(report.slices) == len(system.llc.slices)
        for snap, llc_slice in zip(report.slices, system.llc.slices):
            assert snap.slice_id == llc_slice.slice_id
            assert snap.response_queue == len(llc_slice.response_queue)
            assert snap.arbitration_calls == llc_slice.arbiter.arbitration_calls
        assert "thread blocks" in report.render()
