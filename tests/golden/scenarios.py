"""The scenarios whose metrics are pinned by golden fixtures.

These are exactly the configurations the CLI smoke presets run
(``llamcat serve --smoke --seed 0`` and ``llamcat cluster --smoke --seed 0``),
so the fixtures pin the same numbers CI's smoke steps print.  Any engine
change that shifts a cycle count, a timestamp or a derived aggregate fails the
golden comparison loudly; when the shift is intentional, regenerate with::

    PYTHONPATH=src python tests/golden/regen.py

and commit the updated fixtures together with the change that moved them.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro.api import ClusterScenario, ServeScenario
from repro.config.scale import ScaleTier

GOLDEN_DIR = Path(__file__).parent

#: fixture file name -> zero-argument callable producing the metrics object.
GOLDEN_SCENARIOS = {
    "serve_smoke.json": lambda: golden_serve_scenario().run(),
    "serve_chunked_smoke.json": lambda: golden_serve_chunked_scenario().run(),
    "serve_decode_only_smoke.json": lambda: golden_serve_decode_only_scenario().run(),
    "cluster_smoke.json": lambda: golden_cluster_scenario().run(),
    "cluster_disaggregated_smoke.json": (
        lambda: golden_cluster_disaggregated_scenario().run()
    ),
}


def golden_serve_scenario() -> ServeScenario:
    """The configuration behind ``llamcat serve --smoke --seed 0``."""

    return ServeScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=2000.0,
        num_requests=8,
        max_batch=2,
        seed=0,
        policy="unopt",
        system="table5",
        tier=ScaleTier.SMOKE,
    ).validate()


def golden_serve_chunked_scenario() -> ServeScenario:
    """``llamcat serve --smoke --scheduler chunked --seed 0``."""

    return replace(golden_serve_scenario(), scheduler="chunked").validate()


def golden_serve_decode_only_scenario() -> ServeScenario:
    """Decode-first with prefill cost disabled: the legacy decode-only loop.

    Its fixture (``serve_decode_only_smoke.json``) is a frozen copy of the
    pre-prefill ``serve_smoke.json``, so this scenario pins the guarantee
    that free prefill under the decode-first scheduler reproduces the old
    scheduler's metrics bit-for-bit.  It must only ever regenerate as
    "unchanged".
    """

    return replace(
        golden_serve_scenario(), scheduler="decode-first", prefill_cost=False
    ).validate()


def golden_cluster_scenario() -> ClusterScenario:
    """The configuration behind ``llamcat cluster --smoke --seed 0``."""

    return ClusterScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=2000.0,
        num_requests=8,
        replicas=2,
        router="round-robin",
        max_batch=2,
        seed=0,
        policy="unopt",
        systems=("table5",),
        tier=ScaleTier.SMOKE,
    ).validate()


def golden_cluster_disaggregated_scenario() -> ClusterScenario:
    """``llamcat cluster --smoke --disaggregated --seed 0`` (a 1p1d split)."""

    return replace(golden_cluster_scenario(), disaggregated="1p1d").validate()


def canonical(metrics_dict: dict) -> dict:
    """Normalize a metrics dict through JSON (tuples -> lists, float repr)."""

    return json.loads(json.dumps(metrics_dict))


def fixture_path(name: str) -> Path:
    return GOLDEN_DIR / name
