"""Regenerate the golden metric fixtures (run after an *intentional* change).

Usage::

    PYTHONPATH=src python tests/golden/regen.py

Rewrites every fixture in ``tests/golden/`` from the scenarios in
:mod:`tests.golden.scenarios` and prints what changed.  Commit the updated
fixtures together with the engine change that moved the numbers -- see
CONTRIBUTING.md.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1].parent))

from tests.golden.scenarios import GOLDEN_SCENARIOS, canonical, fixture_path  # noqa: E402


def main() -> int:
    for name, run in GOLDEN_SCENARIOS.items():
        path = fixture_path(name)
        fresh = canonical(run().to_dict())
        stale = json.loads(path.read_text()) if path.exists() else None
        path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        status = "unchanged" if fresh == stale else ("updated" if stale else "created")
        print(f"{path}: {status}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
