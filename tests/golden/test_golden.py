"""Golden regression tests: the smoke metrics dicts must match exactly.

These comparisons are deliberately *exact* -- every timestamp, cycle count and
derived aggregate of the ``llamcat serve --smoke`` / ``llamcat cluster
--smoke`` runs is pinned.  An engine change that shifts any number fails here
loudly; if the shift is intentional, regenerate the fixtures
(``PYTHONPATH=src python tests/golden/regen.py``) and commit them with the
change.  See CONTRIBUTING.md.
"""

import json

import pytest

from tests.golden.scenarios import GOLDEN_SCENARIOS, canonical, fixture_path


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_smoke_metrics_match_golden_fixture_exactly(name):
    path = fixture_path(name)
    assert path.exists(), (
        f"golden fixture {path} is missing; generate it with "
        f"`PYTHONPATH=src python tests/golden/regen.py`"
    )
    expected = json.loads(path.read_text())
    actual = canonical(GOLDEN_SCENARIOS[name]().to_dict())
    assert actual == expected, (
        f"{name}: smoke metrics diverged from the golden fixture; if this "
        f"change is intentional, regenerate via "
        f"`PYTHONPATH=src python tests/golden/regen.py` and commit the diff"
    )


def test_decode_first_with_free_prefill_reproduces_the_pre_prefill_golden():
    """The backward-compatibility contract of the prefill-aware scheduler.

    ``serve_decode_only_smoke.json`` is a byte-for-byte frozen copy of the
    ``serve_smoke.json`` that predates prefill modeling.  Running today's
    decode-first scheduler with ``prefill_cost=False`` must reproduce it
    exactly -- same timestamps, cycle counts, aggregates *and* dict shape (no
    prefill keys) -- so decode-only results remain comparable across the
    change.  If this test fails, the legacy path regressed; do NOT fix it by
    regenerating the fixture.
    """

    from tests.golden.scenarios import golden_serve_decode_only_scenario

    scenario = golden_serve_decode_only_scenario()
    assert scenario.scheduler == "decode-first" and not scenario.prefill_cost
    actual = canonical(scenario.run().to_dict())
    expected = json.loads(fixture_path("serve_decode_only_smoke.json").read_text())
    assert actual == expected
    flat = json.dumps(expected)
    assert "prefill" not in flat and "scheduler" not in flat


def test_golden_fixtures_are_canonical_json():
    # Fixtures must stay exactly as regen.py writes them (sorted keys,
    # 2-space indent, trailing newline) so regeneration diffs are minimal.
    for name in GOLDEN_SCENARIOS:
        text = fixture_path(name).read_text()
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"
