"""Golden regression tests: the smoke metrics dicts must match exactly.

These comparisons are deliberately *exact* -- every timestamp, cycle count and
derived aggregate of the ``llamcat serve --smoke`` / ``llamcat cluster
--smoke`` runs is pinned.  An engine change that shifts any number fails here
loudly; if the shift is intentional, regenerate the fixtures
(``PYTHONPATH=src python tests/golden/regen.py``) and commit them with the
change.  See CONTRIBUTING.md.
"""

import json

import pytest

from tests.golden.scenarios import GOLDEN_SCENARIOS, canonical, fixture_path


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_smoke_metrics_match_golden_fixture_exactly(name):
    path = fixture_path(name)
    assert path.exists(), (
        f"golden fixture {path} is missing; generate it with "
        f"`PYTHONPATH=src python tests/golden/regen.py`"
    )
    expected = json.loads(path.read_text())
    actual = canonical(GOLDEN_SCENARIOS[name]().to_dict())
    assert actual == expected, (
        f"{name}: smoke metrics diverged from the golden fixture; if this "
        f"change is intentional, regenerate via "
        f"`PYTHONPATH=src python tests/golden/regen.py` and commit the diff"
    )


def test_golden_fixtures_are_canonical_json():
    # Fixtures must stay exactly as regen.py writes them (sorted keys,
    # 2-space indent, trailing newline) so regeneration diffs are minimal.
    for name in GOLDEN_SCENARIOS:
        text = fixture_path(name).read_text()
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"
