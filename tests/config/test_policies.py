"""Tests for policy configuration (Tables 1-4)."""

import pytest

from repro.common.errors import ConfigError
from repro.config.policies import (
    ArbitrationKind,
    ContentionLevel,
    ContentionThresholds,
    DynctaParams,
    InCoreThrottleParams,
    LcsParams,
    MshrAwareParams,
    MultiGearParams,
    PolicyConfig,
    ThrottleKind,
)


class TestContentionThresholds:
    """Table 3: contention classification from the stall-cycle proportion."""

    def setup_method(self):
        self.thresholds = ContentionThresholds()

    @pytest.mark.parametrize(
        "ratio,expected",
        [
            (0.0, ContentionLevel.LOW),
            (0.05, ContentionLevel.LOW),
            (0.0999, ContentionLevel.LOW),
            (0.1, ContentionLevel.NORMAL),
            (0.19, ContentionLevel.NORMAL),
            (0.2, ContentionLevel.HIGH),
            (0.374, ContentionLevel.HIGH),
            (0.375, ContentionLevel.EXTREME),
            (1.0, ContentionLevel.EXTREME),
        ],
    )
    def test_table3_boundaries(self, ratio, expected):
        assert self.thresholds.classify(ratio) == expected

    def test_rejects_out_of_range_ratio(self):
        with pytest.raises(ConfigError):
            self.thresholds.classify(1.5)
        with pytest.raises(ConfigError):
            self.thresholds.classify(-0.1)

    def test_rejects_unordered_thresholds(self):
        with pytest.raises(ConfigError):
            ContentionThresholds(0.3, 0.2, 0.5).validate()


class TestMultiGearParams:
    """Tables 1 and 2: gear fractions and the sampling period."""

    def test_defaults_match_paper(self):
        params = MultiGearParams().validate()
        assert params.sampling_period == 2000
        assert params.max_gear == 4
        assert params.gear_fractions == (0.0, 1 / 8, 1 / 4, 1 / 2, 3 / 4)

    def test_gear_fraction_count_must_match_max_gear(self):
        with pytest.raises(ConfigError):
            MultiGearParams(max_gear=3).validate()

    def test_fractions_must_be_monotonic(self):
        with pytest.raises(ConfigError):
            MultiGearParams(gear_fractions=(0.0, 0.5, 0.25, 0.6, 0.75)).validate()


class TestInCoreParams:
    def test_defaults_match_table4(self):
        params = InCoreThrottleParams().validate()
        assert params.sub_period == 400
        assert params.c_idle_upper == 4
        assert params.c_mem_upper == 250
        assert params.c_mem_lower == 180

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigError):
            InCoreThrottleParams(c_mem_upper=100, c_mem_lower=200).validate()


class TestBaselineParams:
    def test_dyncta_defaults_are_valid(self):
        DynctaParams().validate()

    def test_dyncta_rejects_inverted_bounds(self):
        with pytest.raises(ConfigError):
            DynctaParams(c_mem_high=100, c_mem_low=200).validate()

    def test_lcs_rejects_bad_factor(self):
        with pytest.raises(ConfigError):
            LcsParams(target_latency_factor=0.5).validate()

    def test_mshr_aware_sizes_positive(self):
        with pytest.raises(ConfigError):
            MshrAwareParams(hit_buffer_size=0).validate()


class TestPolicyConfigLabels:
    """Labels must match the paper's legends so experiment output reads like the paper."""

    @pytest.mark.parametrize(
        "throttle,arbitration,label",
        [
            (ThrottleKind.NONE, ArbitrationKind.FCFS, "unopt"),
            (ThrottleKind.DYNMG, ArbitrationKind.FCFS, "dynmg"),
            (ThrottleKind.DYNCTA, ArbitrationKind.FCFS, "dyncta"),
            (ThrottleKind.LCS, ArbitrationKind.FCFS, "lcs"),
            (ThrottleKind.DYNMG, ArbitrationKind.BALANCED, "dynmg+B"),
            (ThrottleKind.DYNMG, ArbitrationKind.MSHR_AWARE, "dynmg+MA"),
            (ThrottleKind.DYNMG, ArbitrationKind.BALANCED_MSHR_AWARE, "dynmg+BMA"),
            (ThrottleKind.NONE, ArbitrationKind.COBRRA, "cobrra"),
            (ThrottleKind.DYNMG, ArbitrationKind.COBRRA, "dynmg+cobrra"),
        ],
    )
    def test_labels(self, throttle, arbitration, label):
        assert PolicyConfig(throttle=throttle, arbitration=arbitration).label == label

    def test_fluent_builders(self):
        policy = PolicyConfig().with_throttle(ThrottleKind.DYNMG).with_arbitration(
            ArbitrationKind.BALANCED_MSHR_AWARE
        )
        assert policy.label == "dynmg+BMA"

    def test_validate_returns_self(self):
        policy = PolicyConfig()
        assert policy.validate() is policy
