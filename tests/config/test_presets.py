"""Tests for presets (Table 5 system, paper workloads, policy labels)."""

import pytest

from repro.common.errors import ConfigError
from repro.config.policies import ArbitrationKind, ThrottleKind
from repro.config.presets import (
    FIG7_SEQ_LENS,
    FIG9_L2_MIB,
    FIG9_SEQ_LEN,
    bma,
    dyncta,
    dynmg,
    lcs,
    llama3_405b_logit,
    llama3_70b_attend,
    llama3_70b_logit,
    policy_by_label,
    table5_system,
    table5_system_with_l2,
    unoptimized,
)
from repro.config.system import MIB


class TestSystemPresets:
    def test_table5_system_is_valid_default(self):
        system = table5_system()
        assert system.core.num_cores == 16
        assert system.l2.size_bytes == 16 * MIB

    def test_fig9_l2_variants(self):
        for mib in FIG9_L2_MIB:
            assert table5_system_with_l2(mib).l2.size_bytes == mib * MIB


class TestWorkloadPresets:
    def test_llama3_70b_shape(self):
        wl = llama3_70b_logit(8192)
        assert wl.shape.num_kv_heads == 8
        assert wl.shape.group_size == 8
        assert wl.shape.head_dim == 128
        assert wl.shape.seq_len == 8192

    def test_llama3_405b_shape(self):
        wl = llama3_405b_logit(8192)
        assert wl.shape.group_size == 16

    def test_attend_preset(self):
        assert llama3_70b_attend(1024).operator.value == "attend"

    def test_paper_sweep_constants(self):
        assert FIG7_SEQ_LENS == (4096, 8192, 16384)
        assert FIG9_SEQ_LEN == 32768
        assert FIG9_L2_MIB == (16, 32, 64)


class TestPolicyPresets:
    def test_unoptimized(self):
        policy = unoptimized()
        assert policy.throttle == ThrottleKind.NONE
        assert policy.arbitration == ArbitrationKind.FCFS

    def test_named_policies(self):
        assert dynmg().throttle == ThrottleKind.DYNMG
        assert dyncta().throttle == ThrottleKind.DYNCTA
        assert lcs().throttle == ThrottleKind.LCS
        assert bma().arbitration == ArbitrationKind.BALANCED_MSHR_AWARE
        assert bma().throttle == ThrottleKind.DYNMG


class TestPolicyByLabel:
    @pytest.mark.parametrize(
        "label,throttle,arbitration",
        [
            ("unopt", ThrottleKind.NONE, ArbitrationKind.FCFS),
            ("dynmg", ThrottleKind.DYNMG, ArbitrationKind.FCFS),
            ("dynmg+BMA", ThrottleKind.DYNMG, ArbitrationKind.BALANCED_MSHR_AWARE),
            ("dynmg+b", ThrottleKind.DYNMG, ArbitrationKind.BALANCED),
            ("DYNCTA", ThrottleKind.DYNCTA, ArbitrationKind.FCFS),
            ("cobrra", ThrottleKind.NONE, ArbitrationKind.COBRRA),
            ("dynmg+cobrra", ThrottleKind.DYNMG, ArbitrationKind.COBRRA),
        ],
    )
    def test_round_trip(self, label, throttle, arbitration):
        policy = policy_by_label(label)
        assert policy.throttle == throttle
        assert policy.arbitration == arbitration

    def test_unknown_label_raises(self):
        with pytest.raises(ConfigError, match="unknown policy"):
            policy_by_label("dynmg+warp")
