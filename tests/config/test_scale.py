"""Tests for the scale-tier machinery (ratio-preserving shrinkage)."""

import pytest

from repro.common.errors import ConfigError
from repro.config.presets import llama3_70b_logit, table5_system
from repro.config.scale import (
    ScaleTier,
    scale_experiment,
    scale_l2_bytes,
    scale_seq_len,
    scale_system,
    scale_workload,
)


class TestScaleSeqLen:
    def test_full_is_identity(self):
        assert scale_seq_len(16384, ScaleTier.FULL) == 16384

    def test_paper_scaled_divides_by_8(self):
        assert scale_seq_len(16384, ScaleTier.PAPER_SCALED) == 2048

    def test_ci_divides_by_32(self):
        assert scale_seq_len(16384, ScaleTier.CI) == 512

    def test_floor_at_64(self):
        assert scale_seq_len(256, ScaleTier.CI) == 64


class TestScaleSystem:
    def test_l2_scales_with_tier(self):
        system = table5_system()
        scaled = scale_system(system, ScaleTier.CI)
        assert scaled.l2.size_bytes == system.l2.size_bytes // 32
        scaled.validate()

    def test_l2_floor(self):
        system = table5_system().with_l2_size(1024 * 1024)
        assert scale_l2_bytes(system.l2.size_bytes, ScaleTier.CI) == 64 * 1024

    def test_other_parameters_untouched(self):
        system = table5_system()
        scaled = scale_system(system, ScaleTier.CI)
        assert scaled.core.num_cores == system.core.num_cores
        assert scaled.l2.mshr_num_entries == system.l2.mshr_num_entries
        assert scaled.l2.num_slices == system.l2.num_slices


class TestScaleExperiment:
    def test_working_set_to_cache_ratio_preserved(self):
        """The ratio that determines capacity pressure must survive scaling."""

        system = table5_system()
        workload = llama3_70b_logit(seq_len=32768)
        full_ratio = workload.kv_tensor_bytes / system.l2.size_bytes
        for tier in (ScaleTier.PAPER_SCALED, ScaleTier.CI):
            s, w = scale_experiment(system, workload, tier)
            ratio = w.kv_tensor_bytes / s.l2.size_bytes
            assert ratio == pytest.approx(full_ratio, rel=0.01)

    def test_rejects_non_tier(self):
        with pytest.raises(ConfigError):
            scale_experiment(table5_system(), llama3_70b_logit(1024), 8)

    def test_scale_workload_preserves_other_dims(self):
        wl = llama3_70b_logit(seq_len=8192)
        scaled = scale_workload(wl, ScaleTier.CI)
        assert scaled.shape.num_kv_heads == wl.shape.num_kv_heads
        assert scaled.shape.head_dim == wl.shape.head_dim
        assert scaled.shape.seq_len == 256
