"""Tests for the hardware configuration layer (Table 5)."""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigError
from repro.config.system import (
    CoreConfig,
    DramConfig,
    L1Config,
    L2Config,
    MIB,
    NoCConfig,
    SystemConfig,
)


class TestTable5Defaults:
    """The defaults must match Table 5 of the paper verbatim."""

    def test_basics(self):
        cfg = SystemConfig()
        assert cfg.frequency_ghz == pytest.approx(1.96)
        assert cfg.core.num_cores == 16
        assert cfg.l2.size_bytes == 16 * MIB
        assert cfg.l2.num_slices == 8

    def test_core_row(self):
        core = CoreConfig()
        assert core.inst_window_depth == 128
        assert core.num_inst_windows == 4
        assert core.vector_bytes == 128

    def test_l1_row(self):
        l1 = L1Config()
        assert l1.line_size == 64
        assert l1.associativity == 8
        assert l1.size_bytes == 64 * 1024
        assert l1.latency == 1

    def test_l2_row(self):
        l2 = L2Config()
        assert l2.associativity == 8
        assert l2.hit_latency == 3
        assert l2.data_latency == 25
        assert l2.mshr_num_entries == 6
        assert l2.mshr_num_targets == 8
        assert l2.mshr_latency == 5
        assert l2.req_q_size == 12
        assert l2.resp_q_size == 64

    def test_dram_row(self):
        dram = DramConfig()
        assert dram.num_channels == 4
        assert dram.num_ranks == 4
        assert dram.standard.startswith("DDR5")

    def test_validate_passes_for_defaults(self):
        SystemConfig().validate()


class TestDerivedQuantities:
    def test_l2_slice_geometry(self):
        l2 = L2Config()
        assert l2.slice_size_bytes == 2 * MIB
        assert l2.sets_per_slice == 2 * MIB // (64 * 8)

    def test_l1_num_sets(self):
        assert L1Config().num_sets == 64 * 1024 // (64 * 8)

    def test_dram_peak_bandwidth_matches_ddr5_3200(self):
        dram = DramConfig()
        # 3200 MT/s * 4 B/channel * 4 channels = 51.2 GB/s
        assert dram.peak_bandwidth_gbps == pytest.approx(51.2, rel=0.01)

    def test_dram_cycles_per_core_cycle(self):
        cfg = SystemConfig()
        assert cfg.dram_cycles_per_core_cycle == pytest.approx(1.6 / 1.96, rel=1e-6)


class TestValidation:
    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigError):
            SystemConfig(frequency_ghz=0).validate()

    def test_rejects_mismatched_line_sizes(self):
        cfg = SystemConfig(l1=replace(L1Config(), line_size=128, size_bytes=128 * 1024))
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_rejects_non_power_of_two_slices(self):
        with pytest.raises(ConfigError):
            replace(L2Config(), num_slices=6).validate()

    def test_rejects_zero_mshr(self):
        with pytest.raises(ConfigError):
            replace(L2Config(), mshr_num_entries=0).validate()

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            replace(L2Config(), hit_latency=-1).validate()

    def test_rejects_bad_core_counts(self):
        with pytest.raises(ConfigError):
            replace(CoreConfig(), num_cores=0).validate()

    def test_rejects_bad_noc(self):
        with pytest.raises(ConfigError):
            NoCConfig(slice_port_width=0).validate()

    def test_rejects_bad_dram_timing(self):
        with pytest.raises(ConfigError):
            replace(DramConfig(), tCL=0).validate()


class TestModifiers:
    def test_with_l2_size(self):
        cfg = SystemConfig().with_l2_size(32 * MIB)
        assert cfg.l2.size_bytes == 32 * MIB
        # The original is unchanged (frozen dataclasses).
        assert SystemConfig().l2.size_bytes == 16 * MIB

    def test_with_cores(self):
        assert SystemConfig().with_cores(8).core.num_cores == 8

    def test_with_l2_size_rejects_invalid(self):
        with pytest.raises(ConfigError):
            SystemConfig().with_l2_size(100)  # not divisible into slices/sets
