"""Tests for workload configuration (GQA shapes, operator footprints)."""

import pytest

from repro.common.errors import ConfigError
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig


def make(seq_len=1024, group_size=8, operator=OperatorKind.LOGIT):
    return WorkloadConfig(
        name="w",
        shape=GQAShape(num_kv_heads=8, group_size=group_size, head_dim=128, seq_len=seq_len),
        operator=operator,
    ).validate()


class TestGQAShape:
    def test_num_q_heads(self):
        assert GQAShape(8, 8, 128, 1024).num_q_heads == 64
        assert GQAShape(8, 16, 128, 1024).num_q_heads == 128

    def test_with_seq_len(self):
        shape = GQAShape(8, 8, 128, 1024).with_seq_len(2048)
        assert shape.seq_len == 2048

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigError):
            GQAShape(0, 8, 128, 1024).validate()
        with pytest.raises(ConfigError):
            GQAShape(8, 8, 128, 0).validate()


class TestFootprints:
    def test_kv_bytes_llama70b_16k(self):
        # H=8, L=16384, D=128, fp16 -> 32 MiB per K tensor.
        wl = make(seq_len=16384)
        assert wl.kv_tensor_bytes == 8 * 16384 * 128 * 2

    def test_query_and_output_bytes_logit(self):
        wl = make(seq_len=1024)
        assert wl.query_bytes == 64 * 128 * 2
        assert wl.output_bytes == 64 * 1024 * 2

    def test_output_bytes_attend(self):
        wl = make(seq_len=1024, operator=OperatorKind.ATTEND)
        assert wl.output_bytes == 64 * 128 * 2

    def test_working_set_is_sum_of_operands(self):
        wl = make()
        assert wl.working_set_bytes == wl.kv_tensor_bytes + wl.query_bytes + wl.output_bytes

    def test_flops_count(self):
        wl = make(seq_len=1024)
        assert wl.flops == 2 * 64 * 1024 * 128

    def test_decode_is_memory_bound(self):
        """The Logit operator's arithmetic intensity is low enough that it is
        bandwidth-bound on any realistic accelerator (well under 16 FLOP/byte)."""

        wl = make(seq_len=8192)
        assert wl.arithmetic_intensity < 16

    def test_405b_has_twice_the_query_heads(self):
        small = make(group_size=8)
        large = make(group_size=16)
        assert large.output_bytes == 2 * small.output_bytes
        assert large.kv_tensor_bytes == small.kv_tensor_bytes  # KV shared per group


class TestValidation:
    def test_rejects_bad_element_bytes(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(
                name="w", shape=GQAShape(8, 8, 128, 64), element_bytes=3
            ).validate()

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(
                name="w", shape=GQAShape(8, 8, 128, 64), batch_size=0
            ).validate()

    def test_with_seq_len_returns_new_config(self):
        wl = make(seq_len=1024)
        wl2 = wl.with_seq_len(4096)
        assert wl2.shape.seq_len == 4096
        assert wl.shape.seq_len == 1024

    def test_describe_mentions_shape(self):
        text = make().describe()
        assert "logit" in text
        assert "H=8" in text
