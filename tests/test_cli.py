"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.model == "llama3-70b"
        assert args.policy == "dynmg+BMA"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--model", "gpt-7", "--seq-len", "64"])

    def test_unknown_tier_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--tier", "gigantic"])


class TestInfoAndHwcost:
    def test_info_prints_analytical_bounds(self, capsys):
        assert main(["info", "--model", "llama3-70b", "--seq-len", "512"]) == 0
        out = capsys.readouterr().out
        assert "thread blocks" in out
        assert "bottleneck" in out

    def test_hwcost_prints_both_structures(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "arbiter" in out
        assert "hit_buffer" in out
