"""Tests for the command-line interface."""

from typing import ClassVar

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.model == "llama3-70b"
        assert args.policy == "dynmg+BMA"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--model", "gpt-7", "--seq-len", "64"])

    def test_unknown_tier_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--tier", "gigantic"])

    def test_sweep_defaults_are_fig9_style(self):
        args = build_parser().parse_args(["sweep"])
        assert args.models is None          # resolved to both models at run time
        assert args.jobs == 1
        assert args.store is None
        assert not args.force

    def test_sweep_repeatable_axes(self):
        args = build_parser().parse_args(
            ["sweep", "--model", "llama3-70b", "--seq-len", "1024", "--seq-len", "2048",
             "--policy", "unopt", "--l2-mib", "16", "--jobs", "4"]
        )
        assert args.models == ["llama3-70b"]
        assert args.seq_lens == [1024, 2048]
        assert args.l2_mib == [16]
        assert args.jobs == 4


class TestSweepCommand:
    GRID: ClassVar[list[str]] = [
        "sweep", "--model", "llama3-70b", "--seq-len", "2048",
        "--policy", "unopt", "--policy", "dynmg",
        "--l2-mib", "16", "--tier", "ci",
    ]

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "gpt-7", "--seq-len", "64"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--policy", "warpdrive"])

    def test_grid_runs_and_prints_summary(self, capsys, tmp_path):
        store = str(tmp_path / "results.jsonl")
        assert main([*self.GRID, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "sweep results" in out
        assert "speedup vs unopt" in out
        assert "2 simulated, 0 cached" in out

    def test_second_invocation_is_cached(self, capsys, tmp_path):
        store = str(tmp_path / "results.jsonl")
        assert main([*self.GRID, "--store", store]) == 0
        capsys.readouterr()
        assert main([*self.GRID, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 2 cached" in out

    def test_quiet_suppresses_progress_lines(self, capsys):
        assert main([*self.GRID, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" not in out
        assert "sweep results" in out


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workload == "llama3-70b"
        assert args.arrival == "poisson"
        assert args.rate == 2000.0
        assert args.seed == 0
        assert not args.smoke

    def test_model_is_an_alias_for_workload(self):
        args = build_parser().parse_args(["serve", "--model", "llama3-405b-decode"])
        assert args.workload == "llama3-405b-decode"

    def test_unknown_arrival_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--arrival", "tsunami", "--smoke"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--workload", "gpt-7", "--smoke"])

    def test_smoke_run_prints_percentiles_and_throughput(self, capsys):
        assert main(["serve", "--smoke", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "p50/p95/p99" in out
        assert "latency percentiles" in out
        assert "tokens/s" in out
        assert "cycle-engine runs" in out
        assert "prefill_ms" in out               # prefill modeled by default

    def test_prefill_flags(self):
        args = build_parser().parse_args(
            ["serve", "--scheduler", "chunked", "--prefill-chunk", "128"]
        )
        assert args.scheduler == "chunked"
        assert args.prefill_chunk == 128
        assert args.prefill_cost                 # on unless --no-prefill-cost
        assert not build_parser().parse_args(
            ["serve", "--no-prefill-cost"]
        ).prefill_cost

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--scheduler", "clairvoyant", "--smoke"])

    def test_no_prefill_cost_drops_prefill_reporting(self, capsys):
        assert main(["serve", "--smoke", "--seed", "0", "--no-prefill-cost"]) == 0
        out = capsys.readouterr().out
        assert "prefill_ms" not in out           # the legacy decode-only view


class TestServeSweepCommand:
    def test_serve_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--serve", "--rate", "1000", "--rate", "2000",
             "--arrival", "poisson", "--num-requests", "8"]
        )
        assert args.serve
        assert args.rates == [1000.0, 2000.0]
        assert args.arrivals == ["poisson"]
        assert args.num_requests == 8

    def test_kernel_sweep_unaffected_by_default(self):
        args = build_parser().parse_args(["sweep"])
        assert not args.serve
        assert args.rates is None

    def test_unknown_arrival_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--serve", "--arrival", "tsunami"])

    def test_serve_axes_without_serve_rejected(self):
        with pytest.raises(SystemExit, match="--serve"):
            main(["sweep", "--rate", "1000"])
        with pytest.raises(SystemExit, match="--serve"):
            main(["sweep", "--arrival", "bursty"])
        with pytest.raises(SystemExit, match="--serve"):
            main(["sweep", "--scheduler", "chunked"])
        with pytest.raises(SystemExit, match="--serve"):
            main(["sweep", "--prefill-chunk", "128"])

    def test_scheduler_axis_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--serve", "--scheduler", "decode-first",
             "--scheduler", "chunked", "--prefill-chunk", "128",
             "--prefill-chunk", "512"]
        )
        assert args.schedulers == ["decode-first", "chunked"]
        assert args.prefill_chunks == [128, 512]

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--serve", "--scheduler", "clairvoyant"])

    def test_kernel_axes_with_serve_rejected(self):
        with pytest.raises(SystemExit, match="kernel-sweep"):
            main(["sweep", "--serve", "--seq-len", "1024"])
        with pytest.raises(SystemExit, match="kernel-sweep"):
            main(["sweep", "--serve", "--l2-mib", "32"])


class TestClusterCommand:
    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.workload == "llama3-70b"
        assert args.replicas == 2
        assert args.router == "round-robin"
        assert args.systems is None       # resolved to ("table5",) at run time
        assert not args.smoke

    def test_repeatable_system_flag_builds_a_fleet(self):
        args = build_parser().parse_args(
            ["cluster", "--system", "table5", "--system", "table5-8core"]
        )
        assert args.systems == ["table5", "table5-8core"]

    def test_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--router", "carrier-pigeon", "--smoke"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--system", "cray-1", "--smoke"])

    def test_mismatched_fleet_systems_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--replicas", "3",
                  "--system", "table5", "--system", "table5-8core"])

    def test_smoke_run_prints_fleet_and_percentiles(self, capsys):
        assert main(["cluster", "--smoke", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "fleet (" in out
        assert "utilization" in out
        assert "merged latency percentiles" in out
        assert "imbalance" in out
        assert "cycle-engine runs" in out

    def test_disaggregated_flag_defaults_and_spec(self):
        args = build_parser().parse_args(["cluster"])
        assert args.disaggregated is None
        assert args.kv_transfer_ms == 0.0
        assert build_parser().parse_args(
            ["cluster", "--disaggregated"]
        ).disaggregated == "1p1d"
        assert build_parser().parse_args(
            ["cluster", "--disaggregated", "2p2d"]
        ).disaggregated == "2p2d"

    def test_malformed_disaggregated_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--disaggregated", "2x2", "--smoke"])

    def test_contradicting_replicas_with_disaggregated_rejected(self):
        with pytest.raises(SystemExit, match="contradicts"):
            main(["cluster", "--replicas", "8", "--disaggregated", "1p1d",
                  "--smoke"])

    def test_disaggregated_smoke_prints_roles_and_handoffs(self, capsys):
        assert main(["cluster", "--smoke", "--seed", "0", "--disaggregated"]) == 0
        out = capsys.readouterr().out
        assert "prefill" in out and "decode" in out
        assert "handoffs" in out
        assert "prefill/decode util" in out


class TestClusterSweepCommand:
    def test_cluster_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--cluster", "--rate", "1000", "--replicas", "2",
             "--replicas", "4", "--router", "round-robin", "--router", "jsq"]
        )
        assert args.cluster
        assert args.replica_counts == [2, 4]
        assert args.routers == ["round-robin", "jsq"]
        assert args.rates == [1000.0]

    def test_cluster_axes_without_cluster_rejected(self):
        with pytest.raises(SystemExit, match="--cluster"):
            main(["sweep", "--replicas", "2"])
        with pytest.raises(SystemExit, match="--cluster"):
            main(["sweep", "--serve", "--router", "round-robin"])

    def test_serve_and_cluster_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--serve", "--cluster"])

    def test_kernel_axes_with_cluster_rejected(self):
        with pytest.raises(SystemExit, match="kernel-sweep"):
            main(["sweep", "--cluster", "--seq-len", "1024"])

    def test_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--cluster", "--router", "carrier-pigeon"])


class TestListCommand:
    def test_list_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("llama3-70b", "llama3-405b", "llama3-405b-attend"):
            assert name in out

    def test_list_workload_decode_aliases(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "llama3-70b-decode" in out
        assert "llama3-405b-decode" in out

    def test_list_arrivals(self, capsys):
        assert main(["list", "arrivals"]) == 0
        out = capsys.readouterr().out
        for name in ("poisson", "bursty", "closed-loop", "trace"):
            assert name in out

    def test_list_systems(self, capsys):
        assert main(["list", "systems"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "table5-32core" in out

    def test_list_policies_shows_labels_and_aliases(self, capsys):
        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        assert "dynmg+BMA" in out
        assert "unoptimized" in out  # alias of unopt

    def test_list_throttles(self, capsys):
        assert main(["list", "throttles"]) == 0
        out = capsys.readouterr().out
        assert "dynmg" in out

    def test_list_schedulers(self, capsys):
        assert main(["list", "schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("decode-first", "prefill-first", "chunked"):
            assert name in out
        assert "chunked-prefill" in out                # aliases are listed

    def test_list_routers(self, capsys):
        assert main(["list", "routers"]) == 0
        out = capsys.readouterr().out
        for name in ("round-robin", "least-outstanding", "join-shortest-queue", "weighted"):
            assert name in out
        assert "jsq" in out                            # aliases are listed

    def test_list_rejects_unknown_registry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "gadgets"])


class TestPluginLoading:
    def test_llamcat_plugins_imports_and_registers(self, tmp_path, monkeypatch, capsys):
        from repro.registry import WORKLOADS

        (tmp_path / "my_models.py").write_text(
            "from repro.registry import register_workload\n"
            "from repro.config.presets import llama3_70b_logit\n"
            "@register_workload('plugin-model', description='from a plugin')\n"
            "def plugin_model(seq_len: int = 64):\n"
            "    return llama3_70b_logit(seq_len)\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("LLAMCAT_PLUGINS", "my_models")
        try:
            assert main(["list", "workloads"]) == 0
            assert "plugin-model" in capsys.readouterr().out
        finally:
            if "plugin-model" in WORKLOADS:
                WORKLOADS.unregister("plugin-model")

    def test_unimportable_plugin_rejected(self, monkeypatch):
        monkeypatch.setenv("LLAMCAT_PLUGINS", "no_such_module_xyz")
        with pytest.raises(SystemExit, match="LLAMCAT_PLUGINS"):
            main(["list", "workloads"])


class TestRunCommand:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "warpdrive", "--seq-len", "64"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--system", "cray-1", "--seq-len", "64"])


class TestInfoAndHwcost:
    def test_info_prints_analytical_bounds(self, capsys):
        assert main(["info", "--model", "llama3-70b", "--seq-len", "512"]) == 0
        out = capsys.readouterr().out
        assert "thread blocks" in out
        assert "bottleneck" in out

    def test_hwcost_prints_both_structures(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "arbiter" in out
        assert "hit_buffer" in out


class TestObservabilityFlags:
    SERVE: ClassVar[list[str]] = ["serve", "--smoke", "--seed", "0"]

    def test_obs_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--trace-out", "t.json", "--telemetry", "2.5"]
        )
        assert args.trace_out == "t.json"
        assert args.telemetry == 2.5
        args = build_parser().parse_args(["cluster"])
        assert args.trace_out is None and args.telemetry is None

    def test_verbosity_flags_parse(self):
        args = build_parser().parse_args(["-v", "serve"])
        assert args.verbose == 1
        args = build_parser().parse_args(["-q", "serve"])
        assert args.log_quiet == 1

    def test_serve_trace_out_writes_valid_deterministic_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*self.SERVE, "--trace-out", str(a)]) == 0
        assert main([*self.SERVE, "--trace-out", str(b)]) == 0
        out = capsys.readouterr().out
        assert f"trace: {b}" in out
        assert a.read_bytes() == b.read_bytes()
        assert validate_trace(json.loads(a.read_text())) > 0

    def test_serve_telemetry_prints_timeline(self, capsys):
        assert main([*self.SERVE, "--telemetry", "2"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "util |" in out

    def test_cluster_trace_and_telemetry(self, capsys, tmp_path):
        trace = tmp_path / "cluster.json"
        assert main(
            ["cluster", "--smoke", "--seed", "0",
             "--trace-out", str(trace), "--telemetry", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert trace.exists()
        assert "timeline:" in out and "2 replicas" in out

    def test_no_flags_output_is_unchanged_by_default(self, capsys):
        # Without --trace-out/--telemetry the summary must not mention them.
        assert main(self.SERVE) == 0
        out = capsys.readouterr().out
        assert "trace:" not in out
        assert "timeline:" not in out

    def test_sweep_telemetry_requires_serving_mode(self):
        with pytest.raises(SystemExit, match="--serve"):
            main(["sweep", "--telemetry", "2"])


class TestTimelineCommand:
    SWEEP: ClassVar[list[str]] = [
        "sweep", "--serve", "--tier", "smoke", "--model", "llama3-70b",
        "--rate", "2000", "--num-requests", "8", "--max-batch", "2",
        "--telemetry", "2", "--quiet",
    ]

    def test_timeline_renders_stored_telemetry(self, capsys, tmp_path):
        store = str(tmp_path / "results.jsonl")
        assert main([*self.SWEEP, "--store", store]) == 0
        capsys.readouterr()
        assert main(["timeline", store, "unopt@poisson@2000"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "util |" in out and "queue |" in out

    def test_timeline_resolves_key_prefix(self, capsys, tmp_path):
        from repro.sweep.store import ResultStore

        store = str(tmp_path / "results.jsonl")
        assert main([*self.SWEEP, "--store", store]) == 0
        capsys.readouterr()
        key = next(ResultStore(store).records()).key
        assert main(["timeline", store, key[:8]]) == 0
        assert key[:12] in capsys.readouterr().out

    def test_timeline_custom_metric_and_width(self, capsys, tmp_path):
        store = str(tmp_path / "results.jsonl")
        assert main([*self.SWEEP, "--store", store]) == 0
        capsys.readouterr()
        assert main(
            ["timeline", store, "unopt@poisson@2000",
             "--metric", "tokens_per_s", "--width", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "tokens_per_s |" in out
        assert "queue" not in out

    def test_timeline_without_telemetry_explains(self, capsys, tmp_path):
        store = str(tmp_path / "results.jsonl")
        i = self.SWEEP.index("--telemetry")
        no_telemetry = self.SWEEP[:i] + self.SWEEP[i + 2:]
        assert main([*no_telemetry, "--store", store]) == 0
        with pytest.raises(SystemExit, match="--telemetry"):
            main(["timeline", store, "unopt@poisson@2000"])

    def test_timeline_missing_store_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no result store"):
            main(["timeline", str(tmp_path / "nope.jsonl"), "whatever"])

    def test_timeline_unknown_key_rejected(self, tmp_path):
        store = str(tmp_path / "results.jsonl")
        assert main([*self.SWEEP, "--store", store]) == 0
        with pytest.raises(SystemExit, match="no stored result"):
            main(["timeline", store, "zzzz"])

    def test_timeline_unknown_key_suggests_available(self, capsys, tmp_path):
        from repro.sweep.store import ResultStore

        store = str(tmp_path / "results.jsonl")
        assert main([*self.SWEEP, "--store", store]) == 0
        key = next(ResultStore(store).records()).key
        with pytest.raises(SystemExit, match="available:") as excinfo:
            main(["timeline", store, "zzzz"])
        message = str(excinfo.value)
        assert key[:12] in message
        assert "unopt@poisson@2000" in message

    def test_timeline_ambiguous_prefix_lists_matches(self, tmp_path):
        from repro.serve.metrics import ServeMetrics
        from repro.sweep.store import ResultStore

        class Point:
            def __init__(self, key, label):
                self._key, self.label = key, label

            def key(self):
                return self._key

            def config_dict(self):
                return {}

        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        result = ServeMetrics(
            label="amb", workload="w", frequency_ghz=2.0, duration_s=1.0,
            steps=1, total_cycles=1, requests=(),
        )
        store.put(Point("feed0" + "0" * 35, "amb-one"), result=result)
        store.put(Point("feed1" + "1" * 35, "amb-two"), result=result)
        with pytest.raises(SystemExit, match="ambiguous") as excinfo:
            main(["timeline", path, "feed"])
        message = str(excinfo.value)
        assert "amb-one" in message and "amb-two" in message


class TestBenchCommand:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.benches is None
        assert args.tier == "ci"
        assert (args.warmup, args.repeat) == (0, 1)
        assert args.root == "."
        assert args.compare is None
        assert args.threshold == 10.0
        assert args.wall_threshold is None

    def test_list_benches(self, capsys):
        assert main(["list", "benches"]) == 0
        out = capsys.readouterr().out
        assert "serve_throughput" in out
        assert "table5_config" in out
        assert "hwcost_area" in out

    def test_unknown_bench_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="bench"):
            main(["bench", "--bench", "warp-drive", "--root", str(tmp_path)])

    def test_failing_bench_does_not_silence_the_rest(self, capsys, tmp_path):
        from repro.bench.registry import BENCHES, BenchOutput, BenchValue, register_bench
        from repro.bench.trend import load_trend, trend_path

        @register_bench("boom")
        def boom(tier):
            raise RuntimeError("3/15 sweep points failed")

        @register_bench("steady")
        def steady(tier):
            return BenchOutput(
                bench="steady",
                config={"tier": tier.name},
                values=(BenchValue("ticks", 1.0, ""),),
            )

        try:
            code = main(
                ["bench", "--bench", "boom", "--bench", "steady",
                 "--tier", "smoke", "--root", str(tmp_path)]
            )
        finally:
            BENCHES.unregister("boom")
            BENCHES.unregister("steady")
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED boom: RuntimeError: 3/15 sweep points failed" in out
        assert "1/2 benches failed: boom" in out
        # The failure is isolated: the healthy bench still ran and recorded.
        assert "bench steady" in out
        assert load_trend(trend_path(tmp_path, "steady"))

    def test_run_appends_schema_valid_trend_records(self, capsys, tmp_path):
        from repro.bench.trend import load_trend, trend_path, validate_trends

        assert main(
            ["bench", "--bench", "table5_config", "--tier", "smoke",
             "--root", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bench table5_config" in out
        assert "trend:" in out
        path = trend_path(tmp_path, "table5_config")
        records = load_trend(path)
        assert records
        assert all(r.bench == "table5_config" for r in records)
        assert validate_trends(tmp_path).ok

    def test_repeat_appends_history(self, capsys, tmp_path):
        from repro.bench.trend import load_trend, trend_path

        args = ["bench", "--bench", "table5_config", "--tier", "smoke",
                "--root", str(tmp_path)]
        assert main(args) == 0
        first = load_trend(trend_path(tmp_path, "table5_config"))
        assert main(args) == 0
        second = load_trend(trend_path(tmp_path, "table5_config"))
        assert len(second) == 2 * len(first)

    def test_no_write_leaves_root_untouched(self, capsys, tmp_path):
        assert main(
            ["bench", "--bench", "table5_config", "--tier", "smoke",
             "--root", str(tmp_path), "--no-write"]
        ) == 0
        assert list(tmp_path.iterdir()) == []

    def test_self_compare_after_two_runs_is_ok(self, capsys, tmp_path):
        args = ["bench", "--bench", "table5_config", "--tier", "smoke",
                "--root", str(tmp_path)]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        assert main(["bench", "--root", str(tmp_path), "--compare"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out
        assert "+0.0%" in out

    def test_synthetic_slowdown_gates_compare(self, capsys, tmp_path):
        from dataclasses import replace

        from repro.bench.trend import append_trend, load_trend, trend_path

        args = ["bench", "--bench", "table5_config", "--tier", "smoke",
                "--root", str(tmp_path)]
        assert main(args) == 0
        path = trend_path(tmp_path, "table5_config")
        # Fake a run where every cycle count doubled (a 2x slowdown).
        slow = [replace(r, value=r.value * 2.0) for r in load_trend(path)]
        append_trend(path, slow)
        capsys.readouterr()
        assert main(["bench", "--root", str(tmp_path), "--compare"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "+100.0%" in out

    def test_compare_against_separate_baseline_root(self, capsys, tmp_path):
        from dataclasses import replace

        from repro.bench.trend import load_trend, trend_path, write_trend

        current, baseline = tmp_path / "cur", tmp_path / "base"
        assert main(
            ["bench", "--bench", "table5_config", "--tier", "smoke",
             "--root", str(current)]
        ) == 0
        records = load_trend(trend_path(current, "table5_config"))
        write_trend(trend_path(baseline, "table5_config"), records)
        capsys.readouterr()
        assert main(
            ["bench", "--root", str(current), "--compare", str(baseline)]
        ) == 0
        assert "OK:" in capsys.readouterr().out

    def test_validate_reports_broken_trend_file(self, capsys, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{oops")
        assert main(["bench", "--root", str(tmp_path), "--validate"]) == 1
        assert "invalid trend file" in capsys.readouterr().out

    def test_validate_ok_on_committed_root(self, capsys):
        # The repo root's own BENCH_*.json files must always be schema-valid.
        assert main(["bench", "--root", ".", "--validate"]) == 0
        assert "trend schema OK" in capsys.readouterr().out


class TestReportCommand:
    def run_bench_once(self, tmp_path) -> str:
        assert main(
            ["bench", "--bench", "table5_config", "--tier", "smoke",
             "--root", str(tmp_path)]
        ) == 0
        return str(tmp_path)

    def test_report_requires_an_input(self):
        with pytest.raises(SystemExit, match="--trend-root"):
            main(["report"])

    def test_markdown_report_from_trend_root(self, capsys, tmp_path):
        root = self.run_bench_once(tmp_path)
        capsys.readouterr()
        assert main(["report", "--trend-root", root]) == 0
        out = capsys.readouterr().out
        assert "# llamcat run report" in out
        assert "table5_config" in out

    def test_html_report_written_to_file(self, capsys, tmp_path):
        root = self.run_bench_once(tmp_path)
        out_file = tmp_path / "report.html"
        assert main(
            ["report", "--trend-root", root, "--format", "html",
             "--out", str(out_file), "--title", "smoke perf"]
        ) == 0
        text = out_file.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "smoke perf" in text
        assert "report:" in capsys.readouterr().out

    def test_report_from_store_renders_timelines(self, capsys, tmp_path):
        store = str(tmp_path / "results.jsonl")
        assert main([
            "sweep", "--serve", "--tier", "smoke", "--model", "llama3-70b",
            "--rate", "2000", "--num-requests", "8", "--max-batch", "2",
            "--telemetry", "2", "--quiet", "--store", store,
        ]) == 0
        capsys.readouterr()
        assert main(["report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Stored results" in out
        assert "Per-phase latency breakdown" in out
        assert "Telemetry timelines" in out

    def test_missing_store_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no result store"):
            main(["report", "--store", str(tmp_path / "nope.jsonl")])


class TestMetricsSketchFlag:
    def test_serve_smoke_with_sketch(self, capsys):
        assert main(["serve", "--smoke", "--seed", "0", "--metrics-sketch"]) == 0
        out = capsys.readouterr().out
        assert "p95" in out and "tokens/s" in out

    def test_cluster_smoke_with_sketch(self, capsys):
        assert main(["cluster", "--smoke", "--seed", "0", "--metrics-sketch"]) == 0
        out = capsys.readouterr().out
        assert "p95" in out
