"""Tests for the §6.1 area model."""

import pytest

from repro.config.policies import MshrAwareParams
from repro.config.system import L2Config
from repro.experiments.hwcost_exp import (
    PAPER_ARBITER_UM2,
    PAPER_HIT_BUFFER_UM2,
    run_hwcost,
)
from repro.hwcost.area import AreaModel, estimate_area


class TestAreaModel:
    def setup_method(self):
        self.model = AreaModel(l2=L2Config(), mshr_aware=MshrAwareParams())

    def test_reports_have_positive_components(self):
        for report in (self.model.arbiter_report(), self.model.hit_buffer_report()):
            assert report.storage_bits > 0
            assert report.storage_um2 > 0
            assert report.total_um2 > report.storage_um2

    def test_arbiter_is_larger_than_hit_buffer(self):
        assert self.model.arbiter_report().total_um2 > self.model.hit_buffer_report().total_um2

    def test_calibrated_to_paper_within_factor_two(self):
        """The first-order model must land in the same ballpark as the synthesis numbers."""

        arbiter = self.model.arbiter_report().total_um2
        hit_buffer = self.model.hit_buffer_report().total_um2
        assert arbiter == pytest.approx(PAPER_ARBITER_UM2, rel=0.6)
        assert hit_buffer == pytest.approx(PAPER_HIT_BUFFER_UM2, rel=0.6)

    def test_total_overhead_is_sum(self):
        assert self.model.total_overhead_um2() == pytest.approx(
            self.model.arbiter_report().total_um2 + self.model.hit_buffer_report().total_um2
        )

    def test_larger_hit_buffer_costs_more(self):
        bigger = AreaModel(l2=L2Config(), mshr_aware=MshrAwareParams(hit_buffer_size=64))
        assert bigger.hit_buffer_report().total_um2 > self.model.hit_buffer_report().total_um2

    def test_larger_request_queue_costs_more(self):
        from dataclasses import replace

        bigger = AreaModel(l2=replace(L2Config(), req_q_size=24), mshr_aware=MshrAwareParams())
        assert bigger.arbiter_report().total_um2 > self.model.arbiter_report().total_um2


class TestExperiment:
    def test_run_hwcost_rows(self):
        rows = run_hwcost()
        assert {row["structure"] for row in rows} == {"arbiter", "hit_buffer"}
        for row in rows:
            assert 0.4 < row["ratio"] < 2.5

    def test_estimate_area_defaults(self):
        reports = estimate_area()
        assert set(reports) == {"arbiter", "hit_buffer"}
