"""Conformance suite every PREEMPTIONS registry entry must pass.

Parametrized over the registry itself, so a policy registered anywhere (e.g.
downstream code adding a partial-swap variant) is automatically held to the
same contract as the built-ins: preemption under a tight KV budget must never
lose a request, every preempted request must eventually complete, and the
victim's progress record must stay internally consistent.
"""

import pytest

from repro.config.scale import ScaleTier
from repro.registry import PREEMPTIONS, resolve_preemption
from repro.serve.kvcache import KVCacheConfig
from repro.serve.request import Request
from repro.serve.scenario import ServeScenario
from repro.serve.scheduler import ActiveRequest


def policy_names() -> tuple[str, ...]:
    return tuple(sorted(PREEMPTIONS.names()))


def make_policy(name: str):
    config = KVCacheConfig(
        budget_tokens=1024, block_tokens=32, preemption=name, swap_ms=0.1
    ).validate()
    return resolve_preemption(name)(config)


def victim(generated: int = 5, prompt: int = 100, output: int = 16) -> ActiveRequest:
    active = ActiveRequest(
        request=Request(
            request_id=0, arrival_s=0.0, prompt_tokens=prompt, output_tokens=output
        ).validate(),
        admitted_s=0.0,
        generated=generated,
        prefill_end_s=0.5,
        first_token_s=0.6,
    )
    return active


def tight_scenario(name: str) -> ServeScenario:
    return ServeScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=4000.0,
        num_requests=8,
        max_batch=4,
        seed=0,
        tier=ScaleTier.SMOKE,
        kv_budget=1024,
        kv_block=32,
        preemption=name,
    ).validate()


@pytest.mark.parametrize("name", policy_names())
class TestPolicyContract:
    def test_readmission_never_precedes_the_eviction(self, name):
        policy = make_policy(name)
        assert policy.preempt(victim(), now_s=2.0) >= 2.0

    def test_victim_record_stays_consistent(self, name):
        policy = make_policy(name)
        active = victim(generated=5)
        policy.preempt(active, now_s=2.0)
        # Whatever the policy did to the progress record, the derived
        # accounting must stay well-formed: generated output is never revoked
        # and the prefilled-context counter never goes negative.
        assert active.generated == 5
        assert 0 <= active.prefill_remaining <= active.context_tokens
        assert active.prefill_processed >= 0

    def test_no_request_lost_under_memory_pressure(self, name):
        metrics = tight_scenario(name).run()
        # The budget is sized to force evictions on this seed; conservation
        # means every preempted request still completes, exactly once.
        assert metrics.meta["preemptions"] > 0
        assert metrics.num_requests == 8
        assert sorted(r.request_id for r in metrics.requests) == list(range(8))

    def test_preempted_runs_stay_deterministic(self, name):
        first = tight_scenario(name).run()
        second = tight_scenario(name).run()
        assert first.meta == second.meta
        assert [r.finish_s for r in first.requests] == [
            r.finish_s for r in second.requests
        ]


class TestRecomputeSemantics:
    def test_restores_the_full_context_to_prefill(self):
        policy = make_policy("recompute")
        active = victim(generated=5, prompt=100)
        readmit_s = policy.preempt(active, now_s=2.0)
        # Prompt plus the 5 generated tokens must be re-prefilled...
        assert active.prefill_remaining == 105 == active.context_tokens
        assert active.in_prefill
        # ...and the victim is admissible again immediately (eviction is free).
        assert readmit_s == 2.0


class TestSwapSemantics:
    def test_preserves_progress_and_pays_the_transfer(self):
        policy = make_policy("swap")
        active = victim(generated=5)
        readmit_s = policy.preempt(active, now_s=2.0)
        # No re-prefill: the KV state survives off-device...
        assert active.prefill_remaining == 0
        assert not active.in_prefill
        # ...but the round trip costs a swap-out plus a swap-in at 0.1 ms.
        assert readmit_s == pytest.approx(2.0 + 2 * 0.1e-3)
