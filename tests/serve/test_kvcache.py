"""KV-cache memory model: config, paged allocation, admission gating, metrics."""

import pytest

from repro.common.errors import ConfigError, LivelockError, SimulationError
from repro.config.scale import ScaleTier
from repro.registry import PREEMPTIONS, resolve_system
from repro.serve.kvcache import DEFAULT_SWAP_MS, KVCacheConfig, KVCacheManager
from repro.serve.request import Request
from repro.serve.scenario import ServeScenario
from repro.serve.scheduler import BatchConfig, ContinuousBatchScheduler
from repro.serve.simulator import ServeStallReport, build_serve_stall_report


def request(rid: int, arrival: float = 0.0, prompt: int = 100, output: int = 4) -> Request:
    return Request(
        request_id=rid, arrival_s=arrival, prompt_tokens=prompt, output_tokens=output
    ).validate()


def kv_scheduler(
    budget: int, block: int = 1, max_batch: int = 4, preemption: str = "recompute"
) -> ContinuousBatchScheduler:
    return ContinuousBatchScheduler(
        config=BatchConfig(
            max_batch=max_batch,
            prefill=True,
            kv=KVCacheConfig(
                budget_tokens=budget, block_tokens=block, preemption=preemption
            ),
        )
    )


def smoke_scenario(**overrides) -> ServeScenario:
    """The acceptance-criterion point: a KV budget tight enough to preempt."""

    params = dict(
        workload="llama3-70b",
        arrival="poisson",
        rate=4000.0,
        num_requests=8,
        max_batch=4,
        seed=0,
        tier=ScaleTier.SMOKE,
        kv_budget=1024,
        kv_block=32,
    )
    params.update(overrides)
    return ServeScenario(**params).validate()


class TestKVCacheConfig:
    def test_disabled_by_default(self):
        config = KVCacheConfig().validate()
        assert not config.enabled
        assert config.capacity_blocks == 0

    def test_capacity_floors_partial_blocks(self):
        assert KVCacheConfig(budget_tokens=100, block_tokens=32).capacity_blocks == 3

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            KVCacheConfig(budget_tokens=0).validate()
        with pytest.raises(ConfigError):
            KVCacheConfig(block_tokens=0).validate()
        with pytest.raises(ConfigError):
            KVCacheConfig(budget_tokens=1024, swap_ms=-1.0).validate()
        with pytest.raises(ConfigError):
            KVCacheConfig(budget_tokens=1024, preemption="nope").validate()
        # A budget smaller than one block holds nothing.
        with pytest.raises(ConfigError):
            KVCacheConfig(budget_tokens=16, block_tokens=32).validate()

    def test_round_trip(self):
        config = KVCacheConfig(
            budget_tokens=2048, block_tokens=16, preemption="swap", swap_ms=0.25
        ).validate()
        assert KVCacheConfig.from_dict(config.to_dict()) == config


class TestKVCacheManager:
    def test_requires_a_budget(self):
        with pytest.raises(ConfigError):
            KVCacheManager(KVCacheConfig())

    def test_blocks_for_rounds_up(self):
        manager = KVCacheManager(KVCacheConfig(budget_tokens=1024, block_tokens=32))
        assert manager.blocks_for(1) == 1
        assert manager.blocks_for(32) == 1
        assert manager.blocks_for(33) == 2

    def test_reserve_grow_release_accounting(self):
        manager = KVCacheManager(KVCacheConfig(budget_tokens=320, block_tokens=32))
        manager.reserve(0, 100)                       # 4 blocks
        assert (manager.used_blocks, manager.free_blocks) == (4, 6)
        manager.grow(0, 129)                          # 5 blocks now
        assert manager.used_blocks == 5
        manager.release(0)
        assert manager.used_blocks == 0
        assert manager.peak_used_blocks == 5          # high-water mark survives

    def test_fragmentation_is_block_padding_waste(self):
        manager = KVCacheManager(KVCacheConfig(budget_tokens=320, block_tokens=32))
        manager.reserve(0, 33)                        # 2 blocks for 33 tokens
        assert manager.peak_fragmentation_tokens == 2 * 32 - 33
        # Exact accounting (block=1) never fragments.
        exact = KVCacheManager(KVCacheConfig(budget_tokens=320, block_tokens=1))
        exact.reserve(0, 33)
        assert exact.peak_fragmentation_tokens == 0

    def test_misuse_raises(self):
        manager = KVCacheManager(KVCacheConfig(budget_tokens=64, block_tokens=32))
        manager.reserve(0, 10)
        with pytest.raises(SimulationError):
            manager.reserve(0, 10)                    # double reserve
        with pytest.raises(SimulationError):
            manager.reserve(1, 1000)                  # over capacity
        with pytest.raises(SimulationError):
            manager.grow(7, 10)                       # never reserved
        with pytest.raises(SimulationError):
            manager.release(7)

    def test_peak_utilization_is_a_block_fraction(self):
        manager = KVCacheManager(KVCacheConfig(budget_tokens=320, block_tokens=32))
        manager.reserve(0, 160)
        assert manager.peak_utilization == pytest.approx(0.5)


class TestAdmissionGating:
    def test_admission_packs_up_to_the_budget(self):
        scheduler = kv_scheduler(budget=150, max_batch=4)
        scheduler.enqueue(request(0, prompt=100, output=4))
        scheduler.enqueue(request(1, prompt=40, output=4))
        admitted = scheduler.admit(0.0)
        # Request 0 pins 100 of the 150 tokens; request 1's 40 fit the rest.
        assert [a.request.request_id for a in admitted] == [0, 1]
        assert not scheduler.kv_blocked

    def test_head_of_line_blocks_fcfs(self):
        scheduler = kv_scheduler(budget=130, max_batch=4)
        scheduler.enqueue(request(0, prompt=100, output=4))
        scheduler.enqueue(request(1, prompt=100, output=4))
        scheduler.enqueue(request(2, prompt=10, output=4))
        admitted = scheduler.admit(0.0)
        # Request 1 does not fit; request 2 would, but FCFS admission must not
        # skip ahead of the blocked head.
        assert [a.request.request_id for a in admitted] == [0]
        assert scheduler.kv_blocked
        assert [r.request_id for r in scheduler.waiting] == [1, 2]

    def test_infeasible_peak_footprint_raises(self):
        scheduler = kv_scheduler(budget=64, block=32, max_batch=2)
        scheduler.enqueue(request(0, prompt=100, output=10))
        with pytest.raises(ConfigError, match="at peak"):
            scheduler.admit(0.0)

    def test_blocks_released_on_finish(self):
        scheduler = kv_scheduler(budget=150, max_batch=1)
        scheduler.enqueue(request(0, prompt=100, output=1))
        scheduler.admit(0.0)
        assert scheduler.kv is not None and scheduler.kv.used_blocks == 100
        scheduler.running[0].generated = 1
        scheduler.evict_finished(1.0)
        assert scheduler.kv.used_blocks == 0


class TestScenarioConfig:
    def test_kv_off_to_dict_is_key_stable(self):
        # No KV keys appear when the model is off: pre-KV content hashes (and
        # every golden fixture) stay valid.
        data = ServeScenario(workload="llama3-70b").to_dict()
        assert "kv_budget" not in data
        assert "kv_block" not in data
        assert "preemption" not in data

    def test_round_trip_with_kv(self):
        scenario = smoke_scenario(preemption="swap", kv_swap_ms=0.2)
        assert ServeScenario.from_dict(scenario.to_dict()) == scenario

    def test_kv_needs_prefill_cost(self):
        with pytest.raises(ConfigError, match="prefill_cost"):
            smoke_scenario(prefill_cost=False)

    @pytest.mark.parametrize(
        ("system", "budget"),
        [("table5", 16384), ("table5-32core", 32768), ("table5-8core", 8192)],
    )
    def test_system_budget_resolves_per_preset(self, system, budget):
        assert resolve_system(system).kv_budget_tokens == budget
        scenario = ServeScenario(
            workload="llama3-70b", system=system, kv_budget="system"
        ).validate()
        assert scenario.kv_config().budget_tokens == budget

    def test_unknown_budget_kind_rejected(self):
        with pytest.raises(ConfigError, match="kv_budget"):
            ServeScenario(workload="llama3-70b", kv_budget="lots").validate()


class TestEndToEnd:
    def test_kv_off_emits_no_kv_meta(self):
        metrics = smoke_scenario(kv_budget=None, kv_block=1).run()
        assert "preemptions" not in metrics.meta
        assert "kv_budget_tokens" not in metrics.meta
        assert "kv_peak_utilization" not in metrics.meta

    def test_kv_meta_and_preemption_rate(self):
        metrics = smoke_scenario().run()
        assert metrics.meta["kv_budget_tokens"] == 1024
        assert metrics.meta["kv_block_tokens"] == 32
        assert metrics.meta["preemption"] == "recompute"
        assert metrics.meta["preemptions"] > 0
        assert metrics.meta["preemption_rate"] > 0
        assert 0.0 < metrics.meta["kv_peak_utilization"] <= 1.0
        assert metrics.meta["kv_memory_bound_s"] > 0.0
        assert 0.0 < metrics.meta["kv_memory_bound_frac"] <= 1.0
        assert metrics.num_requests == 8          # conservation under pressure

    def test_recompute_and_swap_are_measurably_different(self):
        recompute = smoke_scenario(preemption="recompute").run()
        swap = smoke_scenario(preemption="swap").run()
        assert recompute.meta["preemptions"] > 0
        assert swap.meta["preemptions"] > 0
        assert (
            recompute.ttft_percentile_ms(95) != swap.ttft_percentile_ms(95)
        )

    def test_seeded_kv_runs_are_deterministic(self):
        first = smoke_scenario().run()
        second = smoke_scenario().run()
        assert first.meta == second.meta
        assert [r.finish_s for r in first.requests] == [
            r.finish_s for r in second.requests
        ]


class TestStallReports:
    def test_max_steps_guard_raises_structured_livelock(self, monkeypatch):
        monkeypatch.setattr("repro.serve.simulator.MAX_STEPS", 3)
        with pytest.raises(LivelockError) as excinfo:
            smoke_scenario().run()
        report = excinfo.value.report
        assert isinstance(report, ServeStallReport)
        assert "3 steps" in report.reason
        assert report.kv_capacity_blocks == 1024 // 32
        assert "serve loop stalled" in str(excinfo.value)

    def test_blocked_admission_with_empty_batch_raises(self, monkeypatch):
        # Force the no-progress state the guard exists for: admission refuses
        # every arrived request while the batch is empty.
        def refuse_all(self, now_s):
            self.kv_blocked = True
            return []

        monkeypatch.setattr(ContinuousBatchScheduler, "admit", refuse_all)
        with pytest.raises(LivelockError, match="empty batch") as excinfo:
            smoke_scenario().run()
        assert excinfo.value.report.kv_blocked
        assert excinfo.value.report.running == 0

    def test_report_render_includes_kv_occupancy(self):
        scheduler = kv_scheduler(budget=150, max_batch=1)
        scheduler.enqueue(request(0, prompt=100, output=4))
        scheduler.admit(0.0)
        report = build_serve_stall_report(
            scheduler, "test reason", now_s=1.0, steps=7, completed=0, replica_id=3
        )
        text = report.render()
        assert "replica 3 stalled (test reason)" in text
        assert "running=1" in text
        assert "kv: 100/150 blocks used" in text

    def test_report_render_omits_kv_when_off(self):
        scheduler = ContinuousBatchScheduler(config=BatchConfig())
        report = build_serve_stall_report(
            scheduler, "test reason", now_s=0.0, steps=0, completed=0
        )
        assert "kv:" not in report.render()


def test_preemptions_registry_lists_builtins():
    assert {"recompute", "swap"} <= set(PREEMPTIONS.names())
    assert DEFAULT_SWAP_MS > 0
