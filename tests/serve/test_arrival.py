"""Arrival processes: determinism, registry addressability, stream shapes."""

import pytest

from repro.common.errors import ConfigError
from repro.registry import ARRIVALS, resolve_arrival
from repro.serve.arrival import (
    bursty_arrivals,
    closed_loop_arrivals,
    poisson_arrivals,
    trace_arrivals,
)
from repro.serve.request import RequestSampler


def sampler(seed: int = 0) -> RequestSampler:
    return RequestSampler(seed=seed, prompt_tokens=(64, 256), output_tokens=(4, 16))


class TestPoisson:
    def test_fixed_seed_fixed_arrival_times(self):
        a = poisson_arrivals(sampler(seed=7), rate=1000.0, num_requests=16)
        b = poisson_arrivals(sampler(seed=7), rate=1000.0, num_requests=16)
        assert [r.arrival_s for r in a.initial()] == [r.arrival_s for r in b.initial()]
        assert [r.prompt_tokens for r in a.initial()] == [
            r.prompt_tokens for r in b.initial()
        ]

    def test_different_seeds_differ(self):
        a = poisson_arrivals(sampler(seed=0), rate=1000.0, num_requests=16)
        b = poisson_arrivals(sampler(seed=1), rate=1000.0, num_requests=16)
        assert [r.arrival_s for r in a.initial()] != [r.arrival_s for r in b.initial()]

    def test_stream_is_sorted_with_unique_ids(self):
        requests = poisson_arrivals(sampler(), rate=500.0, num_requests=32).initial()
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert sorted(r.request_id for r in requests) == list(range(32))

    def test_mean_gap_tracks_rate(self):
        requests = poisson_arrivals(sampler(), rate=100.0, num_requests=400).initial()
        mean_gap = requests[-1].arrival_s / len(requests)
        assert mean_gap == pytest.approx(1 / 100.0, rel=0.2)

    def test_open_loop_has_no_feedback(self):
        process = poisson_arrivals(sampler(), rate=100.0, num_requests=4)
        assert process.on_complete(process.initial()[0], now_s=1.0) is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(sampler(), rate=0.0, num_requests=4)
        with pytest.raises(ConfigError):
            poisson_arrivals(sampler(), rate=10.0, num_requests=0)


class TestBursty:
    def test_deterministic(self):
        a = bursty_arrivals(sampler(seed=3), rate=1000.0, num_requests=20, burst_size=4)
        b = bursty_arrivals(sampler(seed=3), rate=1000.0, num_requests=20, burst_size=4)
        assert [r.arrival_s for r in a.initial()] == [r.arrival_s for r in b.initial()]

    def test_requests_cluster_into_bursts(self):
        process = bursty_arrivals(
            sampler(), rate=100.0, num_requests=12, burst_size=4, burst_factor=100.0
        )
        times = [r.arrival_s for r in process.initial()]
        intra_gap = 1.0 / (100.0 * 100.0)
        # Within a burst the spacing is exactly the intra-burst gap.
        for start in (0, 4, 8):
            burst = times[start : start + 4]
            gaps = [b - a for a, b in zip(burst, burst[1:], strict=False)]
            assert all(g == pytest.approx(intra_gap) for g in gaps)

    def test_rejects_degenerate_factor(self):
        with pytest.raises(ConfigError):
            bursty_arrivals(sampler(), rate=10.0, num_requests=4, burst_factor=1.0)


class TestTraceReplay:
    def test_replays_explicit_timestamps(self):
        process = trace_arrivals(
            sampler(), rate=1.0, num_requests=4, times=(0.3, 0.1, 0.2, 0.4)
        )
        assert [r.arrival_s for r in process.initial()] == [0.1, 0.2, 0.3, 0.4]

    def test_num_requests_truncates(self):
        process = trace_arrivals(
            sampler(), rate=1.0, num_requests=2, times=(0.1, 0.2, 0.3)
        )
        assert len(process.initial()) == 2

    def test_rejects_empty_and_negative_times(self):
        with pytest.raises(ConfigError):
            trace_arrivals(sampler(), rate=1.0, num_requests=4, times=())
        with pytest.raises(ConfigError):
            trace_arrivals(sampler(), rate=1.0, num_requests=4, times=(-0.1, 0.2))


class TestClosedLoop:
    def test_initial_wave_is_the_user_population(self):
        process = closed_loop_arrivals(sampler(), rate=4, num_requests=10)
        wave = process.initial()
        assert len(wave) == 4
        assert all(r.arrival_s == 0.0 for r in wave)

    def test_completion_triggers_next_request_with_think_time(self):
        process = closed_loop_arrivals(
            sampler(), rate=2, num_requests=4, think_time_s=0.5
        )
        wave = process.initial()
        follow = process.on_complete(wave[0], now_s=1.0)
        assert follow is not None
        assert follow.arrival_s == pytest.approx(1.5)

    def test_request_budget_is_respected(self):
        process = closed_loop_arrivals(sampler(), rate=2, num_requests=3)
        wave = process.initial()
        assert process.on_complete(wave[0], 1.0) is not None  # 3rd and last
        assert process.on_complete(wave[1], 2.0) is None

    def test_initial_wave_capped_by_budget(self):
        process = closed_loop_arrivals(sampler(), rate=8, num_requests=3)
        assert len(process.initial()) == 3


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(ARRIVALS.names()) >= {"poisson", "bursty", "closed-loop", "trace"}

    def test_aliases_resolve(self):
        assert resolve_arrival("replay") is resolve_arrival("trace")
        assert resolve_arrival("closed") is resolve_arrival("closed-loop")

    def test_unknown_arrival_lists_known_names(self):
        with pytest.raises(ConfigError, match="poisson"):
            resolve_arrival("tsunami")


class TestRequestSampler:
    def test_sizes_within_configured_ranges(self):
        s = sampler()
        for i in range(50):
            request = s.sample(arrival_s=float(i))
            assert 64 <= request.prompt_tokens <= 256
            assert 4 <= request.output_tokens <= 16

    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigError):
            RequestSampler(seed=0, prompt_tokens=(0, 10))
        with pytest.raises(ConfigError):
            RequestSampler(seed=0, output_tokens=(10, 5))
