"""Scheduler conformance suite: invariants every registered policy must hold.

One parametrized module, run against every entry of the SCHEDULERS registry
(plugins included: whatever is registered when the tests collect, runs).  The
shared invariants:

* request conservation -- every submitted request completes exactly once;
* FCFS admission within a phase -- requests enter the batch in
  ``(arrival_s, request_id)`` order, whatever the step planner does next;
* no decode before prefill completes -- a planned decode never carries
  unprefilled prompt tokens, and every completed request's first token lands
  at or after its prefill end;
* TTFT lower bound -- the first token is strictly later than arrival, and at
  least one costed prefill step later when prefill is modeled.
"""

import pytest

from repro.common.errors import ConfigError
from repro.registry import SCHEDULERS, resolve_scheduler
from repro.serve.arrival import poisson_arrivals
from repro.serve.request import Request, RequestSampler
from repro.serve.schedpolicy import PrefillOnlyPolicy
from repro.serve.scheduler import ActiveRequest, BatchConfig
from repro.serve.simulator import ServingSimulator
from repro.serve.stepcost import LinearStepCostModel


def scheduler_names() -> list[str]:
    return [entry.name for entry in SCHEDULERS.entries()]


def run_stream(
    scheduler_name: str,
    seed: int = 0,
    num_requests: int = 16,
    max_batch: int = 3,
    prefill: bool = True,
    prefill_chunk: int = 64,
):
    sampler = RequestSampler(
        seed=seed, prompt_tokens=(64, 512), output_tokens=(2, 8)
    )
    return ServingSimulator(
        arrival=poisson_arrivals(sampler, rate=5000.0, num_requests=num_requests),
        cost_model=LinearStepCostModel(),
        frequency_ghz=2.0,
        batch=BatchConfig(max_batch=max_batch, prefill=prefill),
        policy=resolve_scheduler(scheduler_name)(prefill_chunk=prefill_chunk),
    ).run()


@pytest.mark.parametrize("name", scheduler_names())
class TestSchedulerConformance:
    def test_every_request_completes_exactly_once(self, name):
        metrics = run_stream(name, num_requests=20)
        assert sorted(r.request_id for r in metrics.requests) == list(range(20))

    def test_fcfs_admission_within_a_phase(self, name):
        # Admission order is visible through admitted_s: sorted by admission
        # time (ties by id), the ids must follow (arrival_s, request_id).
        metrics = run_stream(name, num_requests=20, max_batch=2)
        by_admission = sorted(
            metrics.requests, key=lambda r: (r.admitted_s, r.request_id)
        )
        by_arrival = sorted(
            metrics.requests, key=lambda r: (r.arrival_s, r.request_id)
        )
        assert [r.request_id for r in by_admission] == [
            r.request_id for r in by_arrival
        ]

    def test_no_decode_token_before_prefill_completes(self, name):
        metrics = run_stream(name)
        for r in metrics.requests:
            assert r.prefill_end_s is not None
            assert r.admitted_s <= r.prefill_end_s <= r.first_token_s

    def test_planned_decodes_are_never_mid_prefill(self, name):
        policy = resolve_scheduler(name)(prefill_chunk=64)
        running = [
            ActiveRequest(
                request=Request(
                    request_id=i, arrival_s=0.0, prompt_tokens=200, output_tokens=4
                ).validate(),
                admitted_s=0.0,
                prefill_remaining=remaining,
            )
            for i, remaining in enumerate((0, 200, 64, 0))
        ]
        plan = policy.plan(running).validate()
        assert all(not a.in_prefill for a in plan.decode)
        assert all(chunk > 0 for _, chunk in plan.prefill)

    def test_ttft_at_least_one_prefill_step_after_arrival(self, name):
        # With prefill modeled, the first token costs at least one prefill
        # step plus one decode step of wall clock after admission.
        model = LinearStepCostModel()
        min_prefill_s = model.prefill_cycles(1, 64) / (2.0 * 1e9)
        metrics = run_stream(name)
        for r in metrics.requests:
            assert r.ttft_s > 0
            assert r.first_token_s >= r.admitted_s + min_prefill_s

    def test_deterministic_and_seed_sensitive(self, name):
        assert run_stream(name, seed=3).to_dict() == run_stream(name, seed=3).to_dict()
        assert run_stream(name, seed=3).to_dict() != run_stream(name, seed=4).to_dict()

    def test_prefill_disabled_reproduces_decode_only_loop(self, name):
        # With prefill off, every registered policy degenerates to the same
        # decode-only timeline: the batch is always fully decode-ready.
        baseline = run_stream("decode-first", prefill=False)
        assert run_stream(name, prefill=False).to_dict() == baseline.to_dict()


class TestChunkedBudget:
    def test_chunk_budget_respected_and_fcfs(self):
        policy = resolve_scheduler("chunked")(prefill_chunk=100)
        running = [
            ActiveRequest(
                request=Request(
                    request_id=i, arrival_s=0.0, prompt_tokens=80, output_tokens=2
                ).validate(),
                admitted_s=0.0,
                prefill_remaining=80,
            )
            for i in range(3)
        ]
        plan = policy.plan(running)
        # 100-token budget over 80-token prompts: 80 + 20, FCFS, then stop.
        assert [(a.request.request_id, c) for a, c in plan.prefill] == [(0, 80), (1, 20)]
        assert plan.prefill_tokens == 100

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            resolve_scheduler("chunked")(prefill_chunk=0)


class TestPrefillOnlyPolicy:
    def test_plans_full_prompts_and_rejects_decode_phase(self):
        active = ActiveRequest(
            request=Request(
                request_id=0, arrival_s=0.0, prompt_tokens=128, output_tokens=2
            ).validate(),
            admitted_s=0.0,
            prefill_remaining=128,
        )
        plan = PrefillOnlyPolicy().plan([active])
        assert plan.prefill == ((active, 128),) and not plan.decode
        active.prefill_remaining = 0
        with pytest.raises(ConfigError):
            PrefillOnlyPolicy().plan([active])
