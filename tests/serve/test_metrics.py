"""Serving metrics: derived aggregates, SLOs and serialization round-trips."""

import json
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.obs.metrics import Histogram
from repro.serve.metrics import RequestMetrics, ServeMetrics, ServeSLO


def record(
    rid: int = 0,
    arrival: float = 0.0,
    admitted: float = 0.0,
    first: float = 0.010,
    finish: float = 0.100,
    output: int = 10,
) -> RequestMetrics:
    return RequestMetrics(
        request_id=rid,
        arrival_s=arrival,
        admitted_s=admitted,
        first_token_s=first,
        finish_s=finish,
        prompt_tokens=128,
        output_tokens=output,
    ).validate()


def metrics_of(requests, slo: ServeSLO = ServeSLO(), duration: float = 1.0) -> ServeMetrics:
    return ServeMetrics(
        label="test",
        workload="tiny",
        frequency_ghz=2.0,
        duration_s=duration,
        steps=100,
        total_cycles=123456,
        requests=tuple(requests),
        slo=slo,
    )


class TestRequestMetrics:
    def test_derived_latencies(self):
        r = record(arrival=1.0, admitted=1.2, first=1.5, finish=2.4, output=10)
        assert r.latency_s == pytest.approx(1.4)
        assert r.queue_s == pytest.approx(0.2)
        assert r.ttft_s == pytest.approx(0.5)
        assert r.tpot_s == pytest.approx(0.9 / 9)

    def test_single_token_tpot_is_zero(self):
        assert record(output=1, first=0.1, finish=0.1).tpot_s == 0.0

    def test_rejects_unordered_timestamps(self):
        with pytest.raises(ConfigError):
            record(arrival=2.0, admitted=1.0)

    def test_round_trip(self):
        r = record(rid=5)
        assert RequestMetrics.from_dict(r.to_dict()) == r

    def test_prefill_phase_spans_and_round_trip(self):
        r = RequestMetrics(
            request_id=0, arrival_s=0.0, admitted_s=0.1, first_token_s=0.5,
            finish_s=1.0, prompt_tokens=128, output_tokens=4, prefill_end_s=0.4,
        ).validate()
        assert r.prefill_s == pytest.approx(0.3)
        assert r.decode_s == pytest.approx(0.5)
        assert "prefill_end_s" in r.to_dict()
        assert RequestMetrics.from_dict(r.to_dict()) == r

    def test_decode_only_records_serialize_without_prefill_keys(self):
        # The legacy dict shape is a compatibility contract: decode-only
        # records (and thus old stores) must round-trip unchanged.
        r = record()
        assert r.prefill_end_s is None and r.prefill_s is None
        assert "prefill_end_s" not in r.to_dict()
        assert RequestMetrics.from_dict(r.to_dict()) == r

    def test_rejects_prefill_end_outside_admit_to_first_token(self):
        with pytest.raises(ConfigError):
            RequestMetrics(
                request_id=0, arrival_s=0.0, admitted_s=0.1, first_token_s=0.5,
                finish_s=1.0, prompt_tokens=128, output_tokens=4,
                prefill_end_s=0.6,
            ).validate()


class TestServeSLO:
    def test_trivial_slo_attains_everything(self):
        assert ServeSLO().attained(record())
        assert ServeSLO().is_trivial

    def test_ttft_and_latency_objectives(self):
        r = record(first=0.010, finish=0.100)      # ttft 10ms, latency 100ms
        assert ServeSLO(ttft_ms=20).attained(r)
        assert not ServeSLO(ttft_ms=5).attained(r)
        assert ServeSLO(latency_ms=150).attained(r)
        assert not ServeSLO(latency_ms=50).attained(r)
        assert not ServeSLO(ttft_ms=20, latency_ms=50).attained(r)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            ServeSLO(ttft_ms=0).validate()

    def test_round_trip(self):
        slo = ServeSLO(ttft_ms=10.0, latency_ms=250.0)
        assert ServeSLO.from_dict(slo.to_dict()) == slo


class TestServeMetrics:
    def test_percentiles_over_requests(self):
        requests = [
            record(rid=i, finish=0.100 + 0.010 * i) for i in range(10)
        ]
        m = metrics_of(requests)
        assert m.latency_percentile_ms(0) == pytest.approx(100.0)
        assert m.latency_percentile_ms(100) == pytest.approx(190.0)
        assert m.latency_percentile_ms(50) == pytest.approx(145.0)

    def test_throughput_aggregates(self):
        m = metrics_of([record(rid=i, output=10) for i in range(4)], duration=2.0)
        assert m.total_output_tokens == 40
        assert m.tokens_per_s == pytest.approx(20.0)
        assert m.requests_per_s == pytest.approx(2.0)

    def test_tpot_weighted_by_decoded_tokens(self):
        # 11 tokens over 1s (0.1 s/token) and 2 tokens over 0.3s (0.3 s/token):
        # the weighted mean leans towards the longer request.
        requests = [
            record(rid=0, first=0.0, finish=1.0, output=11),
            record(rid=1, first=0.0, finish=0.3, output=2),
        ]
        m = metrics_of(requests)
        expected = (0.1 * 10 + 0.3 * 1) / 11 * 1e3
        assert m.mean_tpot_ms == pytest.approx(expected)

    def test_slo_attainment_fraction(self):
        requests = [record(rid=0, finish=0.050), record(rid=1, finish=0.500)]
        m = metrics_of(requests, slo=ServeSLO(latency_ms=100))
        assert m.slo_attainment == pytest.approx(0.5)

    def test_round_trip_preserves_percentiles(self):
        m = metrics_of([record(rid=i, finish=0.1 + 0.01 * i) for i in range(7)],
                       slo=ServeSLO(latency_ms=130))
        rebuilt = ServeMetrics.from_dict(m.to_dict())
        assert rebuilt == m
        for point in (50, 95, 99):
            assert rebuilt.latency_percentile_ms(point) == m.latency_percentile_ms(point)
            assert rebuilt.ttft_percentile_ms(point) == m.ttft_percentile_ms(point)
        assert rebuilt.slo_attainment == m.slo_attainment

    def test_headline_metrics_survive_serialization(self):
        m = metrics_of([record()])
        payload = m.to_dict()
        assert payload["metrics"]["tokens_per_s"] == pytest.approx(m.tokens_per_s)
        assert payload["metrics"]["latency_p95_ms"] == pytest.approx(
            m.latency_percentile_ms(95)
        )

    def test_summary_mentions_headlines(self):
        text = metrics_of([record()]).summary()
        assert "p50/p95/p99" in text
        assert "tokens/s" in text

    def test_result_kind_tag(self):
        assert ServeMetrics.result_kind == "serve"


class TestSketchPercentiles:
    """The ``--metrics-sketch`` path: bounded error, identical serialization."""

    @staticmethod
    def seeded_metrics(n: int = 120, seed: int = 0) -> ServeMetrics:
        rng = make_rng(seed)
        requests = []
        for rid in range(n):
            arrival = rng.uniform(0.0, 2.0)
            admitted = arrival + rng.uniform(0.0, 0.05)
            first = admitted + rng.uniform(0.001, 0.2)
            finish = first + rng.uniform(0.01, 1.5)
            requests.append(
                RequestMetrics(
                    request_id=rid,
                    arrival_s=arrival,
                    admitted_s=admitted,
                    first_token_s=first,
                    finish_s=finish,
                    prompt_tokens=128,
                    output_tokens=1 + int(rng.integers(32)),
                ).validate()
            )
        return metrics_of(requests, duration=4.0)

    def test_sketch_percentiles_within_documented_bound(self):
        exact = self.seeded_metrics()
        sketch = exact.with_sketch()
        bound = Histogram().relative_error_bound
        for point in (50.0, 90.0, 95.0, 99.0):
            for accessor in ("latency_percentile_ms", "ttft_percentile_ms"):
                want = getattr(exact, accessor)(point)
                got = getattr(sketch, accessor)(point)
                assert abs(got - want) <= bound * want

    def test_throughput_unaffected_by_sketch(self):
        exact = self.seeded_metrics()
        sketch = exact.with_sketch()
        assert sketch.tokens_per_s == exact.tokens_per_s
        assert sketch.requests_per_s == exact.requests_per_s
        assert sketch.mean_tpot_ms == exact.mean_tpot_ms

    def test_with_sketch_is_idempotent(self):
        metrics = self.seeded_metrics(n=4)
        sketch = metrics.with_sketch()
        assert sketch.with_sketch() is sketch
        assert sketch.with_sketch(False).sketch is False

    def test_exact_mode_serializes_without_sketch_key(self):
        # Golden fixtures predate the sketch flag; off must stay byte-identical.
        assert "sketch" not in self.seeded_metrics(n=4).to_dict()

    def test_sketch_flag_round_trips(self):
        sketch = self.seeded_metrics(n=4).with_sketch()
        data = sketch.to_dict()
        assert data["sketch"] is True
        assert ServeMetrics.from_dict(data) == sketch

    def test_smoke_seed_percentiles_within_bound(self):
        fixture = Path(__file__).parents[1] / "golden" / "serve_smoke.json"
        metrics = ServeMetrics.from_dict(json.loads(fixture.read_text()))
        sketch = metrics.with_sketch()
        bound = Histogram().relative_error_bound
        for point in (50.0, 95.0, 99.0):
            exact = metrics.ttft_percentile_ms(point)
            assert abs(sketch.ttft_percentile_ms(point) - exact) <= bound * exact
