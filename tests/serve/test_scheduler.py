"""Continuous-batching scheduler: admission, eviction, effective batch shape."""

import pytest

from repro.common.errors import ConfigError
from repro.serve.request import Request
from repro.serve.schedpolicy import StepPlan
from repro.serve.scheduler import (
    ActiveRequest,
    BatchConfig,
    ContinuousBatchScheduler,
    HandoffRequest,
    bucket_context,
)
from repro.serve.simulator import complete_step


def request(rid: int, arrival: float = 0.0, prompt: int = 100, output: int = 4) -> Request:
    return Request(
        request_id=rid, arrival_s=arrival, prompt_tokens=prompt, output_tokens=output
    ).validate()


def make_scheduler(max_batch: int = 2) -> ContinuousBatchScheduler:
    return ContinuousBatchScheduler(config=BatchConfig(max_batch=max_batch))


class TestBucketContext:
    def test_floor_applies(self):
        assert bucket_context(1) == 64
        assert bucket_context(64) == 64

    def test_rounds_up_to_powers_of_two(self):
        assert bucket_context(65) == 128
        assert bucket_context(128) == 128
        assert bucket_context(129) == 256

    def test_custom_floor(self):
        assert bucket_context(5, floor=16) == 16
        with pytest.raises(ConfigError):
            bucket_context(5, floor=0)


class TestAdmission:
    def test_fcfs_up_to_max_batch(self):
        scheduler = make_scheduler(max_batch=2)
        for rid, arrival in ((2, 0.3), (0, 0.1), (1, 0.2)):
            scheduler.enqueue(request(rid, arrival))
        admitted = scheduler.admit(now_s=1.0)
        assert [a.request.request_id for a in admitted] == [0, 1]
        assert [r.request_id for r in scheduler.waiting] == [2]

    def test_future_arrivals_not_admitted(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, arrival=5.0))
        assert scheduler.admit(now_s=1.0) == []
        assert scheduler.next_arrival_s() == 5.0

    def test_admission_fills_freed_slots(self):
        scheduler = make_scheduler(max_batch=1)
        scheduler.enqueue(request(0, 0.0, output=1))
        scheduler.enqueue(request(1, 0.0))
        scheduler.admit(0.0)
        assert len(scheduler.running) == 1
        scheduler.running[0].generated = 1          # finish request 0
        assert [a.request.request_id for a in scheduler.evict_finished(1.0)] == [0]
        admitted = scheduler.admit(1.0)
        assert [a.request.request_id for a in admitted] == [1]


class TestTiedArrivals:
    def test_handoff_and_fresh_request_tiebreak_by_id(self):
        # A re-admitted handoff and a fresh arrival with the same arrival_s
        # must admit in request-id order, whichever was enqueued first.
        scheduler = make_scheduler(max_batch=2)
        handoff = HandoffRequest(
            active=ActiveRequest(request=request(3), admitted_s=0.0),
            arrival_s=1.0,
        )
        scheduler.enqueue(request(1, arrival=1.0))
        scheduler.enqueue(handoff)
        assert [r.request_id for r in scheduler.waiting] == [1, 3]
        admitted = scheduler.admit(now_s=1.0)
        assert [a.request.request_id for a in admitted] == [1, 3]
        # The handoff resumed the same progress record, not a fresh one.
        assert admitted[1] is handoff.active

    def test_enqueue_order_matches_a_full_sort(self):
        # bisect.insort must reproduce exactly what re-sorting the whole list
        # produced, including ties on arrival_s.
        arrivals = [(5, 0.2), (1, 0.1), (4, 0.1), (2, 0.2), (0, 0.1), (3, 0.0)]
        scheduler = make_scheduler()
        for rid, arrival in arrivals:
            scheduler.enqueue(request(rid, arrival=arrival))
        expected = sorted(
            (request(rid, arrival=arrival) for rid, arrival in arrivals),
            key=lambda r: (r.arrival_s, r.request_id),
        )
        assert [r.request_id for r in scheduler.waiting] == [
            r.request_id for r in expected
        ]


class TestCompleteStep:
    def prefilling(self, remaining: int = 10) -> ActiveRequest:
        active = ActiveRequest(
            request=request(0, prompt=remaining, output=4), admitted_s=0.0
        )
        active.prefill_remaining = remaining
        return active

    def test_overshooting_chunk_clamps_and_finishes_prefill(self):
        # Regression: a chunk larger than the remaining prompt used to drive
        # prefill_remaining negative, so `== 0` never stamped prefill_end_s
        # and the request sat in_prefill forever.
        scheduler = make_scheduler()
        active = self.prefilling(remaining=10)
        scheduler.running.append(active)
        complete_step(scheduler, StepPlan(prefill=((active, 16),)), end_s=1.0)
        assert active.prefill_remaining == 0
        assert not active.in_prefill
        assert active.prefill_end_s == 1.0

    def test_prefill_end_is_stamped_once(self):
        # A recompute-preempted request re-prefills later; prefill_end_s must
        # keep describing the first completion (metrics order it before
        # first_token_s).
        scheduler = make_scheduler()
        active = self.prefilling(remaining=10)
        scheduler.running.append(active)
        complete_step(scheduler, StepPlan(prefill=((active, 10),)), end_s=1.0)
        assert active.prefill_end_s == 1.0
        active.prefill_remaining = 10                  # recompute re-prefill
        complete_step(scheduler, StepPlan(prefill=((active, 10),)), end_s=5.0)
        assert active.prefill_end_s == 1.0             # first stamp survives


class TestEviction:
    def test_finished_requests_are_stamped_and_removed(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, output=2))
        scheduler.enqueue(request(1, output=4))
        scheduler.admit(0.0)
        for active in scheduler.running:
            active.generated = 2
        finished = scheduler.evict_finished(now_s=3.0)
        assert [a.request.request_id for a in finished] == [0]
        assert finished[0].finish_s == 3.0
        assert [a.request.request_id for a in scheduler.running] == [1]


class TestBatchShape:
    def test_context_is_the_batch_maximum(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, prompt=100))
        scheduler.enqueue(request(1, prompt=500))
        scheduler.admit(0.0)
        scheduler.running[0].generated = 3
        batch, bucket = scheduler.batch_shape()
        assert batch == 2
        assert bucket == bucket_context(500)        # 512

    def test_context_grows_with_generation(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, prompt=128, output=8))
        scheduler.admit(0.0)
        assert scheduler.batch_shape() == (1, 128)
        scheduler.running[0].generated = 1
        assert scheduler.batch_shape() == (1, 256)  # 129 -> next power of two

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler().batch_shape()


class TestBatchConfig:
    def test_round_trip(self):
        config = BatchConfig(max_batch=8, seq_bucket_floor=32)
        assert BatchConfig.from_dict(config.to_dict()) == config

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            BatchConfig(max_batch=0).validate()


class TestNoStarvation:
    """Under sustained max-batch pressure, FCFS must never starve a request."""

    def drain(self, scheduler: ContinuousBatchScheduler, max_steps: int = 10_000):
        """Drive the scheduler to empty, one token per running request per step.

        Returns the admission order (request ids) and per-request admission
        step, mimicking the simulator loop without any cost model.
        """

        admission_order: list[int] = []
        completed: list[int] = []
        for step in range(max_steps):
            if not scheduler.has_work:
                return admission_order, completed
            now_s = float(step)
            admission_order.extend(
                a.request.request_id for a in scheduler.admit(now_s)
            )
            for active in scheduler.running:
                active.generated += 1
            completed.extend(
                a.request.request_id for a in scheduler.evict_finished(now_s)
            )
        raise AssertionError(f"scheduler failed to drain in {max_steps} steps")

    def test_admission_is_fcfs_under_sustained_pressure(self):
        # 50 requests all present at t=0 against a batch of 2: the queue stays
        # saturated for the whole run, the classic starvation scenario.
        scheduler = make_scheduler(max_batch=2)
        for rid in range(50):
            scheduler.enqueue(request(rid, arrival=0.0, output=1 + rid % 5))
        admission_order, completed = self.drain(scheduler)
        assert admission_order == list(range(50))      # FCFS order preserved
        assert sorted(completed) == list(range(50))    # every request completes

    def test_long_jobs_do_not_starve_the_queue(self):
        # One huge request occupies a slot; the stream of short requests behind
        # it must still flow through the other slot and all complete.
        scheduler = make_scheduler(max_batch=2)
        scheduler.enqueue(request(0, arrival=0.0, output=500))
        for rid in range(1, 40):
            scheduler.enqueue(request(rid, arrival=float(rid) * 0.1, output=2))
        admission_order, completed = self.drain(scheduler)
        assert admission_order == list(range(40))
        assert sorted(completed) == list(range(40))
        assert completed[-1] == 0                      # the long job finishes last

    def test_continuous_arrivals_preserve_arrival_order(self):
        # Requests keep arriving exactly as fast as slots free up; admission
        # must follow (arrival_s, request_id) order even when late-enqueued
        # requests carry earlier ids.
        scheduler = make_scheduler(max_batch=1)
        for rid, arrival in ((5, 0.0), (3, 1.0), (8, 2.0), (1, 3.0)):
            scheduler.enqueue(request(rid, arrival=arrival, output=1))
        admission_order, completed = self.drain(scheduler)
        assert admission_order == [5, 3, 8, 1]
        assert sorted(completed) == [1, 3, 5, 8]
