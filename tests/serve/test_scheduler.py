"""Continuous-batching scheduler: admission, eviction, effective batch shape."""

import pytest

from repro.common.errors import ConfigError
from repro.serve.request import Request
from repro.serve.scheduler import (
    BatchConfig,
    ContinuousBatchScheduler,
    bucket_context,
)


def request(rid: int, arrival: float = 0.0, prompt: int = 100, output: int = 4) -> Request:
    return Request(
        request_id=rid, arrival_s=arrival, prompt_tokens=prompt, output_tokens=output
    ).validate()


def make_scheduler(max_batch: int = 2) -> ContinuousBatchScheduler:
    return ContinuousBatchScheduler(config=BatchConfig(max_batch=max_batch))


class TestBucketContext:
    def test_floor_applies(self):
        assert bucket_context(1) == 64
        assert bucket_context(64) == 64

    def test_rounds_up_to_powers_of_two(self):
        assert bucket_context(65) == 128
        assert bucket_context(128) == 128
        assert bucket_context(129) == 256

    def test_custom_floor(self):
        assert bucket_context(5, floor=16) == 16
        with pytest.raises(ConfigError):
            bucket_context(5, floor=0)


class TestAdmission:
    def test_fcfs_up_to_max_batch(self):
        scheduler = make_scheduler(max_batch=2)
        for rid, arrival in ((2, 0.3), (0, 0.1), (1, 0.2)):
            scheduler.enqueue(request(rid, arrival))
        admitted = scheduler.admit(now_s=1.0)
        assert [a.request.request_id for a in admitted] == [0, 1]
        assert [r.request_id for r in scheduler.waiting] == [2]

    def test_future_arrivals_not_admitted(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, arrival=5.0))
        assert scheduler.admit(now_s=1.0) == []
        assert scheduler.next_arrival_s() == 5.0

    def test_admission_fills_freed_slots(self):
        scheduler = make_scheduler(max_batch=1)
        scheduler.enqueue(request(0, 0.0, output=1))
        scheduler.enqueue(request(1, 0.0))
        scheduler.admit(0.0)
        assert len(scheduler.running) == 1
        scheduler.running[0].generated = 1          # finish request 0
        assert [a.request.request_id for a in scheduler.evict_finished(1.0)] == [0]
        admitted = scheduler.admit(1.0)
        assert [a.request.request_id for a in admitted] == [1]


class TestEviction:
    def test_finished_requests_are_stamped_and_removed(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, output=2))
        scheduler.enqueue(request(1, output=4))
        scheduler.admit(0.0)
        for active in scheduler.running:
            active.generated = 2
        finished = scheduler.evict_finished(now_s=3.0)
        assert [a.request.request_id for a in finished] == [0]
        assert finished[0].finish_s == 3.0
        assert [a.request.request_id for a in scheduler.running] == [1]


class TestBatchShape:
    def test_context_is_the_batch_maximum(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, prompt=100))
        scheduler.enqueue(request(1, prompt=500))
        scheduler.admit(0.0)
        scheduler.running[0].generated = 3
        batch, bucket = scheduler.batch_shape()
        assert batch == 2
        assert bucket == bucket_context(500)        # 512

    def test_context_grows_with_generation(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(0, prompt=128, output=8))
        scheduler.admit(0.0)
        assert scheduler.batch_shape() == (1, 128)
        scheduler.running[0].generated = 1
        assert scheduler.batch_shape() == (1, 256)  # 129 -> next power of two

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler().batch_shape()


class TestBatchConfig:
    def test_round_trip(self):
        config = BatchConfig(max_batch=8, seq_bucket_floor=32)
        assert BatchConfig.from_dict(config.to_dict()) == config

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            BatchConfig(max_batch=0).validate()
