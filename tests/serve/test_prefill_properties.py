"""Seeded property-based fuzz tests for the prefill-phase accounting.

Hypothesis drives randomized traffic through the (linear-cost) serving
simulator under every registered scheduler and asserts the invariants the new
phase accounting must satisfy regardless of configuration:

* chunk conservation -- the prefill chunk sizes a request is scheduled in sum
  to exactly its prompt length, never over- or under-prefilling;
* decode neutrality -- modeling prefill changes *when* tokens are generated,
  never *how many*: per-request output-token counts match the decode-only
  scheduler's exactly;
* per-phase percentile monotonicity -- p50 <= p95 <= p99 for the new prefill
  and decode span series, and every span is non-negative.

``derandomize=True`` makes every run draw the same example sequence: the fuzz
corpus is part of the pinned behaviour, like the golden fixtures, so CI never
flakes on a novel example.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis", reason="property tests need hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.registry import SCHEDULERS, resolve_scheduler  # noqa: E402
from repro.serve.arrival import poisson_arrivals  # noqa: E402
from repro.serve.request import RequestSampler  # noqa: E402
from repro.serve.scheduler import BatchConfig, ContinuousBatchScheduler  # noqa: E402
from repro.serve.simulator import ServingSimulator, complete_step  # noqa: E402
from repro.serve.stepcost import LinearStepCostModel  # noqa: E402

settings.register_profile("repro-seeded", derandomize=True, deadline=None, max_examples=25)
settings.load_profile("repro-seeded")

SCHEDULER_NAMES = ("decode-first", "prefill-first", "chunked")


def sampler(seed: int) -> RequestSampler:
    return RequestSampler(seed=seed, prompt_tokens=(16, 512), output_tokens=(1, 8))


def serve_run(seed, rate, num_requests, max_batch, scheduler, chunk, prefill=True):
    return ServingSimulator(
        arrival=poisson_arrivals(sampler(seed), rate=rate, num_requests=num_requests),
        cost_model=LinearStepCostModel(),
        frequency_ghz=2.0,
        batch=BatchConfig(max_batch=max_batch, prefill=prefill),
        policy=resolve_scheduler(scheduler)(prefill_chunk=chunk),
    ).run()


prefill_configs = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),       # seed
    st.floats(min_value=10.0, max_value=1e6),            # rate
    st.integers(min_value=1, max_value=24),              # num_requests
    st.integers(min_value=1, max_value=6),               # max_batch
    st.sampled_from(SCHEDULER_NAMES),
    st.integers(min_value=1, max_value=600),             # prefill_chunk
)


class TestChunkConservation:
    @given(config=prefill_configs)
    def test_chunk_sizes_sum_to_prompt_tokens(self, config):
        seed, _, num_requests, max_batch, scheduler, chunk = config
        # Drive the scheduler directly (all requests present at t=0) and
        # record every planned chunk; the simulator's loop reuses exactly
        # these plan/complete primitives.
        scheduler_obj = ContinuousBatchScheduler(
            config=BatchConfig(max_batch=max_batch, prefill=True)
        )
        size_sampler = sampler(seed)
        requests = [size_sampler.sample(0.0) for _ in range(num_requests)]
        for request in requests:
            scheduler_obj.enqueue(request)
        policy = resolve_scheduler(scheduler)(prefill_chunk=chunk)
        chunks: dict[int, list[int]] = {r.request_id: [] for r in requests}
        step = 0
        while scheduler_obj.has_work:
            step += 1
            assert step < 100_000, "scheduler failed to drain"
            scheduler_obj.admit(float(step))
            plan = policy.plan(scheduler_obj.running).validate()
            for active, size in plan.prefill:
                chunks[active.request.request_id].append(size)
            complete_step(scheduler_obj, plan, float(step))
        for request in requests:
            assert sum(chunks[request.request_id]) == request.prompt_tokens
            assert all(size > 0 for size in chunks[request.request_id])

    @given(config=prefill_configs)
    def test_chunked_never_exceeds_budget(self, config):
        seed, _, num_requests, max_batch, _, chunk = config
        scheduler_obj = ContinuousBatchScheduler(
            config=BatchConfig(max_batch=max_batch, prefill=True)
        )
        size_sampler = sampler(seed)
        for request in [size_sampler.sample(0.0) for _ in range(num_requests)]:
            scheduler_obj.enqueue(request)
        policy = resolve_scheduler("chunked")(prefill_chunk=chunk)
        step = 0
        while scheduler_obj.has_work:
            step += 1
            assert step < 100_000, "scheduler failed to drain"
            scheduler_obj.admit(float(step))
            plan = policy.plan(scheduler_obj.running).validate()
            assert plan.prefill_tokens <= chunk
            complete_step(scheduler_obj, plan, float(step))


class TestDecodeNeutrality:
    @given(config=prefill_configs)
    def test_decode_token_counts_match_decode_only_scheduler(self, config):
        seed, rate, num_requests, max_batch, scheduler, chunk = config
        with_prefill = serve_run(seed, rate, num_requests, max_batch, scheduler, chunk)
        decode_only = serve_run(
            seed, rate, num_requests, max_batch, "decode-first", chunk, prefill=False
        )
        assert with_prefill.num_requests == decode_only.num_requests == num_requests
        tokens = {r.request_id: r.output_tokens for r in with_prefill.requests}
        baseline = {r.request_id: r.output_tokens for r in decode_only.requests}
        assert tokens == baseline
        assert with_prefill.total_output_tokens == decode_only.total_output_tokens


class TestPerPhasePercentiles:
    @given(config=prefill_configs)
    def test_prefill_and_decode_percentiles_monotone(self, config):
        metrics = serve_run(*config)
        assert metrics.has_prefill_phase
        assert len(metrics.prefills_s) == metrics.num_requests
        assert all(span >= 0 for span in metrics.prefills_s)
        assert all(span >= 0 for span in metrics.decodes_s)
        assert (
            metrics.prefill_percentile_ms(50)
            <= metrics.prefill_percentile_ms(95)
            <= metrics.prefill_percentile_ms(99)
        )
        assert (
            metrics.decode_percentile_ms(50)
            <= metrics.decode_percentile_ms(95)
            <= metrics.decode_percentile_ms(99)
        )

    @given(config=prefill_configs)
    def test_phase_spans_tile_the_request_lifetime(self, config):
        metrics = serve_run(*config)
        for r in metrics.requests:
            assert r.arrival_s <= r.admitted_s <= r.prefill_end_s
            assert r.prefill_end_s <= r.first_token_s <= r.finish_s
            assert r.queue_s + r.prefill_s <= r.ttft_s + 1e-12


def test_every_registered_scheduler_is_covered():
    # The sampled_from corpus must track the registry: a newly registered
    # scheduler should extend SCHEDULER_NAMES (or register its own suite).
    registered = {entry.name for entry in SCHEDULERS.entries()}
    assert set(SCHEDULER_NAMES) <= registered
