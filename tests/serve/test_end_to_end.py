"""End-to-end serving runs: determinism, cycle-engine step costs, sweeps."""

import pytest

from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier
from repro.registry import SYSTEMS, WORKLOADS, register_system, register_workload
from repro.serve import (
    BatchConfig,
    LinearStepCostModel,
    RequestSampler,
    ServeScenario,
    ServeSweepSpec,
    ServingSimulator,
    SimStepCostModel,
)
from repro.serve.arrival import closed_loop_arrivals, poisson_arrivals
from repro.sim.runner import cached_trace, clear_trace_cache, trace_cache_size
from repro.sweep.executor import run_sweep
from repro.sweep.store import ResultStore


@pytest.fixture()
def tiny_serve_names(tiny_system, tiny_workload):
    """Register the tiny system/workload under serve-test names (and clean up)."""

    register_system("serve-tiny-sys")(lambda: tiny_system)
    register_workload("serve-tiny")(lambda seq_len=64: tiny_workload.with_seq_len(seq_len))
    yield {"system": "serve-tiny-sys", "workload": "serve-tiny"}
    SYSTEMS.unregister("serve-tiny-sys")
    WORKLOADS.unregister("serve-tiny")


def tiny_scenario(names, **overrides) -> ServeScenario:
    defaults = dict(
        workload=names["workload"],
        system=names["system"],
        arrival="poisson",
        rate=50_000.0,
        num_requests=6,
        max_batch=2,
        seed=0,
        tier=ScaleTier.FULL,
        prompt_tokens=(32, 64),
        output_tokens=(2, 4),
    )
    defaults.update(overrides)
    return ServeScenario(**defaults).validate()


class TestServingSimulatorWithLinearCosts:
    """Fast checks of the serving loop itself, cycle engine stubbed out."""

    def run_once(self, seed: int = 0, **kwargs):
        simulator = ServingSimulator(
            arrival=poisson_arrivals(
                RequestSampler(seed=seed, output_tokens=(2, 6)),
                rate=1000.0,
                num_requests=12,
            ),
            cost_model=LinearStepCostModel(),
            frequency_ghz=2.0,
            batch=BatchConfig(max_batch=3),
            **kwargs,
        )
        return simulator.run()

    def test_all_requests_complete_with_ordered_timestamps(self):
        metrics = self.run_once()
        assert metrics.num_requests == 12
        for r in metrics.requests:
            assert r.arrival_s <= r.admitted_s <= r.first_token_s <= r.finish_s

    def test_deterministic_across_runs(self):
        assert self.run_once().to_dict() == self.run_once().to_dict()

    def test_seed_changes_the_run(self):
        assert self.run_once(seed=0).to_dict() != self.run_once(seed=1).to_dict()

    def test_steps_bounded_by_total_output_tokens(self):
        metrics = self.run_once()
        # Each step decodes >= 1 token, so steps never exceed total tokens.
        assert 0 < metrics.steps <= metrics.total_output_tokens

    def test_closed_loop_completes_budget(self):
        simulator = ServingSimulator(
            arrival=closed_loop_arrivals(
                RequestSampler(seed=2, output_tokens=(2, 4)),
                rate=3,
                num_requests=9,
            ),
            cost_model=LinearStepCostModel(),
            frequency_ghz=2.0,
            batch=BatchConfig(max_batch=4),
        )
        assert simulator.run().num_requests == 9


class TestSimStepCostModel:
    def test_memoizes_repeated_shapes(self, tiny_system, tiny_workload, unopt_policy):
        model = SimStepCostModel(tiny_system, tiny_workload, unopt_policy)
        first = model.step_cycles(1, 64)
        assert model.simulations == 1
        assert model.step_cycles(1, 64) == first
        assert model.simulations == 1            # memo hit, no new simulation
        # Contexts within one bucket share the entry too.
        assert model.step_cycles(1, 33) == first
        assert model.simulations == 1

    def test_batch_grows_the_workload(self, tiny_system, tiny_workload, unopt_policy):
        model = SimStepCostModel(tiny_system, tiny_workload, unopt_policy)
        batched = model.batched_workload(3, 100)
        assert batched.shape.num_kv_heads == tiny_workload.shape.num_kv_heads * 3
        assert batched.shape.seq_len == 128      # 100 -> next power of two
        # The batch lives in the head dimension only, so the byte accessors
        # count the batched KV footprint exactly once (3x a single request).
        assert batched.batch_size == 1
        assert batched.kv_tensor_bytes == 3 * tiny_workload.with_seq_len(128).kv_tensor_bytes
        single = model.step_cycles(1, 64)
        double = model.step_cycles(2, 64)
        assert model.simulations == 2
        assert double > single                   # more requests, more work

    def test_tier_scales_the_context(self, tiny_system, tiny_workload, unopt_policy):
        model = SimStepCostModel(
            tiny_system, tiny_workload, unopt_policy, tier=ScaleTier.CI
        )
        # 4096 tokens / 32 = 128: the CI tier simulates the scaled bucket.
        assert model.batched_workload(1, 4096).shape.seq_len == 128

    def test_rejects_degenerate_shapes(self, tiny_system, tiny_workload, unopt_policy):
        model = SimStepCostModel(tiny_system, tiny_workload, unopt_policy)
        with pytest.raises(ConfigError):
            model.step_cycles(0, 64)


class TestServeScenario:
    def test_run_is_reproducible(self, tiny_serve_names):
        a = tiny_scenario(tiny_serve_names).run()
        b = tiny_scenario(tiny_serve_names).run()
        assert a.to_dict() == b.to_dict()
        assert a.num_requests == 6
        assert a.latency_percentile_ms(50) <= a.latency_percentile_ms(95)
        assert a.latency_percentile_ms(95) <= a.latency_percentile_ms(99)
        assert a.tokens_per_s > 0
        assert a.meta["step_simulations"] >= 1

    def test_run_clears_the_trace_cache(self, tiny_serve_names, tiny_system, tiny_workload):
        clear_trace_cache()
        cached_trace(tiny_workload.with_seq_len(128), tiny_system)  # foreign entry
        assert trace_cache_size() == 1
        tiny_scenario(tiny_serve_names).run()
        # Serve runs clear the module-level cache on exit, so neither the
        # foreign trace nor the serve steps' own traces linger into whatever
        # the long-lived process runs next.
        assert trace_cache_size() == 0

    def test_label_excluded_from_key(self, tiny_serve_names):
        base = tiny_scenario(tiny_serve_names)
        labelled = tiny_scenario(tiny_serve_names, label="pretty name")
        assert base.key() == labelled.key()
        assert base.key() != tiny_scenario(tiny_serve_names, rate=60_000.0).key()
        assert base.key() != tiny_scenario(tiny_serve_names, seed=1).key()

    def test_round_trip(self, tiny_serve_names):
        scenario = tiny_scenario(
            tiny_serve_names,
            arrival="bursty",
            arrival_params=(("burst_size", 2),),
            slo_latency_ms=5.0,
        )
        rebuilt = ServeScenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.key() == scenario.key()

    def test_validate_rejects_unknown_names(self, tiny_serve_names):
        with pytest.raises(ConfigError):
            tiny_scenario(tiny_serve_names, arrival="tsunami")
        with pytest.raises(ConfigError):
            tiny_scenario(tiny_serve_names, workload="gpt-7")
        with pytest.raises(ConfigError):
            tiny_scenario(tiny_serve_names, rate=-1.0)

    def test_slo_attainment_reported(self, tiny_serve_names):
        metrics = tiny_scenario(tiny_serve_names, slo_latency_ms=1e9).run()
        assert metrics.slo_attainment == 1.0


class TestServeSweep:
    def test_grid_runs_and_resumes_through_the_store(self, tiny_serve_names, tmp_path):
        spec = ServeSweepSpec(
            workloads=(tiny_serve_names["workload"],),
            rates=(40_000.0, 80_000.0),
            num_requests=4,
            max_batch=2,
            system=tiny_serve_names["system"],
            tier=ScaleTier.FULL,
            prompt_tokens=(32, 64),
            output_tokens=(2, 4),
        ).validate()
        points = spec.expand()
        store = ResultStore(tmp_path / "serve.jsonl")
        report = run_sweep(points, jobs=1, store=store)
        assert report.num_ok == 2 and report.num_simulated == 2
        metrics = report.result_for(points[0])
        assert metrics.num_requests == 4
        assert {r.kind for r in store.records()} == {"serve"}

        # Second run resumes entirely from disk, bit-identical.
        resumed = run_sweep(points, jobs=1, store=ResultStore(store.path))
        assert resumed.num_cached == 2
        assert resumed.result_for(points[0]).to_dict() == metrics.to_dict()

    def test_spec_round_trip_and_validation(self):
        spec = ServeSweepSpec(
            workloads=("llama3-70b",), rates=(1000.0, 2000.0, 4000.0),
            arrivals=("poisson", "bursty"), policies=("unopt", "dynmg"),
        )
        assert ServeSweepSpec.from_dict(spec.to_dict()) == spec
        assert spec.num_points == 12
        with pytest.raises(ConfigError):
            ServeSweepSpec(workloads=("llama3-70b",), rates=()).validate()
        with pytest.raises(ConfigError):
            ServeSweepSpec(workloads=("gpt-7",), rates=(1.0,)).validate()

    def test_labels_and_coords(self):
        spec = ServeSweepSpec(workloads=("llama3-70b",), rates=(1000.0,))
        point = spec.expand()[0]
        assert point.coord("rate") == 1000.0
        assert point.coord("model") == "llama3-70b"
        assert "serve" in point.describe()
