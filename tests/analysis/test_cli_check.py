"""Tests for ``llamcat check``: exit codes, formats, explain, meta-cleanliness."""

import json

import pytest

from repro.analysis import all_rules, check_paths
from repro.cli import main


@pytest.fixture()
def clean_dir(tmp_path):
    (tmp_path / "fine.py").write_text("x = 1\n")
    return tmp_path


@pytest.fixture()
def dirty_dir(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "repro").mkdir()
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.write_text("import random\n\n\ndef f(msg):\n    print(msg)\n")
    return tmp_path


class TestCheckCommand:
    def test_clean_tree_exits_zero(self, clean_dir, capsys):
        assert main(["check", str(clean_dir)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "1 file" in out

    def test_findings_exit_one(self, dirty_dir, capsys):
        assert main(["check", str(dirty_dir)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "CLI001" in out
        assert "2 finding(s)" in out

    def test_json_format(self, dirty_dir, capsys):
        assert main(["check", "--format", "json", str(dirty_dir)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 2
        assert payload["summary"]["by_code"] == {"CLI001": 1, "DET001": 1}

    def test_select_restricts_rules(self, dirty_dir, capsys):
        assert main(["check", "--select", "CLI001", str(dirty_dir)]) == 1
        out = capsys.readouterr().out
        assert "DET001" not in out
        assert "CLI001" in out

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["check", str(tmp_path / "nope")])

    def test_explain(self, capsys):
        assert main(["check", "--explain", "DET003"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("DET003: ")
        assert "noqa[DET003]" in out

    def test_explain_unknown_code(self):
        with pytest.raises(SystemExit, match="unknown rule code"):
            main(["check", "--explain", "ZZZ999"])

    def test_determinism_scenario_choices(self):
        with pytest.raises(SystemExit):
            main(["check", "--determinism", "bogus"])


class TestMetaCleanliness:
    """The acceptance bar: the repo itself is clean under its own rules."""

    def test_src_repro_is_clean(self):
        assert check_paths(["src/repro"]) == []

    def test_full_default_scope_is_clean(self):
        assert check_paths(["src", "tests", "examples"]) == []

    def test_benchmarks_and_conftest_are_clean(self):
        assert check_paths(["benchmarks", "conftest.py"]) == []

    def test_all_rules_ran(self):
        # Guard against the meta-test passing because rules failed to load.
        assert len(all_rules()) >= 8
