"""Per-rule fixture tests: each rule fires where expected and only there.

Fixtures live in ``tests/analysis/fixtures/*.txt`` -- deliberately *not*
``.py``, so ``llamcat check src tests examples`` (which the acceptance
criteria pin at zero findings) never discovers the planted violations.
"""

from pathlib import Path

import pytest

from repro.analysis import check_source

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (rule code, expected finding lines).
EXPECTED = {
    "det001.txt": ("DET001", [3, 4, 10, 11]),
    "det002.txt": ("DET002", [9, 10, 11]),
    "det003.txt": ("DET003", [6, 7, 9]),
    "det004.txt": ("DET004", [6, 7]),
    "reg001.txt": ("REG001", [12, 17]),
    "ser001.txt": ("SER001", [11]),
    "api001.txt": ("API001", [14]),
    "cli001.txt": ("CLI001", [7, 8]),
}


def run_fixture(name: str, code: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return check_source(source, path="src/repro/fixture.py", select=[code])


class TestFixtures:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_rule_fires_on_expected_lines(self, name):
        code, lines = EXPECTED[name]
        findings = run_fixture(name, code)
        assert [f.code for f in findings] == [code] * len(lines)
        assert [f.line for f in findings] == lines

    def test_every_rule_has_a_fixture(self):
        from repro.analysis import all_rules

        covered = {code for code, _ in EXPECTED.values()}
        assert covered == {rule.code for rule in all_rules()}


class TestRuleScoping:
    def test_det001_allows_rng_module_itself(self):
        source = "import random\n"
        assert check_source(source, path="src/repro/common/rng.py") == []
        assert any(
            f.code == "DET001"
            for f in check_source(source, path="src/repro/common/other.py")
        )

    def test_det002_allows_profile_and_benchmarks(self):
        source = "import time\n\n\ndef f():\n    return time.perf_counter()\n"
        assert check_source(source, path="src/repro/obs/profile.py") == []
        assert check_source(source, path="benchmarks/bench_thing.py") == []
        findings = check_source(source, path="src/repro/serve/thing.py")
        assert [f.code for f in findings] == ["DET002"]

    def test_det002_tracks_time_alias(self):
        source = "import time as clock\n\n\ndef f():\n    return clock.monotonic()\n"
        assert [f.code for f in check_source(source)] == ["DET002"]

    def test_det003_reassignment_clears_set_tracking(self):
        source = (
            "def f(xs):\n"
            "    vals = {x for x in xs}\n"
            "    vals = sorted(vals)\n"
            "    return [v for v in vals]\n"
        )
        assert check_source(source, select=["DET003"]) == []

    def test_det003_scopes_are_per_function(self):
        source = (
            "def a(xs):\n"
            "    vals = {x for x in xs}\n"
            "    return sorted(vals)\n"
            "\n"
            "\n"
            "def b(vals):\n"
            "    return [v for v in vals]\n"
        )
        assert check_source(source, select=["DET003"]) == []

    def test_reg001_accepts_bootstrapped_module(self):
        source = (
            "from repro.registry.core import Registry\n"
            "\n"
            "THINGS = Registry('thing', bootstrap=('repro.fixture',))\n"
            "\n"
            "\n"
            "@THINGS.register('alpha')\n"
            "def build_alpha():\n"
            "    return object()\n"
        )
        assert check_source(source, path="src/repro/fixture.py", select=["REG001"]) == []

    def test_ser001_requires_both_methods(self):
        source = (
            "class OneWay:\n"
            "    def to_dict(self):\n"
            "        return {'only_written': 1}\n"
        )
        assert check_source(source, select=["SER001"]) == []

    def test_api001_ignores_non_library_paths(self):
        source = (
            "def f(obj):\n"
            "    object.__setattr__(obj, 'x', 1)\n"
        )
        assert check_source(source, path="tests/conftest_helper.py") == []
        assert [f.code for f in check_source(source)] == ["API001"]

    def test_cli001_allows_cli_and_timeline(self):
        source = "def f(msg):\n    print(msg)\n"
        assert check_source(source, path="src/repro/cli.py") == []
        assert check_source(source, path="src/repro/obs/timeline.py") == []
        assert [f.code for f in check_source(source)] == ["CLI001"]

    def test_cli001_ignores_stderr_prints(self):
        source = "import sys\n\n\ndef f(msg):\n    print(msg, file=sys.stderr)\n"
        assert check_source(source, select=["CLI001"]) == []


class TestReg001BenchRegistry:
    """The BENCHES registry is covered by the bootstrap check like any other."""

    REPO = Path(__file__).parents[2]

    def check_with_registry(self, source: str, path: str):
        from repro.analysis.engine import check_modules, parse_module

        registry_path = "src/repro/bench/registry.py"
        registry_src = (self.REPO / registry_path).read_text(encoding="utf-8")
        modules = [
            parse_module(registry_path, registry_src),
            parse_module(path, source),
        ]
        return check_modules(modules, select=["REG001"])

    def test_bench_outside_bootstrap_is_flagged(self):
        source = (
            "from repro.bench.registry import register_bench\n"
            "\n"
            "\n"
            "@register_bench('rogue')\n"
            "def rogue_bench(tier):\n"
            "    return None\n"
        )
        findings = self.check_with_registry(source, "src/repro/bench/rogue.py")
        assert [f.code for f in findings] == ["REG001"]
        assert "BENCHES" in findings[0].message

    def test_bench_in_suite_module_is_accepted(self):
        source = (
            "from repro.bench.registry import register_bench\n"
            "\n"
            "\n"
            "@register_bench('fine')\n"
            "def fine_bench(tier):\n"
            "    return None\n"
        )
        assert self.check_with_registry(source, "src/repro/bench/suite.py") == []
