"""Tests for the lint engine: suppressions, discovery, reporting, explain."""

import json

import pytest

from repro.analysis import (
    check_paths,
    check_source,
    discover_files,
    explain_rule,
    findings_to_json,
    parse_module,
    rule_codes,
)
from repro.common.errors import ConfigError

DIRTY = "import random\n"


class TestSuppressions:
    def test_noqa_suppresses_matching_code(self):
        source = "import random  # repro: noqa[DET001]\n"
        assert check_source(source) == []

    def test_noqa_with_justification_text(self):
        source = "import random  # repro: noqa[DET001] -- fault injector\n"
        assert check_source(source) == []

    def test_noqa_is_per_line(self):
        source = "import random  # repro: noqa[DET001]\nimport random\n"
        findings = check_source(source)
        assert [(f.code, f.line) for f in findings] == [("DET001", 2)]

    def test_noqa_multiple_codes(self):
        source = "import random  # repro: noqa[DET001, DET002]\n"
        findings = check_source(source)
        # DET001 is used; the DET002 half suppresses nothing on this line.
        assert [f.code for f in findings] == ["NOQ001"]

    def test_wrong_code_does_not_suppress(self):
        source = "import random  # repro: noqa[DET002]\n"
        codes = sorted(f.code for f in check_source(source))
        assert codes == ["DET001", "NOQ001"]

    def test_unused_suppression_is_flagged(self):
        source = "x = 1  # repro: noqa[DET001]\n"
        findings = check_source(source)
        assert [f.code for f in findings] == ["NOQ001"]
        assert "DET001" in findings[0].message

    def test_bare_noqa_is_malformed(self):
        source = "import random  # repro: noqa\n"
        codes = sorted(f.code for f in check_source(source))
        # The blanket waiver is rejected AND suppresses nothing.
        assert codes == ["DET001", "NOQ002"]

    def test_empty_code_list_is_malformed(self):
        source = "x = 1  # repro: noqa[]\n"
        assert [f.code for f in check_source(source)] == ["NOQ002"]

    def test_case_insensitive(self):
        source = "import random  # REPRO: NOQA[det001]\n"
        assert check_source(source) == []

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""Docs may mention # repro: noqa[DET001] freely."""\nx = 1\n'
        assert check_source(source) == []

    def test_string_literal_mention_is_not_a_suppression(self):
        source = "MSG = 'suppress with # repro: noqa[DET001]'\n"
        assert check_source(source) == []


class TestParsing:
    def test_syntax_error_becomes_finding(self):
        findings = check_source("def broken(:\n")
        assert [f.code for f in findings] == ["SYN001"]
        assert findings[0].line == 1

    def test_module_name_rooted_at_repro(self):
        module = parse_module("src/repro/serve/arrival.py", "x = 1\n")
        assert module.module_name == "repro.serve.arrival"

    def test_module_name_init_strips(self):
        module = parse_module("src/repro/serve/__init__.py", "x = 1\n")
        assert module.module_name == "repro.serve"

    def test_module_name_outside_repro(self):
        module = parse_module("tests/test_thing.py", "x = 1\n")
        assert module.module_name is None


class TestDiscovery:
    def test_discovers_sorted_unique_py_files(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "cached.py").write_text("x = 1\n")
        files = discover_files([tmp_path, tmp_path / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(ConfigError, match="no such file"):
            discover_files([tmp_path / "nope"])


class TestCheckPaths:
    def test_findings_report_and_sort(self, tmp_path):
        (tmp_path / "z.py").write_text(DIRTY)
        (tmp_path / "a.py").write_text("import time\nimport random\n")
        findings = check_paths([tmp_path])
        paths = [f.path for f in findings]
        assert paths == sorted(paths)
        assert {f.code for f in findings} == {"DET001"}

    def test_select_filters_rules(self, tmp_path):
        (tmp_path / "a.py").write_text(DIRTY)
        assert check_paths([tmp_path], select=["CLI001"]) == []
        with pytest.raises(ConfigError, match="unknown rule code"):
            check_paths([tmp_path], select=["NOPE01"])

    def test_non_library_paths_skip_library_rules(self, tmp_path):
        # print() is only constrained inside the repro package.
        (tmp_path / "script.py").write_text("print('hello')\n")
        assert check_paths([tmp_path]) == []


class TestReporting:
    def test_render_format(self):
        finding = check_source(DIRTY)[0]
        assert finding.render().startswith("src/repro/module.py:1:0: DET001 ")

    def test_json_report_is_canonical(self, tmp_path):
        (tmp_path / "a.py").write_text(DIRTY)
        findings = check_paths([tmp_path])
        first = findings_to_json(findings, files_checked=1)
        second = findings_to_json(list(findings), files_checked=1)
        assert first == second
        payload = json.loads(first)
        assert payload["summary"] == {
            "files_checked": 1,
            "findings": 1,
            "by_code": {"DET001": 1},
        }
        assert payload["tool"]["name"] == "llamcat-check"
        assert payload["results"][0]["code"] == "DET001"


class TestExplain:
    def test_explains_every_code(self):
        for code in rule_codes():
            text = explain_rule(code)
            assert text.startswith(f"{code}: ")
            assert f"noqa[{code}]" in text

    def test_explain_is_case_insensitive(self):
        assert explain_rule("det001").startswith("DET001: ")

    def test_unknown_code_rejected(self):
        with pytest.raises(ConfigError, match="unknown rule code"):
            explain_rule("XYZ999")
