"""Tests for the runtime divergence localizer (probe, digests, bisect)."""

import json

from repro.analysis import (
    DeterminismReport,
    RngJitterArrival,
    StepDigest,
    StepProbe,
    check_determinism,
    collect_digests,
    localize_divergence,
)
from repro.cluster.simulator import ClusterSimulator, ReplicaSim
from repro.registry import resolve_router
from repro.serve.arrival import poisson_arrivals
from repro.serve.request import RequestSampler
from repro.serve.scheduler import BatchConfig
from repro.serve.simulator import ServingSimulator
from repro.serve.stepcost import LinearStepCostModel


def sampler(seed: int = 0) -> RequestSampler:
    return RequestSampler(seed=seed, prompt_tokens=(64, 256), output_tokens=(4, 16))


class TinyServeScenario:
    """A fast, fully deterministic stand-in for ServeScenario (linear costs)."""

    display_label = "tiny-serve"

    def __init__(self, seed: int = 0, num_requests: int = 10):
        self.seed = seed
        self.num_requests = num_requests

    def build_simulator(self) -> ServingSimulator:
        return ServingSimulator(
            arrival=poisson_arrivals(
                sampler(self.seed), rate=1000.0, num_requests=self.num_requests
            ),
            cost_model=LinearStepCostModel(),
            frequency_ghz=1.0,
            batch=BatchConfig(max_batch=4),
        )


class TinyClusterScenario(TinyServeScenario):
    display_label = "tiny-cluster"

    def build_simulator(self) -> ClusterSimulator:
        model = LinearStepCostModel()
        replicas = [
            ReplicaSim(
                replica_id=i,
                cost_model=model,
                frequency_ghz=1.0,
                batch=BatchConfig(max_batch=2),
            )
            for i in range(2)
        ]
        return ClusterSimulator(
            arrival=poisson_arrivals(
                sampler(self.seed), rate=1000.0, num_requests=self.num_requests
            ),
            router=resolve_router("round-robin")(2),
            replicas=replicas,
        )


class TestStepProbe:
    def test_records_one_digest_per_costed_step(self):
        simulator = TinyServeScenario().build_simulator()
        probe = StepProbe()
        metrics = simulator.run(probe=probe)
        assert len(probe.digests) == metrics.steps
        assert [d.step for d in probe.digests] == list(
            range(1, metrics.steps + 1)
        )

    def test_probe_never_perturbs_metrics(self):
        bare = TinyServeScenario().build_simulator().run()
        probed = TinyServeScenario().build_simulator().run(probe=StepProbe())
        assert bare.to_dict() == probed.to_dict()

    def test_digest_payload_is_canonical_json(self):
        digests = collect_digests(TinyServeScenario())
        state = digests[0].state()
        assert set(state) == {
            "replica", "start_s", "waiting", "running", "decode",
            "prefill", "cycles", "rng",
        }
        assert json.dumps(state, sort_keys=True, separators=(",", ":")) == (
            digests[0].payload
        )

    def test_rng_token_tracks_closed_loop_sampling(self):
        digests = collect_digests(TinyServeScenario())
        # Poisson streams sample everything up front: position frozen.
        assert digests[0].state()["rng"] == digests[-1].state()["rng"]

    def test_cluster_probe_tags_replicas(self):
        digests = collect_digests(TinyClusterScenario())
        assert {d.replica_id for d in digests} == {0, 1}


class TestDeterminism:
    def test_serve_scenario_is_deterministic(self):
        report = check_determinism(TinyServeScenario())
        assert report.deterministic
        assert report.divergent_step is None
        assert report.label == "tiny-serve"
        assert "OK" in report.render()

    def test_cluster_scenario_is_deterministic(self):
        report = check_determinism(TinyClusterScenario())
        assert report.deterministic
        assert report.steps_first == report.steps_second

    def test_injected_rng_jitter_is_localized(self):
        report = check_determinism(
            TinyServeScenario(num_requests=12),
            wrap_arrival=lambda arrival: RngJitterArrival(arrival, after_id=4),
        )
        assert not report.deterministic
        assert report.divergent_step is not None
        # Jitter only touches request ids >= 4: the early steps agree, so the
        # localizer pins a step strictly inside the run, not just "differs".
        assert report.first is not None
        assert "DIVERGED" in report.render()
        assert "waiting" in report.changed or "start_s" in report.changed

    def test_jitter_before_first_request_diverges_immediately(self):
        report = check_determinism(
            TinyServeScenario(),
            wrap_arrival=lambda arrival: RngJitterArrival(arrival, after_id=0),
        )
        assert report.divergent_step == 0

    def test_report_round_trips_to_dict(self):
        report = check_determinism(TinyServeScenario())
        data = report.to_dict()
        assert data["deterministic"] is True
        assert data["divergent_step"] is None
        assert data["steps"] == [report.steps_first, report.steps_second]


def digest(step: int, payload: dict) -> StepDigest:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    import hashlib

    return StepDigest(
        replica_id=payload.get("replica", 0),
        step=step,
        start_s=float(step),
        digest=hashlib.sha256(text.encode()).hexdigest(),
        payload=text,
    )


class TestLocalize:
    def test_identical_sequences(self):
        a = [digest(1, {"cycles": 10}), digest(2, {"cycles": 20})]
        report = localize_divergence(a, list(a))
        assert report.deterministic

    def test_first_difference_wins(self):
        a = [digest(1, {"cycles": 10}), digest(2, {"cycles": 20})]
        b = [digest(1, {"cycles": 10}), digest(2, {"cycles": 99})]
        report = localize_divergence(a, b, label="unit")
        assert report.divergent_step == 1
        assert report.changed == ("cycles",)
        assert report.first.digest != report.second.digest
        assert "unit" in report.render()

    def test_length_mismatch_localizes_to_first_extra_step(self):
        a = [digest(1, {"cycles": 10})]
        b = [digest(1, {"cycles": 10}), digest(2, {"cycles": 20})]
        report = localize_divergence(a, b)
        assert report.divergent_step == 1
        assert report.changed == ("steps",)
        assert report.second is None
        assert "step counts differ" in report.render()

    def test_changed_keys_cover_asymmetric_state(self):
        a = digest(1, {"cycles": 10, "extra": 1})
        b = digest(1, {"cycles": 10})
        assert a.changed_keys(b) == ("extra",)

    def test_report_is_frozen_dataclass(self):
        report = DeterminismReport(
            label="x", steps_first=1, steps_second=1,
            divergent_step=None, first=None, second=None, changed=(),
        )
        assert report.deterministic
