"""Tests for the unified scenario API (repro.api)."""

from __future__ import annotations

from typing import ClassVar

import pytest

from repro.api import Scenario, Simulation, scenario_matrix
from repro.common.errors import ConfigError
from repro.config.policies import MultiGearParams, PolicyConfig, ThrottleKind
from repro.config.presets import llama3_70b_logit, table5_system_with_l2
from repro.config.scale import ScaleTier, scale_experiment
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.ordering import ThreadBlockOrdering
from repro.sweep.spec import sweep_point


class TestScenarioResolution:
    def test_resolves_same_configs_as_presets(self):
        scenario = Scenario(
            workload="llama3-70b", policy="dynmg+BMA", seq_len=4096,
            l2_mib=32, tier=ScaleTier.CI,
        )
        resolved = scenario.resolve()
        system, workload = scale_experiment(
            table5_system_with_l2(32), llama3_70b_logit(4096), ScaleTier.CI
        )
        assert resolved.system == system
        assert resolved.workload == workload
        assert resolved.policy.throttle == ThrottleKind.DYNMG

    def test_policy_config_escape_hatch_wins(self):
        custom = PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            multigear=MultiGearParams(sampling_period=777),
        )
        scenario = Scenario.create("llama3-70b", custom, seq_len=64, tier=ScaleTier.SMOKE)
        assert scenario.policy == "dynmg"
        assert scenario.resolve().policy.multigear.sampling_period == 777

    def test_unknown_names_raise_config_error(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            Scenario(workload="gpt-7").validate()
        with pytest.raises(ConfigError, match="unknown system"):
            Scenario(workload="llama3-70b", system="cray-1").validate()
        with pytest.raises(ConfigError, match="unknown policy"):
            Scenario(workload="llama3-70b", policy="warpdrive").validate()

    def test_invalid_scalars_rejected(self):
        with pytest.raises(ConfigError, match="seq_len"):
            Scenario(workload="llama3-70b", seq_len=0).validate()
        with pytest.raises(ConfigError, match="l2_mib"):
            Scenario(workload="llama3-70b", l2_mib=-1).validate()

    def test_string_ordering_rejected_with_config_error(self):
        with pytest.raises(ConfigError, match="ordering"):
            Scenario(workload="llama3-70b", ordering="sequential").validate()

    def test_simulation_of_coerces_ordering_strings(self):
        simulation = Simulation.of(
            "llama3-70b", seq_len=128, tier="smoke", ordering="sequential"
        )
        assert simulation.scenario.ordering is ThreadBlockOrdering.SEQUENTIAL
        with pytest.raises(ConfigError, match="unknown thread-block ordering"):
            Simulation.of("llama3-70b", ordering="bogus")

    def test_requested_seq_len_uses_builder_default(self):
        assert Scenario(workload="llama3-70b").requested_seq_len == 8192
        assert Scenario(workload="llama3-70b", seq_len=128).requested_seq_len == 128


class TestScenarioRoundTrip:
    CASES: ClassVar[list[Scenario]] = [
        Scenario(workload="llama3-70b"),
        Scenario(
            workload="llama3-405b-attend",
            policy="dynmg+BMA",
            system="table5-32core",
            seq_len=2048,
            l2_mib=64,
            tier=ScaleTier.SMOKE,
            ordering=ThreadBlockOrdering.SEQUENTIAL,
            constraints=DataflowConstraints(output_lines_per_block=2),
            max_cycles=123_456,
            label="fancy",
        ),
        Scenario.create(
            "llama3-70b",
            PolicyConfig(
                throttle=ThrottleKind.DYNMG,
                multigear=MultiGearParams(sampling_period=777),
            ),
            tier=ScaleTier.CI,
        ),
    ]

    @pytest.mark.parametrize("scenario", CASES, ids=["defaults", "kitchen-sink", "policy-config"])
    def test_from_dict_to_dict_round_trip(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_to_dict_is_json_ready(self):
        import json

        for scenario in self.CASES:
            json.dumps(scenario.to_dict(), sort_keys=True)


class TestScenarioKey:
    def test_key_agrees_with_sweep_point(self):
        scenario = Scenario(
            workload="llama3-70b", policy="dynmg", seq_len=2048,
            l2_mib=16, tier=ScaleTier.CI,
        )
        point = sweep_point(
            "llama3-70b", 2048, "dynmg", l2_mib=16, tier=ScaleTier.CI
        )
        assert scenario.key() == point.key()
        assert scenario.to_point() == point

    def test_key_ignores_display_label(self):
        a = Scenario(workload="llama3-70b", seq_len=256, tier=ScaleTier.SMOKE)
        b = Scenario(
            workload="llama3-70b", seq_len=256, tier=ScaleTier.SMOKE, label="other"
        )
        assert a.key() == b.key()

    def test_key_changes_with_constraints(self):
        base = Scenario(workload="llama3-70b", seq_len=256, tier=ScaleTier.SMOKE)
        constrained = Scenario(
            workload="llama3-70b", seq_len=256, tier=ScaleTier.SMOKE,
            constraints=DataflowConstraints(output_lines_per_block=2),
        )
        assert base.key() != constrained.key()


class TestBuilder:
    def test_fluent_builder_builds_scenario(self):
        scenario = (
            Simulation.builder()
            .system("table5")
            .workload("llama3-70b", seq_len=1024)
            .policy("dynmg+BMA")
            .tier("smoke")
            .l2_mib(16)
            .ordering("sequential")
            .max_cycles(50_000)
            .label("mine")
            .build()
        )
        assert scenario == Scenario(
            workload="llama3-70b",
            policy="dynmg+BMA",
            seq_len=1024,
            l2_mib=16,
            tier=ScaleTier.SMOKE,
            ordering=ThreadBlockOrdering.SEQUENTIAL,
            max_cycles=50_000,
            label="mine",
        )

    def test_builder_requires_workload(self):
        with pytest.raises(ConfigError, match="workload"):
            Simulation.builder().policy("unopt").build()

    def test_builder_rejects_unknown_tier(self):
        with pytest.raises(ConfigError, match="unknown scale tier"):
            Simulation.builder().workload("llama3-70b").tier("gigantic")

    def test_builder_accepts_policy_config(self):
        custom = PolicyConfig(throttle=ThrottleKind.LCS)
        scenario = (
            Simulation.builder().workload("llama3-70b").policy(custom).tier("smoke").build()
        )
        assert scenario.policy_config == custom
        assert scenario.policy == "lcs"

    def test_later_policy_label_overrides_earlier_config(self):
        custom = PolicyConfig(throttle=ThrottleKind.DYNMG)
        scenario = (
            Simulation.builder()
            .workload("llama3-70b")
            .policy(custom)
            .policy("lcs")
            .tier("smoke")
            .build()
        )
        assert scenario.policy_config is None
        assert scenario.resolve().policy.throttle == ThrottleKind.LCS

    def test_builder_run_matches_scenario_run(self):
        result = (
            Simulation.builder()
            .workload("llama3-70b", seq_len=256)
            .policy("unopt")
            .tier("smoke")
            .run()
        )
        again = Scenario(
            workload="llama3-70b", seq_len=256, tier=ScaleTier.SMOKE
        ).run()
        assert result.cycles == again.cycles
        assert result.cycles > 0


class TestSimulationCompare:
    def test_compare_includes_baseline(self):
        simulation = Simulation.of("llama3-70b", seq_len=256, tier=ScaleTier.SMOKE)
        comparison = simulation.compare(["dynmg"], baseline="unopt")
        assert set(comparison.results) == {"unopt", "dynmg"}
        assert comparison.speedup("unopt") == pytest.approx(1.0)

    def test_compare_forwards_ordering_and_constraints(self, monkeypatch):
        """Regression: compare_policies used to silently drop ordering/constraints."""

        from repro.sim import runner as runner_module

        captured = []

        def fake_run_policy(system, workload, policy, label=None, max_cycles=None,
                            ordering=ThreadBlockOrdering.GQA_SHARED, constraints=None):
            captured.append((label, ordering, constraints))

            class _Result:
                cycles = 100

                def speedup_over(self, other):
                    return 1.0

            return _Result()

        monkeypatch.setattr(runner_module, "run_policy", fake_run_policy)
        constraints = DataflowConstraints(output_lines_per_block=2)
        simulation = Simulation.of(
            "llama3-70b", seq_len=256, tier=ScaleTier.SMOKE,
            ordering=ThreadBlockOrdering.SEQUENTIAL, constraints=constraints,
        )
        simulation.compare(["dynmg"], baseline="unopt")
        assert len(captured) == 2
        for _label, ordering, forwarded in captured:
            assert ordering is ThreadBlockOrdering.SEQUENTIAL
            assert forwarded == constraints


class TestScenarioMatrix:
    def test_matrix_is_cartesian(self):
        scenarios = scenario_matrix(
            workloads=("llama3-70b", "llama3-405b"),
            policies=("unopt", "dynmg"),
            tier="smoke",
            seq_len=128,
        )
        assert len(scenarios) == 4
        assert {(s.workload, s.policy) for s in scenarios} == {
            ("llama3-70b", "unopt"),
            ("llama3-70b", "dynmg"),
            ("llama3-405b", "unopt"),
            ("llama3-405b", "dynmg"),
        }
        assert all(s.tier is ScaleTier.SMOKE for s in scenarios)

    def test_matrix_cells_drop_base_policy_config_and_label(self):
        base = Scenario.create(
            "llama3-70b",
            PolicyConfig(throttle=ThrottleKind.DYNMG),
            tier=ScaleTier.SMOKE,
            label="base-label",
        )
        scenarios = scenario_matrix(("llama3-70b",), ("unopt", "lcs"), base=base)
        by_policy = {s.policy: s for s in scenarios}
        assert by_policy["unopt"].resolve().policy.throttle == ThrottleKind.NONE
        assert by_policy["lcs"].resolve().policy.throttle == ThrottleKind.LCS
        assert all(s.label is None for s in scenarios)
