"""Tests for the scenario-component registry subsystem."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.presets import llama3_70b_logit
from repro.registry import (
    POLICIES,
    SCHEDULERS,
    SYSTEMS,
    THROTTLES,
    WORKLOADS,
    Registry,
    register_workload,
    resolve_policy,
    resolve_scheduler,
    resolve_system,
    resolve_workload,
)


class TestGenericRegistry:
    def test_register_and_get(self):
        reg: Registry = Registry("widget")
        reg.register("a", lambda: 1, description="first")
        assert reg.get("a")() == 1
        assert reg.entry("a").description == "first"
        assert "a" in reg
        assert len(reg) == 1

    def test_decorator_returns_target_unchanged(self):
        reg: Registry = Registry("widget")

        @reg.register("fn")
        def fn():
            """Docstring becomes the description."""
            return 42

        assert fn() == 42
        assert reg.get("fn") is fn
        assert reg.entry("fn").description == "Docstring becomes the description."

    def test_duplicate_name_rejected(self):
        reg: Registry = Registry("widget")
        reg.register("a", lambda: 1)
        with pytest.raises(ConfigError, match="already registered"):
            reg.register("a", lambda: 2)

    def test_duplicate_allowed_with_replace(self):
        reg: Registry = Registry("widget")
        reg.register("a", lambda: 1)
        reg.register("a", lambda: 2, replace=True)
        assert reg.get("a")() == 2

    def test_replace_over_alias_evicts_stale_mapping(self):
        reg: Registry = Registry("widget")
        reg.register("canonical", lambda: 1, aliases=("other",))
        reg.register("other", lambda: 2, replace=True)
        # The override is reachable, not shadowed by the stale alias...
        assert reg.get("other")() == 2
        # ...and the original entry still answers under its own name, with the
        # surrendered alias stripped from its listing metadata.
        assert reg.get("canonical")() == 1
        assert reg.names() == ["canonical", "other"]
        assert reg.entry("canonical").aliases == ()

    def test_replace_entry_evicts_its_aliases(self):
        reg: Registry = Registry("widget")
        reg.register("a", lambda: 1, aliases=("b",))
        reg.register("a", lambda: 2, replace=True)
        assert reg.get("a")() == 2
        assert "b" not in reg

    def test_unknown_name_lists_known_names(self):
        reg: Registry = Registry("widget")
        reg.register("alpha", object())
        reg.register("beta", object())
        with pytest.raises(ConfigError, match=r"unknown widget 'gamma'.*alpha.*beta"):
            reg.get("gamma")

    def test_aliases_resolve_to_canonical_entry(self):
        reg: Registry = Registry("widget")
        reg.register("canonical", lambda: 1, aliases=("other", "alt"))
        assert reg.get("other")() == 1
        assert reg.get("alt")() == 1
        assert reg.names() == ["canonical"]

    def test_alias_collision_rejected(self):
        reg: Registry = Registry("widget")
        reg.register("a", lambda: 1, aliases=("b",))
        with pytest.raises(ConfigError, match="already registered"):
            reg.register("b", lambda: 2)

    def test_unregister_removes_entry_and_aliases(self):
        reg: Registry = Registry("widget")
        reg.register("a", lambda: 1, aliases=("b",))
        reg.unregister("a")
        assert "a" not in reg
        assert "b" not in reg
        with pytest.raises(ConfigError):
            reg.unregister("a")

    def test_normalize_makes_lookup_case_insensitive(self):
        reg: Registry = Registry("widget", normalize=str.lower)
        reg.register("MiXeD", lambda: 1)
        assert reg.get("mixed")() == 1
        assert reg.get("MIXED")() == 1


class TestBuiltinRegistries:
    def test_builtin_workloads_registered(self):
        assert {"llama3-70b", "llama3-405b", "llama3-70b-attend", "llama3-405b-attend"} <= set(
            WORKLOADS.names()
        )

    def test_builtin_systems_registered(self):
        assert {"table5", "table5-32core"} <= set(SYSTEMS.names())

    def test_builtin_throttles_cover_every_kind(self):
        for kind in ThrottleKind:
            assert kind.value in THROTTLES

    def test_builtin_schedulers_registered(self):
        assert {"decode-first", "prefill-first", "chunked"} <= set(SCHEDULERS.names())
        # Aliases resolve, and builders honour the uniform prefill_chunk knob.
        assert resolve_scheduler("chunked-prefill") is resolve_scheduler("chunked")
        assert resolve_scheduler("chunked")(prefill_chunk=128).prefill_chunk == 128
        with pytest.raises(ConfigError):
            resolve_scheduler("clairvoyant")

    def test_resolve_workload_matches_preset(self):
        assert resolve_workload("llama3-70b", 1024) == llama3_70b_logit(1024)

    def test_resolve_workload_default_seq_len(self):
        assert resolve_workload("llama3-70b").shape.seq_len == 8192

    def test_resolve_unknown_workload(self):
        with pytest.raises(ConfigError, match="unknown workload 'gpt-7'"):
            resolve_workload("gpt-7", 64)

    def test_new_scenario_variants(self):
        attend = resolve_workload("llama3-405b-attend", 2048)
        assert attend.operator.value == "attend"
        assert attend.shape.group_size == 16
        system = resolve_system("table5-32core")
        assert system.core.num_cores == 32
        assert system.l2.num_slices == 16
        # Per-slice geometry matches the paper's system.
        assert system.l2.slice_size_bytes == resolve_system("table5").l2.slice_size_bytes

    def test_policy_label_resolution_is_case_insensitive(self):
        assert resolve_policy("DYNMG+bma") == resolve_policy("dynmg+BMA")

    def test_policy_alias(self):
        assert resolve_policy("unoptimized") == resolve_policy("unopt")

    def test_compositional_fallback(self):
        policy = resolve_policy("lcs+MA")
        assert policy.throttle == ThrottleKind.LCS
        assert policy.arbitration == ArbitrationKind.MSHR_AWARE
        assert "lcs+MA".lower() not in [n.lower() for n in POLICIES.names()]

    def test_unknown_policy_component(self):
        with pytest.raises(ConfigError, match="unknown policy 'dynmg\\+warp'"):
            resolve_policy("dynmg+warp")


class TestThrottleFactoryRegistry:
    def test_factory_builds_registered_controller(self):
        from repro.throttle.dynmg import DynMgController
        from repro.throttle.factory import make_throttle_controller

        controller = make_throttle_controller(PolicyConfig(throttle=ThrottleKind.DYNMG))
        assert isinstance(controller, DynMgController)


class TestExtensibility:
    """A workload registered via the decorator is usable everywhere at once."""

    def test_registered_workload_reaches_every_layer(self, capsys):
        from repro.api import Scenario, Simulation
        from repro.cli import main
        from repro.sweep.spec import SweepSpec

        @register_workload("test-tiny", description="throwaway test workload")
        def tiny_builder(seq_len: int = 64):
            return llama3_70b_logit(seq_len).with_seq_len(seq_len)

        try:
            # Declarative sweep grids validate and expand it...
            spec = SweepSpec(
                models=("test-tiny",), seq_lens=(64,), policies=("unopt",)
            ).validate()
            (point,) = spec.expand()
            assert point.workload.shape.seq_len == 64
            # ...the facade builder resolves it...
            scenario = Simulation.builder().workload("test-tiny", seq_len=64).build()
            assert isinstance(scenario, Scenario)
            # ...and the CLI lists it, with zero edits anywhere.
            assert main(["list", "workloads"]) == 0
            assert "test-tiny" in capsys.readouterr().out
        finally:
            WORKLOADS.unregister("test-tiny")
        assert "test-tiny" not in WORKLOADS
