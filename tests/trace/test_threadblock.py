"""Tests for the thread-block / trace containers."""

import pytest

from repro.common.errors import TraceError
from repro.common.types import AccessType, TraceEntry
from repro.trace.threadblock import ThreadBlock, Trace


def block(tb_id=0, n=4, base=0x1000):
    entries = [
        TraceEntry(compute_cycles=1, addr=base + i * 64, rw=AccessType.READ) for i in range(n)
    ]
    return ThreadBlock(tb_id=tb_id, h=0, g=0, tile_index=0, entries=entries)


class TestThreadBlock:
    def test_counts(self):
        b = block(n=5)
        assert b.num_entries == 5
        assert b.num_accesses == 5
        assert b.num_reads == 5
        assert b.num_writes == 0
        assert b.compute_cycles == 5

    def test_touched_lines_deduplicates(self):
        entries = [
            TraceEntry(0, 0x100), TraceEntry(0, 0x104), TraceEntry(0, 0x140),
        ]
        b = ThreadBlock(tb_id=0, h=0, g=0, tile_index=0, entries=entries)
        assert b.touched_lines(64) == {0x100, 0x140}

    def test_validate_rejects_empty(self):
        with pytest.raises(TraceError):
            ThreadBlock(tb_id=0, h=0, g=0, tile_index=0, entries=[]).validate()

    def test_rejects_negative_id(self):
        with pytest.raises(TraceError):
            ThreadBlock(tb_id=-1, h=0, g=0, tile_index=0)

    def test_rejects_bad_entries(self):
        bad = ThreadBlock(
            tb_id=0, h=0, g=0, tile_index=0,
            entries=[TraceEntry(compute_cycles=-1, addr=0x40)],
        )
        with pytest.raises(TraceError):
            bad.validate()


class TestTrace:
    def test_aggregate_counts(self):
        trace = Trace(blocks=[block(0, 3, 0x1000), block(1, 5, 0x2000)])
        assert len(trace) == 2
        assert trace.total_accesses == 8
        assert trace.total_reads == 8
        assert trace.total_writes == 0

    def test_footprint(self):
        trace = Trace(blocks=[block(0, 4, 0x1000), block(1, 4, 0x1000)])
        assert trace.footprint_lines() == 4
        assert trace.footprint_bytes() == 256

    def test_validate_rejects_duplicate_ids(self):
        trace = Trace(blocks=[block(0), block(0, base=0x9000)])
        with pytest.raises(TraceError):
            trace.validate()

    def test_validate_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            Trace().validate()

    def test_indexing_and_iteration(self):
        blocks = [block(i, 2, 0x1000 * (i + 1)) for i in range(3)]
        trace = Trace(blocks=blocks)
        assert trace[1] is blocks[1]
        assert [b.tb_id for b in trace] == [0, 1, 2]
