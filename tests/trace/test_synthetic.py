"""Tests for the synthetic trace generators."""

from repro.common.types import AccessType
from repro.trace.stats import compute_trace_stats
from repro.trace.synthetic import (
    make_pointer_chase_trace,
    make_random_trace,
    make_shared_hotset_trace,
    make_stream_trace,
    make_write_stream_trace,
)


class TestStreamTrace:
    def test_every_line_touched_once(self):
        trace = make_stream_trace(num_blocks=4, lines_per_block=16)
        stats = compute_trace_stats(trace)
        assert stats.total_accesses == 64
        assert stats.unique_lines == 64
        assert stats.avg_reuse == 1.0

    def test_blocks_are_disjoint(self):
        trace = make_stream_trace(num_blocks=2, lines_per_block=8)
        assert not (trace[0].touched_lines(64) & trace[1].touched_lines(64))


class TestHotsetTrace:
    def test_all_blocks_share_the_hot_set(self):
        trace = make_shared_hotset_trace(num_blocks=4, lines_per_block=32, hot_lines=16)
        stats = compute_trace_stats(trace)
        assert stats.unique_lines == 16
        assert stats.avg_reuse == (4 * 32) / 16


class TestRandomTrace:
    def test_respects_footprint_bound(self):
        trace = make_random_trace(num_blocks=4, lines_per_block=64, footprint_lines=128)
        stats = compute_trace_stats(trace)
        assert stats.unique_lines <= 128

    def test_deterministic_for_same_seed(self):
        a = make_random_trace(seed=3)
        b = make_random_trace(seed=3)
        assert [e.addr for e in a[0].entries] == [e.addr for e in b[0].entries]

    def test_different_seeds_differ(self):
        a = make_random_trace(seed=3)
        b = make_random_trace(seed=4)
        assert [e.addr for e in a[0].entries] != [e.addr for e in b[0].entries]


class TestPointerChase:
    def test_no_line_reuse_within_block(self):
        trace = make_pointer_chase_trace(num_blocks=1, chain_length=64)
        block = trace[0]
        assert len(block.touched_lines(64)) == 64


class TestWriteStream:
    def test_all_writes(self):
        trace = make_write_stream_trace(num_blocks=2, lines_per_block=8)
        for block in trace:
            assert all(e.rw == AccessType.WRITE for e in block.entries)
