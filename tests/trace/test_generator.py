"""Tests for the mapping -> trace unrolling."""

import pytest

from repro.common.types import AccessType, RequestKind
from repro.config.presets import llama3_70b_logit, table5_system
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig
from repro.dataflow.ordering import ThreadBlockOrdering
from repro.trace.generator import generate_trace
from repro.trace.stats import compute_trace_stats
from repro.workloads.layout import build_layout


@pytest.fixture(scope="module")
def small_trace():
    wl = WorkloadConfig(
        name="small", shape=GQAShape(2, 4, 128, 128), operator=OperatorKind.LOGIT
    ).validate()
    return wl, generate_trace(wl, table5_system())


class TestTraceShape:
    def test_block_count_matches_mapping(self, small_trace):
        wl, trace = small_trace
        # H * G * (L / 32) blocks
        assert len(trace) == 2 * 4 * (128 // 32)

    def test_kv_lines_per_block(self, small_trace):
        """Each Logit block reads inner_tile K rows of 4 cache lines each (fp16, D=128)."""

        _, trace = small_trace
        block = trace[0]
        kv_accesses = [e for e in block.entries if e.kind == RequestKind.KV]
        assert len(kv_accesses) == 32 * 4

    def test_query_loaded_once_per_block(self, small_trace):
        _, trace = small_trace
        block = trace[0]
        q_accesses = [e for e in block.entries if e.kind == RequestKind.ACTIVATION]
        assert len(q_accesses) == 4  # 128 elements * 2 B / 64 B lines

    def test_output_written_once_per_block(self, small_trace):
        _, trace = small_trace
        block = trace[0]
        out = [e for e in block.entries if e.kind == RequestKind.OUTPUT]
        assert len(out) == 1
        assert all(e.rw == AccessType.WRITE for e in out)

    def test_compute_attached_to_each_kv_row(self, small_trace):
        _, trace = small_trace
        block = trace[0]
        compute_entries = [e for e in block.entries if e.compute_cycles > 0]
        assert len(compute_entries) == 32  # one vector MAC per K row

    def test_addresses_fall_inside_operands(self, small_trace):
        wl, trace = small_trace
        layout = build_layout(wl)
        for block in list(trace)[:4]:
            for entry in block.entries:
                assert layout.operand_of(entry.addr) is not None


class TestGQASharing:
    def test_blocks_of_same_group_share_kv_lines(self, small_trace):
        """Blocks with the same (h, tile) but different g touch identical K lines."""

        _, trace = small_trace
        blocks = [b for b in trace if b.h == 0 and b.tile_index == 0]
        assert len(blocks) == 4
        kv_sets = [
            {e.addr for e in b.entries if e.kind == RequestKind.KV} for b in blocks
        ]
        assert kv_sets[0] == kv_sets[1] == kv_sets[2] == kv_sets[3]

    def test_blocks_of_different_tiles_are_disjoint_in_kv(self, small_trace):
        _, trace = small_trace
        b0 = next(b for b in trace if b.h == 0 and b.g == 0 and b.tile_index == 0)
        b1 = next(b for b in trace if b.h == 0 and b.g == 0 and b.tile_index == 1)
        kv0 = {e.addr for e in b0.entries if e.kind == RequestKind.KV}
        kv1 = {e.addr for e in b1.entries if e.kind == RequestKind.KV}
        assert not (kv0 & kv1)

    def test_gqa_shared_ordering_places_sharers_adjacently(self, small_trace):
        _, trace = small_trace
        first_four = list(trace)[:4]
        assert {b.h for b in first_four} == {0}
        assert {b.tile_index for b in first_four} == {0}
        assert [b.g for b in first_four] == [0, 1, 2, 3]

    def test_sequential_ordering_differs(self):
        wl = WorkloadConfig(
            name="seq", shape=GQAShape(2, 4, 128, 128), operator=OperatorKind.LOGIT
        ).validate()
        trace = generate_trace(wl, table5_system(), ordering=ThreadBlockOrdering.SEQUENTIAL)
        first_four = list(trace)[:4]
        assert [b.g for b in first_four] == [0, 0, 0, 0]


class TestFootprint:
    def test_unique_lines_match_workload_footprint(self, small_trace):
        wl, trace = small_trace
        stats = compute_trace_stats(trace)
        # Footprint = KV + Q + output, rounded up to lines.
        expected_bytes = wl.working_set_bytes
        assert stats.footprint_bytes == pytest.approx(expected_bytes, rel=0.05)

    def test_reuse_factor_reflects_group_size(self, small_trace):
        """Each K line is read by G blocks, so average reuse is close to G."""

        wl, trace = small_trace
        stats = compute_trace_stats(trace)
        assert stats.avg_reuse == pytest.approx(wl.shape.group_size, rel=0.2)

    def test_llama_70b_trace_scales_with_seq_len(self):
        system = table5_system()
        t1 = generate_trace(llama3_70b_logit(128), system)
        t2 = generate_trace(llama3_70b_logit(256), system)
        assert t2.total_accesses == pytest.approx(2 * t1.total_accesses, rel=0.05)

    def test_attend_operator_trace_generates(self):
        wl = WorkloadConfig(
            name="attend", shape=GQAShape(1, 2, 128, 64), operator=OperatorKind.ATTEND
        ).validate()
        trace = generate_trace(wl, table5_system())
        stats = compute_trace_stats(trace)
        assert stats.total_accesses > 0
        assert stats.total_writes > 0
