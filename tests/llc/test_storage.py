"""Tests for the set-associative cache storage (LRU, dirtiness, evictions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.llc.storage import CacheStorage


def make_storage(num_sets=4, assoc=2):
    # Direct modulo indexing keeps the expected set for a line obvious in tests.
    return CacheStorage(num_sets, assoc, index_fn=lambda line: (line // 64) % num_sets)


class TestLookupAndFill:
    def test_miss_then_hit_after_fill(self):
        storage = make_storage()
        assert not storage.lookup(0x1000)
        storage.fill(0x1000)
        assert storage.lookup(0x1000)

    def test_fill_returns_victim_when_set_full(self):
        storage = make_storage(num_sets=1, assoc=2)
        storage.fill(0x000)
        storage.fill(0x040)
        victim = storage.fill(0x080)
        assert victim is not None
        assert victim.line_addr == 0x000
        assert storage.evictions == 1

    def test_lru_order_respects_recency(self):
        storage = make_storage(num_sets=1, assoc=2)
        storage.fill(0x000)
        storage.fill(0x040)
        storage.lookup(0x000)          # refresh line 0 -> line 0x040 becomes LRU
        victim = storage.fill(0x080)
        assert victim.line_addr == 0x040

    def test_lookup_without_lru_update_keeps_order(self):
        storage = make_storage(num_sets=1, assoc=2)
        storage.fill(0x000)
        storage.fill(0x040)
        storage.lookup(0x000, update_lru=False)
        victim = storage.fill(0x080)
        assert victim.line_addr == 0x000

    def test_refill_of_present_line_evicts_nothing(self):
        storage = make_storage(num_sets=1, assoc=2)
        storage.fill(0x000)
        assert storage.fill(0x000) is None
        assert storage.occupancy == 1


class TestDirtiness:
    def test_mark_dirty_and_dirty_eviction(self):
        storage = make_storage(num_sets=1, assoc=1)
        storage.fill(0x000)
        assert storage.mark_dirty(0x000)
        victim = storage.fill(0x040)
        assert victim.dirty
        assert storage.dirty_evictions == 1

    def test_mark_dirty_absent_line_returns_false(self):
        storage = make_storage()
        assert not storage.mark_dirty(0x123000)

    def test_fill_dirty_flag_merges(self):
        storage = make_storage(num_sets=1, assoc=2)
        storage.fill(0x000, dirty=False)
        storage.fill(0x000, dirty=True)
        assert storage.is_dirty(0x000)

    def test_clean_eviction_not_counted_dirty(self):
        storage = make_storage(num_sets=1, assoc=1)
        storage.fill(0x000)
        storage.fill(0x040)
        assert storage.dirty_evictions == 0


class TestInvalidateAndInspection:
    def test_invalidate(self):
        storage = make_storage()
        storage.fill(0x1000)
        assert storage.invalidate(0x1000)
        assert not storage.contains(0x1000)
        assert not storage.invalidate(0x1000)

    def test_capacity_and_occupancy(self):
        storage = make_storage(num_sets=4, assoc=2)
        assert storage.capacity_lines == 8
        storage.fill(0x000)
        storage.fill(0x040)
        assert storage.occupancy == 2
        assert sorted(storage.resident_lines()) == [0x000, 0x040]

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            CacheStorage(0, 4, index_fn=lambda a: 0)

    def test_index_fn_out_of_range_detected(self):
        storage = CacheStorage(2, 2, index_fn=lambda a: 5)
        with pytest.raises(ConfigError):
            storage.lookup(0x40)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_property_occupancy_never_exceeds_capacity(line_indices):
    """Whatever the access pattern, occupancy stays within num_sets * assoc."""

    storage = CacheStorage(4, 2, index_fn=lambda line: (line // 64) % 4)
    for idx in line_indices:
        addr = idx * 64
        if not storage.lookup(addr):
            storage.fill(addr)
        assert storage.occupancy <= storage.capacity_lines
    # Everything resident must still be findable.
    for line in storage.resident_lines():
        assert storage.contains(line)
