"""Tests for the LLC slice pipeline (Fig 4): hits, misses, merges, stalls, fills."""

from __future__ import annotations

import pytest

from repro.arbiter.fcfs import FcfsArbiter
from repro.common.address import AddressMap
from repro.common.types import AccessType, MemRequest
from repro.config.system import L2Config, ReqRespArbitration
from repro.llc.slice import LLCSlice


class SliceHarness:
    """Drives a single slice with scripted requests and a perfect DRAM stub."""

    def __init__(self, l2: L2Config | None = None, dram_latency: int = 40,
                 dram_always_accepts: bool = True):
        self.config = l2 if l2 is not None else L2Config(
            size_bytes=64 * 1024, num_slices=1, mshr_num_entries=2, mshr_num_targets=4,
        )
        self.responses = []
        self.dram_queue: list[tuple[int, int, bool]] = []   # (ready_cycle, line, is_write)
        self.dram_latency = dram_latency
        self.dram_always_accepts = dram_always_accepts
        self.dram_rejects = 0
        amap = AddressMap(line_size=self.config.line_size, num_slices=self.config.num_slices)
        self.arbiter = FcfsArbiter(num_cores=4)
        self.slice = LLCSlice(
            slice_id=0,
            config=self.config,
            address_map=amap,
            arbiter=self.arbiter,
            response_sink=lambda resp, cycle, delay: self.responses.append((cycle + delay, resp)),
            dram_sink=self._dram_sink,
        )
        self.cycle = 0

    def _dram_sink(self, line_addr: int, is_write: bool, slice_id: int) -> bool:
        if not self.dram_always_accepts:
            self.dram_rejects += 1
            return False
        self.dram_queue.append((self.cycle + self.dram_latency, line_addr, is_write))
        return True

    def push(self, addr: int, rw=AccessType.READ, core=0) -> bool:
        return self.slice.accept_request(
            MemRequest(addr=addr, rw=rw, core_id=core), self.cycle
        )

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            # Deliver due DRAM fills (reads only).
            due = [d for d in self.dram_queue if d[0] <= self.cycle and not d[2]]
            for ready, line, is_write in due:
                self.dram_queue.remove((ready, line, is_write))
                self.slice.on_dram_fill(line, self.cycle)
            self.slice.tick(self.cycle)
            self.cycle += 1


class TestHitAndMissPaths:
    def test_miss_goes_to_dram_and_returns(self):
        h = SliceHarness()
        h.push(0x1000)
        h.run(100)
        assert h.slice.misses == 1
        assert h.slice.hits == 0
        assert h.slice.dram_reads_issued == 1
        assert len(h.responses) == 1
        assert h.responses[0][1].served_by == "dram"

    def test_hit_after_fill_served_from_cache(self):
        h = SliceHarness()
        h.push(0x1000)
        h.run(100)                      # line now resident (fill path)
        h.push(0x1000, core=1)
        h.run(50)
        assert h.slice.hits == 1
        assert any(r.served_by == "l2" for _, r in h.responses)

    def test_hit_latency_is_hit_plus_data_latency(self):
        h = SliceHarness()
        h.push(0x1000)
        h.run(100)
        h.responses.clear()
        start = h.cycle
        h.push(0x1000)
        h.run(40)
        ready_cycle, resp = h.responses[0]
        expected = h.config.hit_latency + h.config.data_latency
        # One cycle of queueing (request accepted on cycle N, selected on N+1 at the earliest).
        assert ready_cycle - start >= expected
        assert ready_cycle - start <= expected + 4

    def test_concurrent_same_line_misses_merge(self):
        h = SliceHarness()
        h.push(0x2000, core=0)
        h.push(0x2000, core=1)
        h.push(0x2000, core=1)
        h.run(120)
        assert h.slice.mshr_allocations == 1
        assert h.slice.mshr_merges == 2
        assert h.slice.dram_reads_issued == 1      # merged requests share one fetch
        assert len(h.responses) == 3
        assert h.slice.mshr_hit_rate() == pytest.approx(2 / 3)

    def test_write_miss_allocates_and_marks_dirty(self):
        h = SliceHarness()
        h.push(0x3000, rw=AccessType.WRITE)
        h.run(120)
        assert h.slice.misses == 1
        assert h.slice.storage.is_dirty(0x3000)

    def test_write_hit_marks_dirty(self):
        h = SliceHarness()
        h.push(0x3000)
        h.run(100)
        h.push(0x3000, rw=AccessType.WRITE)
        h.run(40)
        assert h.slice.storage.is_dirty(0x3000)


class TestStalls:
    def test_mshr_entry_exhaustion_stalls_pipeline(self):
        """With 2 entries, a third distinct miss must stall until a fill returns."""

        h = SliceHarness(dram_latency=200)
        for i in range(3):
            h.push(0x1000 + i * 64, core=i)
        h.run(100)   # not enough time for DRAM to return
        assert h.slice.stalled
        assert h.slice.stall_cycles > 0
        assert h.slice.mshr_allocations == 2
        h.run(600)   # fills arrive, stall clears, third miss proceeds and returns
        assert not h.slice.stalled
        assert h.slice.mshr_allocations == 3
        assert len(h.responses) == 3

    def test_stall_blocks_even_hits(self):
        """While the MSHR stage is stalled, a would-be hit behind it is not served."""

        h = SliceHarness(dram_latency=500)
        h.push(0x1000, core=0)
        h.run(560)                      # wait for the fill: 0x1000 is now resident
        hits_before = h.slice.hits
        # Fill the MSHR (2 entries) and one more distinct miss to stall the pipeline.
        h.push(0x8000, core=1)
        h.push(0x8040, core=2)
        h.push(0x8080, core=3)
        h.run(30)                       # the third miss is now stalled in the MSHR stage
        assert h.slice.stalled
        h.push(0x1000, core=0)          # a would-be hit stuck behind the stall
        h.run(60)
        assert h.slice.stalled
        assert h.slice.hits == hits_before

    def test_dram_backlog_drains_when_channel_frees(self):
        h = SliceHarness(dram_always_accepts=False)
        h.push(0x4000)
        h.run(30)
        assert h.dram_rejects > 0
        h.dram_always_accepts = True
        h.run(100)
        assert h.slice.dram_reads_issued == 1


class TestFillsAndWritebacks:
    def test_fill_installs_line(self):
        h = SliceHarness()
        h.push(0x5000)
        h.run(120)
        assert h.slice.storage.contains(0x5000)
        assert h.slice.fills_written == 1

    def test_dirty_eviction_issues_writeback(self):
        """A tiny 1-set cache forces dirty lines out, producing DRAM writes."""

        cfg = L2Config(
            size_bytes=1024, num_slices=1, associativity=2,
            mshr_num_entries=4, mshr_num_targets=4,
        )
        # 1 KiB / 64 B / 2-way = 8 sets; use addresses in the same set.
        h = SliceHarness(l2=cfg)
        set_stride = 8 * 64
        for i in range(4):
            h.push(0x10000 + i * set_stride, rw=AccessType.WRITE, core=i % 4)
            h.run(200)
        assert h.slice.writebacks > 0
        assert h.slice.dram_writes_issued == h.slice.writebacks


class TestReqRespArbitration:
    def test_response_first_policy_prefers_fills(self):
        h = SliceHarness()
        assert h.config.req_resp_arbitration == ReqRespArbitration.RESPONSE_FIRST
        h.push(0x6000)
        h.run(120)
        # After the run the response queue must be drained (fills always get the port).
        assert len(h.slice.response_queue) == 0

    def test_request_queue_rejects_when_full(self):
        h = SliceHarness()
        accepted = sum(h.push(0x7000 + i * 64) for i in range(h.config.req_q_size + 4))
        assert accepted == h.config.req_q_size
        assert h.slice.requests_rejected == 4
