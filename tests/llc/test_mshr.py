"""Tests for the MSHR file: merging, stalls in both dimensions, occupancy accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SimulationError
from repro.common.types import AccessType, MemRequest
from repro.llc.mshr import MshrFile


def req(addr, core=0):
    return MemRequest(addr=addr, rw=AccessType.READ, core_id=core).aligned(64)


class TestReservation:
    def test_first_miss_allocates(self):
        mshr = MshrFile(num_entries=2, num_targets=2)
        assert mshr.reserve(req(0x100), cycle=0) == "allocated"
        assert mshr.occupancy == 1
        assert mshr.allocations == 1

    def test_same_line_merges(self):
        mshr = MshrFile(2, 4)
        mshr.reserve(req(0x100), 0)
        assert mshr.reserve(req(0x100, core=1), 1) == "merged"
        assert mshr.occupancy == 1
        assert mshr.merges == 1

    def test_entry_exhaustion_stalls(self):
        mshr = MshrFile(num_entries=1, num_targets=8)
        mshr.reserve(req(0x100), 0)
        assert mshr.reserve(req(0x200), 1) == "stall"
        assert mshr.alloc_failures_full_entries == 1

    def test_target_exhaustion_stalls(self):
        mshr = MshrFile(num_entries=4, num_targets=2)
        mshr.reserve(req(0x100), 0)
        mshr.reserve(req(0x100), 1)
        assert mshr.reserve(req(0x100), 2) == "stall"
        assert mshr.merge_failures_full_targets == 1

    def test_free_returns_all_targets(self):
        mshr = MshrFile(2, 4)
        r1, r2, r3 = req(0x100, 0), req(0x100, 1), req(0x100, 2)
        mshr.reserve(r1, 0)
        mshr.reserve(r2, 1)
        mshr.reserve(r3, 2)
        entry = mshr.free(0x100, 10)
        assert [t.core_id for t in entry.targets] == [0, 1, 2]
        assert mshr.occupancy == 0

    def test_free_absent_line_raises(self):
        mshr = MshrFile(2, 4)
        with pytest.raises(SimulationError):
            mshr.free(0x500, 0)

    def test_reserve_after_free_allocates_again(self):
        mshr = MshrFile(1, 2)
        mshr.reserve(req(0x100), 0)
        mshr.free(0x100, 5)
        assert mshr.reserve(req(0x200), 6) == "allocated"


class TestSnapshot:
    def test_pending_lines_reflect_open_entries(self):
        mshr = MshrFile(4, 2)
        mshr.reserve(req(0x100), 0)
        mshr.reserve(req(0x240), 0)
        assert mshr.pending_lines() == {0x100, 0x240}

    def test_can_merge(self):
        mshr = MshrFile(4, 2)
        mshr.reserve(req(0x100), 0)
        assert mshr.can_merge(0x100)
        mshr.reserve(req(0x100), 0)
        assert not mshr.can_merge(0x100)
        assert not mshr.can_merge(0x999)


class TestOccupancyAccounting:
    def test_average_occupancy_simple(self):
        mshr = MshrFile(2, 2)
        mshr.reserve(req(0x100), 0)      # occupied 1 from cycle 0
        mshr.free(0x100, 50)             # ... until 50
        assert mshr.average_occupancy(100) == pytest.approx(0.5)
        assert mshr.utilization(100) == pytest.approx(0.25)

    def test_peak_occupancy(self):
        mshr = MshrFile(3, 1)
        mshr.reserve(req(0x100), 0)
        mshr.reserve(req(0x200), 0)
        mshr.free(0x100, 10)
        assert mshr.peak_occupancy == 2

    def test_time_must_be_monotonic(self):
        mshr = MshrFile(2, 2)
        mshr.reserve(req(0x100), 10)
        with pytest.raises(SimulationError):
            mshr.free(0x100, 5)

    def test_zero_final_cycle(self):
        assert MshrFile(2, 2).average_occupancy(0) == 0.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_property_mshr_never_exceeds_dimensions(line_ids, num_entries, num_targets):
    """Reservations never overflow either MSHR dimension, whatever the pattern."""

    mshr = MshrFile(num_entries, num_targets)
    cycle = 0
    for line_id in line_ids:
        cycle += 1
        outcome = mshr.reserve(req(line_id * 64), cycle)
        assert outcome in ("allocated", "merged", "stall")
        assert mshr.occupancy <= num_entries
        entry = mshr.lookup(line_id * 64)
        if entry is not None:
            assert entry.num_targets <= num_targets
        # Randomly free a line occasionally to keep the file moving.
        if outcome == "stall" and mshr.occupancy:
            some_line = next(iter(mshr.pending_lines()))
            mshr.free(some_line, cycle)
