"""Tests for the private streaming L1."""

from repro.config.system import L1Config
from repro.cores.l1 import L1Cache


class TestL1Reads:
    def test_cold_read_misses(self):
        l1 = L1Cache(L1Config())
        assert not l1.access_read(0x1000)
        assert l1.read_misses == 1

    def test_hit_after_fill(self):
        l1 = L1Cache(L1Config())
        l1.access_read(0x1000)
        l1.fill(l1.line_addr(0x1000))
        assert l1.access_read(0x1010)       # same line, different offset
        assert l1.read_hits == 1

    def test_no_allocation_on_miss(self):
        """Allocate-on-fill: a miss alone does not install the line."""

        l1 = L1Cache(L1Config())
        l1.access_read(0x1000)
        assert not l1.access_read(0x1000)
        assert l1.read_misses == 2

    def test_hit_rate(self):
        l1 = L1Cache(L1Config())
        l1.access_read(0x0)
        l1.fill(0x0)
        l1.access_read(0x0)
        assert l1.hit_rate == 0.5


class TestL1Writes:
    def test_writes_never_allocate(self):
        l1 = L1Cache(L1Config())
        l1.access_write(0x2000)
        assert l1.writes == 1
        assert not l1.access_read(0x2000)

    def test_write_to_present_line_keeps_it_resident(self):
        l1 = L1Cache(L1Config())
        l1.fill(0x2000)
        l1.access_write(0x2000)
        assert l1.access_read(0x2000)


class TestCapacity:
    def test_streaming_evicts_old_lines(self):
        cfg = L1Config(size_bytes=4096)      # 64 lines, 8 sets
        l1 = L1Cache(cfg)
        lines = [i * 64 for i in range(256)]
        for line in lines:
            l1.fill(line)
        # Early lines must have been evicted.
        assert not l1.access_read(lines[0])
        # The most recent line is still resident.
        assert l1.access_read(lines[-1])

    def test_line_addr_alignment(self):
        l1 = L1Cache(L1Config())
        assert l1.line_addr(0x1234) == 0x1200
