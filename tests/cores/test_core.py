"""Tests for the vector core: issue, window switching, throttling, draining."""

from __future__ import annotations

from repro.common.types import MemResponse
from repro.config.system import CoreConfig, L1Config
from repro.cores.core import VectorCore
from repro.cores.l1 import L1Cache
from repro.cores.scheduler import ThreadBlockScheduler
from repro.trace.synthetic import make_stream_trace


class CoreHarness:
    """One core, a scripted scheduler and an always/never-accepting memory sink."""

    def __init__(self, num_blocks=4, lines_per_block=8, accept=True, response_latency=10,
                 num_windows=4):
        self.trace = make_stream_trace(num_blocks=num_blocks, lines_per_block=lines_per_block)
        self.scheduler = ThreadBlockScheduler(self.trace)
        self.accept = accept
        self.response_latency = response_latency
        self.in_flight: list[tuple[int, object]] = []
        config = CoreConfig(num_cores=1, num_inst_windows=num_windows)
        self.core = VectorCore(
            core_id=0,
            config=config,
            l1=L1Cache(L1Config()),
            request_sink=self._sink,
            scheduler=self.scheduler,
        )
        self.cycle = 0
        self.requests = []

    def _sink(self, req, cycle):
        if not self.accept:
            return False
        self.requests.append(req)
        self.in_flight.append((cycle + self.response_latency, req))
        return True

    def run(self, cycles):
        for _ in range(cycles):
            due = [item for item in self.in_flight if item[0] <= self.cycle]
            for item in due:
                self.in_flight.remove(item)
                req = item[1]
                self.core.receive(
                    MemResponse(
                        req_id=req.req_id, core_id=0, tb_id=req.tb_id,
                        line_addr=req.addr - req.addr % 64, rw=req.rw,
                        complete_cycle=self.cycle,
                    ),
                    self.cycle,
                )
            self.core.tick(self.cycle)
            self.cycle += 1


class TestExecution:
    def test_completes_all_thread_blocks(self):
        h = CoreHarness(num_blocks=4, lines_per_block=8)
        h.run(600)
        assert h.core.stat_completed_blocks == 4
        assert h.scheduler.all_complete
        assert len(h.requests) == 4 * 8        # stream trace: every access misses L1

    def test_outstanding_drains_to_zero(self):
        h = CoreHarness()
        h.run(600)
        assert h.core.outstanding_requests == 0
        assert not h.core.busy

    def test_idle_after_work_exhausted(self):
        h = CoreHarness(num_blocks=1, lines_per_block=4)
        h.run(300)
        idle_before = h.core.stat_idle_cycles
        h.run(50)
        assert h.core.stat_idle_cycles >= idle_before + 50

    def test_multiple_windows_filled(self):
        h = CoreHarness(num_blocks=4, num_windows=4)
        # The scheduler hands out at most one block per core per cycle.
        h.run(5)
        assert sum(1 for w in h.core.windows if w.busy) == 4


class TestBackpressure:
    def test_no_issue_under_backpressure(self):
        h = CoreHarness(accept=False)
        h.run(50)
        assert not h.requests
        assert h.core.stat_backpressure_stalls > 0
        assert h.core.stat_mem_stall_cycles > 0

    def test_pending_request_issued_once_pressure_clears(self):
        h = CoreHarness(accept=False, num_blocks=1, lines_per_block=4)
        h.run(20)
        h.accept = True
        h.run(200)
        assert h.core.stat_completed_blocks == 1
        # No duplicate requests: exactly one per trace access.
        assert len(h.requests) == 4


class TestThrottling:
    def test_max_running_blocks_limits_active_windows(self):
        h = CoreHarness(num_blocks=8, num_windows=4)
        h.core.set_max_running_blocks(2)
        h.run(5)
        busy = sum(1 for w in h.core.windows if w.busy)
        assert busy == 2

    def test_limit_clamped_to_hardware_range(self):
        h = CoreHarness()
        h.core.set_max_running_blocks(0)
        assert h.core.max_running_blocks == 1
        h.core.set_max_running_blocks(99)
        assert h.core.max_running_blocks == 4

    def test_adjust_relative(self):
        h = CoreHarness()
        h.core.set_max_running_blocks(2)
        h.core.adjust_max_running_blocks(+1)
        assert h.core.max_running_blocks == 3
        h.core.adjust_max_running_blocks(-2)
        assert h.core.max_running_blocks == 1

    def test_throttled_core_still_finishes(self):
        h = CoreHarness(num_blocks=6)
        h.core.set_max_running_blocks(1)
        h.run(1500)
        assert h.core.stat_completed_blocks == 6

    def test_counters_exposed_for_controllers(self):
        h = CoreHarness()
        h.run(100)
        counters = h.core.counters()
        assert set(counters) == {
            "mem_stall", "idle", "active", "compute", "issued", "completed_blocks",
        }
        assert counters["issued"] > 0
