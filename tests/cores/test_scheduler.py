"""Tests for the global thread-block scheduler."""

import pytest

from repro.cores.scheduler import ThreadBlockScheduler
from repro.trace.synthetic import make_stream_trace


class TestDispatch:
    def setup_method(self):
        self.trace = make_stream_trace(num_blocks=8, lines_per_block=4)
        self.sched = ThreadBlockScheduler(self.trace)

    def test_blocks_dispatched_in_trace_order(self):
        ids = [self.sched.next_block(core_id=0).tb_id for _ in range(8)]
        assert ids == list(range(8))

    def test_exhaustion_returns_none(self):
        for _ in range(8):
            self.sched.next_block(0)
        assert self.sched.next_block(0) is None
        assert not self.sched.has_pending

    def test_any_core_can_pull_work(self):
        """The global queue redistributes blocks to whichever core asks (the
        paper's fix for Ramulator2's fixed per-core trace files)."""

        a = self.sched.next_block(core_id=0)
        b = self.sched.next_block(core_id=3)
        assert a.tb_id == 0 and b.tb_id == 1
        assert self.sched.dispatch_by_core == {0: 1, 3: 1}

    def test_completion_tracking(self):
        block = self.sched.next_block(0)
        assert not self.sched.all_complete
        for _ in range(8):
            self.sched.notify_complete(block)
        assert self.sched.all_complete
        assert self.sched.progress == 1.0

    def test_over_completion_raises(self):
        block = self.sched.next_block(0)
        for _ in range(8):
            self.sched.notify_complete(block)
        with pytest.raises(RuntimeError):
            self.sched.notify_complete(block)

    def test_pending_count(self):
        assert self.sched.pending == 8
        self.sched.next_block(0)
        assert self.sched.pending == 7
