"""Tests for the request-selection policies: FCFS, B, MA, BMA, COBRRA."""

import pytest

from repro.arbiter.balanced import BalancedArbiter
from repro.arbiter.cobrra import CobrraArbiter
from repro.arbiter.factory import make_arbiter
from repro.arbiter.fcfs import FcfsArbiter
from repro.arbiter.mshr_aware import BalancedMshrAwareArbiter, MshrAwareArbiter
from repro.common.fifo import BoundedFifo
from repro.common.types import AccessType, MemRequest
from repro.config.policies import (
    ArbitrationKind,
    CobrraParams,
    MshrAwareParams,
    PolicyConfig,
)
from repro.config.system import L2Config


def req(addr, core=0):
    return MemRequest(addr=addr, rw=AccessType.READ, core_id=core).aligned(64)


def queue_of(*requests):
    q = BoundedFifo(16)
    for r in requests:
        q.push(r)
    return q


def make_ma(balanced=False, num_cores=4):
    cls = BalancedMshrAwareArbiter if balanced else MshrAwareArbiter
    return cls(num_cores, MshrAwareParams(), hit_latency=3, mshr_latency=5)


class TestFcfs:
    def test_always_selects_head(self):
        arb = FcfsArbiter(4)
        q = queue_of(req(0x100, 1), req(0x200, 0))
        assert arb.select(q, set(), 0) == 0

    def test_progress_counters_track_served_cores(self):
        arb = FcfsArbiter(4)
        arb.notify_selected(req(0x100, 2), 0)
        arb.notify_selected(req(0x140, 2), 1)
        arb.notify_selected(req(0x180, 0), 2)
        assert arb.progress_counters == [1, 0, 2, 0]
        arb.reset_progress()
        assert arb.progress_counters == [0, 0, 0, 0]


class TestBalanced:
    def test_selects_least_served_core(self):
        arb = BalancedArbiter(4)
        # Core 0 already served 5 times, core 1 twice.
        for _ in range(5):
            arb.notify_selected(req(0x100, 0), 0)
        for _ in range(2):
            arb.notify_selected(req(0x100, 1), 0)
        q = queue_of(req(0x200, 0), req(0x240, 1), req(0x280, 3))
        # Core 3 has never been served -> its request wins despite being last.
        assert arb.select(q, set(), 0) == 2

    def test_fifo_tiebreak(self):
        arb = BalancedArbiter(4)
        q = queue_of(req(0x200, 1), req(0x240, 2))
        assert arb.select(q, set(), 0) == 0


class TestMshrAware:
    def test_prioritises_speculated_cache_hit(self):
        arb = make_ma()
        arb.notify_hit(0x340, cycle=0)                 # 0x340 recently hit
        q = queue_of(req(0x100, 0), req(0x340, 1), req(0x200, 2))
        assert arb.select(q, set(), 1) == 1

    def test_prioritises_mshr_hit_over_plain_miss(self):
        arb = make_ma()
        q = queue_of(req(0x100, 0), req(0x500, 1))
        assert arb.select(q, {0x500}, 0) == 1

    def test_cache_hit_beats_mshr_hit(self):
        arb = make_ma()
        arb.notify_hit(0x340, cycle=0)
        q = queue_of(req(0x500, 0), req(0x340, 1))
        assert arb.select(q, {0x500}, 1) == 1

    def test_sent_reqs_extends_mshr_view(self):
        """A just-selected miss is treated as an MSHR hit before the MSHR updates."""

        arb = make_ma()
        first = req(0x700, 0)
        q1 = queue_of(first)
        arb.select(q1, set(), 0)
        arb.notify_selected(first, 0)
        # 0x700 is not yet in the MSHR snapshot but lives in sent_reqs.
        q2 = queue_of(req(0x900, 1), req(0x700, 2))
        assert arb.select(q2, set(), 2) == 1

    def test_sent_reqs_expires_after_lookup_latency(self):
        arb = make_ma()
        first = req(0x700, 0)
        arb.select(queue_of(first), set(), 0)
        arb.notify_selected(first, 0)
        q = queue_of(req(0x900, 1), req(0x700, 2))
        # After hit_latency + mshr_latency = 8 cycles the entry is gone.
        assert arb.select(q, set(), 20) == 0

    def test_speculated_hits_do_not_pollute_mshr_view(self):
        arb = make_ma()
        arb.notify_hit(0x340, cycle=0)
        chosen = req(0x340, 0)
        arb.select(queue_of(chosen), set(), 1)
        arb.notify_selected(chosen, 1)
        # 0x340 was a speculated hit, so it must NOT appear as a pending MSHR line.
        q = queue_of(req(0x900, 1), req(0x340, 2))
        index = arb.select(q, set(), 2)
        assert index == 1   # still prioritised, but as a cache hit (rank 0), fine
        # Verify through the sent_reqs view directly:
        assert 0x340 not in arb.sent_reqs.pending_mshr_lines(2)

    def test_fifo_tiebreak_for_ma(self):
        arb = make_ma(balanced=False)
        q = queue_of(req(0x100, 3), req(0x140, 0))
        assert arb.select(q, set(), 0) == 0

    def test_balanced_tiebreak_for_bma(self):
        arb = make_ma(balanced=True)
        for _ in range(3):
            arb.notify_selected(req(0x100, 3), 0)
        q = queue_of(req(0x200, 3), req(0x240, 1))
        assert arb.select(q, set(), 0) == 1

    def test_stats_track_predictions(self):
        arb = make_ma()
        arb.notify_hit(0x340, 0)
        chosen = req(0x340, 0)
        arb.select(queue_of(chosen), set(), 1)
        arb.notify_selected(chosen, 1)
        assert arb.stats.predicted_hits == 1


class TestCobrra:
    def test_request_selection_is_fcfs(self):
        arb = CobrraArbiter(4, CobrraParams())
        q = queue_of(req(0x100, 1), req(0x200, 0))
        assert arb.select(q, set(), 0) == 0

    def test_requests_prioritised_until_resp_queue_fills(self):
        arb = CobrraArbiter(4, CobrraParams(resp_priority_threshold=0.5))
        assert arb.wants_response_priority(0, 64, req_queue_len=8) is False
        assert arb.wants_response_priority(10, 64, req_queue_len=8) is False

    def test_alternates_when_resp_queue_saturated(self):
        arb = CobrraArbiter(4, CobrraParams(resp_priority_threshold=0.5))
        decisions = [arb.wants_response_priority(40, 64, req_queue_len=8) for _ in range(4)]
        assert decisions == [True, False, True, False]

    def test_responses_drain_when_request_queue_empty(self):
        # Regression for the uncore livelock: below-threshold responses must
        # still win the storage port once the request stream dries up.
        arb = CobrraArbiter(4, CobrraParams(resp_priority_threshold=0.5))
        assert arb.wants_response_priority(1, 64, req_queue_len=0) is True
        assert arb.wants_response_priority(31, 64, req_queue_len=0) is True

    def test_grant_counters_centralised_on_base(self):
        arb = CobrraArbiter(4, CobrraParams(resp_priority_threshold=0.5))
        decisions = [
            arb.arbitrate_port(0, 64, 8),
            arb.arbitrate_port(10, 64, 8),
            arb.arbitrate_port(40, 64, 8),
            arb.arbitrate_port(5, 64, 0),
        ]
        assert decisions == [False, False, True, True]
        assert arb.arbitration_calls == 4
        assert arb.request_priority_grants == 2
        assert arb.response_priority_grants == 2
        assert arb.default_priority_grants == 0


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (ArbitrationKind.FCFS, FcfsArbiter),
            (ArbitrationKind.BALANCED, BalancedArbiter),
            (ArbitrationKind.MSHR_AWARE, MshrAwareArbiter),
            (ArbitrationKind.BALANCED_MSHR_AWARE, BalancedMshrAwareArbiter),
            (ArbitrationKind.COBRRA, CobrraArbiter),
        ],
    )
    def test_builds_requested_arbiter(self, kind, cls):
        policy = PolicyConfig(arbitration=kind)
        arbiter = make_arbiter(policy, L2Config(), num_cores=16)
        assert type(arbiter) is cls
        assert arbiter.num_cores == 16

    def test_default_base_arbiter_no_response_override(self):
        arbiter = make_arbiter(PolicyConfig(), L2Config(), 4)
        assert arbiter.wants_response_priority(10, 64, req_queue_len=8) is None
