"""Tests for the hit_buffer and sent_reqs speculation structures (§4.3.1)."""

import pytest

from repro.arbiter.speculation import HitBuffer, SentReqs


class TestHitBuffer:
    def test_contains_after_record(self):
        buf = HitBuffer(4)
        buf.record_hit(0x100)
        assert buf.contains(0x100)
        assert not buf.contains(0x200)

    def test_fifo_eviction_when_full(self):
        buf = HitBuffer(2)
        buf.record_hit(0x100)
        buf.record_hit(0x140)
        buf.record_hit(0x180)
        assert not buf.contains(0x100)
        assert buf.contains(0x140)
        assert buf.contains(0x180)
        assert len(buf) == 2

    def test_duplicate_entries_counted(self):
        buf = HitBuffer(3)
        buf.record_hit(0x100)
        buf.record_hit(0x100)
        buf.record_hit(0x140)
        buf.record_hit(0x180)     # evicts the oldest 0x100, the second copy remains
        assert buf.contains(0x100)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            HitBuffer(0)

    def test_insertions_counter(self):
        buf = HitBuffer(2)
        for _ in range(5):
            buf.record_hit(0x40)
        assert buf.insertions == 5


class TestSentReqs:
    def test_pending_lines_until_expiry(self):
        sent = SentReqs(capacity=4, lifetime=8)
        sent.record(0x100, speculated_hit=False, cycle=0)
        assert sent.pending_mshr_lines(cycle=4) == {0x100}
        assert sent.pending_mshr_lines(cycle=8) == set()

    def test_speculated_hits_are_masked_out(self):
        """Entries marked as speculated cache hits never count towards MSHR view."""

        sent = SentReqs(capacity=4, lifetime=8)
        sent.record(0x100, speculated_hit=True, cycle=0)
        sent.record(0x140, speculated_hit=False, cycle=0)
        assert sent.pending_mshr_lines(cycle=2) == {0x140}

    def test_capacity_drops_oldest(self):
        sent = SentReqs(capacity=2, lifetime=100)
        sent.record(0x100, False, 0)
        sent.record(0x140, False, 1)
        sent.record(0x180, False, 2)
        assert sent.pending_mshr_lines(3) == {0x140, 0x180}

    def test_expire_is_idempotent(self):
        sent = SentReqs(capacity=4, lifetime=5)
        sent.record(0x100, False, 0)
        sent.expire(10)
        sent.expire(10)
        assert len(sent) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SentReqs(0, 5)
        with pytest.raises(ValueError):
            SentReqs(4, 0)
