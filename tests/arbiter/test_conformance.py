"""Arbiter conformance suite: invariants every registered policy must hold.

One parametrized module, run against every entry of the ARBITERS registry
(plugins included: whatever is registered when the tests collect, runs) --
mirroring the scheduler conformance pattern of
``tests/serve/test_conformance.py``.  The shared invariants:

* drain guarantee -- an arbiter never forces request priority while the
  request queue is empty and responses are pending, so the response queue
  always drains once the request stream dries up (the cobrra livelock
  regression of PR 9);
* no phantom response grants -- response priority is never forced while the
  response queue is empty;
* grant-count conservation -- the response/request/default grant counters on
  :class:`BaseArbiter` sum exactly to the number of arbitration calls.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arbiter.base import BaseArbiter
from repro.config.policies import ArbitrationKind, PolicyConfig
from repro.config.system import L2Config
from repro.registry import ARBITERS, resolve_arbiter

RESP_CAPACITY = 64


def arbiter_names() -> list[str]:
    return [entry.name for entry in ARBITERS.entries()]


def build(name: str, num_cores: int = 4) -> BaseArbiter:
    policy = PolicyConfig(arbitration=ArbitrationKind(name))
    return resolve_arbiter(name)(policy, L2Config(), num_cores)


@pytest.mark.parametrize("name", arbiter_names())
class TestArbiterConformance:
    def test_drain_guarantee_with_empty_request_queue(self, name):
        # With no request competing for the storage port, a pending response
        # must never be denied it -- at any occupancy, however long it lasts.
        arb = build(name)
        for resp_len in range(1, RESP_CAPACITY + 1):
            for _ in range(8):
                decision = arb.arbitrate_port(resp_len, RESP_CAPACITY, 0)
                assert decision is not False, (
                    f"{name} forced request priority with an empty request "
                    f"queue and {resp_len} responses pending"
                )

    def test_no_response_priority_with_empty_response_queue(self, name):
        arb = build(name)
        for req_len in range(0, 16):
            assert arb.arbitrate_port(0, RESP_CAPACITY, req_len) is not True

    def test_grant_count_conservation(self, name):
        arb = build(name)
        calls = 0
        for resp_len in range(0, RESP_CAPACITY + 1, 7):
            for req_len in (0, 1, 8, 64):
                arb.arbitrate_port(resp_len, RESP_CAPACITY, req_len)
                calls += 1
        assert arb.arbitration_calls == calls
        assert (
            arb.response_priority_grants
            + arb.request_priority_grants
            + arb.default_priority_grants
            == calls
        )

    @given(
        sequence=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=RESP_CAPACITY),
                st.integers(min_value=0, max_value=64),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_sequence_property(self, name, sequence):
        # Whatever occupancy trajectory the slice presents, every decision is
        # well-formed, the drain guarantee holds and the grant counters stay
        # conserved after every call.
        arb = build(name)
        for step, (resp_len, req_len) in enumerate(sequence, start=1):
            decision = arb.arbitrate_port(resp_len, RESP_CAPACITY, req_len)
            assert decision in (True, False, None)
            if req_len == 0 and resp_len > 0:
                assert decision is not False
            if resp_len == 0:
                assert decision is not True
            assert arb.arbitration_calls == step
            assert (
                arb.response_priority_grants
                + arb.request_priority_grants
                + arb.default_priority_grants
                == step
            )


def test_cobrra_grants_partition_all_calls():
    # COBRRA always decides (never defers to the slice default), so its
    # response + request grants alone account for every arbitration call.
    arb = build("cobrra")
    for resp_len in (0, 1, 10, 31, 40, 64):
        for req_len in (0, 3, 17):
            arb.arbitrate_port(resp_len, RESP_CAPACITY, req_len)
    assert arb.default_priority_grants == 0
    assert (
        arb.response_priority_grants + arb.request_priority_grants
        == arb.arbitration_calls
    )


def test_registry_covers_every_arbitration_kind():
    assert {kind.value for kind in ArbitrationKind} <= set(
        entry.name for entry in ARBITERS.entries()
    )
