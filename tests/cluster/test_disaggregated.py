"""Disaggregated prefill/decode fleets: handoffs, roles, KV-transfer latency."""

import pytest

from repro.cluster.metrics import ClusterMetrics, ReplicaMetrics
from repro.cluster.scenario import ClusterScenario, parse_disaggregated
from repro.cluster.simulator import ClusterSimulator, ReplicaSim
from repro.common.errors import ConfigError
from repro.registry import resolve_router
from repro.serve.arrival import poisson_arrivals
from repro.serve.scheduler import BatchConfig
from repro.serve.stepcost import LinearStepCostModel

from tests.cluster.conftest import make_sampler


def disaggregated_fleet(prefill: int, decode: int, max_batch: int = 2):
    model = LinearStepCostModel()
    roles = ["prefill"] * prefill + ["decode"] * decode
    return [
        ReplicaSim(
            replica_id=i,
            cost_model=model,
            frequency_ghz=2.0,
            batch=BatchConfig(max_batch=max_batch, prefill=True),
            system_name="linear",
            role=role,
        )
        for i, role in enumerate(roles)
    ]


def run_disaggregated(
    prefill: int = 1,
    decode: int = 1,
    seed: int = 0,
    num_requests: int = 12,
    kv_transfer_s: float = 0.0,
    router: str = "round-robin",
) -> ClusterMetrics:
    return ClusterSimulator(
        arrival=poisson_arrivals(
            make_sampler(seed), rate=5000.0, num_requests=num_requests
        ),
        router=resolve_router(router)(prefill),
        replicas=disaggregated_fleet(prefill, decode),
        router_name=router,
        kv_transfer_s=kv_transfer_s,
        decode_router=resolve_router(router)(decode),
    ).run()


class TestDisaggregatedRuns:
    def test_every_request_prefills_hands_off_and_completes(self):
        metrics = run_disaggregated(prefill=1, decode=2, num_requests=12)
        assert sorted(r.request_id for r in metrics.requests) == list(range(12))
        assert metrics.is_disaggregated
        assert metrics.handoffs == 12
        assert metrics.meta["handoffs"] == 12
        for r in metrics.requests:
            assert r.prefill_end_s is not None
            assert r.admitted_s <= r.prefill_end_s <= r.first_token_s

    def test_prefill_replicas_complete_nothing_decode_replicas_everything(self):
        metrics = run_disaggregated(prefill=2, decode=2, num_requests=16)
        by_role = {"prefill": [], "decode": []}
        for replica in metrics.replicas:
            by_role[replica.role].append(replica)
        assert sum(r.num_requests for r in by_role["prefill"]) == 0
        assert sum(r.num_requests for r in by_role["decode"]) == 16
        assert sum(r.handoffs for r in by_role["prefill"]) == 16
        assert sum(r.handoffs for r in by_role["decode"]) == 0
        # Both phases did real work and report utilization over the makespan.
        assert 0 < metrics.prefill_utilization <= 1
        assert 0 < metrics.decode_utilization <= 1

    def test_kv_transfer_latency_delays_the_first_token(self):
        fast = run_disaggregated(kv_transfer_s=0.0)
        slow = run_disaggregated(kv_transfer_s=0.5)
        fast_by_id = {r.request_id: r for r in fast.requests}
        for r in slow.requests:
            # The prompt finishes at the same instant; the first token waits
            # for the transfer, so TTFT grows by at least the added latency.
            assert r.prefill_end_s == fast_by_id[r.request_id].prefill_end_s
            assert r.first_token_s >= fast_by_id[r.request_id].first_token_s + 0.5 - 1e-9

    def test_deterministic_across_runs_and_seed_sensitive(self):
        assert run_disaggregated(seed=1).to_dict() == run_disaggregated(seed=1).to_dict()
        assert run_disaggregated(seed=1).to_dict() != run_disaggregated(seed=2).to_dict()

    def test_completed_set_matches_colocated_fleet(self):
        # Disaggregation moves work between replicas, never drops or invents
        # requests: the completed id set matches a colocated fleet's.
        from tests.cluster.conftest import linear_fleet

        colocated = ClusterSimulator(
            arrival=poisson_arrivals(make_sampler(0), rate=5000.0, num_requests=12),
            router=resolve_router("round-robin")(2),
            replicas=linear_fleet(2),
            router_name="round-robin",
        ).run()
        disaggregated = run_disaggregated(prefill=1, decode=1, num_requests=12)
        assert sorted(r.request_id for r in disaggregated.requests) == sorted(
            r.request_id for r in colocated.requests
        )


class TestFleetValidation:
    def test_decode_router_required(self):
        with pytest.raises(ConfigError, match="decode_router"):
            ClusterSimulator(
                arrival=poisson_arrivals(make_sampler(0), rate=100.0, num_requests=2),
                router=resolve_router("round-robin")(1),
                replicas=disaggregated_fleet(1, 1),
            )

    def test_needs_both_roles(self):
        with pytest.raises(ConfigError, match="at least one prefill and one"):
            ClusterSimulator(
                arrival=poisson_arrivals(make_sampler(0), rate=100.0, num_requests=2),
                router=resolve_router("round-robin")(2),
                replicas=disaggregated_fleet(2, 0),
                decode_router=resolve_router("round-robin")(1),
            )

    def test_rejects_mixed_roles_in_a_disaggregated_fleet(self):
        from tests.cluster.conftest import linear_fleet

        fleet = disaggregated_fleet(1, 1) + linear_fleet(1)
        fleet[2].replica_id = 2
        with pytest.raises(ConfigError, match="prefill or decode"):
            ClusterSimulator(
                arrival=poisson_arrivals(make_sampler(0), rate=100.0, num_requests=2),
                router=resolve_router("round-robin")(1),
                replicas=fleet,
                decode_router=resolve_router("round-robin")(1),
            )

    def test_router_sized_to_the_prefill_group(self):
        with pytest.raises(ConfigError, match="arrival-eligible"):
            ClusterSimulator(
                arrival=poisson_arrivals(make_sampler(0), rate=100.0, num_requests=2),
                router=resolve_router("round-robin")(2),   # 1 prefill replica
                replicas=disaggregated_fleet(1, 1),
                decode_router=resolve_router("round-robin")(1),
            )


class TestParseDisaggregated:
    def test_parses_p_d_specs(self):
        assert parse_disaggregated("2p2d") == (2, 2)
        assert parse_disaggregated("1p3d") == (1, 3)
        assert parse_disaggregated(" 4P2D ") == (4, 2)

    @pytest.mark.parametrize("spec", ["", "2p", "p2d", "0p2d", "2p0d", "2x2", "2d2p"])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ConfigError):
            parse_disaggregated(spec)


class TestDisaggregatedScenario:
    def scenario(self, names, **overrides) -> ClusterScenario:
        defaults = dict(
            workload=names["workload"],
            systems=(names["system"],),
            arrival="poisson",
            rate=50_000.0,
            num_requests=6,
            replicas=2,
            disaggregated="1p1d",
            kv_transfer_ms=0.01,
            max_batch=2,
            seed=0,
            prompt_tokens=(32, 64),
            output_tokens=(2, 4),
        )
        defaults.update(overrides)
        return ClusterScenario(**defaults)

    def test_round_trip_and_key_sensitivity(self, tiny_cluster_names):
        scenario = self.scenario(tiny_cluster_names).validate()
        rebuilt = ClusterScenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.key() == scenario.key()
        assert scenario.key() != self.scenario(
            tiny_cluster_names, kv_transfer_ms=1.0
        ).key()
        assert scenario.key() != self.scenario(
            tiny_cluster_names, disaggregated=None
        ).key()

    def test_spec_spelling_does_not_change_key_or_label(self, tiny_cluster_names):
        # parse_disaggregated is case/whitespace-insensitive, so hashes and
        # labels must be too -- else equivalent points re-simulate on resume.
        canonical = self.scenario(tiny_cluster_names)
        shouting = self.scenario(tiny_cluster_names, disaggregated=" 1P1D ")
        assert shouting.key() == canonical.key()
        assert shouting.display_label == canonical.display_label
        assert shouting.to_dict()["disaggregated"] == "1p1d"

    def test_replica_roles_follow_the_spec(self, tiny_cluster_names):
        scenario = self.scenario(tiny_cluster_names, replicas=4, disaggregated="1p3d")
        assert scenario.replica_roles() == ("prefill", "decode", "decode", "decode")
        assert self.scenario(tiny_cluster_names).replica_roles() == (
            "prefill",
            "decode",
        )

    def test_validate_rejects_inconsistent_splits(self, tiny_cluster_names):
        with pytest.raises(ConfigError, match="names 4 replicas"):
            self.scenario(tiny_cluster_names, disaggregated="2p2d").validate()
        with pytest.raises(ConfigError, match="prefill_cost"):
            self.scenario(tiny_cluster_names, prefill_cost=False).validate()

    def test_runs_through_the_cycle_engine(self, tiny_cluster_names):
        from repro.config.scale import ScaleTier

        metrics = self.scenario(
            tiny_cluster_names, tier=ScaleTier.FULL
        ).validate().run()
        assert metrics.num_requests == 6
        assert metrics.handoffs == 6
        assert metrics.meta["roles"] == ["prefill", "decode"]
        assert metrics.meta["kv_transfer_s"] == pytest.approx(1e-5)
        rebuilt = ClusterMetrics.from_dict(metrics.to_dict())
        assert [r.role for r in rebuilt.replicas] == ["prefill", "decode"]
        assert rebuilt.handoffs == 6


class TestReplicaMetricsRoles:
    def test_legacy_dicts_default_to_mixed(self):
        legacy = {
            "replica_id": 0,
            "system": "table5",
            "frequency_ghz": 2.0,
            "steps": 1,
            "total_cycles": 10,
            "busy_s": 0.1,
            "routed": 0,
            "requests": [],
        }
        replica = ReplicaMetrics.from_dict(legacy)
        assert replica.role == "mixed"
        assert replica.handoffs == 0
