"""Cluster sweep grids through the parallel executor and result store."""

import pytest

from repro.cluster import ClusterSweepSpec
from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier
from repro.sweep.executor import run_sweep
from repro.sweep.store import ResultStore


def tiny_spec(names, **overrides) -> ClusterSweepSpec:
    defaults = dict(
        workloads=(names["workload"],),
        rates=(40_000.0,),
        replica_counts=(1, 2),
        routers=("round-robin",),
        num_requests=4,
        max_batch=2,
        system=names["system"],
        tier=ScaleTier.FULL,
        prompt_tokens=(32, 64),
        output_tokens=(2, 4),
    )
    defaults.update(overrides)
    return ClusterSweepSpec(**defaults).validate()


class TestClusterSweep:
    def test_grid_runs_and_resumes_through_the_store(self, tiny_cluster_names, tmp_path):
        spec = tiny_spec(tiny_cluster_names)
        points = spec.expand()
        assert len(points) == 2
        store = ResultStore(tmp_path / "cluster.jsonl")
        report = run_sweep(points, jobs=1, store=store)
        assert report.num_ok == 2 and report.num_simulated == 2
        metrics = report.result_for(points[0])
        assert metrics.num_requests == 4
        assert {r.kind for r in store.records()} == {"cluster"}

        # Second run resumes entirely from disk, bit-identical.
        resumed = run_sweep(points, jobs=1, store=ResultStore(store.path))
        assert resumed.num_cached == 2
        assert resumed.result_for(points[0]).to_dict() == metrics.to_dict()

    def test_spec_round_trip_and_validation(self):
        spec = ClusterSweepSpec(
            workloads=("llama3-70b",), rates=(1000.0, 2000.0),
            replica_counts=(2, 4), routers=("round-robin", "jsq"),
            arrivals=("poisson",), policies=("unopt",),
        )
        assert ClusterSweepSpec.from_dict(spec.to_dict()) == spec
        assert spec.num_points == 8
        with pytest.raises(ConfigError):
            ClusterSweepSpec(workloads=("llama3-70b",), rates=()).validate()
        with pytest.raises(ConfigError):
            ClusterSweepSpec(
                workloads=("llama3-70b",), rates=(1.0,), routers=("pigeon",)
            ).validate()
        with pytest.raises(ConfigError):
            ClusterSweepSpec(
                workloads=("llama3-70b",), rates=(1.0,), replica_counts=(0,)
            ).validate()

    def test_labels_and_coords(self):
        spec = ClusterSweepSpec(
            workloads=("llama3-70b",), rates=(1000.0,), replica_counts=(4,),
            routers=("join-shortest-queue",),
        )
        point = spec.expand()[0]
        assert point.coord("rate") == 1000.0
        assert point.coord("replicas") == 4
        assert point.coord("router") == "join-shortest-queue"
        assert "cluster" in point.describe()
        assert point.config_dict()["kind"] == "cluster"

    def test_expansion_order_is_deterministic(self):
        spec = ClusterSweepSpec(
            workloads=("llama3-70b",), rates=(1000.0,),
            replica_counts=(2, 4), routers=("round-robin", "weighted"),
        )
        labels = [p.label for p in spec.expand()]
        assert labels == [
            "round-robinx2@poisson@1000",
            "weightedx2@poisson@1000",
            "round-robinx4@poisson@1000",
            "weightedx4@poisson@1000",
        ]

    def test_key_dedup_between_identical_scenarios(self):
        spec = ClusterSweepSpec(
            workloads=("llama3-70b",), rates=(1000.0,), replica_counts=(2,),
        )
        a, b = spec.expand()[0], spec.expand()[0]
        assert a.key() == b.key()
