"""ClusterMetrics: fleet aggregation, imbalance, serialization."""

import json
from pathlib import Path

import pytest

from repro.cluster.metrics import ClusterMetrics, ReplicaMetrics
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.obs.metrics import Histogram
from repro.serve.metrics import RequestMetrics, ServeSLO


def request_record(rid: int, finish: float = 1.0, output: int = 4) -> RequestMetrics:
    return RequestMetrics(
        request_id=rid,
        arrival_s=0.0,
        admitted_s=0.1,
        first_token_s=0.2,
        finish_s=finish,
        prompt_tokens=64,
        output_tokens=output,
    ).validate()


def replica(rid: int, requests=(), busy_s: float = 0.5, system: str = "table5") -> ReplicaMetrics:
    return ReplicaMetrics(
        replica_id=rid,
        system=system,
        frequency_ghz=2.0,
        steps=10,
        total_cycles=1000,
        busy_s=busy_s,
        routed=len(requests),
        requests=tuple(requests),
    ).validate()


def cluster(replicas, duration_s: float = 1.0, slo: ServeSLO | None = None) -> ClusterMetrics:
    return ClusterMetrics(
        label="test",
        workload="wl",
        router="round-robin",
        duration_s=duration_s,
        replicas=tuple(replicas),
        slo=slo if slo is not None else ServeSLO(),
    )


class TestFleetAggregation:
    def test_requests_merge_sorted_by_id(self):
        metrics = cluster([
            replica(0, [request_record(3), request_record(0)]),
            replica(1, [request_record(2), request_record(1)]),
        ])
        assert [r.request_id for r in metrics.requests] == [0, 1, 2, 3]
        assert metrics.num_requests == 4

    def test_fleet_counters_sum_over_replicas(self):
        metrics = cluster([replica(0, [request_record(0)]), replica(1, [request_record(1)])])
        assert metrics.steps == 20
        assert metrics.total_cycles == 2000
        assert metrics.total_output_tokens == 8

    def test_throughput_is_tokens_over_makespan(self):
        metrics = cluster([replica(0, [request_record(0, output=10)])], duration_s=2.0)
        assert metrics.tokens_per_s == 5.0
        assert metrics.requests_per_s == 0.5

    def test_zero_duration_throughput_is_zero(self):
        metrics = cluster([replica(0, [request_record(0)])], duration_s=0.0)
        assert metrics.tokens_per_s == 0.0

    def test_utilizations_per_replica_and_capped(self):
        metrics = cluster(
            [replica(0, busy_s=0.25), replica(1, busy_s=2.0)], duration_s=1.0
        )
        assert metrics.utilizations == [0.25, 1.0]


class TestLoadImbalance:
    def test_balanced_fleet_is_one(self):
        metrics = cluster([
            replica(0, [request_record(0)]), replica(1, [request_record(1)]),
        ])
        assert metrics.load_imbalance == 1.0

    def test_hot_replica_raises_the_factor(self):
        metrics = cluster([
            replica(0, [request_record(0, output=30)]),
            replica(1, [request_record(1, output=10)]),
        ])
        # max 30 / mean 20
        assert metrics.load_imbalance == pytest.approx(1.5)

    def test_empty_fleet_is_zero(self):
        assert cluster([replica(0), replica(1)]).load_imbalance == 0.0


class TestPercentilesAndSLO:
    def test_percentiles_are_ordered(self):
        metrics = cluster([
            replica(0, [request_record(i, finish=0.5 + 0.1 * i) for i in range(0, 6, 2)]),
            replica(1, [request_record(i, finish=0.5 + 0.1 * i) for i in range(1, 6, 2)]),
        ])
        p50 = metrics.latency_percentile_ms(50)
        p95 = metrics.latency_percentile_ms(95)
        p99 = metrics.latency_percentile_ms(99)
        assert p50 <= p95 <= p99

    def test_slo_attainment_over_merged_requests(self):
        slo = ServeSLO(latency_ms=700.0)   # 0.7 s
        metrics = cluster(
            [
                replica(0, [request_record(0, finish=0.5)]),
                replica(1, [request_record(1, finish=1.0)]),
            ],
            slo=slo,
        )
        assert metrics.slo_attainment == 0.5

    def test_trivial_slo_is_full_attainment(self):
        assert cluster([replica(0, [request_record(0)])]).slo_attainment == 1.0


class TestSerialization:
    def test_round_trip(self):
        metrics = cluster([
            replica(0, [request_record(0), request_record(2)]),
            replica(1, [request_record(1)], system="table5-8core"),
        ])
        rebuilt = ClusterMetrics.from_dict(metrics.to_dict())
        assert rebuilt == metrics
        assert rebuilt.headline_metrics() == metrics.headline_metrics()

    def test_headline_metrics_carry_fleet_aggregates(self):
        metrics = cluster([replica(0, [request_record(0)]), replica(1)])
        headline = metrics.headline_metrics()
        assert headline["num_replicas"] == 2
        assert headline["router"] == "round-robin"
        assert "load_imbalance" in headline
        assert "latency_p99_ms" in headline

    def test_with_label(self):
        metrics = cluster([replica(0)])
        assert metrics.with_label("test") is metrics
        assert metrics.with_label("other").label == "other"

    def test_summary_mentions_router_and_fleet(self):
        metrics = cluster([replica(0, [request_record(0)]), replica(1)])
        assert "round-robin" in metrics.summary()
        assert "x2" in metrics.summary()

    def test_empty_fleet_summary(self):
        assert "no completed requests" in cluster([replica(0)]).summary()


class TestValidation:
    def test_replica_rejects_more_completed_than_routed(self):
        with pytest.raises(ConfigError):
            ReplicaMetrics(
                replica_id=0, system="s", frequency_ghz=1.0, steps=1,
                total_cycles=1, busy_s=0.0, routed=0,
                requests=(request_record(0),),
            ).validate()

    def test_replica_rejects_bad_scalars(self):
        with pytest.raises(ConfigError):
            ReplicaMetrics(
                replica_id=-1, system="s", frequency_ghz=1.0, steps=0,
                total_cycles=0, busy_s=0.0, routed=0,
            ).validate()
        with pytest.raises(ConfigError):
            ReplicaMetrics(
                replica_id=0, system="s", frequency_ghz=0.0, steps=0,
                total_cycles=0, busy_s=0.0, routed=0,
            ).validate()


class TestSketchPercentiles:
    """Fleet percentiles via per-replica histogram merge (``--metrics-sketch``)."""

    @staticmethod
    def seeded_fleet(num_replicas: int = 4, per_replica: int = 40, seed: int = 0) -> ClusterMetrics:
        rng = make_rng(seed)
        replicas = []
        rid = 0
        for rep in range(num_replicas):
            requests = []
            for _ in range(per_replica):
                arrival = rng.uniform(0.0, 2.0)
                admitted = arrival + rng.uniform(0.0, 0.05)
                first = admitted + rng.uniform(0.001, 0.25)
                finish = first + rng.uniform(0.01, 1.2)
                requests.append(
                    RequestMetrics(
                        request_id=rid,
                        arrival_s=arrival,
                        admitted_s=admitted,
                        first_token_s=first,
                        finish_s=finish,
                        prompt_tokens=64,
                        output_tokens=1 + int(rng.integers(16)),
                    ).validate()
                )
                rid += 1
            replicas.append(replica(rep, requests))
        return cluster(replicas, duration_s=4.0)

    def test_merged_histogram_equals_one_histogram_over_all_requests(self):
        metrics = self.seeded_fleet()
        merged = metrics.merged_histogram("ttft")
        direct = Histogram.of(r.ttft_s for r in metrics.requests)
        assert merged.buckets == direct.buckets
        assert merged.count == direct.count
        assert merged.min_value == direct.min_value
        assert merged.max_value == direct.max_value

    def test_p95_ttft_within_documented_bound_of_exact(self):
        metrics = self.seeded_fleet()
        sketch = metrics.with_sketch()
        bound = Histogram().relative_error_bound
        for point in (50.0, 95.0, 99.0):
            for accessor in ("ttft_percentile_ms", "latency_percentile_ms"):
                want = getattr(metrics, accessor)(point)
                got = getattr(sketch, accessor)(point)
                assert abs(got - want) <= bound * want

    def test_fleet_counters_unaffected_by_sketch(self):
        metrics = self.seeded_fleet(num_replicas=2, per_replica=8)
        sketch = metrics.with_sketch()
        assert sketch.tokens_per_s == metrics.tokens_per_s
        assert sketch.load_imbalance == metrics.load_imbalance
        assert sketch.slo_attainment == metrics.slo_attainment

    def test_exact_mode_serializes_without_sketch_key(self):
        metrics = self.seeded_fleet(num_replicas=2, per_replica=4)
        assert "sketch" not in metrics.to_dict()

    def test_sketch_flag_round_trips(self):
        sketch = self.seeded_fleet(num_replicas=2, per_replica=4).with_sketch()
        data = sketch.to_dict()
        assert data["sketch"] is True
        assert ClusterMetrics.from_dict(data) == sketch

    def test_smoke_seed_p95_ttft_within_bound(self):
        # The acceptance criterion: on the `--smoke` seed (pinned by the
        # golden fixture) the histogram-merged fleet p95 TTFT agrees with
        # the exact-list path within the documented error bound.
        fixture = Path(__file__).parents[1] / "golden" / "cluster_smoke.json"
        metrics = ClusterMetrics.from_dict(json.loads(fixture.read_text()))
        sketch = metrics.with_sketch()
        bound = Histogram().relative_error_bound
        exact = metrics.ttft_percentile_ms(95.0)
        assert abs(sketch.ttft_percentile_ms(95.0) - exact) <= bound * exact
