"""Router disciplines: selection order, load signals, registry integration."""

import pytest

from repro.cluster.router import (
    JoinShortestQueueRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    WeightedRouter,
)
from repro.common.errors import ConfigError
from repro.registry import ROUTERS, register_router, resolve_router
from repro.serve.request import Request


class StubReplica:
    """Just the two load signals routers are allowed to read."""

    def __init__(self, queue_depth: int = 0, running: int = 0) -> None:
        self.queue_depth = queue_depth
        self.outstanding = queue_depth + running


def req(rid: int = 0) -> Request:
    return Request(request_id=rid, arrival_s=0.0, prompt_tokens=8, output_tokens=2)


def picks(router, replicas, count: int) -> list[int]:
    return [router.select(req(i), replicas, 0.0) for i in range(count)]


class TestRoundRobin:
    def test_cycles_in_order(self):
        replicas = [StubReplica() for _ in range(3)]
        assert picks(RoundRobinRouter(3), replicas, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_ignores_load(self):
        replicas = [StubReplica(queue_depth=100), StubReplica()]
        assert picks(RoundRobinRouter(2), replicas, 2) == [0, 1]


class TestLeastOutstanding:
    def test_picks_fewest_in_flight(self):
        replicas = [StubReplica(queue_depth=2), StubReplica(running=1), StubReplica(queue_depth=3)]
        assert LeastOutstandingRouter(3).select(req(), replicas, 0.0) == 1

    def test_counts_running_requests(self):
        # Queue-empty but busy replica loses to a fully idle one.
        replicas = [StubReplica(running=2), StubReplica()]
        assert LeastOutstandingRouter(2).select(req(), replicas, 0.0) == 1

    def test_ties_break_to_lowest_index(self):
        replicas = [StubReplica(), StubReplica(), StubReplica()]
        assert LeastOutstandingRouter(3).select(req(), replicas, 0.0) == 0


class TestJoinShortestQueue:
    def test_picks_shortest_queue(self):
        replicas = [StubReplica(queue_depth=4), StubReplica(queue_depth=1), StubReplica(queue_depth=2)]
        assert JoinShortestQueueRouter(3).select(req(), replicas, 0.0) == 1

    def test_running_batch_is_invisible(self):
        # JSQ only sees queues: a busy replica with an empty queue still wins.
        replicas = [StubReplica(running=8), StubReplica(queue_depth=1)]
        assert JoinShortestQueueRouter(2).select(req(), replicas, 0.0) == 0


class TestWeighted:
    def test_equal_weights_degenerate_to_round_robin(self):
        replicas = [StubReplica() for _ in range(3)]
        assert picks(WeightedRouter(3), replicas, 6) == [0, 1, 2, 0, 1, 2]

    def test_shares_are_proportional_to_weights(self):
        replicas = [StubReplica(), StubReplica()]
        router = WeightedRouter(2, weights=(3.0, 1.0))
        chosen = picks(router, replicas, 40)
        assert chosen.count(0) == 30
        assert chosen.count(1) == 10

    def test_smooth_interleaving(self):
        # The smooth algorithm spreads the heavy replica's picks out instead
        # of bursting: weights (2, 1) give [0, 1, 0] repeating, not [0, 0, 1].
        replicas = [StubReplica(), StubReplica()]
        assert picks(WeightedRouter(2, weights=(2.0, 1.0)), replicas, 6) == [0, 1, 0, 0, 1, 0]

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigError):
            WeightedRouter(2, weights=(1.0,))
        with pytest.raises(ConfigError):
            WeightedRouter(2, weights=(1.0, -1.0))


class TestRegistry:
    def test_builtin_routers_registered(self):
        for name in ("round-robin", "least-outstanding", "join-shortest-queue", "weighted"):
            assert name in ROUTERS

    def test_aliases_resolve(self):
        assert resolve_router("rr") is resolve_router("round-robin")
        assert resolve_router("jsq") is resolve_router("join-shortest-queue")
        assert resolve_router("lor") is resolve_router("least-outstanding")
        assert resolve_router("wrr") is resolve_router("weighted")

    def test_unknown_router_lists_known_names(self):
        with pytest.raises(ConfigError, match="round-robin"):
            resolve_router("carrier-pigeon")

    def test_custom_router_registers_and_unregisters(self):
        @register_router("always-zero", description="test-only")
        def always_zero(num_replicas: int):
            router = RoundRobinRouter(num_replicas)
            router.select = lambda request, replicas, now_s: 0
            return router

        try:
            assert resolve_router("always-zero")(3).select(req(), [], 0.0) == 0
        finally:
            ROUTERS.unregister("always-zero")

    def test_rejects_nonpositive_fleet(self):
        with pytest.raises(ConfigError):
            RoundRobinRouter(0)
