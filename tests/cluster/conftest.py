"""Fixtures for the cluster subsystem: linear-cost fleets that run in microseconds."""

from __future__ import annotations

import pytest

from repro.cluster.simulator import ReplicaSim
from repro.registry import SYSTEMS, WORKLOADS, register_system, register_workload
from repro.serve.request import RequestSampler
from repro.serve.scheduler import BatchConfig
from repro.serve.stepcost import LinearStepCostModel


def linear_fleet(
    num_replicas: int,
    max_batch: int = 2,
    frequency_ghz: float = 2.0,
    cost_model: LinearStepCostModel | None = None,
) -> list[ReplicaSim]:
    """A homogeneous fleet backed by the analytical step-cost stand-in."""

    model = cost_model if cost_model is not None else LinearStepCostModel()
    return [
        ReplicaSim(
            replica_id=i,
            cost_model=model,
            frequency_ghz=frequency_ghz,
            batch=BatchConfig(max_batch=max_batch),
            system_name="linear",
        )
        for i in range(num_replicas)
    ]


def make_sampler(seed: int = 0) -> RequestSampler:
    """Small token budgets keep linear-cost cluster runs instantaneous."""

    return RequestSampler(seed=seed, prompt_tokens=(32, 64), output_tokens=(2, 6))


@pytest.fixture()
def tiny_cluster_names(tiny_system, tiny_workload):
    """Register the tiny system/workload under cluster-test names (and clean up)."""

    register_system("cluster-tiny-sys")(lambda: tiny_system)
    register_workload("cluster-tiny")(
        lambda seq_len=64: tiny_workload.with_seq_len(seq_len)
    )
    yield {"system": "cluster-tiny-sys", "workload": "cluster-tiny"}
    SYSTEMS.unregister("cluster-tiny-sys")
    WORKLOADS.unregister("cluster-tiny")
