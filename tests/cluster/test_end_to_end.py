"""End-to-end cluster runs: determinism, routing behaviour, heterogeneous fleets."""

import pytest

from repro.cluster import ClusterScenario, ClusterSimulator
from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier
from repro.registry import ROUTERS, resolve_router
from repro.serve.arrival import closed_loop_arrivals, poisson_arrivals
from tests.cluster.conftest import linear_fleet, make_sampler


def run_cluster(
    router: str = "round-robin",
    num_replicas: int = 3,
    seed: int = 0,
    num_requests: int = 12,
    rate: float = 1000.0,
    max_batch: int = 2,
):
    simulator = ClusterSimulator(
        arrival=poisson_arrivals(make_sampler(seed), rate=rate, num_requests=num_requests),
        router=resolve_router(router)(num_replicas),
        replicas=linear_fleet(num_replicas, max_batch=max_batch),
        router_name=router,
    )
    return simulator.run()


class TestClusterSimulator:
    def test_all_requests_complete_with_ordered_timestamps(self):
        metrics = run_cluster()
        assert metrics.num_requests == 12
        for r in metrics.requests:
            assert r.arrival_s <= r.admitted_s <= r.first_token_s <= r.finish_s

    def test_deterministic_across_runs(self):
        assert run_cluster().to_dict() == run_cluster().to_dict()

    def test_seed_changes_the_run(self):
        assert run_cluster(seed=0).to_dict() != run_cluster(seed=1).to_dict()

    def test_request_ids_partition_across_replicas(self):
        metrics = run_cluster(num_replicas=4)
        ids = [r.request_id for replica in metrics.replicas for r in replica.requests]
        assert sorted(ids) == list(range(12))        # no loss, no duplication

    def test_round_robin_spreads_the_stream(self):
        metrics = run_cluster(router="round-robin", num_replicas=3)
        assert [replica.routed for replica in metrics.replicas] == [4, 4, 4]

    def test_completion_identical_across_all_registered_routers(self):
        # The acceptance invariant: routing changes *where* requests run,
        # never *whether* they run.
        baseline = None
        for entry in ROUTERS.entries():
            metrics = run_cluster(router=entry.name)
            ids = sorted(r.request_id for r in metrics.requests)
            if baseline is None:
                baseline = ids
            assert ids == baseline, f"router {entry.name} lost/duplicated requests"

    def test_closed_loop_completes_budget(self):
        simulator = ClusterSimulator(
            arrival=closed_loop_arrivals(make_sampler(2), rate=4, num_requests=10),
            router=resolve_router("least-outstanding")(2),
            replicas=linear_fleet(2, max_batch=2),
        )
        assert simulator.run().num_requests == 10

    def test_single_replica_matches_fleet_contract(self):
        metrics = run_cluster(num_replicas=1)
        assert metrics.num_replicas == 1
        assert metrics.replicas[0].routed == 12
        assert metrics.num_requests == 12

    def test_busy_time_bounded_by_makespan(self):
        metrics = run_cluster()
        for utilization in metrics.utilizations:
            assert 0.0 <= utilization <= 1.0

    def test_meta_reports_routing_decisions(self):
        metrics = run_cluster(num_replicas=3)
        assert metrics.meta["router"] == "round-robin"
        assert sum(metrics.meta["routed"]) == 12

    def test_fleet_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSimulator(
                arrival=poisson_arrivals(make_sampler(), rate=100.0, num_requests=2),
                router=resolve_router("round-robin")(3),
                replicas=linear_fleet(2),
            )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSimulator(
                arrival=poisson_arrivals(make_sampler(), rate=100.0, num_requests=2),
                router=resolve_router("round-robin")(1),
                replicas=[],
            )


def tiny_cluster_scenario(names, **overrides) -> ClusterScenario:
    defaults = dict(
        workload=names["workload"],
        systems=(names["system"],),
        arrival="poisson",
        rate=50_000.0,
        num_requests=6,
        replicas=2,
        router="round-robin",
        max_batch=2,
        seed=0,
        tier=ScaleTier.FULL,
        prompt_tokens=(32, 64),
        output_tokens=(2, 4),
    )
    defaults.update(overrides)
    return ClusterScenario(**defaults).validate()


class TestClusterScenario:
    def test_run_is_reproducible(self, tiny_cluster_names):
        a = tiny_cluster_scenario(tiny_cluster_names).run()
        b = tiny_cluster_scenario(tiny_cluster_names).run()
        assert a.to_dict() == b.to_dict()
        assert a.num_requests == 6
        assert a.latency_percentile_ms(50) <= a.latency_percentile_ms(99)
        assert a.meta["step_simulations"] >= 1

    def test_homogeneous_fleet_shares_one_cost_table(self, tiny_cluster_names):
        simulator = tiny_cluster_scenario(tiny_cluster_names, replicas=3).build_simulator()
        models = {id(replica.cost_model) for replica in simulator.replicas}
        assert len(models) == 1

    def test_heterogeneous_fleet_gets_distinct_models(self, tiny_cluster_names, tiny_system):
        from dataclasses import replace

        from repro.registry import SYSTEMS, register_system

        slower = replace(
            tiny_system, core=replace(tiny_system.core, num_cores=2)
        ).validate()
        register_system("cluster-tiny-slow")(lambda: slower)
        try:
            scenario = tiny_cluster_scenario(
                tiny_cluster_names,
                systems=(tiny_cluster_names["system"], "cluster-tiny-slow"),
            )
            simulator = scenario.build_simulator()
            assert len({id(r.cost_model) for r in simulator.replicas}) == 2
            metrics = scenario.run()
            assert [r.system for r in metrics.replicas] == [
                tiny_cluster_names["system"], "cluster-tiny-slow",
            ]
            assert metrics.num_requests == 6
        finally:
            SYSTEMS.unregister("cluster-tiny-slow")

    def test_label_excluded_from_key(self, tiny_cluster_names):
        base = tiny_cluster_scenario(tiny_cluster_names)
        labelled = tiny_cluster_scenario(tiny_cluster_names, label="pretty")
        assert base.key() == labelled.key()
        assert base.key() != tiny_cluster_scenario(tiny_cluster_names, replicas=3).key()
        assert base.key() != tiny_cluster_scenario(tiny_cluster_names, router="jsq").key()

    def test_round_trip(self, tiny_cluster_names):
        scenario = tiny_cluster_scenario(
            tiny_cluster_names,
            router="weighted",
            router_params=(("weights", (2.0, 1.0)),),
            slo_latency_ms=5.0,
        )
        rebuilt = ClusterScenario.from_dict(scenario.to_dict())
        assert rebuilt.key() == scenario.key()

    def test_validate_rejects_bad_configs(self, tiny_cluster_names):
        with pytest.raises(ConfigError):
            tiny_cluster_scenario(tiny_cluster_names, router="carrier-pigeon")
        with pytest.raises(ConfigError):
            tiny_cluster_scenario(tiny_cluster_names, replicas=0)
        with pytest.raises(ConfigError):
            # 3 systems for 2 replicas: neither broadcast nor one-per-replica.
            tiny_cluster_scenario(
                tiny_cluster_names, systems=(tiny_cluster_names["system"],) * 3
            )
        with pytest.raises(ConfigError):
            tiny_cluster_scenario(tiny_cluster_names, workload="gpt-7")

    def test_replica_systems_broadcast(self, tiny_cluster_names):
        scenario = tiny_cluster_scenario(tiny_cluster_names, replicas=4)
        assert scenario.replica_systems() == (tiny_cluster_names["system"],) * 4
