"""Seeded property-based fuzz tests for serve/cluster metric invariants.

Hypothesis drives randomized traffic configurations through the (linear-cost)
serving and cluster simulators and asserts the invariants every metrics object
must satisfy regardless of configuration:

* percentile monotonicity -- p50 <= p95 <= p99 for latency and TTFT;
* request-count conservation -- every submitted request completes exactly
  once, whichever router spreads the stream;
* throughput consistency -- ``tokens_per_s`` is exactly completed output
  tokens over the makespan (and 0 only for a 0-length makespan);
* utilization bounds and imbalance >= 1 whenever the fleet did any work.

``derandomize=True`` makes every run draw the same example sequence: the fuzz
corpus is part of the pinned behaviour, like the golden fixtures, so CI never
flakes on a novel example.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis", reason="property tests need hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cluster.simulator import ClusterSimulator  # noqa: E402
from repro.registry import ROUTERS, resolve_router  # noqa: E402
from repro.serve.arrival import poisson_arrivals  # noqa: E402
from repro.serve.request import RequestSampler  # noqa: E402
from repro.serve.scheduler import BatchConfig  # noqa: E402
from repro.serve.simulator import ServingSimulator  # noqa: E402
from repro.serve.stepcost import LinearStepCostModel  # noqa: E402

from tests.cluster.conftest import linear_fleet  # noqa: E402

#: One shared profile: deterministic example sequence, no wall-clock deadline
#: (the simulators are fast, but CI boxes stutter).
settings.register_profile("repro-seeded", derandomize=True, deadline=None, max_examples=25)
settings.load_profile("repro-seeded")

ROUTER_NAMES = ("round-robin", "least-outstanding", "join-shortest-queue", "weighted")


def sampler(seed: int) -> RequestSampler:
    return RequestSampler(seed=seed, prompt_tokens=(16, 128), output_tokens=(1, 8))


def serve_run(seed: int, rate: float, num_requests: int, max_batch: int):
    return ServingSimulator(
        arrival=poisson_arrivals(sampler(seed), rate=rate, num_requests=num_requests),
        cost_model=LinearStepCostModel(),
        frequency_ghz=2.0,
        batch=BatchConfig(max_batch=max_batch),
    ).run()


def cluster_run(seed: int, rate: float, num_requests: int, max_batch: int,
                num_replicas: int, router: str):
    return ClusterSimulator(
        arrival=poisson_arrivals(sampler(seed), rate=rate, num_requests=num_requests),
        router=resolve_router(router)(num_replicas),
        replicas=linear_fleet(num_replicas, max_batch=max_batch),
        router_name=router,
    ).run()


serve_configs = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),       # seed
    st.floats(min_value=10.0, max_value=1e6),            # rate
    st.integers(min_value=1, max_value=24),              # num_requests
    st.integers(min_value=1, max_value=6),               # max_batch
)

cluster_configs = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.floats(min_value=10.0, max_value=1e6),
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=5),               # num_replicas
    st.sampled_from(ROUTER_NAMES),
)


class TestServeMetricsInvariants:
    @given(config=serve_configs)
    def test_percentiles_monotone_and_requests_conserved(self, config):
        seed, rate, num_requests, max_batch = config
        metrics = serve_run(seed, rate, num_requests, max_batch)
        assert metrics.num_requests == num_requests
        assert sorted(r.request_id for r in metrics.requests) == list(range(num_requests))
        assert (
            metrics.latency_percentile_ms(50)
            <= metrics.latency_percentile_ms(95)
            <= metrics.latency_percentile_ms(99)
        )
        assert (
            metrics.ttft_percentile_ms(50)
            <= metrics.ttft_percentile_ms(95)
            <= metrics.ttft_percentile_ms(99)
        )

    @given(config=serve_configs)
    def test_throughput_is_tokens_over_makespan(self, config):
        seed, rate, num_requests, max_batch = config
        metrics = serve_run(seed, rate, num_requests, max_batch)
        assert metrics.duration_s > 0
        assert metrics.tokens_per_s == pytest.approx(
            metrics.total_output_tokens / metrics.duration_s
        )
        assert metrics.total_output_tokens == sum(
            r.output_tokens for r in metrics.requests
        )

    @given(config=serve_configs)
    def test_timestamps_ordered_for_every_request(self, config):
        seed, rate, num_requests, max_batch = config
        metrics = serve_run(seed, rate, num_requests, max_batch)
        for r in metrics.requests:
            assert r.arrival_s <= r.admitted_s <= r.first_token_s <= r.finish_s


class TestClusterMetricsInvariants:
    @given(config=cluster_configs)
    def test_percentiles_monotone(self, config):
        metrics = cluster_run(*config)
        assert (
            metrics.latency_percentile_ms(50)
            <= metrics.latency_percentile_ms(95)
            <= metrics.latency_percentile_ms(99)
        )

    @given(config=cluster_configs)
    def test_requests_conserved_for_any_router(self, config):
        num_requests = config[2]
        metrics = cluster_run(*config)
        assert metrics.num_requests == num_requests
        assert sorted(r.request_id for r in metrics.requests) == list(range(num_requests))

    @given(config=serve_configs)
    def test_request_count_identical_across_all_registered_routers(self, config):
        seed, rate, num_requests, max_batch = config
        completions = {}
        for entry in ROUTERS.entries():
            metrics = cluster_run(seed, rate, num_requests, max_batch, 3, entry.name)
            completions[entry.name] = sorted(r.request_id for r in metrics.requests)
        baseline = completions[next(iter(completions))]
        assert all(ids == baseline for ids in completions.values())

    @given(config=cluster_configs)
    def test_throughput_utilization_and_imbalance(self, config):
        metrics = cluster_run(*config)
        assert metrics.duration_s > 0
        assert metrics.tokens_per_s == pytest.approx(
            metrics.total_output_tokens / metrics.duration_s
        )
        for utilization in metrics.utilizations:
            assert 0.0 <= utilization <= 1.0
        assert metrics.load_imbalance >= 1.0          # some tokens always complete
        assert sum(metrics.meta["routed"]) == metrics.num_requests
