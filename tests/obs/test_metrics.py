"""The mergeable metric primitives: histograms, counters, gauges.

The load-bearing properties are the ones ``llamcat bench`` and the
``--metrics-sketch`` percentile path rely on:

* merge exactness -- bucket counts add, so any merge order of any partition
  of a sample stream yields identical bucket tables;
* the documented quantile error bound -- every sketch quantile is within
  ``sqrt(growth) - 1`` relative error of the exact-list percentile;
* quantile monotonicity -- p50 <= p95 <= p99 always;
* serialization -- ``to_dict``/``from_dict`` round-trips every count exactly.

``derandomize=True`` pins the hypothesis example corpus, like the golden
fixtures, so CI never flakes on a novel example.
"""

import math

import pytest

from repro.common.errors import ConfigError
from repro.common.mathutils import percentile
from repro.obs.metrics import DEFAULT_GROWTH, Counter, Gauge, Histogram

hypothesis = pytest.importorskip("hypothesis", reason="property tests need hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

settings.register_profile("repro-seeded", derandomize=True, deadline=None, max_examples=25)
settings.load_profile("repro-seeded")

#: Positive-or-zero finite sample streams spanning ~12 decades.
samples = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=200,
)

QUANTILE_POINTS = (0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0)


def bucket_state(hist: Histogram) -> tuple:
    """The exactly mergeable part of a histogram (no float accumulators)."""

    return (dict(hist.buckets), hist.zero_count, hist.min_value, hist.max_value)


class TestHistogramRecording:
    def test_rejects_negative_and_non_finite(self):
        hist = Histogram()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ConfigError):
                hist.record(bad)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ConfigError):
            Histogram().record(1.0, count=0)

    def test_rejects_growth_at_or_below_one(self):
        with pytest.raises(ConfigError):
            Histogram(growth=1.0)

    def test_zeros_tracked_outside_log_buckets(self):
        hist = Histogram.of([0.0, 0.0, 1.0])
        assert hist.zero_count == 2
        assert hist.count == 3
        assert hist.quantile(0.0) == 0.0

    def test_exact_aggregates(self):
        values = [0.5, 1.0, 2.0, 4.0]
        hist = Histogram.of(values)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(sum(values) / len(values))
        assert hist.min_value == 0.5
        assert hist.max_value == 4.0

    def test_bucket_index_is_deterministic(self):
        hist = Histogram()
        for value in (1e-6, 0.37, 1.0, 42.0, 9.9e5):
            index = hist.bucket_index(value)
            assert hist.growth**index <= value * (1 + 1e-12)
            assert value <= hist.growth ** (index + 1) * (1 + 1e-12)


class TestHistogramMerge:
    @given(samples, st.integers(min_value=1, max_value=199))
    def test_merge_equals_one_shot_recording(self, values, split):
        split = split % len(values) or 1 if len(values) > 1 else 0
        left = Histogram.of(values[:split]) if split else Histogram()
        right = Histogram.of(values[split:])
        merged = left.merge(right)
        assert bucket_state(merged) == bucket_state(Histogram.of(values))
        assert merged.total == pytest.approx(sum(values), abs=1e-9)

    @given(samples)
    def test_merge_is_associative_on_buckets(self, values):
        third = max(1, len(values) // 3)
        a, b, c = values[:third], values[third : 2 * third], values[2 * third :]
        left_first = Histogram.of(a).merge(Histogram.of(b)).merge(Histogram.of(c))
        right_first = Histogram.of(a).merge(
            Histogram.of(b).merge(Histogram.of(c))
        )
        assert bucket_state(left_first) == bucket_state(right_first)

    def test_merge_rejects_mismatched_growth(self):
        with pytest.raises(ConfigError):
            Histogram(growth=1.05).merge(Histogram(growth=1.1))

    def test_merge_into_empty_copies(self):
        hist = Histogram.of([1.0, 2.0])
        merged = Histogram().merge(hist)
        assert bucket_state(merged) == bucket_state(hist)


class TestHistogramQuantiles:
    @given(samples)
    def test_error_bound_vs_exact_percentile(self, values):
        hist = Histogram.of(values)
        bound = hist.relative_error_bound
        for point in QUANTILE_POINTS:
            exact = percentile(values, point)
            assert abs(hist.quantile(point) - exact) <= bound * exact + 1e-12

    @given(samples)
    def test_quantiles_are_monotone(self, values):
        hist = Histogram.of(values)
        points = [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0]
        results = hist.quantiles(points)
        assert results == sorted(results)

    @given(samples)
    def test_quantiles_clamped_inside_exact_range(self, values):
        hist = Histogram.of(values)
        for point in QUANTILE_POINTS:
            assert min(values) <= hist.quantile(point) <= max(values)

    def test_default_growth_bound_is_documented(self):
        # README/ISSUE promise ~2.5% worst-case error at the default growth.
        assert Histogram().relative_error_bound == pytest.approx(
            math.sqrt(DEFAULT_GROWTH) - 1.0
        )
        assert Histogram().relative_error_bound < 0.025

    def test_empty_histogram_has_no_quantiles(self):
        with pytest.raises(ConfigError):
            Histogram().quantile(50.0)

    def test_out_of_range_point_rejected(self):
        with pytest.raises(ConfigError):
            Histogram.of([1.0]).quantile(101.0)


class TestHistogramSerialization:
    @given(samples)
    def test_round_trip_is_exact(self, values):
        hist = Histogram.of(values)
        restored = Histogram.from_dict(hist.to_dict())
        assert restored == hist
        assert restored.to_dict() == hist.to_dict()

    @given(samples)
    def test_restored_histogram_still_merges(self, values):
        hist = Histogram.of(values)
        restored = Histogram.from_dict(hist.to_dict())
        merged = restored.merge(Histogram.of(values))
        assert merged.count == 2 * hist.count

    def test_bucket_keys_serialize_as_sorted_strings(self):
        data = Histogram.of([0.5, 1.5, 300.0]).to_dict()
        keys = list(data["buckets"])
        assert all(isinstance(k, str) for k in keys)
        assert [int(k) for k in keys] == sorted(int(k) for k in keys)


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        assert a.merge(b).value == 7

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigError):
            Counter().inc(-1)

    def test_round_trip(self):
        counter = Counter(value=9)
        assert Counter.from_dict(counter.to_dict()) == counter


class TestGauge:
    def test_set_tracks_extremes(self):
        gauge = Gauge()
        for value in (3.0, 1.0, 5.0):
            gauge.set(value)
        assert (gauge.last, gauge.min_value, gauge.max_value) == (5.0, 1.0, 5.0)

    def test_merge_keeps_joint_extremes_and_other_last(self):
        a, b = Gauge(), Gauge()
        a.set(2.0)
        b.set(7.0)
        b.set(1.0)
        merged = a.merge(b)
        assert (merged.last, merged.min_value, merged.max_value) == (1.0, 1.0, 7.0)

    def test_merge_with_empty_is_identity_on_extremes(self):
        gauge = Gauge()
        gauge.set(4.0)
        merged = gauge.merge(Gauge())
        assert (merged.min_value, merged.max_value) == (4.0, 4.0)

    def test_round_trip(self):
        gauge = Gauge()
        gauge.set(2.5)
        assert Gauge.from_dict(gauge.to_dict()) == gauge
