"""Tests for the wall-clock profiler."""

from __future__ import annotations

from repro.obs.profile import Profiler


class TestProfiler:
    def test_section_accumulates_wall_time_and_calls(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.section("work"):
                pass
        data = profiler.as_dict()
        assert data["work"]["calls"] == 3
        assert data["work"]["wall_s"] >= 0.0

    def test_add_and_count(self):
        profiler = Profiler()
        profiler.add("build", 0.5, calls=2)
        profiler.add("build", 0.25, calls=1)
        profiler.count("hit", 7)
        data = profiler.as_dict()
        assert data["build"] == {"wall_s": 0.75, "calls": 3}
        assert data["hit"] == {"wall_s": 0.0, "calls": 7}

    def test_merge_folds_profile_dicts(self):
        profiler = Profiler()
        profiler.add("a", 1.0)
        profiler.merge({"a": {"wall_s": 0.5, "calls": 2}, "b": {"wall_s": 0.1, "calls": 1}})
        data = profiler.as_dict()
        assert data["a"] == {"wall_s": 1.5, "calls": 3}
        assert data["b"] == {"wall_s": 0.1, "calls": 1}

    def test_as_dict_is_sorted(self):
        profiler = Profiler()
        profiler.count("zeta")
        profiler.count("alpha")
        assert list(profiler.as_dict()) == ["alpha", "zeta"]

    def test_summary_lists_slowest_first(self):
        profiler = Profiler()
        profiler.add("fast", 0.001)
        profiler.add("slow", 1.0)
        lines = profiler.summary().splitlines()
        assert lines[0] == "profile (wall clock):"
        assert "slow" in lines[1]
        assert "fast" in lines[2]

    def test_empty_summary(self):
        assert Profiler().summary() == "profile: no sections recorded"
