"""Tests for the Chrome trace_event tracer and the null default."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.tracer import (
    CAT_REQUEST,
    CAT_STEP,
    NULL_TRACER,
    ChromeTracer,
    Tracer,
    trace_request,
    validate_trace,
)


class TestNullTracer:
    def test_disabled_by_default(self):
        assert not NULL_TRACER.enabled
        assert not Tracer.enabled

    def test_every_hook_is_a_noop(self, tmp_path):
        tracer = Tracer()
        tracer.name_process(0, "accel")
        tracer.name_thread(0, 0, "scheduler")
        tracer.complete("step", CAT_STEP, 0, 0, 0.0, 1.0)
        tracer.instant("done", CAT_STEP, 0, 0, 1.0)
        tracer.write(tmp_path / "never.json")
        assert not (tmp_path / "never.json").exists()

    def test_chrome_tracer_is_a_tracer(self):
        assert isinstance(ChromeTracer(), Tracer)
        assert ChromeTracer().enabled


class TestChromeTracer:
    def test_complete_event_shape(self):
        tracer = ChromeTracer()
        tracer.complete("step", CAT_STEP, 0, 0, 0.001, 0.003, args={"cycles": 42})
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1000.0)    # seconds -> microseconds
        assert event["dur"] == pytest.approx(2000.0)
        assert event["args"] == {"cycles": 42}

    def test_instant_event_shape(self):
        tracer = ChromeTracer()
        tracer.instant("complete", CAT_REQUEST, 1, 7, 0.5)
        (event,) = tracer.events
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["tid"] == 7

    def test_backwards_span_rejected(self):
        with pytest.raises(ConfigError):
            ChromeTracer().complete("bad", CAT_STEP, 0, 0, 2.0, 1.0)

    def test_zero_width_span_allowed(self):
        tracer = ChromeTracer()
        tracer.complete("empty", CAT_STEP, 0, 0, 1.0, 1.0)
        assert tracer.events[0]["dur"] == 0.0

    def test_len_counts_events_not_metadata(self):
        tracer = ChromeTracer()
        tracer.name_process(0, "accel")
        tracer.complete("step", CAT_STEP, 0, 0, 0.0, 1.0)
        assert len(tracer) == 1

    def test_metadata_events_lead_the_trace(self):
        tracer = ChromeTracer()
        tracer.complete("step", CAT_STEP, 1, 0, 0.0, 1.0)
        tracer.name_process(1, "requests")
        tracer.name_process(0, "accel")
        tracer.name_thread(0, 0, "scheduler")
        events = tracer.trace_dict()["traceEvents"]
        assert [e["ph"] for e in events] == ["M", "M", "M", "X"]
        # Process names sorted by pid, then thread names by (pid, tid).
        assert events[0]["args"]["name"] == "accel"
        assert events[1]["args"]["name"] == "requests"
        assert events[2]["name"] == "thread_name"

    def test_write_is_canonical_and_deterministic(self, tmp_path):
        def build() -> ChromeTracer:
            tracer = ChromeTracer()
            tracer.name_process(0, "accel")
            tracer.complete("step", CAT_STEP, 0, 0, 0.0, 0.25, args={"decode": 2})
            return tracer

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        build().write(a)
        build().write(b)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_text().endswith("\n")
        data = json.loads(a.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert validate_trace(data) == 2


class _Record:
    """A RequestMetrics stand-in with just the lifecycle fields."""

    def __init__(self, prefill_end_s):
        self.request_id = 3
        self.arrival_s = 0.0
        self.admitted_s = 0.1
        self.prefill_end_s = prefill_end_s
        self.finish_s = 0.5
        self.prompt_tokens = 128
        self.output_tokens = 32


class TestTraceRequest:
    def test_full_lifecycle_spans(self):
        tracer = ChromeTracer()
        trace_request(tracer, _Record(prefill_end_s=0.2), pid=1)
        names = [e["name"] for e in tracer.events]
        assert names == ["queued", "prefill", "decode", "complete"]
        assert all(e["pid"] == 1 and e["tid"] == 3 for e in tracer.events)
        prefill = tracer.events[1]
        assert prefill["args"] == {"prompt_tokens": 128}
        complete = tracer.events[-1]
        assert complete["args"]["latency_ms"] == pytest.approx(500.0)

    def test_decode_only_record_skips_prefill_span(self):
        tracer = ChromeTracer()
        trace_request(tracer, _Record(prefill_end_s=None), pid=1)
        names = [e["name"] for e in tracer.events]
        assert names == ["queued", "decode", "complete"]


class TestValidateTrace:
    def _trace(self, *events):
        return {"displayTimeUnit": "ms", "traceEvents": list(events)}

    def test_rejects_non_dict(self):
        with pytest.raises(ConfigError):
            validate_trace([1, 2, 3])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ConfigError):
            validate_trace({"displayTimeUnit": "ms"})

    def test_rejects_missing_fields(self):
        with pytest.raises(ConfigError, match="missing"):
            validate_trace(self._trace({"name": "x", "ph": "X", "ts": 0}))

    def test_rejects_unknown_phase(self):
        event = {"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}
        with pytest.raises(ConfigError, match="phase"):
            validate_trace(self._trace(event))

    def test_rejects_complete_event_without_dur(self):
        event = {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
        with pytest.raises(ConfigError, match="dur"):
            validate_trace(self._trace(event))

    def test_rejects_negative_duration(self):
        event = {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 0, "tid": 0}
        with pytest.raises(ConfigError, match="negative"):
            validate_trace(self._trace(event))

    def test_accepts_emitted_trace(self):
        tracer = ChromeTracer()
        tracer.name_process(0, "accel")
        tracer.complete("step", CAT_STEP, 0, 0, 0.0, 1.0)
        tracer.instant("done", CAT_STEP, 0, 0, 1.0)
        assert validate_trace(tracer.trace_dict()) == 3
