"""Tests for the time-series telemetry recorder and series."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.obs.telemetry import (
    MAX_TELEMETRY_SAMPLES,
    TelemetryRecorder,
    TelemetrySample,
    TelemetrySeries,
)


class TestTelemetrySample:
    def test_validate_rejects_non_positive_dt(self):
        with pytest.raises(ConfigError):
            TelemetrySample(t_s=1.0, dt_s=0.0, queue_depth=0, running=0, tokens=0).validate()

    def test_validate_rejects_negative_busy(self):
        with pytest.raises(ConfigError):
            TelemetrySample(
                t_s=1.0, dt_s=1.0, queue_depth=0, running=0, tokens=0, busy_s=(-0.1,)
            ).validate()

    def test_utilization_clamped_to_one(self):
        sample = TelemetrySample(
            t_s=1.0, dt_s=1.0, queue_depth=0, running=0, tokens=0, busy_s=(1.5, 0.5)
        )
        assert sample.utilizations == (1.0, 0.5)
        assert sample.utilization == pytest.approx(0.75)

    def test_tokens_per_s(self):
        sample = TelemetrySample(t_s=1.0, dt_s=0.5, queue_depth=0, running=0, tokens=10)
        assert sample.tokens_per_s == pytest.approx(20.0)

    def test_round_trip(self):
        sample = TelemetrySample(
            t_s=2.0, dt_s=1.0, queue_depth=3, running=2, tokens=7, busy_s=(0.25, 0.75)
        )
        assert TelemetrySample.from_dict(sample.to_dict()) == sample


class TestTelemetrySeries:
    def _series(self, **overrides) -> TelemetrySeries:
        defaults = dict(
            interval_s=1.0,
            t0_s=0.0,
            num_replicas=2,
            samples=(
                TelemetrySample(1.0, 1.0, 4, 2, 10, (0.5, 0.25)),
                TelemetrySample(2.0, 1.0, 2, 1, 20, (1.0, 0.5)),
            ),
        )
        defaults.update(overrides)
        return TelemetrySeries(**defaults)

    def test_validate_rejects_busy_arity_mismatch(self):
        with pytest.raises(ConfigError):
            self._series(num_replicas=3).validate()

    def test_busy_totals_and_mean_utilizations(self):
        series = self._series()
        assert series.busy_totals() == (1.5, 0.75)
        assert series.mean_utilizations() == (pytest.approx(0.75), pytest.approx(0.375))

    def test_named_series(self):
        series = self._series()
        assert series.series("queue_depth") == [4, 2]
        assert series.series("running") == [2, 1]
        assert series.series("tokens_per_s") == [pytest.approx(10.0), pytest.approx(20.0)]
        assert series.series("utilization") == [pytest.approx(0.375), pytest.approx(0.75)]
        assert series.series("util:1") == [pytest.approx(0.25), pytest.approx(0.5)]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigError, match="unknown telemetry metric"):
            self._series().series("temperature")
        with pytest.raises(ConfigError, match="out of range"):
            self._series().series("util:5")

    def test_round_trip(self):
        series = self._series()
        assert TelemetrySeries.from_dict(series.to_dict()) == series


class TestRecorderBuild:
    def test_rejects_bad_cadence(self):
        with pytest.raises(ConfigError):
            TelemetryRecorder(interval_s=0.0)
        with pytest.raises(ConfigError):
            TelemetryRecorder(interval_s=1.0, num_replicas=0)

    def test_empty_recorder_builds_one_empty_sample(self):
        series = TelemetryRecorder(interval_s=1.0).build(0.0)
        assert series.num_samples == 1
        assert series.busy_totals() == (0.0,)

    def test_busy_time_split_across_buckets(self):
        recorder = TelemetryRecorder(interval_s=1.0)
        # A step spanning [0.5, 2.5] overlaps three one-second buckets.
        recorder.on_step(0, 0.5, 2.5, queue_depth=1, running=1, tokens=6)
        series = recorder.build(0.0, end_s=3.0)
        assert [s.busy_s[0] for s in series.samples] == [
            pytest.approx(0.5), pytest.approx(1.0), pytest.approx(0.5)
        ]
        # Tokens land in the bucket the step finished in.
        assert [s.tokens for s in series.samples] == [0, 0, 6]

    def test_busy_totals_match_step_durations_exactly(self):
        recorder = TelemetryRecorder(interval_s=0.3, num_replicas=2)
        spans = [(0, 0.0, 0.7), (1, 0.2, 1.1), (0, 0.9, 1.0)]
        for replica, start, end in spans:
            recorder.on_step(replica, start, end, 0, 1, 1)
        series = recorder.build(0.0)
        expected = [0.0, 0.0]
        for replica, start, end in spans:
            expected[replica] += end - start
        assert series.busy_totals() == (
            pytest.approx(expected[0]), pytest.approx(expected[1])
        )

    def test_tail_past_nominal_end_folds_into_final_bucket(self):
        recorder = TelemetryRecorder(interval_s=1.0)
        recorder.on_step(0, 0.5, 2.5, 0, 1, 0)
        # end_s clips the bucket grid at 2.0; the step's tail must not vanish.
        series = recorder.build(0.0, end_s=2.0)
        assert series.num_samples == 2
        assert sum(series.busy_totals()) == pytest.approx(2.0)

    def test_queue_is_last_observation_per_replica_summed(self):
        recorder = TelemetryRecorder(interval_s=1.0, num_replicas=2)
        recorder.observe(0, 0.1, queue_depth=5, running=2)
        recorder.observe(1, 0.2, queue_depth=3, running=1)
        recorder.observe(0, 1.5, queue_depth=1, running=0)
        series = recorder.build(0.0, end_s=2.0)
        assert series.series("queue_depth") == [8, 4]   # 5+3 then 1+3
        assert series.series("running") == [3, 1]

    def test_observe_adds_no_busy_time(self):
        recorder = TelemetryRecorder(interval_s=1.0)
        recorder.observe(0, 0.5, queue_depth=9, running=0)
        series = recorder.build(0.0, end_s=1.0)
        assert series.busy_totals() == (0.0,)
        assert series.samples[0].queue_depth == 9

    def test_sample_cap_enforced(self):
        recorder = TelemetryRecorder(interval_s=1e-6)
        recorder.on_step(0, 0.0, 1.0, 0, 1, 1)
        with pytest.raises(ConfigError, match="raise the sampling interval"):
            recorder.build(0.0)
        assert MAX_TELEMETRY_SAMPLES == 16_384

    def test_final_sample_clamped_to_end(self):
        recorder = TelemetryRecorder(interval_s=1.0)
        recorder.on_step(0, 0.0, 1.5, 0, 1, 2)
        series = recorder.build(0.0, end_s=1.5)
        assert series.num_samples == 2
        assert series.samples[-1].t_s == pytest.approx(1.5)
        assert series.samples[-1].dt_s == pytest.approx(0.5)
        assert series.duration_s == pytest.approx(1.5)
