"""End-to-end observability: tracing and telemetry through real simulations.

These tests pin the two contracts the observability layer lives by: with
tracing/telemetry *off*, runs are bit-identical to pre-observability runs
(covered by the golden-fixture suite); with them *on*, the emitted trace is
deterministic and the sampled telemetry integrates to the same busy time the
headline aggregates report.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.scenario import ClusterScenario
from repro.config.scale import ScaleTier
from repro.obs import ChromeTracer, Profiler, validate_trace
from repro.serve.metrics import ServeMetrics
from repro.serve.scenario import ServeScenario


def serve_scenario(**overrides) -> ServeScenario:
    defaults = dict(
        workload="llama3-70b",
        arrival="poisson",
        rate=2000.0,
        num_requests=8,
        max_batch=2,
        seed=0,
        tier=ScaleTier.SMOKE,
    )
    defaults.update(overrides)
    return ServeScenario(**defaults).validate()


def cluster_scenario(**overrides) -> ClusterScenario:
    defaults = dict(
        workload="llama3-70b",
        arrival="poisson",
        rate=2000.0,
        num_requests=8,
        replicas=2,
        max_batch=2,
        seed=0,
        tier=ScaleTier.SMOKE,
    )
    defaults.update(overrides)
    return ClusterScenario(**defaults).validate()


class TestServeTracing:
    def test_trace_is_valid_and_byte_identical_across_runs(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            tracer = ChromeTracer()
            serve_scenario().run(tracer=tracer)
            path = tmp_path / name
            tracer.write(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        data = json.loads(paths[0].read_text())
        assert validate_trace(data) == len(data["traceEvents"])

    def test_trace_carries_request_and_scheduler_tracks(self):
        tracer = ChromeTracer()
        metrics = serve_scenario().run(tracer=tracer)
        events = tracer.trace_dict()["traceEvents"]
        names = {e["name"] for e in events}
        assert {"queued", "prefill", "decode", "complete", "step"} <= names
        # One decode span and one complete instant per request.
        decodes = [e for e in events if e["name"] == "decode"]
        assert len(decodes) == metrics.num_requests
        steps = [e for e in events if e["name"] == "step"]
        assert len(steps) == metrics.steps
        # Step spans carry the plan composition and cycle cost.
        assert all("cycles" in e["args"] for e in steps)
        assert {e["args"].get("decode") for e in steps} != {None}

    def test_tracing_does_not_change_metrics(self):
        baseline = serve_scenario().run()
        traced = serve_scenario().run(tracer=ChromeTracer())
        assert traced == baseline

    def test_profiler_collects_step_cost_sections(self):
        profiler = Profiler()
        serve_scenario().run(profiler=profiler)
        data = profiler.as_dict()
        assert data["serve.step_cost_build"]["calls"] > 0
        assert data["serve.step_cost_build"]["wall_s"] > 0.0
        assert data["serve.step_cost_hit"]["calls"] > 0


class TestServeTelemetry:
    def test_telemetry_off_leaves_metrics_dict_unchanged(self):
        metrics = serve_scenario().run()
        assert metrics.telemetry is None
        assert "telemetry" not in metrics.to_dict()

    def test_telemetry_round_trips_through_metrics_dict(self):
        metrics = serve_scenario(telemetry_ms=2.0).run()
        assert metrics.telemetry is not None
        restored = ServeMetrics.from_dict(metrics.to_dict())
        assert restored == metrics
        assert restored.telemetry == metrics.telemetry

    def test_sampled_utilization_integrates_to_aggregate(self):
        """The telemetry invariant: sampled busy time must sum to the same
        busy seconds the end-of-run aggregate reports."""

        metrics = serve_scenario(telemetry_ms=1.0).run()
        series = metrics.telemetry
        busy_from_cycles = metrics.total_cycles / (metrics.frequency_ghz * 1e9)
        assert sum(series.busy_totals()) == pytest.approx(busy_from_cycles, rel=1e-9)
        # Mean utilization over the sampled span likewise matches the
        # aggregate utilization over the run's duration.
        sampled_util = sum(series.busy_totals()) / series.duration_s
        aggregate_util = busy_from_cycles / metrics.duration_s
        assert sampled_util == pytest.approx(aggregate_util, rel=0.05)

    def test_telemetry_ms_changes_content_hash_only_when_set(self):
        base = serve_scenario()
        assert "telemetry_ms" not in base.to_dict()
        assert base.key() == serve_scenario().key()
        sampled = serve_scenario(telemetry_ms=1.0)
        assert sampled.to_dict()["telemetry_ms"] == 1.0
        assert sampled.key() != base.key()


class TestClusterTracing:
    def test_cluster_trace_valid_and_deterministic(self, tmp_path):
        blobs = []
        for _ in range(2):
            tracer = ChromeTracer()
            cluster_scenario().run(tracer=tracer)
            blobs.append(tracer.to_json())
        assert blobs[0] == blobs[1]
        assert validate_trace(json.loads(blobs[0])) > 0

    def test_replica_tracks_are_named(self):
        tracer = ChromeTracer()
        cluster_scenario().run(tracer=tracer)
        names = [
            e["args"]["name"]
            for e in tracer.trace_dict()["traceEvents"]
            if e["name"] == "process_name"
        ]
        assert names == ["replica 0 [mixed]", "replica 1 [mixed]", "requests"]

    def test_disaggregated_trace_emits_handoffs(self):
        tracer = ChromeTracer()
        metrics = cluster_scenario(
            replicas=2, disaggregated="1p1d", kv_transfer_ms=0.05
        ).run(tracer=tracer)
        events = tracer.trace_dict()["traceEvents"]
        transfers = [e for e in events if e["name"] == "kv-transfer"]
        handoffs = [e for e in events if e["name"] == "handoff"]
        assert len(transfers) == metrics.meta["handoffs"]
        assert len(handoffs) == metrics.meta["handoffs"]
        assert all(e["args"]["from_replica"] == 0 for e in transfers)
        assert all(e["args"]["to_replica"] == 1 for e in handoffs)


class TestClusterTelemetry:
    def test_telemetry_off_leaves_metrics_dict_unchanged(self):
        metrics = cluster_scenario().run()
        assert metrics.telemetry is None
        assert "telemetry" not in metrics.to_dict()

    def test_telemetry_round_trips_through_metrics_dict(self):
        metrics = cluster_scenario(telemetry_ms=2.0).run()
        assert metrics.telemetry is not None
        assert metrics.telemetry.num_replicas == 2
        restored = ClusterMetrics.from_dict(metrics.to_dict())
        assert restored == metrics

    def test_sampled_busy_matches_replica_aggregates(self):
        metrics = cluster_scenario(telemetry_ms=1.0).run()
        totals = metrics.telemetry.busy_totals()
        for replica in metrics.replicas:
            assert totals[replica.replica_id] == pytest.approx(
                replica.busy_s, rel=1e-9, abs=1e-12
            )

    def test_tracing_does_not_change_metrics(self):
        baseline = cluster_scenario().run()
        traced = cluster_scenario().run(tracer=ChromeTracer())
        assert traced == baseline
