"""Tests for the ASCII timeline renderer."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.obs.telemetry import TelemetrySample, TelemetrySeries
from repro.obs.timeline import BLOCKS, render_timeline, resample, sparkline


class TestResample:
    def test_short_series_passes_through(self):
        assert resample([1.0, 2.0], 10) == [1.0, 2.0]

    def test_long_series_chunk_averages(self):
        values = [0.0, 2.0, 4.0, 6.0]
        assert resample(values, 2) == [1.0, 5.0]

    def test_width_must_be_positive(self):
        with pytest.raises(ConfigError):
            resample([1.0], 0)


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_lowest_glyph(self):
        assert sparkline([3.0, 3.0, 3.0]) == BLOCKS[0] * 3

    def test_min_and_max_map_to_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == BLOCKS[0]
        assert line[-1] == BLOCKS[-1]

    def test_explicit_bounds_pin_the_scale(self):
        # Half utilization on a [0, 1] scale lands mid-palette.
        line = sparkline([0.5], lo=0.0, hi=1.0)
        assert line == BLOCKS[4]


class TestRenderTimeline:
    def _series(self) -> TelemetrySeries:
        return TelemetrySeries(
            interval_s=1.0,
            t0_s=0.0,
            num_replicas=1,
            samples=(
                TelemetrySample(1.0, 1.0, 4, 2, 10, (0.5,)),
                TelemetrySample(2.0, 1.0, 0, 1, 20, (1.0,)),
            ),
        )

    def test_renders_header_and_rows(self):
        text = render_timeline(self._series())
        lines = text.splitlines()
        assert "2 samples x 1s" in lines[0]
        assert "(1 replica)" in lines[0]
        labels = [line.split("|")[0].strip() for line in lines[1:]]
        assert labels == ["util", "queue", "batch", "tok/s"]
        assert "min 0 mean 2 max 4" in lines[2]        # queue row

    def test_custom_metrics_and_width(self):
        text = render_timeline(
            self._series(), metrics=(("util:0", "r0"),), width=8
        )
        assert text.splitlines()[1].startswith("r0 |")

    def test_empty_series_renders_placeholder(self):
        empty = TelemetrySeries(interval_s=1.0, t0_s=0.0, num_replicas=1)
        assert "no samples" in render_timeline(empty)
