"""Tests for the persistent JSON-lines result store."""

from __future__ import annotations

import json
import os

import pytest

from repro.sim.results import SimResult
from repro.sim.simulator import simulate
from repro.sweep.store import ResultStore, StoreRecord


@pytest.fixture()
def sim_result(tiny_system, unopt_policy, tiny_workload) -> SimResult:
    return simulate(tiny_system, unopt_policy, workload=tiny_workload, label="unopt")


class TestPutGet:
    def test_round_trip_in_memory(self, tmp_path, tiny_points, sim_result):
        store = ResultStore(tmp_path / "results.jsonl")
        point = tiny_points[0]
        store.put(point, result=sim_result, elapsed_s=1.5)
        assert point.key() in store
        assert store.result_for(point) == sim_result
        record = store.get(point.key())
        assert record is not None and record.ok
        assert record.elapsed_s == 1.5
        assert record.config == point.config_dict()

    def test_round_trip_through_disk(self, tmp_path, tiny_points, sim_result):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(tiny_points[0], result=sim_result)
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        restored = reloaded.result_for(tiny_points[0])
        assert restored == sim_result
        assert restored.cycles == sim_result.cycles
        assert restored.llc == sim_result.llc

    def test_requires_exactly_one_of_result_or_error(self, tmp_path, tiny_points, sim_result):
        store = ResultStore(tmp_path / "results.jsonl")
        with pytest.raises(ValueError):
            store.put(tiny_points[0])
        with pytest.raises(ValueError):
            store.put(tiny_points[0], result=sim_result, error="boom")

    def test_miss_returns_none(self, tmp_path, tiny_points):
        store = ResultStore(tmp_path / "results.jsonl")
        assert store.result_for(tiny_points[0]) is None
        assert store.get("no-such-key") is None


class TestFailureRecords:
    def test_error_record_is_not_a_cache_hit(self, tmp_path, tiny_points):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        point = tiny_points[0]
        store.put(point, error="SimulationError: exceeded max_cycles")
        assert point.key() not in store
        assert store.result_for(point) is None
        # ...but the record survives for post-mortems.
        record = ResultStore(path).get(point.key())
        assert record is not None
        assert record.status == "error"
        assert "SimulationError" in record.error


class TestCrashTolerance:
    def test_truncated_trailing_line_is_skipped(self, tmp_path, tiny_points, sim_result):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(tiny_points[0], result=sim_result)
        store.put(tiny_points[1], result=sim_result)
        # Simulate a run killed mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 1
        assert reloaded.result_for(tiny_points[0]) is not None
        assert reloaded.result_for(tiny_points[1]) is None

    def test_garbage_lines_are_skipped(self, tmp_path, tiny_points, sim_result):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(tiny_points[0], result=sim_result)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"wrong": "schema"}) + "\n")
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 2
        assert len(reloaded) == 1

    def test_missing_file_is_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nope" / "results.jsonl")
        assert len(store) == 0


class TestRecordSerialization:
    def test_json_line_round_trip(self, tiny_points, sim_result):
        record = StoreRecord(
            key=tiny_points[0].key(),
            label="unopt",
            status="ok",
            result=sim_result,
            error=None,
            elapsed_s=0.25,
            config=tiny_points[0].config_dict(),
        )
        assert StoreRecord.from_json_line(record.to_json_line()) == record


class TestMixedKinds:
    """One JSONL store holding sim + serve + cluster records side by side."""

    @pytest.fixture()
    def serve_point(self):
        from repro.serve.scenario import ServeScenario
        from repro.serve.sweep import ServePoint

        return ServePoint(
            label="serve-pt",
            scenario=ServeScenario(workload="llama3-70b", rate=100.0, num_requests=2),
        )

    @pytest.fixture()
    def serve_metrics(self):
        from repro.serve.metrics import ServeMetrics

        return ServeMetrics(
            label="serve-pt", workload="llama3-70b", frequency_ghz=2.0,
            duration_s=1.0, steps=4, total_cycles=400,
        )

    @pytest.fixture()
    def cluster_point(self):
        from repro.cluster.scenario import ClusterScenario
        from repro.cluster.sweep import ClusterPoint

        return ClusterPoint(
            label="cluster-pt",
            scenario=ClusterScenario(workload="llama3-70b", rate=100.0, num_requests=2),
        )

    @pytest.fixture()
    def cluster_metrics(self):
        from repro.cluster.metrics import ClusterMetrics, ReplicaMetrics

        return ClusterMetrics(
            label="cluster-pt", workload="llama3-70b", router="round-robin",
            duration_s=1.0,
            replicas=(
                ReplicaMetrics(
                    replica_id=0, system="table5", frequency_ghz=2.0,
                    steps=4, total_cycles=400, busy_s=0.5, routed=0,
                ),
            ),
        )

    def test_mixed_store_round_trips_every_kind(
        self, tmp_path, tiny_points, sim_result,
        serve_point, serve_metrics, cluster_point, cluster_metrics,
    ):
        from repro.cluster.metrics import ClusterMetrics
        from repro.serve.metrics import ServeMetrics

        path = tmp_path / "mixed.jsonl"
        store = ResultStore(path)
        store.put(tiny_points[0], result=sim_result)
        store.put(serve_point, result=serve_metrics)
        store.put(cluster_point, result=cluster_metrics)

        reloaded = ResultStore(path)
        assert len(reloaded) == 3
        assert {r.kind for r in reloaded.records()} == {"sim", "serve", "cluster"}
        assert isinstance(reloaded.result_for(tiny_points[0]), SimResult)
        assert isinstance(reloaded.result_for(serve_point), ServeMetrics)
        assert isinstance(reloaded.result_for(cluster_point), ClusterMetrics)
        assert reloaded.result_for(serve_point) == serve_metrics
        assert reloaded.result_for(cluster_point) == cluster_metrics

    def test_pre_kind_tag_store_still_resumes(self, tmp_path, tiny_points, sim_result):
        # Stores written before the "kind" tag existed have no such field;
        # they must keep loading (and resuming) as kernel-level records.
        path = tmp_path / "legacy.jsonl"
        ResultStore(path).put(tiny_points[0], result=sim_result)
        lines = []
        for line in path.read_text().splitlines():
            payload = json.loads(line)
            del payload["kind"]
            lines.append(json.dumps(payload))
        path.write_text("\n".join(lines) + "\n")

        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 0
        restored = reloaded.result_for(tiny_points[0])
        assert isinstance(restored, SimResult)
        assert restored == sim_result

    def test_pre_telemetry_serve_record_still_loads(
        self, tmp_path, serve_point, serve_metrics
    ):
        # Serve/cluster records written before the optional "telemetry" field
        # existed simply lack the key; they must load with telemetry None.
        from repro.serve.metrics import ServeMetrics

        path = tmp_path / "pre_telemetry.jsonl"
        ResultStore(path).put(serve_point, result=serve_metrics)
        payload = json.loads(path.read_text().splitlines()[0])
        assert "telemetry" not in payload["result"]

        restored = ResultStore(path).result_for(serve_point)
        assert isinstance(restored, ServeMetrics)
        assert restored.telemetry is None
        assert restored == serve_metrics

    def test_telemetry_bearing_serve_record_round_trips(
        self, tmp_path, serve_point, serve_metrics
    ):
        from dataclasses import replace

        from repro.obs.telemetry import TelemetrySample, TelemetrySeries

        series = TelemetrySeries(
            interval_s=0.5,
            t0_s=0.0,
            num_replicas=1,
            samples=(TelemetrySample(0.5, 0.5, 2, 1, 8, (0.25,)),),
        )
        sampled = replace(serve_metrics, telemetry=series)
        path = tmp_path / "telemetry.jsonl"
        ResultStore(path).put(serve_point, result=sampled)

        restored = ResultStore(path).result_for(serve_point)
        assert restored.telemetry == series
        assert restored == sampled

    def test_unknown_kind_line_is_skipped(self, tmp_path, tiny_points, sim_result):
        path = tmp_path / "future.jsonl"
        store = ResultStore(path)
        store.put(tiny_points[0], result=sim_result)
        record = json.loads(path.read_text().splitlines()[0])
        record["kind"] = "hologram"
        record["key"] = "future-key"
        with path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")

        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 1             # the unknown kind
        assert reloaded.result_for(tiny_points[0]) is not None


class TestFind:
    """Git-style abbreviated lookup for ``llamcat timeline``."""

    @pytest.fixture()
    def store(self, tmp_path, tiny_points, sim_result) -> ResultStore:
        store = ResultStore(tmp_path / "results.jsonl")
        store.put(tiny_points[0], result=sim_result, elapsed_s=0.1)
        store.put(tiny_points[1], result=sim_result, elapsed_s=0.2)
        return store

    def test_exact_key_wins(self, store, tiny_points):
        key = tiny_points[0].key()
        assert store.find(key).key == key

    def test_unique_prefix_resolves(self, store, tiny_points):
        key = tiny_points[0].key()
        for n in range(4, 12):
            prefix = key[:n]
            others = [p.key() for p in tiny_points[1:2]]
            if any(o.startswith(prefix) for o in others):
                continue
            assert store.find(prefix).key == key
            break
        else:
            pytest.skip("tiny points share an improbably long key prefix")

    def test_label_resolves(self, store, tiny_points):
        record = store.find(tiny_points[0].label)
        assert record.label == tiny_points[0].label

    def test_empty_prefix_rejected(self, store):
        with pytest.raises(KeyError):
            store.find("")

    def test_missing_prefix_rejected(self, store):
        with pytest.raises(KeyError, match="no stored result"):
            store.find("zzzz-no-such-key")

    def test_ambiguous_prefix_rejected(self, tmp_path, tiny_points, sim_result):
        store = ResultStore(tmp_path / "results.jsonl")
        store.put(tiny_points[0], result=sim_result)
        store.put(tiny_points[1], result=sim_result)
        keys = [p.key() for p in tiny_points[:2]]
        common = os.path.commonprefix(keys)
        if common:
            with pytest.raises(KeyError, match="ambiguous"):
                store.find(common)

    def test_ambiguous_label_rejected(self, tmp_path, tiny_points, sim_result):
        # tiny_points[0] and [2] share the label but differ in seq_len (and
        # therefore in key), so a label lookup cannot pick one.
        store = ResultStore(tmp_path / "results.jsonl")
        assert tiny_points[0].label == tiny_points[2].label
        store.put(tiny_points[0], result=sim_result)
        store.put(tiny_points[2], result=sim_result)
        with pytest.raises(KeyError, match="ambiguous"):
            store.find(tiny_points[0].label)

    def test_missing_prefix_suggests_available_records(self, store, tiny_points):
        with pytest.raises(KeyError) as excinfo:
            store.find("zzzz-no-such-key")
        message = excinfo.value.args[0]
        assert "available:" in message
        for point in tiny_points[:2]:
            assert point.key()[:12] in message
            assert point.label in message

    def test_missing_prefix_on_empty_store_has_no_suggestions(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        with pytest.raises(KeyError) as excinfo:
            store.find("anything")
        message = excinfo.value.args[0]
        assert "0 records" in message
        assert "available:" not in message

    def test_ambiguous_error_lists_every_match(self, tmp_path, tiny_points, sim_result):
        store = ResultStore(tmp_path / "results.jsonl")
        store.put(tiny_points[0], result=sim_result)
        store.put(tiny_points[2], result=sim_result)
        with pytest.raises(KeyError) as excinfo:
            store.find(tiny_points[0].label)
        message = excinfo.value.args[0]
        assert "ambiguous" in message
        for point in (tiny_points[0], tiny_points[2]):
            assert point.key()[:12] in message
