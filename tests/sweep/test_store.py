"""Tests for the persistent JSON-lines result store."""

from __future__ import annotations

import json

import pytest

from repro.sim.results import SimResult
from repro.sim.simulator import simulate
from repro.sweep.store import ResultStore, StoreRecord


@pytest.fixture()
def sim_result(tiny_system, unopt_policy, tiny_workload) -> SimResult:
    return simulate(tiny_system, unopt_policy, workload=tiny_workload, label="unopt")


class TestPutGet:
    def test_round_trip_in_memory(self, tmp_path, tiny_points, sim_result):
        store = ResultStore(tmp_path / "results.jsonl")
        point = tiny_points[0]
        store.put(point, result=sim_result, elapsed_s=1.5)
        assert point.key() in store
        assert store.result_for(point) == sim_result
        record = store.get(point.key())
        assert record is not None and record.ok
        assert record.elapsed_s == 1.5
        assert record.config == point.config_dict()

    def test_round_trip_through_disk(self, tmp_path, tiny_points, sim_result):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(tiny_points[0], result=sim_result)
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        restored = reloaded.result_for(tiny_points[0])
        assert restored == sim_result
        assert restored.cycles == sim_result.cycles
        assert restored.llc == sim_result.llc

    def test_requires_exactly_one_of_result_or_error(self, tmp_path, tiny_points, sim_result):
        store = ResultStore(tmp_path / "results.jsonl")
        with pytest.raises(ValueError):
            store.put(tiny_points[0])
        with pytest.raises(ValueError):
            store.put(tiny_points[0], result=sim_result, error="boom")

    def test_miss_returns_none(self, tmp_path, tiny_points):
        store = ResultStore(tmp_path / "results.jsonl")
        assert store.result_for(tiny_points[0]) is None
        assert store.get("no-such-key") is None


class TestFailureRecords:
    def test_error_record_is_not_a_cache_hit(self, tmp_path, tiny_points):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        point = tiny_points[0]
        store.put(point, error="SimulationError: exceeded max_cycles")
        assert point.key() not in store
        assert store.result_for(point) is None
        # ...but the record survives for post-mortems.
        record = ResultStore(path).get(point.key())
        assert record is not None
        assert record.status == "error"
        assert "SimulationError" in record.error


class TestCrashTolerance:
    def test_truncated_trailing_line_is_skipped(self, tmp_path, tiny_points, sim_result):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(tiny_points[0], result=sim_result)
        store.put(tiny_points[1], result=sim_result)
        # Simulate a run killed mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 1
        assert reloaded.result_for(tiny_points[0]) is not None
        assert reloaded.result_for(tiny_points[1]) is None

    def test_garbage_lines_are_skipped(self, tmp_path, tiny_points, sim_result):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(tiny_points[0], result=sim_result)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"wrong": "schema"}) + "\n")
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 2
        assert len(reloaded) == 1

    def test_missing_file_is_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nope" / "results.jsonl")
        assert len(store) == 0


class TestRecordSerialization:
    def test_json_line_round_trip(self, tiny_points, sim_result):
        record = StoreRecord(
            key=tiny_points[0].key(),
            label="unopt",
            status="ok",
            result=sim_result,
            error=None,
            elapsed_s=0.25,
            config=tiny_points[0].config_dict(),
        )
        assert StoreRecord.from_json_line(record.to_json_line()) == record
