"""Fixtures for the sweep subsystem: tiny fully resolved points."""

from __future__ import annotations

import pytest

from repro.config.policies import PolicyConfig, ThrottleKind
from repro.sweep.spec import SweepPoint


@pytest.fixture()
def tiny_points(tiny_system, tiny_workload) -> list[SweepPoint]:
    """Four distinct tiny points (2 policies x 2 seq lens), fast to simulate."""

    policies = {
        "unopt": PolicyConfig(),
        "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
    }
    points = []
    for seq_len in (64, 128):
        workload = tiny_workload.with_seq_len(seq_len)
        for name, policy in policies.items():
            points.append(
                SweepPoint(
                    label=name,
                    system=tiny_system,
                    workload=workload,
                    policy=policy,
                    coords=(("policy", name), ("seq_len", seq_len)),
                )
            )
    return points
