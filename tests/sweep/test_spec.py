"""Tests for sweep specs: grid expansion, content hashing, round-trips."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.config.policies import PolicyConfig, ThrottleKind
from repro.config.scale import ScaleTier
from repro.sweep.spec import (
    FIG9_POLICY_LABELS,
    SweepPoint,
    SweepSpec,
    fig9_spec,
    sweep_point,
    workload_for,
)


class TestGridExpansion:
    def test_point_count_is_cartesian_product(self):
        spec = SweepSpec(
            models=("llama3-70b", "llama3-405b"),
            seq_lens=(1024, 2048, 4096),
            policies=("unopt", "dynmg"),
            l2_mib=(16, 32),
            tier=ScaleTier.SMOKE,
        )
        assert spec.num_points == 2 * 3 * 2 * 2
        assert len(spec.expand()) == spec.num_points

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(
            models=("llama3-70b",),
            seq_lens=(1024, 2048),
            policies=("unopt", "dynmg+BMA"),
            tier=ScaleTier.SMOKE,
        )
        first, second = spec.expand(), spec.expand()
        assert first == second
        assert [p.key() for p in first] == [p.key() for p in second]

    def test_all_keys_distinct_across_grid(self):
        # Seq lens chosen to stay distinct after SMOKE scaling (/64, floor 64).
        spec = SweepSpec(
            models=("llama3-70b",),
            seq_lens=(4096, 8192),
            policies=("unopt", "dynmg"),
            l2_mib=(16, 32),
            tier=ScaleTier.SMOKE,
        )
        points = spec.expand()
        assert len({p.key() for p in points}) == len(points)

    def test_points_carry_scaled_configs(self):
        spec = SweepSpec(
            models=("llama3-70b",),
            seq_lens=(4096,),
            policies=("unopt",),
            l2_mib=(32,),
            tier=ScaleTier.CI,
        )
        (point,) = spec.expand()
        # CI tier divides both axes by 32.
        assert point.workload.shape.seq_len == 4096 // 32
        assert point.system.l2.size_bytes == 32 * 2**20 // 32

    def test_fig9_spec_matches_paper_grid(self):
        spec = fig9_spec(tier=ScaleTier.CI)
        assert spec.num_points == 2 * 3 * 1 * len(FIG9_POLICY_LABELS)

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(models=(), seq_lens=(64,), policies=("unopt",)).validate()

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(models=("gpt-7",), seq_lens=(64,), policies=("unopt",)).validate()
        with pytest.raises(ConfigError):
            workload_for("gpt-7", 64)

    def test_malformed_policy_label_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(
                models=("llama3-70b",), seq_lens=(64,), policies=("warpdrive",)
            ).validate()


class TestContentHash:
    def test_key_ignores_label_and_coords(self):
        a = sweep_point("llama3-70b", 2048, "unopt", tier=ScaleTier.CI, label="reference")
        b = sweep_point("llama3-70b", 2048, "unopt", tier=ScaleTier.CI, label="unoptimized")
        assert a.label != b.label
        assert a.key() == b.key()

    def test_key_changes_with_policy(self):
        a = sweep_point("llama3-70b", 2048, "unopt", tier=ScaleTier.CI)
        b = sweep_point("llama3-70b", 2048, "dynmg", tier=ScaleTier.CI)
        assert a.key() != b.key()

    def test_key_changes_with_l2_capacity(self):
        a = sweep_point("llama3-70b", 2048, "unopt", l2_mib=16, tier=ScaleTier.SMOKE)
        b = sweep_point("llama3-70b", 2048, "unopt", l2_mib=32, tier=ScaleTier.SMOKE)
        assert a.key() != b.key()

    def test_key_changes_with_max_cycles(self):
        a = sweep_point("llama3-70b", 2048, "unopt", tier=ScaleTier.CI)
        b = sweep_point("llama3-70b", 2048, "unopt", tier=ScaleTier.CI, max_cycles=10_000)
        assert a.key() != b.key()

    def test_key_stable_for_equal_points(self, tiny_system, tiny_workload):
        kwargs = dict(
            label="x",
            system=tiny_system,
            workload=tiny_workload,
            policy=PolicyConfig(throttle=ThrottleKind.DYNMG),
        )
        assert SweepPoint(**kwargs).key() == SweepPoint(**kwargs).key()

    def test_config_dict_is_json_ready(self, tiny_points):
        import json

        for point in tiny_points:
            text = json.dumps(point.config_dict(), sort_keys=True)
            assert "policy" in text


class TestSpecRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        spec = SweepSpec(
            models=("llama3-405b",),
            seq_lens=(1024, 8192),
            policies=("unopt", "dynmg+BMA"),
            l2_mib=(16, None),
            tier=ScaleTier.PAPER_SCALED,
            max_cycles=123_456,
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_defaults(self):
        spec = SweepSpec.from_dict(
            {"models": ["llama3-70b"], "seq_lens": [64], "policies": ["unopt"]}
        )
        assert spec.tier is ScaleTier.CI
        assert spec.l2_mib == (None,)


class TestPointHelpers:
    def test_coord_lookup(self):
        point = sweep_point("llama3-70b", 2048, "dynmg", l2_mib=16, tier=ScaleTier.CI)
        assert point.coord("model") == "llama3-70b"
        assert point.coord("l2_mib") == 16
        assert point.coord("missing", "fallback") == "fallback"

    def test_describe_mentions_workload_and_policy(self):
        point = sweep_point("llama3-70b", 2048, "dynmg+BMA", tier=ScaleTier.CI)
        text = point.describe()
        assert "llama3-70b" in text
        assert "dynmg+BMA" in text
