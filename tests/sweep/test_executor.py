"""Tests for the parallel sweep executor: correctness vs the serial path,
store-backed resume, dedup and per-point failure capture."""

from __future__ import annotations

import pytest

from repro.config.policies import PolicyConfig, ThrottleKind
from repro.config.presets import llama3_70b_logit, table5_system
from repro.config.scale import ScaleTier, scale_experiment
from repro.sim.runner import compare_policies
from repro.sweep import executor as executor_module
from repro.sweep.executor import run_sweep
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import ResultStore

CI_POLICIES = {
    "unopt": PolicyConfig(),
    "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
}


class TestSerialEquivalence:
    def test_matches_compare_policies_on_ci_tier_grid(self):
        """The executor must reproduce the serial path cycle-for-cycle."""

        seq_len = 2048
        system, workload = scale_experiment(
            table5_system(), llama3_70b_logit(seq_len), ScaleTier.CI
        )
        serial = compare_policies(system, workload, CI_POLICIES, baseline_label="unopt")

        spec = SweepSpec(
            models=("llama3-70b",),
            seq_lens=(seq_len,),
            policies=tuple(CI_POLICIES),
            tier=ScaleTier.CI,
        )
        points = spec.expand()
        report = run_sweep(points, jobs=1).raise_on_failure()
        for point in points:
            name = point.coord("policy")
            assert report.result_for(point).cycles == serial.results[name].cycles
        speedup = {p.coord("policy"): report.result_for(p).cycles for p in points}
        assert speedup["unopt"] / speedup["dynmg"] == pytest.approx(serial.speedup("dynmg"))


class TestParallelEquivalence:
    def test_parallel_results_identical_to_serial(self, tiny_points):
        serial = run_sweep(tiny_points, jobs=1).raise_on_failure()
        parallel = run_sweep(tiny_points, jobs=2).raise_on_failure()
        for point in tiny_points:
            assert parallel.result_for(point) == serial.result_for(point)

    def test_outcomes_align_with_submission_order(self, tiny_points):
        report = run_sweep(tiny_points, jobs=2).raise_on_failure()
        assert [o.point for o in report.outcomes] == tiny_points

    def test_invalid_jobs_rejected(self, tiny_points):
        with pytest.raises(ValueError):
            run_sweep(tiny_points[:1], jobs=0)


class TestDedup:
    def test_identical_configs_simulate_once(self, tiny_points, monkeypatch):
        point = tiny_points[0]
        twin = SweepPoint(
            label="twin",
            system=point.system,
            workload=point.workload,
            policy=point.policy,
        )
        calls = []
        original = executor_module._execute_point

        def counting(p):
            calls.append(p.label)
            return original(p)

        monkeypatch.setattr(executor_module, "_execute_point", counting)
        report = run_sweep([point, twin], jobs=1).raise_on_failure()
        assert len(calls) == 1
        # Both points are answered, each under its own label.
        assert report.outcomes[0].result.label == point.label
        assert report.outcomes[1].result.label == "twin"
        assert report.outcomes[0].result.cycles == report.outcomes[1].result.cycles


class TestStoreResume:
    def test_second_invocation_is_fully_cached(self, tmp_path, tiny_points):
        path = tmp_path / "results.jsonl"
        first = run_sweep(tiny_points, jobs=1, store=ResultStore(path)).raise_on_failure()
        assert first.num_simulated == len(tiny_points)

        second = run_sweep(tiny_points, jobs=1, store=ResultStore(path)).raise_on_failure()
        assert second.num_cached == len(tiny_points)
        assert second.num_simulated == 0
        for point in tiny_points:
            assert second.result_for(point) == first.result_for(point)

    def test_cached_points_never_reach_the_worker(self, tmp_path, tiny_points, monkeypatch):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_points, jobs=1, store=ResultStore(path)).raise_on_failure()

        def explode(point):
            raise AssertionError(f"re-simulated a stored point: {point.describe()}")

        monkeypatch.setattr(executor_module, "_execute_point", explode)
        report = run_sweep(tiny_points, jobs=1, store=ResultStore(path))
        assert report.num_cached == len(tiny_points)

    def test_killed_halfway_resumes_only_missing_points(self, tmp_path, tiny_points):
        """Simulate a sweep killed after half its points were persisted."""

        path = tmp_path / "results.jsonl"
        half = len(tiny_points) // 2
        run_sweep(tiny_points[:half], jobs=1, store=ResultStore(path)).raise_on_failure()

        report = run_sweep(tiny_points, jobs=1, store=ResultStore(path)).raise_on_failure()
        assert report.num_cached == half
        assert report.num_simulated == len(tiny_points) - half
        cached_keys = {o.point.key() for o in report.outcomes if o.cached}
        assert cached_keys == {p.key() for p in tiny_points[:half]}

    def test_force_resimulates_stored_points(self, tmp_path, tiny_points):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_points[:1], jobs=1, store=ResultStore(path)).raise_on_failure()
        report = run_sweep(
            tiny_points[:1], jobs=1, store=ResultStore(path), force=True
        ).raise_on_failure()
        assert report.num_simulated == 1
        assert report.num_cached == 0


class TestFailureCapture:
    @pytest.fixture()
    def doomed_point(self, tiny_points) -> SweepPoint:
        # max_cycles far below completion: the engine raises SimulationError.
        point = tiny_points[0]
        return SweepPoint(
            label="doomed",
            system=point.system,
            workload=point.workload,
            policy=point.policy,
            max_cycles=50,
        )

    def test_failure_is_captured_not_raised(self, tiny_points, doomed_point):
        report = run_sweep([doomed_point, tiny_points[1]], jobs=1)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.point.label == "doomed"
        assert "SimulationError" in failure.error
        # The healthy point still completed.
        assert report.result_for(tiny_points[1]).cycles > 0

    def test_raise_on_failure_raises_with_context(self, doomed_point):
        report = run_sweep([doomed_point], jobs=1)
        with pytest.raises(RuntimeError, match="1/1 sweep points failed"):
            report.raise_on_failure()

    def test_failed_points_are_retried_on_resume(self, tmp_path, tiny_points, doomed_point):
        path = tmp_path / "results.jsonl"
        run_sweep([doomed_point], jobs=1, store=ResultStore(path))
        report = run_sweep([doomed_point], jobs=1, store=ResultStore(path))
        assert report.num_cached == 0
        assert len(report.failures) == 1


class TestProgressCallback:
    def test_progress_fires_once_per_point(self, tiny_points):
        seen = []
        run_sweep(
            tiny_points,
            jobs=1,
            progress=lambda done, total, outcome: seen.append((done, total, outcome.ok)),
        )
        assert [s[0] for s in seen] == list(range(1, len(tiny_points) + 1))
        assert all(total == len(tiny_points) for _, total, _ in seen)
        assert all(ok for _, _, ok in seen)
