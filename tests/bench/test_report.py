"""llamcat report: markdown/HTML rendering from trend files and result stores."""

import pytest

from repro.bench.report import build_report, render_report
from repro.bench.trend import TrendRecord, append_trend, trend_path
from repro.obs.telemetry import TelemetrySample, TelemetrySeries
from repro.serve.metrics import RequestMetrics, ServeMetrics
from repro.sweep.store import ResultStore


def trend_record(value: float) -> TrendRecord:
    return TrendRecord(
        bench="demo",
        config={"tier": "ci"},
        metric="tokens_per_s",
        value=value,
        unit="tokens/s",
        wall_s=1.0,
    ).validate()


class FakePoint:
    """Duck-typed sweep point: just enough for ResultStore.put."""

    def __init__(self, key: str, label: str):
        self._key = key
        self.label = label

    def key(self) -> str:
        return self._key

    def config_dict(self) -> dict:
        return {"label": self.label}


def serve_result(with_telemetry: bool = False) -> ServeMetrics:
    requests = tuple(
        RequestMetrics(
            request_id=rid,
            arrival_s=0.0,
            admitted_s=0.0,
            first_token_s=0.01 * (rid + 1),
            finish_s=0.1 * (rid + 1),
            prompt_tokens=64,
            output_tokens=8,
        ).validate()
        for rid in range(4)
    )
    telemetry = None
    if with_telemetry:
        telemetry = TelemetrySeries(
            interval_s=0.1,
            t0_s=0.0,
            num_replicas=1,
            samples=tuple(
                TelemetrySample(
                    t_s=0.1 * (i + 1), dt_s=0.1, queue_depth=i, running=1,
                    tokens=8, busy_s=(0.05,),
                ).validate()
                for i in range(5)
            ),
        ).validate()
    return ServeMetrics(
        label="report-test",
        workload="tiny",
        frequency_ghz=2.0,
        duration_s=1.0,
        steps=10,
        total_cycles=1000,
        requests=requests,
        telemetry=telemetry,
    )


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    store = ResultStore(tmp_path / "results.jsonl")
    store.put(FakePoint("a" * 40, "good-run"), result=serve_result(with_telemetry=True),
              elapsed_s=0.5)
    store.put(FakePoint("b" * 40, "bad-run"), error="SimulationError: boom")
    return store


class TestTrendReport:
    def test_markdown_table_shows_latest_previous_delta(self, tmp_path):
        path = trend_path(tmp_path, "demo")
        append_trend(path, [trend_record(100.0)])
        append_trend(path, [trend_record(110.0)])
        text = render_report(trend_root=tmp_path, fmt="markdown")
        assert "# llamcat run report" in text
        assert "## Benchmark trends" in text
        assert "| demo | tokens_per_s | 110 | tokens/s | 100 | +10.00% | 2 |" in text

    def test_empty_trend_root_renders_placeholder(self, tmp_path):
        text = render_report(trend_root=tmp_path, fmt="markdown")
        assert "no trend records" in text


class TestStoreReport:
    def test_overview_lists_ok_and_error_records(self, store):
        text = render_report(store=store, fmt="markdown")
        assert "## Stored results" in text
        assert "good-run" in text
        assert "SimulationError: boom" in text

    def test_phase_breakdown_has_percentiles(self, store):
        report = build_report(store=store)
        phases = next(s for s in report.sections
                      if s.heading == "Per-phase latency breakdown")
        (row,) = phases.rows
        assert row[0] == "good-run"
        # No prefill phase recorded -> "-" placeholders, not a crash.
        assert row[2] == "-"
        assert float(row[1]) > 0.0

    def test_telemetry_sparkline_block_present(self, store):
        report = build_report(store=store)
        timelines = next(s for s in report.sections
                         if s.heading == "Telemetry timelines")
        assert any("good-run" in block for block in timelines.blocks)

    def test_html_is_self_contained_and_escaped(self, store, tmp_path):
        append_trend(trend_path(tmp_path, "demo"), [trend_record(1.0)])
        html_text = render_report(trend_root=tmp_path, store=store, fmt="html",
                                  title="Perf <report>")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<style>" in html_text
        assert "Perf &lt;report&gt;" in html_text
        assert "<script" not in html_text


class TestFormats:
    def test_no_inputs_renders_empty_report(self):
        assert "no inputs given" in render_report(fmt="markdown")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown report format"):
            render_report(fmt="pdf")
