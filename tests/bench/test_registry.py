"""The BENCHES registry, BenchOutput contract, and the warmup/repeat runner."""

import pytest

from repro.bench.registry import (
    BENCHES,
    BenchOutput,
    BenchValue,
    bench_names,
    register_bench,
    resolve_bench,
)
from repro.bench.runner import run_bench, run_benches
from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier

#: Every benchmark the pytest wrappers under benchmarks/ used to hand-roll.
EXPECTED_BENCHES = {
    "serve_throughput",
    "cluster_throughput",
    "prefill_schedulers",
    "fig7_throttling",
    "fig7_arbitration",
    "fig7_cumulative",
    "fig8_mechanism",
    "fig9_cache_sweep",
    "table2_throttle_sweep",
    "table3_contention_sweep",
    "table4_incore_sweep",
    "table5_config",
    "hwcost_area",
}


@pytest.fixture()
def counting_bench():
    """A registered bench that counts its executions (and cleans up)."""

    calls = []

    def bench(tier: ScaleTier) -> BenchOutput:
        calls.append(tier)
        return BenchOutput(
            bench="counting",
            config={"tier": tier.value},
            values=(BenchValue("calls", float(len(calls)), ""),),
        )

    register_bench("counting")(bench)
    yield calls
    BENCHES.unregister("counting")


class TestRegistry:
    def test_all_thirteen_benches_registered(self):
        assert EXPECTED_BENCHES <= set(bench_names())

    def test_resolve_returns_the_callable(self, counting_bench):
        fn = resolve_bench("counting")
        fn(ScaleTier.SMOKE)
        assert counting_bench == [ScaleTier.SMOKE]

    def test_unknown_bench_rejected(self):
        with pytest.raises(ConfigError):
            resolve_bench("warp-drive")


class TestBenchOutput:
    def test_value_of_finds_metric(self):
        output = BenchOutput(
            bench="b", config={}, values=(BenchValue("tokens_per_s", 5.0, "tokens/s"),)
        )
        assert output.value_of("tokens_per_s") == 5.0

    def test_value_of_unknown_metric_lists_available(self):
        output = BenchOutput(bench="b", config={}, values=(BenchValue("a", 1.0, ""),))
        with pytest.raises(KeyError, match="'a'"):
            output.value_of("z")

    def test_raw_is_excluded_from_equality(self):
        a = BenchOutput(bench="b", config={}, values=(), raw=object())
        b = BenchOutput(bench="b", config={}, values=(), raw=object())
        assert a == b


class TestRunner:
    def test_warmup_runs_are_untimed_but_executed(self, counting_bench):
        run = run_bench("counting", warmup=2, repeat=3)
        assert len(counting_bench) == 5
        assert (run.warmup, run.repeat) == (2, 3)
        assert run.wall_s >= 0.0
        # The reported output is from a timed run, after the warmups.
        assert run.output.value_of("calls") >= 3.0

    def test_records_carry_one_row_per_value(self, counting_bench):
        run = run_bench("counting", repeat=1)
        (row,) = run.records()
        assert row.bench == "counting"
        assert row.metric == "calls"
        assert row.wall_s == round(run.wall_s, 3)

    def test_render_mentions_bench_and_values(self, counting_bench):
        text = run_bench("counting").render()
        assert "bench counting" in text
        assert "calls" in text

    def test_invalid_repeat_and_warmup_rejected(self):
        with pytest.raises(ConfigError):
            run_bench("counting", repeat=0)
        with pytest.raises(ConfigError):
            run_bench("counting", warmup=-1)

    def test_run_benches_preserves_order(self, counting_bench):
        runs = run_benches(["counting", "counting"])
        assert [r.output.bench for r in runs] == ["counting", "counting"]

    def test_registered_bench_is_deterministic(self):
        # table5_config is the fast analytical bench: two runs, same values.
        first = run_bench("table5_config", tier=ScaleTier.SMOKE)
        second = run_bench("table5_config", tier=ScaleTier.SMOKE)
        assert first.output.values == second.output.values
        assert first.output.config == second.output.config
