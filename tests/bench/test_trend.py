"""Trend files: schema, legacy migration, append semantics, regression gating."""

import json

import pytest

from repro.bench.trend import (
    TrendRecord,
    append_trend,
    compare_records,
    compare_trends,
    discover_trends,
    load_trend,
    load_trends,
    metric_direction,
    trend_path,
    validate_trends,
    write_trend,
)
from repro.common.errors import ConfigError


def record(
    bench: str = "demo",
    metric: str = "tokens_per_s",
    value: float = 100.0,
    unit: str = "tokens/s",
    wall_s: float = 1.0,
    config: dict | None = None,
) -> TrendRecord:
    return TrendRecord(
        bench=bench,
        config=config if config is not None else {"tier": "ci"},
        metric=metric,
        value=value,
        unit=unit,
        wall_s=wall_s,
    ).validate()


class TestTrendRecord:
    def test_round_trip(self):
        r = record()
        assert TrendRecord.from_dict(r.to_dict()) == r

    def test_missing_key_rejected(self):
        data = record().to_dict()
        del data["unit"]
        with pytest.raises(ConfigError, match="missing keys"):
            TrendRecord.from_dict(data)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ConfigError):
            record(bench="")
        with pytest.raises(ConfigError):
            record(metric="")
        with pytest.raises(ConfigError):
            record(wall_s=-0.1)
        with pytest.raises(ConfigError):
            TrendRecord(
                bench="b", config="nope", metric="m", value=1.0, unit="", wall_s=0.0
            ).validate()
        with pytest.raises(ConfigError):
            TrendRecord(
                bench="b", config={}, metric="m", value="fast", unit="", wall_s=0.0
            ).validate()


class TestLoadAndWrite:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_trend(tmp_path / "BENCH_nope.json") == []

    def test_append_then_load_preserves_order(self, tmp_path):
        path = trend_path(tmp_path, "demo")
        append_trend(path, [record(value=1.0)])
        append_trend(path, [record(value=2.0)])
        values = [r.value for r in load_trend(path)]
        assert values == [1.0, 2.0]

    def test_legacy_single_object_shape_migrates_on_read(self, tmp_path):
        # The PR-6 conftest wrote one {bench, config, tokens_per_s, wall_s} dict.
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({
            "bench": "serve",
            "config": {"workload": "llama3-70b"},
            "tokens_per_s": 82226.5,
            "wall_s": 12.5,
        }))
        (migrated,) = load_trend(path)
        assert migrated.metric == "tokens_per_s"
        assert migrated.value == 82226.5
        assert migrated.unit == "tokens/s"
        assert migrated.config == {"workload": "llama3-70b"}

    def test_append_migrates_legacy_file_in_place(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({"bench": "serve", "tokens_per_s": 5.0, "wall_s": 1.0}))
        append_trend(path, [record(bench="serve", value=6.0)])
        loaded = load_trend(path)
        assert [r.value for r in loaded] == [5.0, 6.0]
        # And the file on disk is now the list-of-records shape.
        assert isinstance(json.loads(path.read_text()), list)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_trend(path)

    def test_unknown_dict_shape_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench": "bad"}))
        with pytest.raises(ConfigError, match="legacy"):
            load_trend(path)

    def test_write_is_stable_text(self, tmp_path):
        path = write_trend(trend_path(tmp_path, "demo"), [record()])
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(
            [record().to_dict()], indent=2, sort_keys=True
        ) + "\n"


class TestDiscovery:
    def test_discovers_by_prefix(self, tmp_path):
        write_trend(trend_path(tmp_path, "a"), [record(bench="a")])
        write_trend(trend_path(tmp_path, "b"), [record(bench="b")])
        (tmp_path / "not_a_trend.json").write_text("[]")
        assert sorted(discover_trends(tmp_path)) == ["a", "b"]

    def test_single_file_root(self, tmp_path):
        path = write_trend(trend_path(tmp_path, "a"), [record(bench="a")])
        assert discover_trends(path) == {"a": path}
        other = tmp_path / "results.json"
        other.write_text("[]")
        with pytest.raises(ConfigError):
            discover_trends(other)

    def test_load_trends_maps_bench_to_records(self, tmp_path):
        write_trend(trend_path(tmp_path, "a"), [record(bench="a", value=3.0)])
        trends = load_trends(tmp_path)
        assert [r.value for r in trends["a"]] == [3.0]


class TestDirections:
    def test_throughput_units_are_higher_is_better(self):
        assert metric_direction("tokens_per_s", "tokens/s") == 1
        assert metric_direction("speedup", "x") == 1

    def test_latency_units_are_lower_is_better(self):
        assert metric_direction("latency_p99_ms", "ms") == -1
        assert metric_direction("stall_free", "cycles") == -1
        assert metric_direction("wall_s", "") == -1

    def test_unknown_units_are_informational(self):
        assert metric_direction("mshr_hit_rate", "") == 0


class TestCompare:
    def test_within_threshold_is_ok(self):
        deltas = compare_records(
            "demo", [record(value=100.0)], [record(value=105.0)], threshold_pct=10.0
        )
        by_metric = {d.metric: d for d in deltas}
        assert by_metric["tokens_per_s"].status == "ok"
        assert by_metric["wall_s"].status == "ok"

    def test_throughput_drop_beyond_threshold_regresses(self):
        deltas = compare_records(
            "demo", [record(value=100.0)], [record(value=80.0)], threshold_pct=10.0
        )
        delta = next(d for d in deltas if d.metric == "tokens_per_s")
        assert delta.status == "regressed"
        assert delta.gating
        assert delta.delta_pct == pytest.approx(-20.0)

    def test_latency_rise_beyond_threshold_regresses(self):
        deltas = compare_records(
            "demo",
            [record(metric="latency_p99_ms", unit="ms", value=10.0)],
            [record(metric="latency_p99_ms", unit="ms", value=13.0)],
            threshold_pct=10.0,
        )
        assert next(d for d in deltas if d.metric == "latency_p99_ms").status == "regressed"

    def test_improvement_is_not_gating(self):
        deltas = compare_records(
            "demo", [record(value=100.0)], [record(value=150.0)], threshold_pct=10.0
        )
        delta = next(d for d in deltas if d.metric == "tokens_per_s")
        assert delta.status == "improved"
        assert not delta.gating

    def test_unknown_unit_never_gates(self):
        deltas = compare_records(
            "demo",
            [record(metric="mshr_hit_rate", unit="", value=0.5)],
            [record(metric="mshr_hit_rate", unit="", value=0.9)],
            threshold_pct=10.0,
        )
        assert next(d for d in deltas if d.metric == "mshr_hit_rate").status == "changed"

    def test_config_change_suppresses_gating(self):
        deltas = compare_records(
            "demo",
            [record(value=100.0, config={"tier": "ci"})],
            [record(value=50.0, config={"tier": "smoke"})],
            threshold_pct=10.0,
        )
        delta = next(d for d in deltas if d.metric == "tokens_per_s")
        assert delta.status == "config-changed"
        assert not delta.gating

    def test_new_and_gone_metrics_reported(self):
        deltas = compare_records(
            "demo",
            [record(metric="old_ms", unit="ms")],
            [record(metric="new_ms", unit="ms")],
            threshold_pct=10.0,
        )
        statuses = {d.metric: d.status for d in deltas}
        assert statuses["old_ms"] == "gone"
        assert statuses["new_ms"] == "new"

    def test_wall_clock_gates_only_when_asked(self):
        base = [record(wall_s=1.0)]
        slow = [record(wall_s=10.0)]
        ungated = compare_records("demo", base, slow, threshold_pct=10.0)
        assert next(d for d in ungated if d.metric == "wall_s").status == "ok"
        gated = compare_records(
            "demo", base, slow, threshold_pct=10.0, wall_threshold_pct=100.0
        )
        assert next(d for d in gated if d.metric == "wall_s").status == "regressed"

    def test_latest_record_per_metric_wins(self):
        baseline = [record(value=100.0), record(value=200.0)]
        deltas = compare_records("demo", baseline, [record(value=205.0)], 10.0)
        assert next(d for d in deltas if d.metric == "tokens_per_s").baseline == 200.0


class TestCompareTrends:
    def test_two_roots(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_trend(trend_path(base, "demo"), [record(value=100.0)])
        write_trend(trend_path(cur, "demo"), [record(value=50.0)])
        comparison = compare_trends(cur, base, threshold_pct=10.0)
        assert not comparison.ok
        assert [d.metric for d in comparison.regressions] == ["tokens_per_s"]
        assert "REGRESSED" in comparison.render()

    def test_self_compare_uses_previous_record(self, tmp_path):
        path = trend_path(tmp_path, "demo")
        append_trend(path, [record(value=100.0)])
        append_trend(path, [record(value=99.0)])
        comparison = compare_trends(tmp_path, tmp_path, threshold_pct=10.0)
        assert comparison.self_compare
        assert comparison.ok
        delta = next(d for d in comparison.deltas if d.metric == "tokens_per_s")
        assert (delta.baseline, delta.current) == (100.0, 99.0)

    def test_self_compare_with_single_run_has_no_deltas(self, tmp_path):
        append_trend(trend_path(tmp_path, "demo"), [record(value=100.0)])
        comparison = compare_trends(tmp_path, tmp_path, threshold_pct=10.0)
        assert comparison.deltas == ()
        assert comparison.ok

    def test_bench_filter(self, tmp_path):
        for bench in ("a", "b"):
            path = trend_path(tmp_path, bench)
            append_trend(path, [record(bench=bench, value=100.0)])
            append_trend(path, [record(bench=bench, value=100.0)])
        comparison = compare_trends(tmp_path, tmp_path, 10.0, benches=("a",))
        assert {d.bench for d in comparison.deltas} == {"a"}

    def test_disjoint_roots_have_no_deltas(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_trend(trend_path(base, "a"), [record(bench="a")])
        write_trend(trend_path(cur, "b"), [record(bench="b")])
        comparison = compare_trends(cur, base, 10.0)
        assert comparison.deltas == ()
        assert "no overlapping" in comparison.render()


class TestValidate:
    def test_clean_root_is_ok(self, tmp_path):
        write_trend(trend_path(tmp_path, "demo"), [record()])
        validation = validate_trends(tmp_path)
        assert validation.ok
        assert (validation.files, validation.records) == (1, 1)
        assert "OK" in validation.render()

    def test_bench_name_mismatch_is_an_error(self, tmp_path):
        write_trend(trend_path(tmp_path, "other"), [record(bench="demo")])
        validation = validate_trends(tmp_path)
        assert not validation.ok
        assert "does not match" in validation.errors[0]

    def test_broken_json_is_an_error(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("[")
        validation = validate_trends(tmp_path)
        assert not validation.ok
        assert "invalid trend file" in validation.render()
