"""Tests for the decode-operator descriptors."""

import pytest

from repro.common.errors import ConfigError
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig
from repro.workloads.operators import AttendOperator, LogitOperator, make_operator


def workload(operator=OperatorKind.LOGIT, h=2, g=4, d=128, l=64):
    return WorkloadConfig(name="t", shape=GQAShape(h, g, d, l), operator=operator).validate()


class TestLogitOperator:
    def setup_method(self):
        self.op = LogitOperator(workload())

    def test_reduction_axis(self):
        assert self.op.reduction_axis == "d"

    def test_kv_row_bytes(self):
        assert self.op.kv_row_bytes() == 128 * 2

    def test_query_row_bytes(self):
        assert self.op.query_row_bytes() == 128 * 2

    def test_output_extent_is_seq_len(self):
        assert self.op.output_extent() == 64

    def test_kv_rows_are_distinct_per_l(self):
        addrs = {self.op.kv_row_address(0, l) for l in range(64)}
        assert len(addrs) == 64

    def test_gqa_sharing_same_kv_for_all_g(self):
        """All query heads of a group read the same K rows -- the GQA property."""

        row = self.op.kv_row_address(1, 7)
        # kv_row_address does not depend on g at all.
        assert row == self.op.kv_row_address(1, 7)
        assert self.op.query_row_address(1, 0) != self.op.query_row_address(1, 1)

    def test_macs_per_output_element(self):
        assert self.op.macs_per_output_element() == 128

    def test_requires_logit_workload(self):
        with pytest.raises(ConfigError):
            LogitOperator(workload(operator=OperatorKind.ATTEND))


class TestAttendOperator:
    def setup_method(self):
        self.op = AttendOperator(workload(operator=OperatorKind.ATTEND))

    def test_reduction_axis(self):
        assert self.op.reduction_axis == "l"

    def test_output_extent_is_head_dim(self):
        assert self.op.output_extent() == 128

    def test_query_row_is_attscore_row(self):
        assert self.op.query_row_bytes() == 64 * 2

    def test_requires_attend_workload(self):
        with pytest.raises(ConfigError):
            AttendOperator(workload(operator=OperatorKind.LOGIT))


class TestFactory:
    def test_make_operator_dispatches(self):
        assert isinstance(make_operator(workload()), LogitOperator)
        assert isinstance(
            make_operator(workload(operator=OperatorKind.ATTEND)), AttendOperator
        )

    def test_describe_mentions_shape(self):
        assert "H=2" in make_operator(workload()).describe()
