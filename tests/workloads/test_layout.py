"""Tests for tensor layouts: no overlap, row-major strides, deterministic addresses."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig
from repro.workloads.layout import PAGE_BYTES, build_layout


def make_workload(h=2, g=4, d=128, l=256, operator=OperatorKind.LOGIT):
    return WorkloadConfig(
        name="t", shape=GQAShape(h, g, d, l), operator=operator
    ).validate()


class TestLayoutStructure:
    def test_operands_do_not_overlap(self):
        layout = build_layout(make_workload())
        q, kv, out = layout.operands
        assert q.end <= kv.base
        assert kv.end <= out.base

    def test_operands_are_page_aligned(self):
        layout = build_layout(make_workload())
        for operand in layout.operands:
            assert operand.base % PAGE_BYTES == 0

    def test_sizes_match_workload(self):
        wl = make_workload()
        layout = build_layout(wl)
        assert layout.kv.size_bytes == wl.kv_tensor_bytes
        assert layout.query.size_bytes == wl.query_bytes
        assert layout.output.size_bytes == wl.output_bytes

    def test_deterministic(self):
        wl = make_workload()
        a = build_layout(wl)
        b = build_layout(wl)
        assert a.kv.base == b.kv.base
        assert a.output.end == b.output.end

    def test_operand_of_resolves_each_region(self):
        layout = build_layout(make_workload())
        assert layout.operand_of(layout.kv.base + 10) is layout.kv
        assert layout.operand_of(layout.query.base) is layout.query
        assert layout.operand_of(layout.output.end + 100) is None


class TestAddressing:
    def test_kv_is_row_major_in_h_l_d(self):
        wl = make_workload(h=2, g=2, d=128, l=16)
        layout = build_layout(wl)
        eb = wl.element_bytes
        # consecutive d elements are contiguous
        assert layout.kv.address(0, 0, 1) - layout.kv.address(0, 0, 0) == eb
        # consecutive l rows are D elements apart
        assert layout.kv.address(0, 1, 0) - layout.kv.address(0, 0, 0) == 128 * eb
        # consecutive heads are L*D elements apart
        assert layout.kv.address(1, 0, 0) - layout.kv.address(0, 0, 0) == 16 * 128 * eb

    def test_out_of_range_index_rejected(self):
        layout = build_layout(make_workload(h=2, g=2, d=128, l=16))
        with pytest.raises(ConfigError):
            layout.kv.address(2, 0, 0)
        with pytest.raises(ConfigError):
            layout.kv.address(0, 16, 0)

    def test_wrong_arity_rejected(self):
        layout = build_layout(make_workload())
        with pytest.raises(ConfigError):
            layout.kv.address(0, 0)

    def test_row_address_pads_missing_indices(self):
        layout = build_layout(make_workload())
        assert layout.kv.row_address(1, 3) == layout.kv.address(1, 3, 0)

    def test_attend_layout_swaps_roles(self):
        wl = make_workload(operator=OperatorKind.ATTEND)
        layout = build_layout(wl)
        # For Attend the query-side operand is AttScore with shape (h, g, l).
        assert layout.query.shape == (2, 4, 256)
        assert layout.output.shape == (2, 4, 128)


@given(
    h=st.integers(1, 4),
    g=st.integers(1, 8),
    d=st.sampled_from([64, 128]),
    l=st.integers(16, 512),
)
def test_property_every_element_address_within_operand(h, g, d, l):
    wl = make_workload(h=h, g=g, d=d, l=l)
    layout = build_layout(wl)
    kv = layout.kv
    # Probe the extreme corners of the KV tensor.
    assert kv.contains(kv.address(0, 0, 0))
    assert kv.contains(kv.address(h - 1, l - 1, d - 1))
    assert kv.address(h - 1, l - 1, d - 1) == kv.end - wl.element_bytes
