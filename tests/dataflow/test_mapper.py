"""Tests for the constrained mapper and the §6.2.2 dataflow constraints."""

import pytest

from repro.common.errors import ConfigError
from repro.config.presets import llama3_70b_logit, llama3_405b_logit, table5_system
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.mapper import build_mapping
from repro.dataflow.ordering import ThreadBlockOrdering
from repro.workloads.operators import make_operator


class TestConstraints:
    def test_inner_tile_covers_one_output_line(self):
        c = DataflowConstraints().validate()
        # fp16: 64B line / 2B = 32 elements per output cache line.
        assert c.inner_tile_elements(2) == 32

    def test_two_line_blocks(self):
        c = DataflowConstraints(output_lines_per_block=2).validate()
        assert c.inner_tile_elements(2) == 64

    def test_min_inner_bytes_respected_for_wide_elements(self):
        c = DataflowConstraints().validate()
        assert c.inner_tile_elements(4) * 4 >= 64

    def test_rejects_invalid(self):
        with pytest.raises(ConfigError):
            DataflowConstraints(vector_axis="g").validate()
        with pytest.raises(ConfigError):
            DataflowConstraints(output_lines_per_block=0).validate()


class TestLogitMapping:
    def setup_method(self):
        self.system = table5_system()
        self.workload = llama3_70b_logit(seq_len=1024)
        self.operator = make_operator(self.workload)
        self.mapping = build_mapping(self.operator, self.system)

    def test_thread_block_count(self):
        # H * G * (L / 32) thread blocks for fp16 single-line tiles.
        assert self.mapping.num_thread_blocks == 8 * 8 * (1024 // 32)

    def test_inner_tile_is_one_output_line(self):
        assert self.mapping.inner_tile == 32

    def test_vector_covers_full_head_dim(self):
        """Constraint 1: the d axis is fully covered by one vector instruction."""

        assert self.mapping.vector_elements == 128

    def test_default_ordering_is_gqa_shared(self):
        assert self.mapping.ordering == ThreadBlockOrdering.GQA_SHARED

    def test_dispatch_order_groups_sharers_consecutively(self):
        """In GQA-shared order, the G blocks sharing one (h, l-tile) are adjacent."""

        coords = list(self.mapping.thread_block_coords())
        first_eight = coords[:8]
        assert {c[0] for c in first_eight} == {0}          # same head group
        assert {c[2] for c in first_eight} == {0}          # same l tile
        assert [c[1] for c in first_eight] == list(range(8))  # all query heads

    def test_sequential_ordering_differs(self):
        mapping = build_mapping(
            self.operator, self.system, ordering=ThreadBlockOrdering.SEQUENTIAL
        )
        coords = list(mapping.thread_block_coords())
        assert [c[1] for c in coords[:8]] == [0] * 8

    def test_render_mentions_block_count(self):
        assert str(self.mapping.num_thread_blocks) in self.mapping.render()

    def test_405b_has_twice_the_blocks(self):
        mapping_405 = build_mapping(make_operator(llama3_405b_logit(1024)), self.system)
        assert mapping_405.num_thread_blocks == 2 * self.mapping.num_thread_blocks


class TestAttendMapping:
    def test_attend_maps_output_d_dim(self):
        wl = WorkloadConfig(
            name="attend",
            shape=GQAShape(2, 4, 128, 256),
            operator=OperatorKind.ATTEND,
        ).validate()
        mapping = build_mapping(make_operator(wl), table5_system())
        # output extent per (h, g) is D=128 -> 4 tiles of 32 elements.
        assert mapping.num_inner_tiles == 4
        assert mapping.num_thread_blocks == 2 * 4 * 4


class TestMapperValidation:
    def test_rejects_mismatched_line_size(self):
        system = table5_system()
        constraints = DataflowConstraints(line_size=128)
        with pytest.raises(ConfigError):
            build_mapping(make_operator(llama3_70b_logit(1024)), system, constraints)

    def test_short_sequences_clamp_tile(self):
        wl = WorkloadConfig(name="short", shape=GQAShape(1, 1, 128, 16)).validate()
        mapping = build_mapping(make_operator(wl), table5_system())
        assert mapping.inner_tile == 16
        assert mapping.num_inner_tiles == 1
