"""Tests for the analytical (stall-free) model."""

import pytest

from repro.config.presets import llama3_70b_logit, table5_system
from repro.config.scale import ScaleTier, scale_experiment
from repro.dataflow.analytical import analyze


class TestAnalyticalEstimate:
    def setup_method(self):
        self.system = table5_system()
        self.workload = llama3_70b_logit(seq_len=4096)
        self.estimate = analyze(self.workload, self.system)

    def test_decode_is_memory_bound(self):
        """The stall-free bottleneck of the Logit operator must be DRAM or L2, not compute."""

        assert self.estimate.bottleneck in ("dram", "l2")
        assert self.estimate.dram_bound_cycles > self.estimate.compute_cycles

    def test_dram_traffic_at_least_unique_bytes(self):
        assert self.estimate.total_dram_bytes >= self.workload.working_set_bytes

    def test_l2_accesses_scale_with_blocks(self):
        assert self.estimate.total_l2_accesses == pytest.approx(
            self.estimate.thread_blocks * self.estimate.requests_per_thread_block
        )

    def test_stall_free_is_max_of_bounds(self):
        est = self.estimate
        assert est.stall_free_cycles == max(
            est.compute_cycles, est.dram_bound_cycles, est.l2_bound_cycles
        )

    def test_implied_bandwidth_not_above_peak(self):
        bw = self.estimate.dram_bandwidth_gbps(self.system.frequency_ghz)
        assert bw <= self.system.dram.peak_bandwidth_gbps * 1.01

    def test_longer_sequences_cost_proportionally_more(self):
        short = analyze(llama3_70b_logit(2048), self.system)
        long = analyze(llama3_70b_logit(8192), self.system)
        assert long.stall_free_cycles == pytest.approx(4 * short.stall_free_cycles, rel=0.1)

    def test_scaled_tiers_shrink_the_estimate(self):
        system, workload = scale_experiment(self.system, self.workload, ScaleTier.CI)
        scaled = analyze(workload, system)
        assert scaled.stall_free_cycles < self.estimate.stall_free_cycles
