"""Tests for the loop-nest / mapping IR."""

import pytest

from repro.common.errors import ConfigError
from repro.dataflow.loopnest import Loop, LoopNest, MappingLevel


class TestLoop:
    def test_valid_loop(self):
        loop = Loop("l", 32, MappingLevel.L1_TEMPORAL)
        assert "l" in loop.render()
        assert "32" in loop.render()

    def test_rejects_unknown_dim(self):
        with pytest.raises(ConfigError):
            Loop("x", 4, MappingLevel.VECTOR)

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(ConfigError):
            Loop("d", 0, MappingLevel.VECTOR)


class TestLoopNest:
    def build(self):
        nest = LoopNest()
        nest.add("h", 8, MappingLevel.GLOBAL_TEMPORAL)
        nest.add("l", 16, MappingLevel.GLOBAL_TEMPORAL)
        nest.add("g", 8, MappingLevel.CORE_SPATIAL)
        nest.add("l", 32, MappingLevel.L1_TEMPORAL)
        nest.add("d", 128, MappingLevel.VECTOR)
        return nest

    def test_extent_product_multiplies_same_dim(self):
        nest = self.build()
        assert nest.extent_product("l") == 512
        assert nest.extent_product("d") == 128
        assert nest.extent_product("g") == 8

    def test_loops_at_level(self):
        nest = self.build()
        assert len(nest.loops_at(MappingLevel.GLOBAL_TEMPORAL)) == 2
        assert len(nest.loops_at(MappingLevel.VECTOR)) == 1

    def test_validate_against_full_extents(self):
        nest = self.build()
        nest.validate_against({"h": 8, "g": 8, "l": 512, "d": 128})
        with pytest.raises(ConfigError):
            nest.validate_against({"l": 1024})

    def test_render_is_indented_human_readable(self):
        text = self.build().render()
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("for h")
        assert lines[-1].strip().startswith("for d")
        # deeper loops are indented further
        assert lines[4].index("for") > lines[0].index("for")

    def test_len(self):
        assert len(self.build()) == 5
