"""Tests for the DDR5 timing model: latency, bandwidth, row-buffer behaviour."""

import pytest

from repro.common.rng import make_rng
from repro.config.system import DramConfig, SystemConfig
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming


def make_dram(**overrides):
    cfg = DramConfig(**overrides) if overrides else DramConfig()
    return DramSystem(cfg, core_frequency_ghz=1.96)


def drain(dram, until_cycle, start=0):
    """Tick the DRAM until `until_cycle`, returning (payload, cycle) completions."""

    completions = []
    for cycle in range(start, until_cycle):
        for payload, line, is_write in dram.tick(cycle):
            completions.append((payload, line, is_write, cycle))
    return completions


class TestTiming:
    def test_conversion_to_core_cycles(self):
        timing = DramTiming.from_config(DramConfig(), 1.96)
        # 1.96 GHz core vs 1.6 GHz DRAM clock: every parameter gets larger.
        assert timing.tCL >= 26
        assert timing.tRCD >= 26
        assert timing.core_cycles_per_dram_cycle == pytest.approx(1.225, rel=0.01)

    def test_latency_ordering(self):
        timing = DramTiming.from_config(DramConfig(), 1.96)
        assert timing.row_hit_latency < timing.row_closed_latency < timing.row_conflict_latency

    def test_burst_length_positive(self):
        timing = DramTiming.from_config(DramConfig(), 1.96)
        assert timing.tBURST >= 1


class TestSingleAccess:
    def test_read_completes_with_closed_row_latency(self):
        dram = make_dram()
        dram.enqueue(0x1000, is_write=False, payload="p", cycle=0)
        completions = drain(dram, 200)
        assert len(completions) == 1
        payload, line, is_write, cycle = completions[0]
        assert payload == "p" and line == 0x1000 and not is_write
        timing = dram.timing
        assert cycle >= timing.row_closed_latency
        assert cycle <= timing.row_conflict_latency + 10

    def test_row_hit_is_faster_than_row_conflict(self):
        dram = make_dram()
        # Two lines in the same row (consecutive lines on the same channel are 4 lines apart).
        line_a = 0x0
        line_b = 0x0 + 64 * dram.config.num_channels
        dram.enqueue(line_a, False, "a", 0)
        first = drain(dram, 300)[-1][3]
        dram.enqueue(line_b, False, "b", first + 1)
        second = drain(dram, first + 300, start=first + 1)[-1][3]
        hit_latency = second - (first + 1)
        # A fresh conflict access to a different row in the same bank:
        far_line = line_a + dram.config.row_bytes * dram.config.num_channels
        dram.enqueue(far_line, False, "c", second + 1)
        third = drain(dram, second + 400, start=second + 1)[-1][3]
        conflict_latency = third - (second + 1)
        assert hit_latency < conflict_latency

    def test_write_completes_without_response_requirement(self):
        dram = make_dram()
        assert dram.enqueue(0x2000, is_write=True, payload=None, cycle=0)
        completions = drain(dram, 300)
        assert len(completions) == 1
        assert completions[0][2] is True


class TestQueueing:
    def test_queue_capacity_respected(self):
        dram = make_dram(queue_depth=4)
        accepted = sum(
            dram.enqueue(i * 64 * 4, False, i, 0) for i in range(10)  # all channel 0
        )
        assert accepted == 4
        assert not dram.can_accept(0x0)

    def test_channel_interleaving_spreads_load(self):
        dram = make_dram(queue_depth=2)
        # Consecutive lines go to different channels, so 8 accepts succeed.
        accepted = sum(dram.enqueue(i * 64, False, i, 0) for i in range(8))
        assert accepted == 8


class TestBandwidthAndStats:
    def test_streaming_reads_approach_peak_bandwidth(self):
        """A long stream of sequential lines must achieve a large fraction of peak BW."""

        dram = make_dram()
        num_lines = 512
        issued = 0
        completed = 0
        cycle = 0
        while completed < num_lines and cycle < 100_000:
            while issued < num_lines and dram.can_accept(issued * 64) and dram.enqueue(
                issued * 64, False, issued, cycle
            ):
                issued += 1
            completed += len(dram.tick(cycle))
            cycle += 1
        assert completed == num_lines
        stats = dram.stats()
        achieved = stats.bandwidth_gbps(cycle, 1.96)
        assert achieved > 0.5 * dram.config.peak_bandwidth_gbps
        assert stats.row_hit_rate > 0.7

    def test_stats_accumulate(self):
        dram = make_dram()
        dram.enqueue(0x0, False, None, 0)
        dram.enqueue(0x40, True, None, 0)
        drain(dram, 300)
        stats = dram.stats()
        assert stats.reads == 1
        assert stats.writes == 1
        assert stats.accesses == 2
        assert stats.bytes_transferred == 128

    def test_random_accesses_hit_rows_less_often(self):
        dram = make_dram()
        rng = make_rng(7)
        lines = [int(rng.integers(0, 1 << 30)) // 64 * 64 for _ in range(256)]
        cycle = 0
        pending = list(lines)
        completed = 0
        while completed < len(lines) and cycle < 200_000:
            while pending and dram.can_accept(pending[0]) and dram.enqueue(
                pending[0], False, None, cycle
            ):
                pending.pop(0)
            completed += len(dram.tick(cycle))
            cycle += 1
        stats = dram.stats()
        assert stats.row_hit_rate < 0.5


class TestSystemIntegration:
    def test_timing_uses_system_frequency(self):
        system = SystemConfig()
        dram = DramSystem(system.dram, system.frequency_ghz)
        assert dram.timing.core_cycles_per_dram_cycle == pytest.approx(
            1 / system.dram_cycles_per_core_cycle, rel=1e-6
        )

    def test_next_event_and_has_work(self):
        dram = make_dram()
        assert not dram.has_work()
        assert dram.next_event_cycle() is None
        dram.enqueue(0x1000, False, None, 0)
        assert dram.has_work()
