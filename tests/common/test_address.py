"""Unit tests for address interleaving (LLC slices and DRAM geometry)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.address import AddressMap, DramAddressMap, is_power_of_two, log2_int
from repro.common.errors import ConfigError


class TestPowerOfTwoHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(65)
        assert not is_power_of_two(-4)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(64) == 6
        with pytest.raises(ConfigError):
            log2_int(63)


class TestAddressMap:
    def setup_method(self):
        self.amap = AddressMap(line_size=64, num_slices=8)

    def test_line_alignment(self):
        assert self.amap.line_addr(0x1234) == 0x1200
        assert self.amap.line_addr(0x1200) == 0x1200

    def test_consecutive_lines_round_robin_across_slices(self):
        slices = [self.amap.slice_of(i * 64) for i in range(16)]
        assert slices == [i % 8 for i in range(16)]

    def test_same_line_same_slice(self):
        assert self.amap.slice_of(0x1000) == self.amap.slice_of(0x103F)

    def test_set_index_within_range(self):
        for addr in range(0, 1 << 20, 4096):
            assert 0 <= self.amap.set_index(addr, 512) < 512

    def test_set_index_fn_matches_method(self):
        fn = self.amap.set_index_fn(512)
        for addr in (0, 64, 0x1234, 0xDEADBEEF, 1 << 33):
            assert fn(addr) == self.amap.set_index(addr, 512)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            AddressMap(line_size=60, num_slices=8)
        with pytest.raises(ConfigError):
            AddressMap(line_size=64, num_slices=6)
        with pytest.raises(ConfigError):
            self.amap.set_index(0, 500)

    def test_tag_disambiguates_lines_in_same_set(self):
        sets = 512
        a = 0x100000
        b = a + 64 * 8 * sets  # same slice, same set, different tag
        assert self.amap.slice_of(a) == self.amap.slice_of(b)
        assert self.amap.set_index(a, sets) == self.amap.set_index(b, sets)
        assert self.amap.tag_of(a, sets) != self.amap.tag_of(b, sets)


class TestDramAddressMap:
    def setup_method(self):
        self.dmap = DramAddressMap(
            line_size=64, num_channels=4, num_ranks=4, num_banks=16, row_bytes=2048
        )

    def test_consecutive_lines_interleave_channels(self):
        channels = [self.dmap.channel_of(i * 64) for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_decompose_ranges(self):
        for addr in range(0, 1 << 22, 8192):
            channel, rank, bank, row = self.dmap.decompose(addr)
            assert 0 <= channel < 4
            assert 0 <= rank < 4
            assert 0 <= bank < 16
            assert row >= 0

    def test_streaming_addresses_share_rows(self):
        """Consecutive lines on the same channel should mostly hit the same row."""

        rows = []
        for i in range(0, 128, 4):  # stay on channel 0
            _, _, _, row = self.dmap.decompose(i * 64)
            rows.append(row)
        assert len(set(rows)) <= 2

    def test_channel_of_matches_decompose(self):
        for addr in (0, 64, 4096, 123456, 1 << 30):
            assert self.dmap.channel_of(addr) == self.dmap.decompose(addr)[0]

    def test_rejects_small_rows(self):
        with pytest.raises(ConfigError):
            DramAddressMap(line_size=64, num_channels=2, num_ranks=1, num_banks=4, row_bytes=32)


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_property_slice_stable_within_line(addr):
    amap = AddressMap(line_size=64, num_slices=8)
    line_start = amap.line_addr(addr)
    assert amap.slice_of(addr) == amap.slice_of(line_start)
    assert amap.slice_of(addr) == amap.slice_of(line_start + 63)


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_property_dram_decompose_is_deterministic_and_injective_per_line(addr):
    dmap = DramAddressMap(
        line_size=64, num_channels=4, num_ranks=4, num_banks=16, row_bytes=2048
    )
    line = addr // 64 * 64
    first = dmap.decompose(line)
    assert dmap.decompose(line) == first
    # A different line in the next row of the same bank must differ somewhere.
    other = dmap.decompose(line + 2048 * 4)
    assert other != first or line != line + 2048 * 4
