"""Unit tests for the bounded FIFO used by every hardware queue."""

import pytest
from hypothesis import given, strategies as st

from repro.common.fifo import BoundedFifo


class TestBasicOperations:
    def test_new_fifo_is_empty(self):
        fifo = BoundedFifo(4)
        assert fifo.empty
        assert not fifo.full
        assert len(fifo) == 0
        assert not fifo

    def test_push_and_pop_preserve_fifo_order(self):
        fifo = BoundedFifo(8)
        for i in range(5):
            assert fifo.push(i)
        assert [fifo.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_push_beyond_capacity_is_rejected(self):
        fifo = BoundedFifo(2)
        assert fifo.push("a")
        assert fifo.push("b")
        assert fifo.full
        assert not fifo.push("c")
        assert len(fifo) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedFifo(0)
        with pytest.raises(ValueError):
            BoundedFifo(-3)

    def test_free_slots(self):
        fifo = BoundedFifo(3)
        assert fifo.free_slots == 3
        fifo.push(1)
        assert fifo.free_slots == 2

    def test_peek_does_not_remove(self):
        fifo = BoundedFifo(4)
        fifo.push(10)
        fifo.push(20)
        assert fifo.peek() == 10
        assert fifo.peek(1) == 20
        assert len(fifo) == 2

    def test_clear(self):
        fifo = BoundedFifo(4)
        fifo.extend([1, 2, 3])
        fifo.clear()
        assert fifo.empty


class TestPopIndex:
    def test_pop_index_zero_equals_pop(self):
        fifo = BoundedFifo(4)
        fifo.extend([1, 2, 3])
        assert fifo.pop_index(0) == 1
        assert list(fifo) == [2, 3]

    def test_pop_middle_preserves_relative_order(self):
        fifo = BoundedFifo(8)
        fifo.extend(list(range(6)))
        assert fifo.pop_index(3) == 3
        assert list(fifo) == [0, 1, 2, 4, 5]

    def test_pop_last(self):
        fifo = BoundedFifo(8)
        fifo.extend([7, 8, 9])
        assert fifo.pop_index(2) == 9
        assert list(fifo) == [7, 8]

    def test_pop_index_out_of_range(self):
        fifo = BoundedFifo(4)
        fifo.push(1)
        with pytest.raises(IndexError):
            fifo.pop_index(1)
        with pytest.raises(IndexError):
            fifo.pop_index(-1)


class TestStatsAndSearch:
    def test_extend_reports_accepted_count(self):
        fifo = BoundedFifo(3)
        assert fifo.extend(range(10)) == 3

    def test_peak_occupancy_tracks_maximum(self):
        fifo = BoundedFifo(8)
        fifo.extend([1, 2, 3, 4])
        fifo.pop()
        fifo.pop()
        fifo.push(5)
        assert fifo.peak_occupancy == 4
        assert fifo.total_pushes == 5

    def test_find_returns_first_match_index(self):
        fifo = BoundedFifo(8)
        fifo.extend([5, 6, 7, 6])
        assert fifo.find(lambda x: x == 6) == 1
        assert fifo.find(lambda x: x == 99) is None


@given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=16))
def test_property_fifo_order_and_capacity(items, capacity):
    """Whatever is accepted comes out in insertion order, never above capacity."""

    fifo = BoundedFifo(capacity)
    accepted = []
    for item in items:
        if fifo.push(item):
            accepted.append(item)
        assert len(fifo) <= capacity
    popped = [fifo.pop() for _ in range(len(fifo))]
    assert popped == accepted[: len(popped)]
    assert len(accepted) == min(len(items), capacity)


@given(
    st.lists(st.integers(), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=19),
)
def test_property_pop_index_removes_exactly_one(items, index):
    fifo = BoundedFifo(32)
    fifo.extend(items)
    if index >= len(items):
        with pytest.raises(IndexError):
            fifo.pop_index(index)
        return
    value = fifo.pop_index(index)
    assert value == items[index]
    assert list(fifo) == items[:index] + items[index + 1:]
