"""Unit tests for the request/response value types."""

from repro.common.types import (
    AccessType,
    MemRequest,
    MemResponse,
    RequestKind,
    TraceEntry,
    line_address,
    next_request_id,
)


class TestLineAddress:
    def test_alignment(self):
        assert line_address(0, 64) == 0
        assert line_address(63, 64) == 0
        assert line_address(64, 64) == 64
        assert line_address(130, 64) == 128


class TestMemRequest:
    def test_unique_request_ids(self):
        a = MemRequest(addr=0x100, rw=AccessType.READ, core_id=0)
        b = MemRequest(addr=0x100, rw=AccessType.READ, core_id=0)
        assert a.req_id != b.req_id

    def test_next_request_id_monotonic(self):
        first = next_request_id()
        second = next_request_id()
        assert second > first

    def test_aligned_sets_line_addr(self):
        req = MemRequest(addr=0x1234, rw=AccessType.READ, core_id=1)
        req.aligned(64)
        assert req.line_addr == 0x1200

    def test_read_write_predicates(self):
        read = MemRequest(addr=0, rw=AccessType.READ, core_id=0)
        write = MemRequest(addr=0, rw=AccessType.WRITE, core_id=0)
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_default_kind_is_kv(self):
        req = MemRequest(addr=0, rw=AccessType.READ, core_id=0)
        assert req.kind == RequestKind.KV


class TestTraceEntry:
    def test_compute_only_entry_has_no_access(self):
        entry = TraceEntry(compute_cycles=4, addr=-1)
        assert not entry.has_access

    def test_memory_entry_has_access(self):
        entry = TraceEntry(compute_cycles=0, addr=0x40, rw=AccessType.WRITE)
        assert entry.has_access
        assert entry.rw == AccessType.WRITE


class TestMemResponse:
    def test_fields_round_trip(self):
        resp = MemResponse(
            req_id=7, core_id=3, tb_id=11, line_addr=0x80, rw=AccessType.READ,
            complete_cycle=100, served_by="mshr",
        )
        assert resp.core_id == 3
        assert resp.served_by == "mshr"
