"""Unit tests for the numeric helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.mathutils import (
    ceil_div,
    clamp,
    geomean,
    harmonic_mean,
    mean,
    percentile,
    percentiles,
    round_up,
    safe_div,
    speedup,
    weighted_mean,
)


class TestSafeDiv:
    def test_normal_division(self):
        assert safe_div(6, 3) == 2.0

    def test_zero_denominator_returns_default(self):
        assert safe_div(6, 0) == 0.0
        assert safe_div(6, 0, default=-1.0) == -1.0


class TestGeomean:
    def test_single_value(self):
        assert geomean([2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_paper_style_speedups(self):
        # The Fig 7 final-policy range 1.15-1.54 has a geomean near 1.26.
        assert geomean([1.15, 1.2, 1.3, 1.4, 1.54]) == pytest.approx(1.31, abs=0.02)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-1.0])


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([0.0])


class TestSpeedup:
    def test_faster_is_above_one(self):
        assert speedup(200, 100) == pytest.approx(2.0)

    def test_slower_is_below_one(self):
        assert speedup(100, 200) == pytest.approx(0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0, 10)
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestIntegerHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 5) == 2
        assert ceil_div(11, 5) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(10, 0)

    def test_round_up(self):
        assert round_up(10, 8) == 16
        assert round_up(16, 8) == 16

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-5, 0, 10) == 0
        assert clamp(15, 0, 10) == 10
        with pytest.raises(ValueError):
            clamp(1, 5, 0)


class TestPercentiles:
    def test_median_of_sorted_range(self):
        assert percentiles([1, 2, 3, 4, 5], [50])[0] == pytest.approx(3.0)

    def test_endpoints(self):
        values = [10, 20, 30]
        assert percentiles(values, [0, 100]) == [10.0, 30.0]

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentiles([], [50])
        with pytest.raises(ValueError):
            percentiles([1], [150])

    def test_singular_percentile_interpolates_linearly(self):
        # p95 over [1..4]: rank 2.85 -> 3.85 by linear interpolation.
        assert percentile([1, 2, 3, 4], 95) == pytest.approx(3.85)
        assert percentile([7], 99) == 7.0

    def test_singular_percentile_order_independent(self):
        assert percentile([4, 1, 3, 2], 50) == percentile([1, 2, 3, 4], 50)

    def test_singular_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestMean:
    def test_known_value(self):
        assert mean([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])


class TestWeightedMean:
    def test_uniform_weights_match_mean(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == pytest.approx(mean([1, 2, 3]))

    def test_weights_shift_the_mean(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_zero_weight_excludes_a_value(self):
        assert weighted_mean([1.0, 100.0], [1.0, 0.0]) == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [-1.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [0.0, 0.0])


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=30))
def test_property_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=30))
def test_property_harmonic_leq_geomean(values):
    assert harmonic_mean(values) <= geomean(values) + 1e-9


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
def test_property_ceil_div_matches_math(a, b):
    assert ceil_div(a, b) == math.ceil(a / b)
