"""Regression reproducer for the PR 9 cobrra uncore livelock.

The exact configuration from the bug report: llama3-70b Logit at ci tier
(seq_len=4096 scales to L=128, the Table 5 L2 to 0.5 MiB) under ``cobrra``
and ``dynmg+cobrra``.  Before the drain fix both points parked the final
below-threshold responses in the LLC response queues forever and burned to
the 20M-cycle engine guard; they must now terminate with ``completed``
status well under it.
"""

from __future__ import annotations

import pytest

from repro.analysis.liveness import livelock_scenario
from repro.sim.engine import DEFAULT_MAX_CYCLES

#: Far below the 20M-cycle guard and even the 100k watchdog patience; the
#: fixed runs drain in ~31k/34k cycles.
CYCLE_BUDGET = 200_000


@pytest.mark.parametrize("policy", ["cobrra", "dynmg+cobrra"])
def test_previously_livelocked_point_now_drains(policy):
    result = livelock_scenario(policy).run()
    assert result.status == "completed"
    assert result.completed
    assert 0 < result.cycles < CYCLE_BUDGET
    assert result.cycles < DEFAULT_MAX_CYCLES // 100
