"""Integration tests asserting the qualitative shape of the paper's findings.

These are deliberately coarse (the simulator is not the authors' testbed): the
paper's *directions* must hold -- the full policy beats the unoptimized
configuration, throttling raises MSHR utilisation, the capacity-bound regime
benefits from larger caches -- but no absolute numbers are enforced.
"""

from __future__ import annotations

import pytest

from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.presets import llama3_70b_logit, table5_system
from repro.config.scale import ScaleTier, scale_experiment
from repro.sim.runner import compare_policies

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def mshr_bound_comparison():
    """Llama3-70B at a short (CI-scaled) context on the Table 5 system."""

    system, workload = scale_experiment(
        table5_system(), llama3_70b_logit(seq_len=4096), ScaleTier.CI
    )
    policies = {
        "unoptimized": PolicyConfig(),
        "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
        "dynmg+BMA": PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            arbitration=ArbitrationKind.BALANCED_MSHR_AWARE,
        ),
    }
    return compare_policies(system, workload, policies, baseline_label="unoptimized")


class TestMissHandlingBoundRegime(object):
    def test_final_policy_beats_unoptimized(self, mshr_bound_comparison):
        """dynmg+BMA does not lose to the unoptimized baseline (§6.3.3).

        At CI scale the effect is muted relative to the paper's 1.26x geomean
        (see EXPERIMENTS.md); the direction must still hold.
        """

        assert mshr_bound_comparison.speedup("dynmg+BMA") > 1.0

    def test_dynmg_alone_already_helps(self, mshr_bound_comparison):
        assert mshr_bound_comparison.speedup("dynmg") > 1.0

    def test_bma_raises_mshr_hit_rate_over_dynmg(self, mshr_bound_comparison):
        """The MSHR-aware arbiter's job is to convert misses into merges (Fig 7b/e)."""

        dynmg = mshr_bound_comparison.results["dynmg"]
        bma = mshr_bound_comparison.results["dynmg+BMA"]
        assert bma.mshr_hit_rate > dynmg.mshr_hit_rate

    def test_mshr_hit_rate_rises_with_the_final_policy(self, mshr_bound_comparison):
        """Fig 8: the cumulative policy raises the MSHR hit rate over unoptimized."""

        unopt = mshr_bound_comparison.results["unoptimized"]
        best = mshr_bound_comparison.results["dynmg+BMA"]
        assert best.mshr_hit_rate > unopt.mshr_hit_rate

    def test_system_is_in_the_miss_handling_bound_regime(self, mshr_bound_comparison):
        """The regime the paper targets: near-saturated MSHR entries and heavy stalls,
        while DRAM bandwidth stays clearly below its peak."""

        unopt = mshr_bound_comparison.results["unoptimized"]
        assert unopt.mshr_entry_utilization > 0.6
        assert unopt.cache_stall_ratio > 0.2
        assert unopt.dram_bandwidth_gbps < 0.9 * 51.2

    def test_dram_traffic_roughly_unchanged(self, mshr_bound_comparison):
        """Fig 8: the number of DRAM accesses does not change dramatically."""

        unopt = mshr_bound_comparison.results["unoptimized"]
        best = mshr_bound_comparison.results["dynmg+BMA"]
        assert best.dram_accesses == pytest.approx(unopt.dram_accesses, rel=0.35)


class TestCapacityBoundRegime:
    def test_unoptimized_benefits_from_larger_cache(self):
        """Fig 9: the unoptimized configuration is sensitive to L2 capacity."""

        workload = llama3_70b_logit(seq_len=16384)
        small_sys, wl = scale_experiment(table5_system().with_l2_size(8 * 2**20),
                                         workload, ScaleTier.CI)
        large_sys, _ = scale_experiment(table5_system().with_l2_size(64 * 2**20),
                                        workload, ScaleTier.CI)
        from repro.sim.runner import run_policy

        small = run_policy(small_sys, wl, PolicyConfig(), label="small")
        large = run_policy(large_sys, wl, PolicyConfig(), label="large")
        assert large.cycles < small.cycles
        assert large.dram_accesses <= small.dram_accesses
