"""Shared fixtures: small systems and workloads that keep test runtimes low."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config.policies import PolicyConfig
from repro.config.presets import llama3_70b_logit, table5_system
from repro.config.system import DramConfig, L2Config, SystemConfig
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig


@pytest.fixture(scope="session")
def paper_system() -> SystemConfig:
    """The full Table 5 system (used for configuration-level tests only)."""

    return table5_system()


@pytest.fixture()
def tiny_system() -> SystemConfig:
    """A shrunken system that keeps full-simulation tests fast.

    4 cores, 4 slices, 256 KiB L2 and the paper's MSHR/queue dimensions -- small
    enough that an operator with a few thousand requests finishes in well under
    a second, while still exercising every component.
    """

    base = table5_system()
    return replace(
        base,
        core=replace(base.core, num_cores=4),
        l2=replace(base.l2, size_bytes=256 * 1024, num_slices=4),
        dram=replace(base.dram, num_channels=2, num_ranks=2, queue_depth=16),
    ).validate()


@pytest.fixture()
def tiny_workload() -> WorkloadConfig:
    """A small Logit workload (H=2, G=4, D=128, L=64): a few thousand requests."""

    return WorkloadConfig(
        name="tiny-logit",
        shape=GQAShape(num_kv_heads=2, group_size=4, head_dim=128, seq_len=64),
        operator=OperatorKind.LOGIT,
    ).validate()


@pytest.fixture()
def small_llama_workload() -> WorkloadConfig:
    """Llama3-70B Logit at a short context (for integration tests)."""

    return llama3_70b_logit(seq_len=128)


@pytest.fixture()
def unopt_policy() -> PolicyConfig:
    return PolicyConfig().validate()


@pytest.fixture()
def small_l2() -> L2Config:
    return replace(L2Config(), size_bytes=256 * 1024, num_slices=4)


@pytest.fixture()
def small_dram() -> DramConfig:
    return replace(DramConfig(), num_channels=2, num_ranks=2, queue_depth=8)
