"""Serving throughput: a Poisson request stream under continuous batching.

Times one `repro.serve` run end to end (arrival generation, scheduler
iterations and the memoized cycle-engine step costs) and prints the latency /
throughput headline metrics.  The step-cost table is the whole trick: the run
takes hundreds of serving steps but only a handful of cycle-engine
simulations, which is what makes request-level simulation affordable on top of
a cycle-accurate model.
"""

from __future__ import annotations

from benchmarks.conftest import run_once_timed, write_trend
from repro.serve import ServeScenario


def test_serve_poisson_throughput(benchmark, tier):
    scenario = ServeScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=2000.0,
        num_requests=32,
        max_batch=4,
        seed=0,
        tier=tier,
    ).validate()
    metrics, wall_s = run_once_timed(benchmark, scenario.run)
    write_trend(
        "serve",
        config={
            "workload": scenario.workload,
            "arrival": scenario.arrival,
            "rate": scenario.rate,
            "num_requests": scenario.num_requests,
            "max_batch": scenario.max_batch,
            "seed": scenario.seed,
            "tier": scenario.tier.name,
        },
        tokens_per_s=metrics.tokens_per_s,
        wall_s=wall_s,
    )
    print()
    print(metrics.summary())
    assert metrics.num_requests == 32
    assert metrics.tokens_per_s > 0
    # Percentiles must be ordered, and the memo table must be doing its job:
    # far fewer cycle-engine runs than serving steps.
    assert metrics.latency_percentile_ms(50) <= metrics.latency_percentile_ms(99)
    assert metrics.meta["step_simulations"] < metrics.steps / 10
