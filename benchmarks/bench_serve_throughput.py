"""Serving throughput: a Poisson request stream under continuous batching.

Times the registered ``serve_throughput`` bench (the one ``llamcat bench``
tracks in ``BENCH_serve_throughput.json``) end to end: arrival generation,
scheduler iterations and the memoized cycle-engine step costs.  The step-cost
table is the whole trick: the run takes hundreds of serving steps but only a
handful of cycle-engine simulations, which is what makes request-level
simulation affordable on top of a cycle-accurate model.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import serve_throughput


def test_serve_poisson_throughput(benchmark, tier):
    output = run_once(benchmark, serve_throughput, tier)
    print()
    print(output.detail)
    metrics = output.raw
    assert metrics.num_requests == 32
    assert metrics.tokens_per_s > 0
    assert output.value_of("tokens_per_s") == metrics.tokens_per_s
    # Percentiles must be ordered, and the memo table must be doing its job:
    # far fewer cycle-engine runs than serving steps.
    assert metrics.latency_percentile_ms(50) <= metrics.latency_percentile_ms(99)
    assert metrics.meta["step_simulations"] < metrics.steps / 10
