"""Figure 7 (c) & (f): cumulative speedups (dynmg, dynmg+B, dynmg+MA, dynmg+BMA)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import fig7_cumulative


def test_fig7_cumulative_panels(benchmark, tier):
    output = run_once(benchmark, fig7_cumulative, tier)
    print()
    print(output.detail)
    result = output.raw
    for model in result.speedups:
        # The final cumulative policy must not lose to the unoptimized baseline.
        assert result.geomean(model, "dynmg+BMA") > 0.97
        assert (
            output.value_of(f"{model}_dynmg+BMA_geomean")
            == result.geomean(model, "dynmg+BMA")
        )
