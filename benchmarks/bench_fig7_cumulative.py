"""Figure 7 (c) & (f): cumulative speedups (dynmg, dynmg+B, dynmg+MA, dynmg+BMA)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_fig7_cumulative


def test_fig7_cumulative_panels(benchmark, tier, models):
    result = run_once(benchmark, run_fig7_cumulative, tier=tier, models=models)
    print()
    print(result.render())
    for model in result.speedups:
        # The final cumulative policy must not lose to the unoptimized baseline.
        assert result.geomean(model, "dynmg+BMA") > 0.97
