"""Prefill scheduling: TTFT/TPOT across decode-first, prefill-first, chunked.

Times the registered ``prefill_schedulers`` bench: one bursty-traffic
`repro.serve` run per registered scheduling discipline.  The comparison is
the point of the prefill model: decode-first protects TPOT (in-flight decodes
never stall) at the price of queueing prompts, prefill-first minimizes prompt
queueing at the price of TPOT jitter, and chunked prefill buys most of both
by riding token-budgeted prompt chunks along with every decode batch.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import prefill_schedulers


def test_prefill_scheduler_comparison(benchmark, tier):
    output = run_once(benchmark, prefill_schedulers, tier)
    print()
    print(output.detail)
    results = output.raw
    for name, metrics in results.items():
        assert metrics.num_requests == 24, name
        assert metrics.has_prefill_phase, name
        assert metrics.meta["scheduler"] == name
    # The trade-off the schedulers exist for: chunked prefill keeps first
    # tokens ahead of bursty backlogs that full-prompt preemption queues up.
    assert (
        results["chunked"].ttft_percentile_ms(95)
        < results["prefill-first"].ttft_percentile_ms(95)
    )
    # Decode-first never stalls an in-flight decode, so its per-token pace is
    # the floor for the preempting schedulers.
    assert (
        results["decode-first"].mean_tpot_ms
        <= results["prefill-first"].mean_tpot_ms + 1e-9
    )
