"""Prefill scheduling: TTFT/TPOT across decode-first, prefill-first, chunked.

Times one bursty-traffic `repro.serve` run per registered scheduling
discipline and prints the TTFT / TPOT / tail-latency headline each reports.
The comparison is the point of the prefill model: decode-first protects TPOT
(in-flight decodes never stall) at the price of queueing prompts,
prefill-first minimizes prompt queueing at the price of TPOT jitter, and
chunked prefill buys most of both by riding token-budgeted prompt chunks
along with every decode batch.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.serve import ServeScenario

SCHEDULERS = ("decode-first", "prefill-first", "chunked")


def scenario(scheduler: str, tier) -> ServeScenario:
    return ServeScenario(
        workload="llama3-70b",
        arrival="bursty",
        rate=4000.0,
        num_requests=24,
        max_batch=4,
        seed=0,
        scheduler=scheduler,
        prefill_chunk=256,
        tier=tier,
    ).validate()


def test_prefill_scheduler_comparison(benchmark, tier):
    results = {}

    def run_all():
        for name in SCHEDULERS:
            results[name] = scenario(name, tier).run()
        return results

    run_once(benchmark, run_all)
    print()
    header = (f"{'scheduler':>15} {'ttft p95 ms':>12} {'tpot ms':>9} "
              f"{'p99 ms':>9} {'prefill p95 ms':>15} {'tok/s':>10}")
    print(header)
    for name, metrics in results.items():
        print(
            f"{name:>15} {metrics.ttft_percentile_ms(95):>12.3f} "
            f"{metrics.mean_tpot_ms:>9.4f} {metrics.latency_percentile_ms(99):>9.3f} "
            f"{metrics.prefill_percentile_ms(95):>15.3f} "
            f"{metrics.tokens_per_s:>10.0f}"
        )

    for name, metrics in results.items():
        assert metrics.num_requests == 24, name
        assert metrics.has_prefill_phase, name
        assert metrics.meta["scheduler"] == name
    # The trade-off the schedulers exist for: chunked prefill keeps first
    # tokens ahead of bursty backlogs that full-prompt preemption queues up.
    assert (
        results["chunked"].ttft_percentile_ms(95)
        < results["prefill-first"].ttft_percentile_ms(95)
    )
    # Decode-first never stalls an in-flight decode, so its per-token pace is
    # the floor for the preempting schedulers.
    assert (
        results["decode-first"].mean_tpot_ms
        <= results["prefill-first"].mean_tpot_ms + 1e-9
    )
