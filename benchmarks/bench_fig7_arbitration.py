"""Figure 7 (b) & (e): arbitration-policy speedups (cobrra, B, MA, BMA) over dynmg.

Times the registered ``fig7_arbitration`` bench: every arbitration policy runs
on top of dynmg throttling and is normalised to dynmg alone, exactly as in the
paper.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import fig7_arbitration


def test_fig7_arbitration_panels(benchmark, tier):
    output = run_once(benchmark, fig7_arbitration, tier)
    print()
    print(output.detail)
    result = output.raw
    for model in result.speedups:
        series = result.speedups[model]
        assert set(series) == {"cobrra", "B", "MA", "BMA"}
        for values in series.values():
            assert all(0.5 < v < 2.0 for v in values)
