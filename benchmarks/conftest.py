"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The scale tier
is selected with the ``REPRO_BENCH_TIER`` environment variable (``ci`` by
default so the whole suite finishes in tens of minutes; ``paper_scaled`` or
``full`` reproduce progressively larger versions of the experiments).

Each benchmark prints the regenerated rows/series to stdout (run pytest with
``-s`` to see them) and reports the wall-clock time of the underlying
simulations through pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config.scale import ScaleTier  # noqa: E402
from repro.sim.runner import clear_trace_cache  # noqa: E402


def bench_tier() -> ScaleTier:
    name = os.environ.get("REPRO_BENCH_TIER", "ci").upper()
    return ScaleTier[name]


def bench_models(tier: ScaleTier) -> tuple[str, ...]:
    """Models swept by the Fig 7 / Fig 9 benchmarks.

    The SMOKE tier restricts the sweep to Llama3-70B so a full regeneration of
    every figure finishes in minutes; every other tier runs both paper models.
    """

    if tier is ScaleTier.SMOKE:
        return ("llama3-70b",)
    return ("llama3-70b", "llama3-405b")


@pytest.fixture(scope="session")
def tier() -> ScaleTier:
    return bench_tier()


@pytest.fixture(scope="session")
def models(tier) -> tuple[str, ...]:
    return bench_models(tier)


@pytest.fixture(scope="session", autouse=True)
def _announce(tier):
    print(f"\n[repro benchmarks] scale tier = {tier.name} "
          f"(set REPRO_BENCH_TIER=ci|paper_scaled|full to change)\n")
    yield
    clear_trace_cache()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""

    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_once_timed(benchmark, fn, *args, **kwargs):
    """Like :func:`run_once`, also returning the measured wall seconds."""

    start = time.perf_counter()
    result = run_once(benchmark, fn, *args, **kwargs)
    return result, time.perf_counter() - start


def write_trend(bench: str, config: dict, tokens_per_s: float, wall_s: float) -> Path:
    """Persist one benchmark's headline numbers as a committed trend file.

    ``benchmarks/BENCH_<bench>.json`` lives next to the benchmark code so a
    throughput regression shows up as a reviewable diff, not only as local
    pytest-benchmark output.  The schema is deliberately tiny and stable:
    ``{bench, config, tokens_per_s, wall_s}``.
    """

    payload = {
        "bench": bench,
        "config": config,
        "tokens_per_s": round(tokens_per_s, 1),
        "wall_s": round(wall_s, 3),
    }
    path = Path(__file__).parent / f"BENCH_{bench}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
