"""Shared configuration for the benchmark harness.

Every benchmark is a thin pytest wrapper around a bench registered in
:data:`repro.bench.registry.BENCHES` -- the same functions ``llamcat bench``
runs -- plus domain assertions on the returned
:class:`~repro.bench.registry.BenchOutput`.  The scale tier is selected with
the ``REPRO_BENCH_TIER`` environment variable (``ci`` by default so the whole
suite finishes in tens of minutes; ``paper_scaled`` or ``full`` reproduce
progressively larger versions of the experiments).

Each benchmark prints the regenerated rows/series to stdout (run pytest with
``-s`` to see them) and reports the wall-clock time of the underlying
simulations through pytest-benchmark.  Trend files are **not** written here:
``llamcat bench`` owns every write to the root-level ``BENCH_<name>.json``
history files.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.suite import bench_models  # noqa: E402, F401  (fixture + re-export)
from repro.config.scale import ScaleTier  # noqa: E402
from repro.sim.runner import clear_trace_cache  # noqa: E402


def bench_tier() -> ScaleTier:
    name = os.environ.get("REPRO_BENCH_TIER", "ci").upper()
    return ScaleTier[name]


@pytest.fixture(scope="session")
def tier() -> ScaleTier:
    return bench_tier()


@pytest.fixture(scope="session")
def models(tier) -> tuple[str, ...]:
    return bench_models(tier)


@pytest.fixture(scope="session", autouse=True)
def _announce(tier):
    print(f"\n[repro benchmarks] scale tier = {tier.name} "
          f"(set REPRO_BENCH_TIER=ci|paper_scaled|full to change)\n")
    yield
    clear_trace_cache()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""

    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_once_timed(benchmark, fn, *args, **kwargs):
    """Like :func:`run_once`, also returning the measured wall seconds."""

    start = time.perf_counter()
    result = run_once(benchmark, fn, *args, **kwargs)
    return result, time.perf_counter() - start
