"""Table 5: the simulated system configuration, plus its analytical implications.

This benchmark validates that the Table 5 preset is what the paper specifies and
times the registered ``table5_config`` bench -- the analytical model on the
paper's workloads (the fast half of the hybrid framework).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import table5_config
from repro.config.presets import table5_system
from repro.config.system import MIB


def test_table5_system_configuration(benchmark, tier):
    output = run_once(benchmark, table5_config, tier)
    system = table5_system()
    print()
    print("Table 5 -- simulated system configuration")
    print(f"  frequency          {system.frequency_ghz} GHz")
    print(f"  cores              {system.core.num_cores}")
    print(f"  L2                 {system.l2.size_bytes // MIB} MB, {system.l2.num_slices} slices")
    print(f"  MSHR               {system.l2.mshr_num_entries} entries x "
          f"{system.l2.mshr_num_targets} targets per slice")
    print(f"  DRAM               {system.dram.standard}, {system.dram.num_channels} channels, "
          f"{system.dram.peak_bandwidth_gbps:.1f} GB/s peak")
    print(output.detail)
    assert system.frequency_ghz == 1.96
    assert system.core.num_cores == 16
    assert system.l2.size_bytes == 16 * MIB
    estimates = output.raw
    assert all(est.bottleneck in ("dram", "l2") for est in estimates.values())
