"""Table 2: sweep of the global sampling period (the paper picks 2000 / 400 cycles)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.reporting import format_grid
from repro.experiments.tables import run_table2_sampling_sweep


def test_table2_sampling_period_sweep(benchmark, tier):
    rows = run_once(
        benchmark, run_table2_sampling_sweep, tier=tier,
        sampling_periods=(1000, 2000, 4000),
    )
    print()
    print(format_grid("Table 2 -- dynmg sampling-period sweep", rows))
    assert any(row["sampling_period"] == 2000 for row in rows)
    assert all(row["speedup"] > 0.8 for row in rows)
