"""Table 2: sweep of the global sampling period (the paper picks 2000 / 400 cycles)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import table2_throttle_sweep


def test_table2_sampling_period_sweep(benchmark, tier):
    output = run_once(benchmark, table2_throttle_sweep, tier)
    print()
    print(output.detail)
    rows = output.raw
    assert any(row["sampling_period"] == 2000 for row in rows)
    assert all(row["speedup"] > 0.8 for row in rows)
