"""Figure 7 (a) & (d): throttling-policy speedups (dyncta, lcs, dynmg).

Times the registered ``fig7_throttling`` bench: speedup of each throttling
policy over the unoptimized configuration for Llama3-70B and Llama3-405B at
4K/8K/16K (scaled by the selected tier).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import fig7_throttling


def test_fig7_throttling_panels(benchmark, tier):
    output = run_once(benchmark, fig7_throttling, tier)
    print()
    print(output.detail)
    result = output.raw
    # Sanity on the regenerated series: the paper's policy (dynmg) must not lose
    # to the unoptimized configuration on geomean for either model.
    for model in result.speedups:
        assert result.geomean(model, "dynmg") > 0.97
        assert output.value_of(f"{model}_dynmg_geomean") == result.geomean(model, "dynmg")
        for policy, values in result.speedups[model].items():
            assert len(values) == len(result.seq_lens)
            assert all(0.5 < v < 3.0 for v in values)
