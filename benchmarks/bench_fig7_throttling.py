"""Figure 7 (a) & (d): throttling-policy speedups (dyncta, lcs, dynmg).

Regenerates the two panels: speedup of each throttling policy over the
unoptimized configuration for Llama3-70B and Llama3-405B at 4K/8K/16K
(scaled by the selected tier).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_fig7_throttling


def test_fig7_throttling_panels(benchmark, tier, models):
    result = run_once(benchmark, run_fig7_throttling, tier=tier, models=models)
    print()
    print(result.render())
    # Sanity on the regenerated series: the paper's policy (dynmg) must not lose
    # to the unoptimized configuration on geomean for either model.
    for model in result.speedups:
        assert result.geomean(model, "dynmg") > 0.97
        for policy, values in result.speedups[model].items():
            assert len(values) == len(result.seq_lens)
            assert all(0.5 < v < 3.0 for v in values)
