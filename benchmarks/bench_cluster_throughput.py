"""Cluster throughput: one request stream over a 4-replica fleet.

Times the registered ``cluster_throughput`` bench (tracked in
``BENCH_cluster_throughput.json`` by ``llamcat bench``): arrival generation,
routing, four independent continuous-batching schedulers and the shared
memoized step-cost table.  The shared table is the whole trick at fleet
scale: replicas with the same system preset reuse one (batch, seq-bucket)
cycle table, so a 4-replica fleet performs barely more cycle-engine runs than
one accelerator would.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import cluster_throughput


def test_cluster_round_robin_throughput(benchmark, tier):
    output = run_once(benchmark, cluster_throughput, tier)
    print()
    print(output.detail)
    metrics = output.raw
    assert metrics.num_requests == 32
    assert metrics.num_replicas == 4
    assert metrics.tokens_per_s > 0
    assert output.value_of("tokens_per_s") == metrics.tokens_per_s
    # Percentiles must be ordered, and the shared memo table must be doing its
    # job: far fewer cycle-engine runs than fleet serving steps.
    assert metrics.latency_percentile_ms(50) <= metrics.latency_percentile_ms(99)
    assert metrics.meta["step_simulations"] < metrics.steps / 10
