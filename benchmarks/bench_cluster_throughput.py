"""Cluster throughput: one request stream over a 4-replica fleet.

Times one `repro.cluster` run end to end (arrival generation, routing, four
independent continuous-batching schedulers and the shared memoized step-cost
table) and prints the fleet headline metrics.  The shared table is the whole
trick at fleet scale: replicas with the same system preset reuse one
(batch, seq-bucket) cycle table, so a 4-replica fleet performs barely more
cycle-engine runs than one accelerator would.
"""

from __future__ import annotations

from benchmarks.conftest import run_once_timed, write_trend
from repro.cluster import ClusterScenario


def test_cluster_round_robin_throughput(benchmark, tier):
    scenario = ClusterScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=4000.0,
        num_requests=32,
        replicas=4,
        router="round-robin",
        max_batch=4,
        seed=0,
        tier=tier,
    ).validate()
    metrics, wall_s = run_once_timed(benchmark, scenario.run)
    write_trend(
        "cluster",
        config={
            "workload": scenario.workload,
            "arrival": scenario.arrival,
            "rate": scenario.rate,
            "num_requests": scenario.num_requests,
            "replicas": scenario.replicas,
            "router": scenario.router,
            "max_batch": scenario.max_batch,
            "seed": scenario.seed,
            "tier": scenario.tier.name,
        },
        tokens_per_s=metrics.tokens_per_s,
        wall_s=wall_s,
    )
    print()
    print(metrics.summary())
    assert metrics.num_requests == 32
    assert metrics.num_replicas == 4
    assert metrics.tokens_per_s > 0
    # Percentiles must be ordered, and the shared memo table must be doing its
    # job: far fewer cycle-engine runs than fleet serving steps.
    assert metrics.latency_percentile_ms(50) <= metrics.latency_percentile_ms(99)
    assert metrics.meta["step_simulations"] < metrics.steps / 10
