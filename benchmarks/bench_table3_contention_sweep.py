"""Table 3: contention-classification thresholds vs looser / tighter settings."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.reporting import format_grid
from repro.experiments.tables import run_table3_contention_sweep


def test_table3_contention_threshold_sweep(benchmark, tier):
    rows = run_once(benchmark, run_table3_contention_sweep, tier=tier)
    print()
    print(format_grid("Table 3 -- contention-threshold sweep", rows))
    assert len(rows) == 3
    assert all(row["speedup"] > 0.8 for row in rows)
