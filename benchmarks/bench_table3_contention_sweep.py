"""Table 3: contention-classification thresholds vs looser / tighter settings."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import table3_contention_sweep


def test_table3_contention_threshold_sweep(benchmark, tier):
    output = run_once(benchmark, table3_contention_sweep, tier)
    print()
    print(output.detail)
    rows = output.raw
    assert len(rows) == 3
    assert all(row["speedup"] > 0.8 for row in rows)
