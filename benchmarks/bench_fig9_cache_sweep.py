"""Figure 9 (a) & (b): 32K-token sequences against 16/32/64 MB L2 configurations.

Times the registered ``fig9_cache_sweep`` bench: all policies (dyncta, lcs,
cobrra, dynmg, dynmg+cobrra, dynmg+BMA and the unoptimized reference) are
normalised against unoptimized @ 32 MB.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import fig9_cache_sweep


def test_fig9_cache_size_sweep(benchmark, tier):
    output = run_once(benchmark, fig9_cache_sweep, tier)
    print()
    print(output.detail)
    for model, series in output.raw.speedups.items():
        unopt = series["unoptimized"]
        # The unoptimized configuration must benefit from growing the cache.
        assert unopt[-1] >= unopt[0] * 0.98
        # The paper's final policy never loses badly to unoptimized at any size.
        paired = zip(series["dynmg+BMA"], unopt, strict=True)
        assert all(bma > 0.9 * u for bma, u in paired)
