"""KV preemption: recompute vs swap under a deliberately tight KV budget.

Times the registered ``kv_preemption`` bench: one KV-constrained
`repro.serve` run per registered preemption policy.  The comparison is the
point of the KV memory model: under a budget too small for the full batch's
context growth, recompute evicts KV and re-prefills (cheap eviction, repaid
in compute), while swap preserves KV off-device and pays a transfer latency
each way (requests return further along, but later).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import kv_preemption


def test_kv_preemption_comparison(benchmark, tier):
    output = run_once(benchmark, kv_preemption, tier)
    print()
    print(output.detail)
    results = output.raw
    for name, metrics in results.items():
        assert metrics.num_requests == 8, name
        assert metrics.meta["preemption"] == name
        assert metrics.meta["kv_budget_tokens"] == 1024, name
        # The budget is sized to force memory pressure: every policy must
        # actually preempt, otherwise the comparison is vacuous.
        assert metrics.meta["preemptions"] > 0, name
        assert 0.0 < metrics.meta["kv_peak_utilization"] <= 1.0, name
    # The policies must be distinguishable on the smoke seed, not cosmetic
    # variants: first-token latency tails diverge measurably.
    assert (
        results["recompute"].ttft_percentile_ms(95)
        != results["swap"].ttft_percentile_ms(95)
    )
