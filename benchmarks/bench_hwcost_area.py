"""Section 6.1: area of the added arbitration hardware (arbiter + hit buffer)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.hwcost_exp import (
    PAPER_ARBITER_UM2,
    PAPER_HIT_BUFFER_UM2,
    run_hwcost,
)
from repro.experiments.reporting import format_grid


def test_hwcost_area_estimates(benchmark):
    rows = run_once(benchmark, run_hwcost)
    print()
    print(format_grid("Section 6.1 -- area estimates (15 nm)", rows))
    print(f"  paper: arbiter {PAPER_ARBITER_UM2} um^2, hit buffer {PAPER_HIT_BUFFER_UM2} um^2")
    for row in rows:
        assert 0.4 < row["ratio"] < 2.5
