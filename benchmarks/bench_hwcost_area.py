"""Section 6.1: area of the added arbitration hardware (arbiter + hit buffer)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import hwcost_area
from repro.experiments.hwcost_exp import PAPER_ARBITER_UM2, PAPER_HIT_BUFFER_UM2


def test_hwcost_area_estimates(benchmark, tier):
    output = run_once(benchmark, hwcost_area, tier)
    print()
    print(output.detail)
    print(f"  paper: arbiter {PAPER_ARBITER_UM2} um^2, hit buffer {PAPER_HIT_BUFFER_UM2} um^2")
    for row in output.raw:
        assert 0.4 < row["ratio"] < 2.5
