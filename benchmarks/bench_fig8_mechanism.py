"""Figure 8: detailed statistics for Llama3-70B @ 8K (performance, MSHR entry
utilisation, L2 hit rate, MSHR hit rate, DRAM bandwidth) across the policy
progression unoptimized -> dynmg -> dynmg+BMA (plus the intermediate points)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import fig8_mechanism


def test_fig8_mechanism_panel(benchmark, tier):
    output = run_once(benchmark, fig8_mechanism, tier)
    print()
    print(output.detail)
    by_policy = {row["policy"]: row for row in output.raw.rows}
    # The mechanism the paper highlights: the final policy raises the MSHR hit
    # rate relative to the unoptimized configuration.
    assert by_policy["dynmg+BMA"]["mshr_hit_rate"] > by_policy["unoptimized"]["mshr_hit_rate"]
    # DRAM access counts stay in the same ballpark across policies.
    assert by_policy["dynmg+BMA"]["dram_accesses"] < 1.5 * by_policy["unoptimized"]["dram_accesses"]
