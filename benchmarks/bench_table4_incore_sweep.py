"""Table 4: in-core C_mem threshold sweep around the paper's 250/180 values."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.suite import table4_incore_sweep


def test_table4_incore_threshold_sweep(benchmark, tier):
    output = run_once(benchmark, table4_incore_sweep, tier)
    print()
    print(output.detail)
    rows = output.raw
    assert any(row["c_mem_upper"] == 250 and row["c_mem_lower"] == 180 for row in rows)
    assert all(row["speedup"] > 0.8 for row in rows)
