"""Table 4: in-core C_mem threshold sweep around the paper's 250/180 values."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.reporting import format_grid
from repro.experiments.tables import run_table4_incore_sweep


def test_table4_incore_threshold_sweep(benchmark, tier):
    rows = run_once(benchmark, run_table4_incore_sweep, tier=tier)
    print()
    print(format_grid("Table 4 -- in-core C_mem threshold sweep", rows))
    assert any(row["c_mem_upper"] == 250 and row["c_mem_lower"] == 180 for row in rows)
    assert all(row["speedup"] > 0.8 for row in rows)
