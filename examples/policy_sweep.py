#!/usr/bin/env python3
"""Sweep every throttling and arbitration policy on one workload (a mini Fig 7).

Compares unoptimized, the three throttling policies (dyncta, lcs, dynmg), the
COBRRA arbitration baseline and the paper's cumulative policies (dynmg+B,
dynmg+MA, dynmg+BMA) on the Llama3-70B or 405B Logit operator, printing a
speedup table normalised to the unoptimized run.

Usage::

    python examples/policy_sweep.py --model llama3-405b --seq-len 8192 --tier ci
"""

from __future__ import annotations

import argparse

from repro import config
from repro.config import ScaleTier, policy_by_label, scale_experiment
from repro.sim import compare_policies

POLICY_LABELS = [
    "unopt",
    "dyncta",
    "lcs",
    "dynmg",
    "cobrra",
    "dynmg+B",
    "dynmg+MA",
    "dynmg+BMA",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama3-70b",
                        choices=["llama3-70b", "llama3-405b"])
    parser.add_argument("--seq-len", type=int, default=8192)
    parser.add_argument("--tier", default="ci", choices=["ci", "paper_scaled", "full"])
    args = parser.parse_args()

    workload = (config.llama3_70b_logit(args.seq_len) if args.model == "llama3-70b"
                else config.llama3_405b_logit(args.seq_len))
    system, workload = scale_experiment(
        config.table5_system(), workload, ScaleTier[args.tier.upper()]
    )
    print(f"workload: {workload.describe()}  (tier={args.tier})")

    policies = {label: policy_by_label(label) for label in POLICY_LABELS}
    comparison = compare_policies(system, workload, policies, baseline_label="unopt")

    print()
    header = f"{'policy':<12} {'cycles':>10} {'speedup':>8} {'L2 hit':>8} {'MSHR hit':>9} {'BW GB/s':>8}"
    print(header)
    print("-" * len(header))
    for label, result in comparison.results.items():
        print(
            f"{label:<12} {result.cycles:>10} {comparison.speedup(label):>8.3f} "
            f"{result.l2_hit_rate:>8.2%} {result.mshr_hit_rate:>9.2%} "
            f"{result.dram_bandwidth_gbps:>8.1f}"
        )


if __name__ == "__main__":
    main()
