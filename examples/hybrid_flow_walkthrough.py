#!/usr/bin/env python3
"""Walk through the hybrid simulation flow of Fig 6, one stage at a time.

Stage 1: describe the operator and its tensors.
Stage 2: build the constrained dataflow mapping (the Timeloop substitute).
Stage 3: unroll the mapping into per-thread-block memory traces.
Stage 4: run the analytical (stall-free) model.
Stage 5: run the cycle-level simulator and compare against the analytical bound.

Usage::

    python examples/hybrid_flow_walkthrough.py --seq-len 256
"""

from __future__ import annotations

import argparse

from repro import config
from repro.config import ScaleTier, scale_system
from repro.dataflow.analytical import analyze
from repro.dataflow.mapper import build_mapping
from repro.sim import simulate
from repro.trace.generator import generate_trace
from repro.trace.stats import compute_trace_stats
from repro.workloads.operators import make_operator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seq-len", type=int, default=256)
    parser.add_argument(
        "--full-cache", action="store_true",
        help="keep the full 16 MiB L2 instead of scaling it to the short context",
    )
    args = parser.parse_args()

    system = config.table5_system()
    if not args.full_cache:
        # Scale the L2 down with the short demo context so the cycle-level stage
        # exercises the same capacity pressure as a paper-sized run.
        system = scale_system(system, ScaleTier.CI)
    workload = config.llama3_70b_logit(seq_len=args.seq_len)

    print("=== Stage 1: operator ===")
    operator = make_operator(workload)
    print(operator.describe())
    layout = operator.layout
    for operand in layout.operands:
        print(f"  {operand.name:<8} base={operand.base:#x}  {operand.size_bytes / 2**20:.2f} MiB")

    print("\n=== Stage 2: constrained mapping (Timeloop substitute) ===")
    mapping = build_mapping(operator, system)
    print(mapping.render())

    print("\n=== Stage 3: memory trace ===")
    trace = generate_trace(workload, system)
    stats = compute_trace_stats(trace)
    print(stats.describe())
    print(f"  accesses by tensor: { {k.name: v for k, v in stats.accesses_by_kind.items()} }")

    print("\n=== Stage 4: analytical (stall-free) model ===")
    estimate = analyze(workload, system, mapping)
    print(f"  compute-bound cycles: {estimate.compute_cycles}")
    print(f"  L2-bound cycles:      {estimate.l2_bound_cycles}")
    print(f"  DRAM-bound cycles:    {estimate.dram_bound_cycles}")
    print(f"  stall-free bound:     {estimate.stall_free_cycles}  (bottleneck: {estimate.bottleneck})")

    print("\n=== Stage 5: cycle-level simulation ===")
    result = simulate(system, config.unoptimized(), trace=trace, label="unoptimized")
    print(f"  simulated cycles:     {result.cycles}")
    print(f"  vs stall-free bound:  {result.cycles / estimate.stall_free_cycles:.2f}x")
    print(f"  {result.summary()}")


if __name__ == "__main__":
    main()
