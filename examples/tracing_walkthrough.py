#!/usr/bin/env python3
"""Compare decode-first vs chunked-prefill schedulers through their traces.

Aggregates (p95 TTFT, throughput) say *which* scheduler wins; observability
says *why*.  This walkthrough runs the same seeded request stream under the
``decode-first`` and ``chunked`` schedulers with a :class:`ChromeTracer` and
telemetry sampling attached, then

* writes one Chrome ``trace_event`` file per scheduler -- open them side by
  side at https://ui.perfetto.dev to see chunked prefill slicing the long
  prompt spans into `--prefill-chunk`-token steps that interleave with decode,
  where decode-first serializes whole prompts between decode bursts;
* prints each run's telemetry timeline, where the same story shows up as
  queue-depth and utilization shapes; and
* summarizes the step-span composition straight from the trace events.

Usage::

    python examples/tracing_walkthrough.py --out-dir /tmp/llamcat-traces
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.config.scale import ScaleTier
from repro.obs import ChromeTracer, render_timeline
from repro.serve import ServeScenario


def run_traced(scheduler: str, args: argparse.Namespace):
    scenario = ServeScenario(
        workload=args.workload,
        arrival="poisson",
        rate=args.rate,
        num_requests=args.num_requests,
        max_batch=args.max_batch,
        seed=args.seed,
        scheduler=scheduler,
        prefill_chunk=args.prefill_chunk,
        tier=ScaleTier[args.tier.upper()],
        telemetry_ms=args.telemetry_ms,
    ).validate()
    tracer = ChromeTracer()
    metrics = scenario.run(tracer=tracer)
    return metrics, tracer


def step_stats(tracer: ChromeTracer) -> dict:
    """Fold the scheduler step spans into a composition summary."""

    steps = [e for e in tracer.events if e["name"] == "step"]
    mixed = sum(
        1 for e in steps if e["args"].get("decode") and e["args"].get("prefill_reqs")
    )
    prefill_only = sum(
        1 for e in steps if not e["args"].get("decode") and e["args"].get("prefill_reqs")
    )
    return {
        "steps": len(steps),
        "prefill_steps": sum(1 for e in steps if e["args"].get("prefill_reqs")),
        "mixed_steps": mixed,
        "prefill_only_steps": prefill_only,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="llama3-70b")
    parser.add_argument("--rate", type=float, default=2000.0)
    parser.add_argument("--num-requests", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--prefill-chunk", type=int, default=256)
    parser.add_argument("--telemetry-ms", type=float, default=1.0)
    parser.add_argument("--tier", default="smoke", choices=["smoke", "ci", "full"])
    parser.add_argument("--out-dir", default="/tmp/llamcat-traces")
    args = parser.parse_args()

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    results = {}
    for scheduler in ("decode-first", "chunked"):
        metrics, tracer = run_traced(scheduler, args)
        path = out_dir / f"{scheduler}.json"
        tracer.write(path)
        results[scheduler] = (metrics, tracer, path)

        print(f"=== {scheduler} ===")
        print(metrics.summary())
        stats = step_stats(tracer)
        print(
            f"trace: {path} ({len(tracer)} events; {stats['steps']} steps, "
            f"{stats['mixed_steps']} mixed decode+prefill, "
            f"{stats['prefill_only_steps']} prefill-only)"
        )
        print(render_timeline(metrics.telemetry))
        print()

    decode_first, chunked = results["decode-first"][0], results["chunked"][0]
    print(
        f"chunked vs decode-first: "
        f"TTFT p95 {chunked.ttft_percentile_ms(95):.3f} vs "
        f"{decode_first.ttft_percentile_ms(95):.3f} ms, "
        f"throughput {chunked.tokens_per_s:.0f} vs "
        f"{decode_first.tokens_per_s:.0f} tokens/s"
    )
    print(f"open the traces side by side at https://ui.perfetto.dev: {out_dir}")


if __name__ == "__main__":
    main()
