#!/usr/bin/env python3
"""Run a policy x cache-size grid through the parallel sweep executor.

Demonstrates the ``repro.sweep`` subsystem: a declarative :class:`SweepSpec`
expands into content-hashed points, ``run_sweep`` fans them out over worker
processes, and the JSON-lines :class:`ResultStore` makes re-runs near-instant
(only missing points are simulated -- try running this script twice).

Usage::

    python examples/parallel_sweep.py --jobs 4 --store /tmp/llamcat-sweep.jsonl
"""

from __future__ import annotations

import argparse

from repro.config.scale import ScaleTier
from repro.sweep import ResultStore, SweepSpec, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama3-70b",
                        choices=["llama3-70b", "llama3-405b"])
    parser.add_argument("--seq-len", type=int, default=8192)
    parser.add_argument("--tier", default="ci", choices=["ci", "paper_scaled", "full"])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--store", default=None, help="JSONL store path (resumable)")
    args = parser.parse_args()

    spec = SweepSpec(
        models=(args.model,),
        seq_lens=(args.seq_len,),
        policies=("unopt", "dynmg", "dynmg+BMA"),
        l2_mib=(16, 32, 64),
        tier=ScaleTier[args.tier.upper()],
    ).validate()
    print(f"expanding {spec.num_points} points, jobs={args.jobs}")

    store = ResultStore(args.store) if args.store else None
    report = run_sweep(
        spec,
        jobs=args.jobs,
        store=store,
        progress=lambda done, total, o: print(
            f"  [{done}/{total}] {o.point.describe()}"
            f" -> {o.result.cycles if o.ok else 'FAILED'} cycles"
            f"{' (cached)' if o.cached else ''}"
        ),
    ).raise_on_failure()
    print(report.summary())

    # Normalise each cell against unopt at the same capacity.
    points = spec.expand()
    unopt = {
        p.coord("l2_mib"): report.result_for(p).cycles
        for p in points if p.coord("policy") == "unopt"
    }
    print(f"\n{'policy':<12}" + "".join(f"{m}MB".rjust(10) for m in spec.l2_mib))
    for label in spec.policies:
        cells = [
            unopt[p.coord("l2_mib")] / report.result_for(p).cycles
            for p in points if p.coord("policy") == label
        ]
        print(f"{label:<12}" + "".join(f"{v:10.3f}" for v in cells))


if __name__ == "__main__":
    main()
