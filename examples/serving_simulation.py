#!/usr/bin/env python3
"""Sweep a Poisson request stream over arrival rates with `repro.serve`.

Demonstrates the serving subsystem: a :class:`ServeSweepSpec` expands a grid of
serving points (one per arrival rate), ``run_sweep`` fans them out over worker
processes, and each point simulates continuous batching on top of the
cycle-accurate engine -- per-step costs come from a memoized table of
(batch, seq-bucket) cycle-engine runs, so thousands of serving steps cost only
a handful of simulations.  The printed table shows the classic open-loop
queueing behaviour: throughput rises with offered load while tail latency
degrades.

Usage::

    python examples/serving_simulation.py --jobs 3 --store /tmp/llamcat-serve.jsonl
"""

from __future__ import annotations

import argparse

from repro.config.scale import ScaleTier
from repro.serve import ServeSweepSpec
from repro.sweep import ResultStore, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="llama3-70b")
    parser.add_argument("--arrival", default="poisson",
                        choices=["poisson", "bursty", "closed-loop"])
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[500.0, 1000.0, 2000.0, 4000.0, 8000.0])
    parser.add_argument("--num-requests", type=int, default=24)
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--tier", default="smoke", choices=["smoke", "ci", "full"])
    parser.add_argument("--jobs", type=int, default=3)
    parser.add_argument("--store", default=None, help="JSONL store path (resumable)")
    args = parser.parse_args()

    spec = ServeSweepSpec(
        workloads=(args.workload,),
        arrivals=(args.arrival,),
        rates=tuple(args.rates),
        num_requests=args.num_requests,
        max_batch=args.max_batch,
        tier=ScaleTier[args.tier.upper()],
        slo_latency_ms=1.0,
    ).validate()
    points = spec.expand()
    print(f"serving {spec.num_points} points ({args.arrival} x {args.rates}), "
          f"jobs={args.jobs}")

    store = ResultStore(args.store) if args.store else None
    report = run_sweep(
        points,
        jobs=args.jobs,
        store=store,
        progress=lambda done, total, o: print(
            f"  [{done}/{total}] {o.point.describe()}"
            f"{' (cached)' if o.cached else ''}"
        ),
    ).raise_on_failure()
    print(report.summary())

    header = (f"{'rate':>8} {'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} "
              f"{'TTFT p95':>9} {'tok/s':>10} {'SLO':>6}")
    print(f"\n{header}")
    for point in points:
        m = report.result_for(point)
        print(
            f"{point.coord('rate'):>8g} {m.latency_percentile_ms(50):>9.3f} "
            f"{m.latency_percentile_ms(95):>9.3f} {m.latency_percentile_ms(99):>9.3f} "
            f"{m.ttft_percentile_ms(95):>9.3f} {m.tokens_per_s:>10.0f} "
            f"{m.slo_attainment:>6.0%}"
        )


if __name__ == "__main__":
    main()
