#!/usr/bin/env python3
"""Compare routing disciplines on a multi-replica fleet with `repro.cluster`.

Demonstrates the cluster subsystem: one shared Poisson request stream is
dispatched over N accelerator replicas by each registered router in turn
(round-robin, least-outstanding, join-shortest-queue, weighted), and the
printed table compares fleet throughput, merged tail latency and the
load-imbalance factor.  Every replica runs its own continuous-batching
scheduler on top of the cycle-accurate engine; replicas sharing a system
preset share one memoized step-cost table, so the fleet costs barely more
than a single-accelerator run.

The ``--mixed`` flag swaps half the fleet to the scaled-down ``table5-8core``
preset -- the heterogeneous-fleet axis -- which is where load-aware routers
visibly beat round-robin.

Usage::

    python examples/cluster_serving.py --replicas 4 --rate 4000
    python examples/cluster_serving.py --replicas 4 --mixed
"""

from __future__ import annotations

import argparse

from repro.cluster import ClusterScenario
from repro.config.scale import ScaleTier
from repro.registry import ROUTERS

ROUTERS_TO_COMPARE = ("round-robin", "least-outstanding", "join-shortest-queue", "weighted")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="llama3-70b")
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--rate", type=float, default=4000.0)
    parser.add_argument("--num-requests", type=int, default=24)
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tier", default="smoke", choices=["smoke", "ci", "full"])
    parser.add_argument("--mixed", action="store_true",
                        help="heterogeneous fleet: half table5, half table5-8core")
    args = parser.parse_args()

    systems: tuple[str, ...] = ("table5",)
    if args.mixed:
        half = args.replicas // 2
        systems = ("table5",) * (args.replicas - half) + ("table5-8core",) * half
    fleet = "mixed " + "/".join(systems) if args.mixed else f"homogeneous {systems[0]}"
    print(f"{args.replicas}-replica {fleet} fleet, "
          f"poisson @ {args.rate:g} req/s, {args.num_requests} requests "
          f"(routers: {', '.join(ROUTERS.names())})")

    header = (f"{'router':>21} {'p50 ms':>9} {'p99 ms':>9} {'tok/s':>10} "
              f"{'imbalance':>10} {'utilization':>24}")
    print(f"\n{header}")
    for router in ROUTERS_TO_COMPARE:
        metrics = ClusterScenario(
            workload=args.workload,
            arrival="poisson",
            rate=args.rate,
            num_requests=args.num_requests,
            replicas=args.replicas,
            router=router,
            max_batch=args.max_batch,
            seed=args.seed,
            systems=systems,
            tier=ScaleTier[args.tier.upper()],
        ).run()
        utilization = "/".join(f"{u:.0%}" for u in metrics.utilizations)
        print(
            f"{router:>21} {metrics.latency_percentile_ms(50):>9.3f} "
            f"{metrics.latency_percentile_ms(99):>9.3f} {metrics.tokens_per_s:>10.0f} "
            f"{metrics.load_imbalance:>10.2f} {utilization:>24}"
        )


if __name__ == "__main__":
    main()
