#!/usr/bin/env python3
"""Quickstart: simulate the Llama3-70B decode Logit operator with and without LLaMCAT.

Runs the unoptimized configuration and the paper's final policy (dynmg + BMA)
on the Table 5 system at CI scale and prints the headline metrics of Fig 8.

Usage::

    python examples/quickstart.py [--tier ci|paper_scaled|full] [--seq-len 4096]
"""

from __future__ import annotations

import argparse

from repro import config
from repro.config import ScaleTier, scale_experiment
from repro.sim import run_policy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default="ci", choices=["ci", "paper_scaled", "full"])
    parser.add_argument("--seq-len", type=int, default=4096)
    args = parser.parse_args()
    tier = ScaleTier[args.tier.upper()]

    system = config.table5_system()
    workload = config.llama3_70b_logit(seq_len=args.seq_len)
    system, workload = scale_experiment(system, workload, tier)

    print(f"system : Table 5 (16 cores, {system.l2.size_bytes // 2**20} MiB L2, "
          f"{system.l2.num_slices} slices, {system.l2.mshr_num_entries} MSHR entries/slice)")
    print(f"workload: {workload.describe()}")
    print()

    baseline = run_policy(system, workload, config.unoptimized(), label="unoptimized")
    best = run_policy(system, workload, config.bma(), label="dynmg+BMA")

    for result in (baseline, best):
        print(result.summary())
    print()
    print(f"speedup of dynmg+BMA over unoptimized: "
          f"{baseline.cycles / best.cycles:.3f}x")
    print(f"MSHR hit rate:   {baseline.mshr_hit_rate:.2%} -> {best.mshr_hit_rate:.2%}")
    print(f"DRAM bandwidth:  {baseline.dram_bandwidth_gbps:.1f} -> "
          f"{best.dram_bandwidth_gbps:.1f} GB/s")


if __name__ == "__main__":
    main()
