#!/usr/bin/env python3
"""Colocated vs. disaggregated prefill/decode serving with `repro.cluster`.

Demonstrates the two fleet organizations the prefill model enables.  One
shared bursty request stream is served first by colocated fleets -- every
replica both prefills and decodes, under each registered scheduling
discipline (decode-first, prefill-first, chunked) -- and then by a
disaggregated fleet of the same size, where dedicated prefill replicas
process prompts and hand each request off to decode replicas after a
configurable KV-cache transfer latency.

The printed table compares TTFT (prompts queueing behind decode batches vs.
a dedicated prefill lane), TPOT (decode batches stalled by prompt preemption
vs. an undisturbed decode lane) and fleet throughput; the disaggregated rows
additionally report handoff counts and per-phase utilization -- the signal
for sizing the P:D ratio.

Usage::

    python examples/disaggregated_serving.py
    python examples/disaggregated_serving.py --split 1p3d --kv-transfer-ms 0.2
    python examples/disaggregated_serving.py --rate 8000 --tier ci
"""

from __future__ import annotations

import argparse

from repro.cluster import ClusterScenario, parse_disaggregated
from repro.config.scale import parse_tier

SCHEDULERS = ("decode-first", "prefill-first", "chunked")


def base_scenario(args: argparse.Namespace, **overrides) -> ClusterScenario:
    fields = dict(
        workload=args.workload,
        arrival="bursty",
        rate=args.rate,
        num_requests=args.num_requests,
        replicas=args.replicas,
        router=args.router,
        max_batch=args.max_batch,
        seed=args.seed,
        tier=parse_tier(args.tier),
    )
    fields.update(overrides)
    return ClusterScenario(**fields).validate()


def row(label: str, metrics) -> str:
    extra = (
        f"  {metrics.handoffs:>4} handoffs, util P {metrics.prefill_utilization:.0%}"
        f" / D {metrics.decode_utilization:.0%}"
        if metrics.is_disaggregated
        else ""
    )
    return (
        f"{label:>24} {metrics.ttft_percentile_ms(95):>12.3f} "
        f"{metrics.mean_tpot_ms:>9.4f} {metrics.latency_percentile_ms(99):>9.3f} "
        f"{metrics.tokens_per_s:>10.0f}{extra}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="llama3-70b")
    parser.add_argument("--split", default="2p2d",
                        help='disaggregated fleet split, e.g. "2p2d", "1p3d"')
    parser.add_argument("--kv-transfer-ms", type=float, default=0.05,
                        help="KV-cache transfer latency per handoff")
    parser.add_argument("--rate", type=float, default=4000.0)
    parser.add_argument("--num-requests", type=int, default=24)
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--router", default="round-robin")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tier", default="smoke", choices=["smoke", "ci", "full"])
    args = parser.parse_args()

    prefill, decode = parse_disaggregated(args.split)
    args.replicas = prefill + decode
    print(
        f"{args.replicas}-replica fleet, bursty @ {args.rate:g} req/s, "
        f"{args.num_requests} requests; disaggregated split {args.split} "
        f"with {args.kv_transfer_ms:g} ms KV transfer"
    )
    print(f"\n{'fleet':>24} {'ttft p95 ms':>12} {'tpot ms':>9} "
          f"{'p99 ms':>9} {'tok/s':>10}")

    for scheduler in SCHEDULERS:
        metrics = base_scenario(args, scheduler=scheduler).run()
        print(row(f"colocated/{scheduler}", metrics))

    metrics = base_scenario(
        args,
        disaggregated=args.split,
        kv_transfer_ms=args.kv_transfer_ms,
    ).run()
    print(row(f"disaggregated/{args.split}", metrics))

    print(
        "\nColocated fleets trade TTFT against TPOT through the scheduler; "
        "the disaggregated fleet buys both lanes at the price of dedicating "
        "replicas per phase (watch the per-phase utilization for sizing)."
    )


if __name__ == "__main__":
    main()
