#!/usr/bin/env python3
"""Scenario API walkthrough: replicate one Fig 7 point through the facade.

Fig 7(c) reports the cumulative speedup of dynmg+BMA over the unoptimized
configuration for Llama3-70B; this example reproduces its 4K-token cell via
:class:`repro.api.Scenario` / :class:`repro.api.Simulation` and checks that
the facade's cycle counts agree with the Fig 7 harness exactly (both route
through the same content-hashed sweep points).

It also shows the extension story: registering a brand-new workload with one
decorator makes it usable from the builder with no other edits.

Usage::

    python examples/scenario_api.py [--tier ci|smoke] [--seq-len 4096]
"""

from __future__ import annotations

import argparse

from repro.api import Scenario, Simulation
from repro.config import llama3_70b_logit, parse_tier
from repro.experiments.fig7 import run_fig7_cumulative
from repro.registry import register_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default="ci", choices=["ci", "smoke"])
    parser.add_argument("--seq-len", type=int, default=4096)
    args = parser.parse_args()
    tier = parse_tier(args.tier)

    # -- the Fig 7 point through the fluent builder (5 lines) ----------------------
    result = (
        Simulation.builder()
        .system("table5")
        .workload("llama3-70b", seq_len=args.seq_len)
        .policy("dynmg+BMA")
        .tier(tier)
        .run()
    )

    baseline = Scenario(
        workload="llama3-70b", policy="unopt", seq_len=args.seq_len, tier=tier
    ).run()
    speedup = baseline.cycles / result.cycles
    print(f"dynmg+BMA : {result.cycles} cycles")
    print(f"unopt     : {baseline.cycles} cycles")
    print(f"speedup   : {speedup:.3f}x")

    # -- cross-check against the Fig 7 harness (same points, same cycles) ----------
    fig7 = run_fig7_cumulative(
        tier=tier, models=("llama3-70b",), seq_lens=(args.seq_len,)
    )
    harness_speedup = fig7.speedups["llama3-70b"]["dynmg+BMA"][0]
    print(f"Fig 7(c)  : {harness_speedup:.3f}x (harness)")
    assert abs(speedup - harness_speedup) < 1e-12, "facade and harness disagree!"
    print("facade and Fig 7 harness agree exactly.")

    # -- extensibility: one decorator, immediately runnable ------------------------
    @register_workload("llama3-70b-short", description="Llama3-70B at a fixed 1K context")
    def llama3_70b_short(seq_len: int = 1024):
        return llama3_70b_logit(1024)

    short = Simulation.builder().workload("llama3-70b-short").tier("smoke").run()
    print(f"\nregistered 'llama3-70b-short' via decorator -> {short.cycles} cycles")


if __name__ == "__main__":
    main()
