#!/usr/bin/env python3
"""Cache-capacity study (a mini Fig 9): long contexts against several L2 sizes.

Shows how the unoptimized configuration degrades as the KV working set outgrows
the LLC, and how the LLaMCAT policy (dynmg+BMA) saturates at much smaller cache
sizes because throttling limits the in-flight working set.

Usage::

    python examples/cache_capacity_study.py --seq-len 32768 --tier ci
"""

from __future__ import annotations

import argparse

from repro import config
from repro.config import ScaleTier, scale_experiment
from repro.sim import run_policy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seq-len", type=int, default=32768)
    parser.add_argument("--tier", default="ci", choices=["ci", "paper_scaled", "full"])
    parser.add_argument("--l2-mib", type=int, nargs="+", default=[16, 32, 64])
    args = parser.parse_args()
    tier = ScaleTier[args.tier.upper()]

    policies = {
        "unoptimized": config.unoptimized(),
        "dyncta": config.dyncta(),
        "dynmg+BMA": config.bma(),
    }

    rows = []
    for l2_mib in args.l2_mib:
        system, workload = scale_experiment(
            config.table5_system_with_l2(l2_mib), config.llama3_70b_logit(args.seq_len), tier
        )
        for name, policy in policies.items():
            result = run_policy(system, workload, policy, label=name)
            rows.append((l2_mib, name, result))

    print(f"Llama3-70B Logit @ {args.seq_len} tokens (tier={args.tier})")
    print(f"{'L2 size':>8} {'policy':<12} {'cycles':>10} {'L2 hit':>8} {'DRAM acc':>9} {'BW GB/s':>8}")
    reference = next(r for size, name, r in rows if name == "unoptimized")
    for l2_mib, name, result in rows:
        print(
            f"{l2_mib:>6}MB {name:<12} {result.cycles:>10} {result.l2_hit_rate:>8.2%} "
            f"{result.dram_accesses:>9} {result.dram_bandwidth_gbps:>8.1f}"
        )
    print()
    print("speedups vs unoptimized at the smallest cache:")
    for l2_mib, name, result in rows:
        print(f"  {l2_mib:>3}MB {name:<12} {reference.cycles / result.cycles:>6.3f}x")


if __name__ == "__main__":
    main()
