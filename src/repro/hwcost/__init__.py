"""Hardware-cost model for the added arbitration structures (§6.1)."""

from repro.hwcost.area import AreaModel, AreaReport, estimate_area

__all__ = ["AreaModel", "AreaReport", "estimate_area"]
