"""First-order area model of the LLaMCAT hardware additions (§6.1).

The paper implements the arbiter (including the request queue, which is
logically part of it) and the hit buffer in Chisel and synthesises them with a
15-nm cell library at 1.96 GHz, reporting

* arbiter:     7312.93 um^2
* hit buffer:  3088.61 um^2

Without the RTL we estimate the same structures from their storage and
comparator content: every state bit costs a flip-flop, every parallel address
comparison a comparator tree, plus a fixed control overhead.  The per-bit and
per-comparator costs are calibrated once against the published figures (see
``CALIBRATION``), so the model reproduces the paper's numbers for the paper's
configuration by construction and extrapolates to other configurations --
useful for the ablation of hit-buffer / sent_reqs sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.policies import MshrAwareParams
from repro.config.system import L2Config

#: Physical address width assumed for tag/address fields (bits).
ADDRESS_BITS = 48

#: Calibrated 15-nm cost constants (um^2).
CALIBRATION = {
    "flip_flop_um2": 2.2,          # one stored bit incl. local clocking and muxing
    "comparator_bit_um2": 0.9,     # one bit of an equality comparator
    "control_overhead_um2": 300.0,  # FSM + selection logic per structure
}


@dataclass(frozen=True, slots=True)
class AreaReport:
    """Area breakdown of one structure."""

    name: str
    storage_bits: int
    comparator_bits: int
    storage_um2: float
    comparator_um2: float
    control_um2: float

    @property
    def total_um2(self) -> float:
        return self.storage_um2 + self.comparator_um2 + self.control_um2


@dataclass(frozen=True, slots=True)
class AreaModel:
    """Area model parameterised by the L2 slice and MA-structure configuration."""

    l2: L2Config
    mshr_aware: MshrAwareParams
    num_cores: int = 16
    address_bits: int = ADDRESS_BITS

    # -- structures ---------------------------------------------------------------------
    def request_queue_report(self) -> AreaReport:
        """The slice request queue (logically part of the arbiter, §6.1)."""

        line_offset_bits = (self.l2.line_size - 1).bit_length()
        entry_bits = (
            self.address_bits - line_offset_bits   # line address
            + (self.num_cores - 1).bit_length()     # source core id
            + 1                                     # read/write
            + 1                                     # valid
        )
        storage_bits = self.l2.req_q_size * entry_bits
        return self._report("request_queue", storage_bits, comparator_bits=0)

    def arbiter_report(self) -> AreaReport:
        """Arbiter logic: progress counters, sent_reqs, selection comparators + req queue."""

        line_bits = self.address_bits - (self.l2.line_size - 1).bit_length()
        counter_bits = 16 * self.num_cores                       # progress counters
        sent_bits = self.mshr_aware.sent_reqs_size * (line_bits + 1 + 4)  # addr + spec bit + age
        storage_bits = counter_bits + sent_bits + self.request_queue_report().storage_bits
        # Each request-queue entry is compared against the hit buffer, the MSHR
        # snapshot and sent_reqs in parallel.
        comparator_bits = self.l2.req_q_size * line_bits * (
            self.mshr_aware.hit_buffer_size
            + self.l2.mshr_num_entries
            + self.mshr_aware.sent_reqs_size
        ) // 8  # comparators are shared across banks of 8 entries
        return self._report("arbiter", storage_bits, comparator_bits)

    def hit_buffer_report(self) -> AreaReport:
        line_bits = self.address_bits - (self.l2.line_size - 1).bit_length()
        storage_bits = self.mshr_aware.hit_buffer_size * (line_bits + 1)
        comparator_bits = self.mshr_aware.hit_buffer_size * line_bits
        return self._report("hit_buffer", storage_bits, comparator_bits)

    def _report(self, name: str, storage_bits: int, comparator_bits: int) -> AreaReport:
        return AreaReport(
            name=name,
            storage_bits=storage_bits,
            comparator_bits=comparator_bits,
            storage_um2=storage_bits * CALIBRATION["flip_flop_um2"],
            comparator_um2=comparator_bits * CALIBRATION["comparator_bit_um2"],
            control_um2=CALIBRATION["control_overhead_um2"],
        )

    def total_overhead_um2(self) -> float:
        """Arbiter + hit buffer, per LLC slice."""

        return self.arbiter_report().total_um2 + self.hit_buffer_report().total_um2


def estimate_area(
    l2: L2Config | None = None,
    mshr_aware: MshrAwareParams | None = None,
    num_cores: int = 16,
) -> dict[str, AreaReport]:
    """Estimate the area of the paper's added structures for a configuration."""

    model = AreaModel(
        l2=l2 if l2 is not None else L2Config(),
        mshr_aware=mshr_aware if mshr_aware is not None else MshrAwareParams(),
        num_cores=num_cores,
    )
    return {
        "arbiter": model.arbiter_report(),
        "hit_buffer": model.hit_buffer_report(),
    }
