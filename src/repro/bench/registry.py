"""The BENCHES registry: every performance benchmark, lookup-by-name.

Benchmarks used to be thirteen ad-hoc pytest files under ``benchmarks/`` that
only pytest could drive.  Registering them here -- through the same
:class:`repro.registry.Registry` machinery as workloads, policies and
schedulers -- makes the suite a first-class component set: ``llamcat list
benches`` enumerates it, ``llamcat bench`` runs any subset with warmup/repeat
control, and the REG001 analysis rule rejects a bench module that its
registry's bootstrap would never import.

A registered bench is a callable ``(tier: ScaleTier) -> BenchOutput``: it runs
one experiment at the requested scale tier and returns its configuration, the
deterministic headline values it produced (each a named, unit-tagged metric)
and optionally a rendered detail block plus the raw result object for test
assertions.  Wall-clock timing is the *runner's* job (:mod:`repro.bench
.runner`), never the bench's, so bench functions stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.registry import Registry

#: Registered benchmarks: ``name -> (tier) -> BenchOutput``.
BENCHES: Registry = Registry("bench", bootstrap=("repro.bench.suite",))


def register_bench(name: str, **kwargs):
    """Register a ``(tier) -> BenchOutput`` bench function under ``name``."""

    return BENCHES.register(name, **kwargs)


def resolve_bench(name: str) -> Callable:
    """The bench function registered under ``name`` (ConfigError if unknown)."""

    return BENCHES.get(name)


def bench_names() -> list[str]:
    """Sorted names of every registered bench."""

    return BENCHES.names()


@dataclass(frozen=True, slots=True)
class BenchValue:
    """One deterministic headline metric of one bench execution."""

    metric: str
    value: float
    unit: str


@dataclass(frozen=True, slots=True)
class BenchOutput:
    """What one bench execution produced (everything but wall-clock time).

    ``values`` are the deterministic numbers that go into the trend file;
    ``detail`` is an optional pre-rendered text block for ``llamcat report``;
    ``raw`` carries the underlying result object(s) so the pytest wrappers in
    ``benchmarks/`` can keep their domain assertions -- it is never
    serialized.
    """

    bench: str
    config: dict
    values: tuple[BenchValue, ...]
    detail: str = ""
    raw: object | None = field(default=None, compare=False)

    def value_of(self, metric: str) -> float:
        for entry in self.values:
            if entry.metric == metric:
                return entry.value
        raise KeyError(
            f"bench {self.bench!r} reported no metric {metric!r} "
            f"(has {[v.metric for v in self.values]})"
        )
