"""The built-in benchmark suite: every paper artifact as a registered bench.

Each bench regenerates one table or figure of the paper (or one serving-stack
scaling scenario) at the requested :class:`~repro.config.scale.ScaleTier` and
reports its deterministic headline numbers as unit-tagged
:class:`~repro.bench.registry.BenchValue` entries.  The pytest wrappers in
``benchmarks/`` drive exactly these functions (through pytest-benchmark) and
assert on the ``raw`` result objects; ``llamcat bench`` drives them directly
and appends the values to the root-level ``BENCH_<name>.json`` trend files.

Unit conventions (see :mod:`repro.bench.trend`): ``tokens/s`` and ``x``
(speedups) gate as higher-is-better, ``ms``/``cycles``/``um^2`` as
lower-is-better, ``count`` is informational.
"""

from __future__ import annotations

from repro.bench.registry import BenchOutput, BenchValue, register_bench
from repro.cluster import ClusterScenario
from repro.config.scale import ScaleTier
from repro.serve import ServeScenario


def bench_models(tier: ScaleTier) -> tuple[str, ...]:
    """Models swept by the Fig 7 / Fig 9 benches.

    The SMOKE tier restricts the sweep to Llama3-70B so a full regeneration of
    every figure finishes in minutes; every other tier runs both paper models.
    """

    if tier is ScaleTier.SMOKE:
        return ("llama3-70b",)
    return ("llama3-70b", "llama3-405b")


def _tiered(config: dict, tier: ScaleTier) -> dict:
    return {**config, "tier": tier.name}


# -- serving stack -----------------------------------------------------------------------
@register_bench("serve_throughput")
def serve_throughput(tier: ScaleTier) -> BenchOutput:
    """Poisson request stream under continuous batching on one replica."""

    scenario = ServeScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=2000.0,
        num_requests=32,
        max_batch=4,
        seed=0,
        tier=tier,
    ).validate()
    metrics = scenario.run()
    return BenchOutput(
        bench="serve_throughput",
        config=_tiered(
            {
                "workload": scenario.workload,
                "arrival": scenario.arrival,
                "rate": scenario.rate,
                "num_requests": scenario.num_requests,
                "max_batch": scenario.max_batch,
                "seed": scenario.seed,
            },
            tier,
        ),
        values=(
            BenchValue("tokens_per_s", metrics.tokens_per_s, "tokens/s"),
            BenchValue("latency_p50_ms", metrics.latency_percentile_ms(50), "ms"),
            BenchValue("latency_p99_ms", metrics.latency_percentile_ms(99), "ms"),
            BenchValue("step_simulations", metrics.meta["step_simulations"], "count"),
        ),
        detail=metrics.summary(),
        raw=metrics,
    )


@register_bench("cluster_throughput")
def cluster_throughput(tier: ScaleTier) -> BenchOutput:
    """One request stream over a 4-replica fleet with a shared step-cost table."""

    scenario = ClusterScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=4000.0,
        num_requests=32,
        replicas=4,
        router="round-robin",
        max_batch=4,
        seed=0,
        tier=tier,
    ).validate()
    metrics = scenario.run()
    return BenchOutput(
        bench="cluster_throughput",
        config=_tiered(
            {
                "workload": scenario.workload,
                "arrival": scenario.arrival,
                "rate": scenario.rate,
                "num_requests": scenario.num_requests,
                "replicas": scenario.replicas,
                "router": scenario.router,
                "max_batch": scenario.max_batch,
                "seed": scenario.seed,
            },
            tier,
        ),
        values=(
            BenchValue("tokens_per_s", metrics.tokens_per_s, "tokens/s"),
            BenchValue("latency_p50_ms", metrics.latency_percentile_ms(50), "ms"),
            BenchValue("latency_p99_ms", metrics.latency_percentile_ms(99), "ms"),
            BenchValue("step_simulations", metrics.meta["step_simulations"], "count"),
        ),
        detail=metrics.summary(),
        raw=metrics,
    )


@register_bench("prefill_schedulers")
def prefill_schedulers(tier: ScaleTier) -> BenchOutput:
    """TTFT/TPOT trade-off across decode-first, prefill-first and chunked."""

    schedulers = ("decode-first", "prefill-first", "chunked")
    results = {}
    for name in schedulers:
        results[name] = ServeScenario(
            workload="llama3-70b",
            arrival="bursty",
            rate=4000.0,
            num_requests=24,
            max_batch=4,
            seed=0,
            scheduler=name,
            prefill_chunk=256,
            tier=tier,
        ).validate().run()
    values = []
    for name, metrics in results.items():
        key = name.replace("-", "_")
        values.append(
            BenchValue(f"{key}_ttft_p95_ms", metrics.ttft_percentile_ms(95), "ms")
        )
        values.append(BenchValue(f"{key}_tpot_ms", metrics.mean_tpot_ms, "ms"))
        values.append(
            BenchValue(f"{key}_tokens_per_s", metrics.tokens_per_s, "tokens/s")
        )
    detail = "\n".join(
        f"{name:>15}: ttft_p95 {m.ttft_percentile_ms(95):.3f} ms, "
        f"tpot {m.mean_tpot_ms:.4f} ms, {m.tokens_per_s:.0f} tok/s"
        for name, m in results.items()
    )
    return BenchOutput(
        bench="prefill_schedulers",
        config=_tiered(
            {
                "workload": "llama3-70b",
                "arrival": "bursty",
                "rate": 4000.0,
                "num_requests": 24,
                "max_batch": 4,
                "seed": 0,
                "schedulers": list(schedulers),
                "prefill_chunk": 256,
            },
            tier,
        ),
        values=tuple(values),
        detail=detail,
        raw=results,
    )


@register_bench("kv_preemption")
def kv_preemption(tier: ScaleTier) -> BenchOutput:
    """Recompute vs swap preemption under a deliberately tight KV budget."""

    policies = ("recompute", "swap")
    results = {}
    for name in policies:
        results[name] = ServeScenario(
            workload="llama3-70b",
            arrival="poisson",
            rate=4000.0,
            num_requests=8,
            max_batch=4,
            seed=0,
            kv_budget=1024,
            kv_block=32,
            preemption=name,
            tier=tier,
        ).validate().run()
    values = []
    for name, metrics in results.items():
        values.append(
            BenchValue(f"{name}_ttft_p95_ms", metrics.ttft_percentile_ms(95), "ms")
        )
        values.append(
            BenchValue(f"{name}_preemptions", metrics.meta["preemptions"], "count")
        )
        values.append(
            BenchValue(f"{name}_tokens_per_s", metrics.tokens_per_s, "tokens/s")
        )
    detail = "\n".join(
        f"{name:>10}: ttft_p95 {m.ttft_percentile_ms(95):.3f} ms, "
        f"{m.meta['preemptions']} preemptions, "
        f"KV peak {m.meta['kv_peak_utilization']:.0%}, "
        f"mem-bound {m.meta['kv_memory_bound_frac']:.1%}, "
        f"{m.tokens_per_s:.0f} tok/s"
        for name, m in results.items()
    )
    return BenchOutput(
        bench="kv_preemption",
        config=_tiered(
            {
                "workload": "llama3-70b",
                "arrival": "poisson",
                "rate": 4000.0,
                "num_requests": 8,
                "max_batch": 4,
                "seed": 0,
                "kv_budget": 1024,
                "kv_block": 32,
                "preemptions": list(policies),
            },
            tier,
        ),
        values=tuple(values),
        detail=detail,
        raw=results,
    )


# -- figures -----------------------------------------------------------------------------
def _fig7_output(bench: str, result, policies: tuple[str, ...]) -> BenchOutput:
    values = [
        BenchValue(f"{model}_{policy}_geomean", result.geomean(model, policy), "x")
        for model in result.speedups
        for policy in policies
        if policy in result.speedups[model]
    ]
    return BenchOutput(
        bench=bench,
        config={
            "tier": result.tier.name,
            "models": sorted(result.speedups),
            "seq_lens": list(result.seq_lens),
        },
        values=tuple(values),
        detail=result.render(),
        raw=result,
    )


@register_bench("fig7_throttling")
def fig7_throttling(tier: ScaleTier) -> BenchOutput:
    """Fig 7 (a)&(d): throttling speedups (dyncta, lcs, dynmg) over unoptimized."""

    from repro.experiments.fig7 import run_fig7_throttling

    result = run_fig7_throttling(tier=tier, models=bench_models(tier))
    return _fig7_output("fig7_throttling", result, ("dyncta", "lcs", "dynmg"))


@register_bench("fig7_arbitration")
def fig7_arbitration(tier: ScaleTier) -> BenchOutput:
    """Fig 7 (b)&(e): arbitration speedups (cobrra, B, MA, BMA) over dynmg."""

    from repro.experiments.fig7 import run_fig7_arbitration

    result = run_fig7_arbitration(tier=tier, models=bench_models(tier))
    return _fig7_output("fig7_arbitration", result, ("cobrra", "B", "MA", "BMA"))


@register_bench("fig7_cumulative")
def fig7_cumulative(tier: ScaleTier) -> BenchOutput:
    """Fig 7 (c)&(f): cumulative speedups up to dynmg+BMA over unoptimized."""

    from repro.experiments.fig7 import run_fig7_cumulative

    result = run_fig7_cumulative(tier=tier, models=bench_models(tier))
    return _fig7_output(
        "fig7_cumulative", result, ("dynmg", "dynmg+B", "dynmg+MA", "dynmg+BMA")
    )


@register_bench("fig8_mechanism")
def fig8_mechanism(tier: ScaleTier) -> BenchOutput:
    """Fig 8: MSHR/L2/DRAM statistics across the policy progression."""

    from repro.experiments.fig8 import run_fig8

    result = run_fig8(tier=tier)
    by_policy = {row["policy"]: row for row in result.rows}
    values = [
        BenchValue(
            f"{policy.replace('+', '_')}_mshr_hit_rate",
            by_policy[policy]["mshr_hit_rate"],
            "",
        )
        for policy in ("unoptimized", "dynmg", "dynmg+BMA")
        if policy in by_policy
    ]
    if "dynmg+BMA" in by_policy:
        values.append(
            BenchValue(
                "dynmg_BMA_dram_accesses",
                by_policy["dynmg+BMA"]["dram_accesses"],
                "count",
            )
        )
    return BenchOutput(
        bench="fig8_mechanism",
        config={"tier": result.tier.name, "seq_len": result.seq_len},
        values=tuple(values),
        detail=result.render(),
        raw=result,
    )


@register_bench("fig9_cache_sweep")
def fig9_cache_sweep(tier: ScaleTier) -> BenchOutput:
    """Fig 9: 32K sequences against 16/32/64 MB L2 configurations."""

    from repro.experiments.fig9 import run_fig9

    result = run_fig9(tier=tier, models=bench_models(tier))
    values = []
    for model, series in result.speedups.items():
        for policy in ("unoptimized", "dynmg+BMA"):
            if policy in series:
                values.append(
                    BenchValue(
                        f"{model}_{policy.replace('+', '_')}_largest_l2",
                        series[policy][-1],
                        "x",
                    )
                )
    return BenchOutput(
        bench="fig9_cache_sweep",
        config={
            "tier": result.tier.name,
            "seq_len": result.seq_len,
            "l2_sizes_mib": list(result.l2_sizes_mib),
            "models": sorted(result.speedups),
        },
        values=tuple(values),
        detail=result.render(),
        raw=result,
    )


# -- tables and hardware cost ------------------------------------------------------------
@register_bench("table2_throttle_sweep")
def table2_throttle_sweep(tier: ScaleTier) -> BenchOutput:
    """Table 2: dynmg global sampling-period sweep around the paper's 2000."""

    from repro.experiments.reporting import format_grid
    from repro.experiments.tables import run_table2_sampling_sweep

    periods = (1000, 2000, 4000)
    rows = run_table2_sampling_sweep(tier=tier, sampling_periods=periods)
    values = tuple(
        BenchValue(f"speedup_at_{row['sampling_period']}", row["speedup"], "x")
        for row in rows
    )
    return BenchOutput(
        bench="table2_throttle_sweep",
        config={"tier": tier.name, "sampling_periods": list(periods)},
        values=values,
        detail=format_grid("Table 2 -- dynmg sampling-period sweep", rows),
        raw=rows,
    )


@register_bench("table3_contention_sweep")
def table3_contention_sweep(tier: ScaleTier) -> BenchOutput:
    """Table 3: contention-classification thresholds vs looser/tighter settings."""

    from repro.experiments.reporting import format_grid
    from repro.experiments.tables import run_table3_contention_sweep

    rows = run_table3_contention_sweep(tier=tier)
    values = tuple(
        BenchValue(
            f"speedup_{row['thresholds'].split(' ')[0]}", row["speedup"], "x"
        )
        for row in rows
    )
    return BenchOutput(
        bench="table3_contention_sweep",
        config={"tier": tier.name},
        values=values,
        detail=format_grid("Table 3 -- contention-threshold sweep", rows),
        raw=rows,
    )


@register_bench("table4_incore_sweep")
def table4_incore_sweep(tier: ScaleTier) -> BenchOutput:
    """Table 4: in-core C_mem threshold sweep around the paper's 250/180."""

    from repro.experiments.reporting import format_grid
    from repro.experiments.tables import run_table4_incore_sweep

    rows = run_table4_incore_sweep(tier=tier)
    values = tuple(
        BenchValue(
            f"speedup_cmem_{row['c_mem_upper']}_{row['c_mem_lower']}",
            row["speedup"],
            "x",
        )
        for row in rows
    )
    return BenchOutput(
        bench="table4_incore_sweep",
        config={"tier": tier.name},
        values=values,
        detail=format_grid("Table 4 -- in-core C_mem threshold sweep", rows),
        raw=rows,
    )


@register_bench("table5_config")
def table5_config(tier: ScaleTier) -> BenchOutput:
    """Table 5: the simulated system preset plus the analytical model on it.

    Tier-independent: the analytical model is closed-form over the full-size
    workloads, so this bench costs milliseconds at every tier.
    """

    from repro.config.presets import FIG7_SEQ_LENS, llama3_70b_logit, table5_system
    from repro.dataflow.analytical import analyze

    system = table5_system()
    estimates = {
        seq: analyze(llama3_70b_logit(seq), system) for seq in FIG7_SEQ_LENS
    }
    values = tuple(
        BenchValue(f"stall_free_cycles_{seq}", est.stall_free_cycles, "cycles")
        for seq, est in estimates.items()
    )
    detail = "\n".join(
        f"analytical {seq:>6}: {est.stall_free_cycles} stall-free cycles, "
        f"bottleneck={est.bottleneck}"
        for seq, est in estimates.items()
    )
    return BenchOutput(
        bench="table5_config",
        config={"tier": tier.name, "seq_lens": list(FIG7_SEQ_LENS)},
        values=values,
        detail=detail,
        raw=estimates,
    )


@register_bench("hwcost_area")
def hwcost_area(tier: ScaleTier) -> BenchOutput:
    """Section 6.1: area of the added arbitration hardware (tier-independent)."""

    from repro.experiments.hwcost_exp import run_hwcost
    from repro.experiments.reporting import format_grid

    rows = run_hwcost()
    values = []
    for row in rows:
        values.append(BenchValue(f"{row['structure']}_um2", row["model_um2"], "um^2"))
        values.append(
            BenchValue(f"{row['structure']}_paper_ratio", row["ratio"], "")
        )
    return BenchOutput(
        bench="hwcost_area",
        config={"tier": tier.name, "num_cores": 16},
        values=tuple(values),
        detail=format_grid("Section 6.1 -- area estimates (15 nm)", rows),
        raw=rows,
    )
