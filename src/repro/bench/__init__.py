"""Continuous benchmarking: registered benches, trend files, reports.

The package turns performance tracking into a first-class subsystem:

* :mod:`repro.bench.registry` -- the :data:`BENCHES` registry; every bench is
  a named ``(tier) -> BenchOutput`` component, discoverable via ``llamcat
  list benches``.
* :mod:`repro.bench.suite` -- the built-in benches (one per paper artifact
  plus the serving-stack scenarios), lazily bootstrapped.
* :mod:`repro.bench.runner` -- warmup/repeat wall-clock timing around a bench.
* :mod:`repro.bench.trend` -- append-only ``BENCH_<name>.json`` history files
  at the repo root, schema validation, and baseline comparison with a noise
  threshold (the ``llamcat bench --compare`` regression gate).
* :mod:`repro.bench.report` -- self-contained markdown/HTML run reports from
  trend files and result stores (``llamcat report``).
"""

from repro.bench.registry import (
    BENCHES,
    BenchOutput,
    BenchValue,
    bench_names,
    register_bench,
    resolve_bench,
)
from repro.bench.runner import BenchRun, run_bench, run_benches
from repro.bench.trend import (
    TrendComparison,
    TrendDelta,
    TrendRecord,
    append_trend,
    compare_trends,
    load_trend,
    load_trends,
    trend_path,
    validate_trends,
    write_trend,
)

__all__ = [
    "BENCHES",
    "BenchOutput",
    "BenchRun",
    "BenchValue",
    "TrendComparison",
    "TrendDelta",
    "TrendRecord",
    "append_trend",
    "bench_names",
    "compare_trends",
    "load_trend",
    "load_trends",
    "register_bench",
    "resolve_bench",
    "run_bench",
    "run_benches",
    "trend_path",
    "validate_trends",
    "write_trend",
]
