"""Benchmark trend files: append-only performance history at the repo root.

Each registered bench owns one committed ``BENCH_<name>.json`` file holding a
JSON list of :class:`TrendRecord` entries -- one per metric per ``llamcat
bench`` run -- so speedups (and regressions) are tracked PR-over-PR as
reviewable diffs instead of anecdotes.  The record schema is deliberately tiny
and stable::

    {"bench": ..., "config": {...}, "metric": ..., "value": ..., "unit": ...,
     "wall_s": ...}

``value`` is the deterministic simulation output (seeded runs reproduce it
bit-for-bit across machines), ``wall_s`` the measured wall-clock seconds of
one bench execution (machine-dependent, reported but never gated by default).

:func:`load_trend` also accepts the legacy PR-6 shape (a single object
``{bench, config, tokens_per_s, wall_s}`` as written by the old
``benchmarks/conftest.write_trend``) and migrates it on read, so pre-existing
``BENCH_serve.json`` / ``BENCH_cluster.json`` histories survive the move to
the new schema.

:func:`compare_trends` computes per-(bench, metric) deltas between two trend
states with a noise threshold; regression direction is inferred from the
metric's unit (``tokens/s`` up is good, ``ms`` up is bad, unknown units are
informational only).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigError
from repro.common.mathutils import safe_div

#: Trend files live at the repo root, one per bench: ``BENCH_<name>.json``.
TREND_PREFIX = "BENCH_"

#: Units where a larger value is better (throughput, speedups).
HIGHER_IS_BETTER_UNITS = frozenset({"tokens/s", "requests/s", "x"})

#: Units where a smaller value is better (latencies, cycle counts, area).
LOWER_IS_BETTER_UNITS = frozenset({"s", "ms", "us", "cycles", "um^2"})

#: Keys every trend record must carry (the stable on-disk schema).
RECORD_KEYS = ("bench", "config", "metric", "value", "unit", "wall_s")


@dataclass(frozen=True, slots=True)
class TrendRecord:
    """One metric of one bench run."""

    bench: str
    config: dict
    metric: str
    value: float
    unit: str
    wall_s: float

    def validate(self) -> "TrendRecord":
        if not self.bench:
            raise ConfigError("trend record needs a bench name")
        if not self.metric:
            raise ConfigError("trend record needs a metric name")
        if not isinstance(self.config, dict):
            raise ConfigError(
                f"trend config must be a mapping, got {type(self.config).__name__}"
            )
        if not isinstance(self.value, (int, float)) or isinstance(self.value, bool):
            raise ConfigError(f"trend value must be numeric, got {self.value!r}")
        if self.wall_s < 0:
            raise ConfigError(f"trend wall_s must be >= 0, got {self.wall_s}")
        return self

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "config": dict(self.config),
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrendRecord":
        missing = [key for key in RECORD_KEYS if key not in data]
        if missing:
            raise ConfigError(f"trend record is missing keys {missing}: {data}")
        return cls(
            bench=data["bench"],
            config=dict(data["config"]),
            metric=data["metric"],
            value=data["value"],
            unit=data["unit"],
            wall_s=data["wall_s"],
        ).validate()


def trend_path(root: str | Path, bench: str) -> Path:
    """The trend file of ``bench`` under ``root``."""

    return Path(root) / f"{TREND_PREFIX}{bench}.json"


def _migrate_legacy(payload: dict) -> list[TrendRecord]:
    """The PR-6 single-object shape ``{bench, config, tokens_per_s, wall_s}``."""

    return [
        TrendRecord(
            bench=payload["bench"],
            config=dict(payload.get("config", {})),
            metric="tokens_per_s",
            value=payload["tokens_per_s"],
            unit="tokens/s",
            wall_s=payload.get("wall_s", 0.0),
        ).validate()
    ]


def load_trend(path: str | Path) -> list[TrendRecord]:
    """Every record in one trend file, oldest first (empty if absent).

    Accepts both the current list-of-records shape and the legacy PR-6
    single-object shape, which is migrated on read.
    """

    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"trend file {path} is not valid JSON: {exc}") from exc
    if isinstance(payload, dict):
        if "tokens_per_s" not in payload:
            raise ConfigError(
                f"trend file {path} is neither a record list nor the legacy "
                "{bench, config, tokens_per_s, wall_s} shape"
            )
        return _migrate_legacy(payload)
    if not isinstance(payload, list):
        raise ConfigError(f"trend file {path} must hold a JSON list")
    return [TrendRecord.from_dict(entry) for entry in payload]


def write_trend(path: str | Path, records: list[TrendRecord]) -> Path:
    """Write ``records`` as the complete content of one trend file."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [record.to_dict() for record in records]
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def append_trend(path: str | Path, records: list[TrendRecord]) -> Path:
    """Append ``records`` to a trend file (migrating a legacy file in place)."""

    existing = load_trend(path)
    return write_trend(path, existing + [r.validate() for r in records])


def discover_trends(root: str | Path) -> dict[str, Path]:
    """``bench name -> trend file`` for every ``BENCH_*.json`` under ``root``.

    ``root`` may also point directly at one trend file.
    """

    root = Path(root)
    if root.is_file():
        name = root.name
        if not (name.startswith(TREND_PREFIX) and name.endswith(".json")):
            raise ConfigError(
                f"{root} is not a BENCH_<name>.json trend file"
            )
        return {name[len(TREND_PREFIX):-len(".json")]: root}
    return {
        path.name[len(TREND_PREFIX):-len(".json")]: path
        for path in sorted(root.glob(f"{TREND_PREFIX}*.json"))
    }


def load_trends(root: str | Path) -> dict[str, list[TrendRecord]]:
    """Every trend file under ``root``, loaded: ``bench -> records``."""

    return {bench: load_trend(path) for bench, path in discover_trends(root).items()}


def metric_direction(metric: str, unit: str) -> int:
    """+1 when larger is better, -1 when smaller is better, 0 when unknown.

    Wall-clock metrics are always smaller-is-better; everything else goes by
    unit.  Unknown units are compared informationally but never gate.
    """

    if metric == "wall_s" or unit in LOWER_IS_BETTER_UNITS:
        return -1
    if unit in HIGHER_IS_BETTER_UNITS:
        return +1
    return 0


@dataclass(frozen=True, slots=True)
class TrendDelta:
    """One (bench, metric) comparison between a baseline and a current run."""

    bench: str
    metric: str
    unit: str
    baseline: float | None
    current: float | None
    #: "ok" | "improved" | "regressed" | "changed" | "new" | "gone" |
    #: "config-changed"
    status: str
    delta_pct: float | None = None
    config_changed: bool = False

    @property
    def gating(self) -> bool:
        return self.status == "regressed"

    def render(self) -> str:
        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value:g}"

        delta = (
            f"{self.delta_pct:+.1f}%" if self.delta_pct is not None else "-"
        )
        note = " (config changed; not gated)" if self.config_changed else ""
        return (
            f"{self.bench:>24}  {self.metric:<24} {fmt(self.baseline):>12} -> "
            f"{fmt(self.current):>12} {self.unit:<9} {delta:>8}  {self.status}{note}"
        )


def _latest_per_metric(records: list[TrendRecord]) -> dict[str, TrendRecord]:
    """The newest record per metric name (trend files append oldest-first)."""

    latest: dict[str, TrendRecord] = {}
    for record in records:
        latest[record.metric] = record
    return latest


def compare_records(
    bench: str,
    baseline: list[TrendRecord],
    current: list[TrendRecord],
    threshold_pct: float,
    wall_threshold_pct: float | None = None,
) -> list[TrendDelta]:
    """Per-metric deltas of one bench's baseline vs current records.

    A metric gates (``status == "regressed"``) when it moves against its
    direction by more than ``threshold_pct`` percent.  ``wall_s`` is held to
    ``wall_threshold_pct`` instead and never gates when that is None (wall
    clock is machine noise unless the caller opts in).  Metrics whose configs
    differ between the two sides are reported but never gate.
    """

    base_latest = _latest_per_metric(baseline)
    cur_latest = _latest_per_metric(current)
    deltas: list[TrendDelta] = []
    # wall_s rides along on every record rather than being a metric of its
    # own; compare it once per bench from the newest record of each side.
    if baseline and current:
        base_wall, cur_wall = baseline[-1].wall_s, current[-1].wall_s
        wall_delta = safe_div(cur_wall - base_wall, abs(base_wall)) * 100.0
        status = "ok"
        if wall_threshold_pct is not None and wall_delta > wall_threshold_pct:
            status = "regressed"
        deltas.append(
            TrendDelta(
                bench, "wall_s", "s", base_wall, cur_wall, status,
                delta_pct=wall_delta,
            )
        )
    for metric in sorted(base_latest.keys() | cur_latest.keys()):
        base = base_latest.get(metric)
        cur = cur_latest.get(metric)
        if base is None:
            assert cur is not None
            deltas.append(
                TrendDelta(bench, metric, cur.unit, None, cur.value, "new")
            )
            continue
        if cur is None:
            deltas.append(
                TrendDelta(bench, metric, base.unit, base.value, None, "gone")
            )
            continue
        config_changed = base.config != cur.config
        delta_pct = safe_div(cur.value - base.value, abs(base.value)) * 100.0
        direction = metric_direction(metric, cur.unit)
        limit = wall_threshold_pct if metric == "wall_s" else threshold_pct
        status = "ok"
        if abs(delta_pct) > (limit if limit is not None else float("inf")):
            if direction == 0:
                status = "changed"  # unknown direction: report, never gate
            else:
                moved_against = (direction > 0 and delta_pct < 0) or (
                    direction < 0 and delta_pct > 0
                )
                status = "regressed" if moved_against else "improved"
        if config_changed:
            status = "config-changed"
        deltas.append(
            TrendDelta(
                bench,
                metric,
                cur.unit,
                base.value,
                cur.value,
                status,
                delta_pct=delta_pct,
                config_changed=config_changed,
            )
        )
    return deltas


@dataclass(frozen=True, slots=True)
class TrendComparison:
    """Every delta of a baseline-vs-current trend comparison."""

    deltas: tuple[TrendDelta, ...] = ()
    #: True when baseline and current resolved to the same files, in which
    #: case "baseline" means each file's previous record.
    self_compare: bool = False

    @property
    def regressions(self) -> list[TrendDelta]:
        return [d for d in self.deltas if d.gating]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        if not self.deltas:
            return "trend compare: no overlapping benches"
        lines = [
            f"{'bench':>24}  {'metric':<24} {'baseline':>12}    "
            f"{'current':>12} {'unit':<9} {'delta':>8}  status"
        ]
        lines += [delta.render() for delta in self.deltas]
        regressed = self.regressions
        if regressed:
            lines.append(
                f"REGRESSED: {len(regressed)} metric(s) moved against their "
                "direction beyond the threshold"
            )
        else:
            lines.append(f"OK: {len(self.deltas)} metric(s) within threshold")
        return "\n".join(lines)


def compare_trends(
    current_root: str | Path,
    baseline_root: str | Path,
    threshold_pct: float = 10.0,
    wall_threshold_pct: float | None = None,
    benches: tuple[str, ...] | None = None,
) -> TrendComparison:
    """Compare the trend files under two roots (or two explicit files).

    When both roots resolve to the same files, each file's newest record is
    compared against its own previous record -- "did this run regress the one
    before it" -- which is what a bare ``llamcat bench --compare .`` after two
    local runs means.
    """

    current_files = discover_trends(current_root)
    baseline_files = discover_trends(baseline_root)
    if benches is not None:
        current_files = {b: p for b, p in current_files.items() if b in benches}
        baseline_files = {b: p for b, p in baseline_files.items() if b in benches}
    deltas: list[TrendDelta] = []
    self_compare = False
    for bench in sorted(current_files.keys() & baseline_files.keys()):
        current = load_trend(current_files[bench])
        if current_files[bench].resolve() == baseline_files[bench].resolve():
            # Same file on both sides: current = newest records, baseline =
            # the history before them (previous run of each metric).
            self_compare = True
            newest = {id(r) for r in _latest_per_metric(current).values()}
            current_side = [r for r in current if id(r) in newest]
            baseline_side = [r for r in current if id(r) not in newest]
            if not baseline_side:
                continue
            deltas.extend(
                compare_records(
                    bench, baseline_side, current_side,
                    threshold_pct, wall_threshold_pct,
                )
            )
        else:
            baseline = load_trend(baseline_files[bench])
            deltas.extend(
                compare_records(
                    bench, baseline, current, threshold_pct, wall_threshold_pct
                )
            )
    return TrendComparison(deltas=tuple(deltas), self_compare=self_compare)


@dataclass(frozen=True, slots=True)
class TrendValidation:
    """Outcome of schema-checking the trend files under one root."""

    files: int
    records: int
    errors: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if self.errors:
            return "\n".join(self.errors) + f"\n{len(self.errors)} invalid trend file(s)"
        return f"trend schema OK: {self.records} record(s) in {self.files} file(s)"


def validate_trends(root: str | Path) -> TrendValidation:
    """Schema-check every ``BENCH_*.json`` under ``root``."""

    files = discover_trends(root)
    errors: list[str] = []
    records = 0
    for bench, path in sorted(files.items()):
        try:
            loaded = load_trend(path)
        except ConfigError as exc:
            errors.append(str(exc))
            continue
        records += len(loaded)
        for record in loaded:
            if record.bench != bench:
                errors.append(
                    f"{path}: record bench {record.bench!r} does not match "
                    f"file name (expected {bench!r})"
                )
    return TrendValidation(files=len(files), records=records, errors=tuple(errors))
