"""Self-contained run reports from trend files and result stores.

``llamcat report`` turns the two on-disk performance artifacts -- the
root-level ``BENCH_*.json`` trend files and a sweep/serve
:class:`~repro.sweep.store.ResultStore` -- into one human-readable document:
a benchmark-trend summary (latest value, previous value, delta per metric),
per-record headline tables, per-phase latency breakdowns for request-level
results, and :func:`repro.obs.timeline.render_timeline` sparklines for every
stored telemetry series.

Everything here **returns strings** (markdown or a dependency-free HTML page);
printing belongs to the CLI layer (the CLI001 rule enforces that split).  The
HTML output inlines its own CSS so the CI artifact opens anywhere.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.trend import TrendRecord, load_trends
from repro.common.mathutils import safe_div
from repro.obs.timeline import render_timeline
from repro.sweep.store import ResultStore


@dataclass(slots=True)
class ReportSection:
    """One section: a heading plus a table and/or preformatted text blocks."""

    heading: str
    headers: tuple[str, ...] = ()
    rows: list[tuple[str, ...]] = field(default_factory=list)
    blocks: list[str] = field(default_factory=list)


@dataclass(slots=True)
class Report:
    """A full report, renderable as markdown or a standalone HTML page."""

    title: str
    sections: list[ReportSection] = field(default_factory=list)

    # -- markdown ----------------------------------------------------------------------
    def to_markdown(self) -> str:
        out = [f"# {self.title}", ""]
        for section in self.sections:
            out.append(f"## {section.heading}")
            out.append("")
            if section.headers:
                out.append("| " + " | ".join(section.headers) + " |")
                out.append("|" + "|".join(" --- " for _ in section.headers) + "|")
                for row in section.rows:
                    out.append("| " + " | ".join(row) + " |")
                out.append("")
            for block in section.blocks:
                out.append("```")
                out.append(block)
                out.append("```")
                out.append("")
        return "\n".join(out).rstrip() + "\n"

    # -- html --------------------------------------------------------------------------
    def to_html(self) -> str:
        out = [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8">',
            f"<title>{html.escape(self.title)}</title>",
            "<style>",
            "body{font-family:system-ui,sans-serif;margin:2rem;max-width:72rem}",
            "table{border-collapse:collapse;margin:0.5rem 0}",
            "th,td{border:1px solid #ccc;padding:0.25rem 0.6rem;"
            "text-align:left;font-variant-numeric:tabular-nums}",
            "th{background:#f0f0f0}",
            "pre{background:#f7f7f7;padding:0.6rem;overflow-x:auto}",
            "</style></head><body>",
            f"<h1>{html.escape(self.title)}</h1>",
        ]
        for section in self.sections:
            out.append(f"<h2>{html.escape(section.heading)}</h2>")
            if section.headers:
                out.append("<table><thead><tr>")
                out += [f"<th>{html.escape(h)}</th>" for h in section.headers]
                out.append("</tr></thead><tbody>")
                for row in section.rows:
                    out.append(
                        "<tr>"
                        + "".join(f"<td>{html.escape(cell)}</td>" for cell in row)
                        + "</tr>"
                    )
                out.append("</tbody></table>")
            for block in section.blocks:
                out.append(f"<pre>{html.escape(block)}</pre>")
        out.append("</body></html>")
        return "\n".join(out) + "\n"


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:g}"


def _trend_section(trends: dict[str, list[TrendRecord]]) -> ReportSection:
    section = ReportSection(
        heading="Benchmark trends",
        headers=("bench", "metric", "latest", "unit", "previous", "delta", "runs",
                 "wall s"),
    )
    for bench in sorted(trends):
        records = trends[bench]
        by_metric: dict[str, list[TrendRecord]] = {}
        for record in records:
            by_metric.setdefault(record.metric, []).append(record)
        for metric in sorted(by_metric):
            history = by_metric[metric]
            latest = history[-1]
            previous = history[-2] if len(history) > 1 else None
            delta = "-"
            if previous is not None:
                pct = safe_div(
                    latest.value - previous.value, abs(previous.value)
                ) * 100.0
                delta = f"{pct:+.2f}%"
            section.rows.append(
                (
                    bench,
                    metric,
                    _fmt(latest.value),
                    latest.unit,
                    _fmt(previous.value if previous else None),
                    delta,
                    str(len(history)),
                    _fmt(latest.wall_s),
                )
            )
    if not section.rows:
        section.blocks.append("no trend records")
    return section


def _pct(result: object, method: str, point: float) -> str:
    """One formatted percentile of a request-level result, "-" when absent."""

    fn = getattr(result, method, None)
    if fn is None:
        return "-"
    try:
        return f"{fn(point):.3f}"
    except Exception:  # noqa: BLE001 - e.g. no prefill phase recorded
        return "-"


def _headline(result: object) -> str:
    tokens = getattr(result, "tokens_per_s", None)
    if tokens is not None:
        return f"{tokens:.0f} tok/s"
    cycles = getattr(result, "cycles", None)
    if cycles is not None:
        return f"{cycles} cycles"
    return ""


def _store_sections(store: ResultStore) -> list[ReportSection]:
    records = sorted(store.records(), key=lambda r: (r.label, r.key))

    overview = ReportSection(
        heading="Stored results",
        headers=("key", "label", "kind", "status", "elapsed s", "headline"),
    )
    phases = ReportSection(
        heading="Per-phase latency breakdown",
        headers=("record", "ttft p95 ms", "prefill p95 ms", "decode p95 ms",
                 "latency p50 ms", "latency p99 ms"),
    )
    timelines = ReportSection(heading="Telemetry timelines")

    for record in records:
        overview.rows.append(
            (
                record.key[:12],
                record.label,
                record.kind,
                record.status,
                f"{record.elapsed_s:.3f}",
                _headline(record.result) if record.ok else (record.error or ""),
            )
        )
        result = record.result
        if result is None:
            continue
        if hasattr(result, "latency_percentile_ms"):
            phases.rows.append(
                (
                    record.label or record.key[:12],
                    _pct(result, "ttft_percentile_ms", 95),
                    _pct(result, "prefill_percentile_ms", 95),
                    _pct(result, "decode_percentile_ms", 95),
                    _pct(result, "latency_percentile_ms", 50),
                    _pct(result, "latency_percentile_ms", 99),
                )
            )
        telemetry = getattr(result, "telemetry", None)
        if telemetry is not None and telemetry.samples:
            timelines.blocks.append(
                f"{record.label or record.key[:12]}\n{render_timeline(telemetry)}"
            )

    sections = [overview]
    if phases.rows:
        sections.append(phases)
    if timelines.blocks:
        sections.append(timelines)
    return sections


def build_report(
    trend_root: str | Path | None = None,
    store: ResultStore | None = None,
    title: str = "llamcat run report",
) -> Report:
    """Assemble a report from any combination of trend files and a store."""

    report = Report(title=title)
    if trend_root is not None:
        report.sections.append(_trend_section(load_trends(trend_root)))
    if store is not None:
        report.sections.extend(_store_sections(store))
    if not report.sections:
        report.sections.append(
            ReportSection(heading="Empty report", blocks=["no inputs given"])
        )
    return report


def render_report(
    trend_root: str | Path | None = None,
    store: ResultStore | None = None,
    fmt: str = "markdown",
    title: str = "llamcat run report",
) -> str:
    """The report as one string: ``fmt`` is ``"markdown"`` or ``"html"``."""

    report = build_report(trend_root=trend_root, store=store, title=title)
    if fmt == "html":
        return report.to_html()
    if fmt == "markdown":
        return report.to_markdown()
    raise ValueError(f"unknown report format {fmt!r} (use 'markdown' or 'html')")
