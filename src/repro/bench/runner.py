"""The bench runner: warmup/repeat timing around registered benches.

The split of responsibilities is deliberate: bench functions
(:mod:`repro.bench.suite`) are deterministic -- same tier, same values, byte
for byte -- and the runner owns everything nondeterministic about
benchmarking, namely the wall clock.  ``llamcat bench`` calls
:func:`run_bench` and appends the resulting :class:`~repro.bench.trend
.TrendRecord` rows to the bench's root-level trend file.

Timing protocol: ``warmup`` untimed executions populate the memoized
step-cost tables (the serving benches are dominated by cold cycle-engine
runs otherwise), then ``repeat`` timed executions run and the **minimum**
wall time is reported -- the standard low-noise estimator for a deterministic
workload, where every positive deviation from the minimum is scheduler/cache
interference, not signal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.registry import BenchOutput, resolve_bench
from repro.bench.trend import TrendRecord
from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier


@dataclass(frozen=True, slots=True)
class BenchRun:
    """One timed execution of one registered bench."""

    output: BenchOutput
    #: Minimum wall seconds over the timed repeats.
    wall_s: float
    warmup: int
    repeat: int

    def records(self) -> list[TrendRecord]:
        """The run as trend records (one per deterministic headline value)."""

        return [
            TrendRecord(
                bench=self.output.bench,
                config=self.output.config,
                metric=value.metric,
                value=value.value,
                unit=value.unit,
                wall_s=round(self.wall_s, 3),
            ).validate()
            for value in self.output.values
        ]

    def render(self) -> str:
        lines = [
            f"bench {self.output.bench} "
            f"(warmup={self.warmup}, repeat={self.repeat}): "
            f"{self.wall_s:.3f} s"
        ]
        lines += [
            f"  {value.metric:<32} {value.value:>14g} {value.unit}"
            for value in self.output.values
        ]
        return "\n".join(lines)


def run_bench(
    name: str,
    tier: ScaleTier = ScaleTier.CI,
    warmup: int = 0,
    repeat: int = 1,
) -> BenchRun:
    """Run the bench registered under ``name`` with warmup/repeat timing."""

    if repeat < 1:
        raise ConfigError(f"bench repeat must be >= 1, got {repeat}")
    if warmup < 0:
        raise ConfigError(f"bench warmup must be >= 0, got {warmup}")
    fn = resolve_bench(name)
    for _ in range(warmup):
        fn(tier)
    best: float | None = None
    output: BenchOutput | None = None
    for _ in range(repeat):
        # Wall timing is this module's entire job; it never reaches any
        # deterministic output, only the trend records' wall_s field.
        start = time.perf_counter()  # repro: noqa[DET002]
        output = fn(tier)
        elapsed = time.perf_counter() - start  # repro: noqa[DET002]
        best = elapsed if best is None else min(best, elapsed)
    assert output is not None and best is not None
    return BenchRun(output=output, wall_s=best, warmup=warmup, repeat=repeat)


def run_benches(
    names: list[str] | tuple[str, ...],
    tier: ScaleTier = ScaleTier.CI,
    warmup: int = 0,
    repeat: int = 1,
) -> list[BenchRun]:
    """Run several registered benches in order."""

    return [run_bench(name, tier=tier, warmup=warmup, repeat=repeat) for name in names]
