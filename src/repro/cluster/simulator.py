"""The multi-replica serving simulator.

:class:`ClusterSimulator` runs N accelerator replicas against one shared
arrival stream.  Each replica is a full single-accelerator serving pipeline --
its own :class:`~repro.serve.scheduler.ContinuousBatchScheduler` and step-cost
model -- while a pluggable :class:`~repro.cluster.router.Router` decides, at
each request's arrival instant, which replica receives it.

The event loop interleaves two event kinds on one clock:

1. **arrival** -- the next request of the shared stream is routed (the router
   observes replica queues exactly as they stand at that instant) and
   enqueued on the chosen replica;
2. **step end** -- a replica finishes one batched decode iteration: every
   batched request is credited a token, finished requests are evicted (and
   reported to the arrival process, closing the loop for closed-loop traffic),
   and the replica immediately re-forms its batch and starts the next step.

Replicas advance independently between events -- a busy replica never blocks
an idle one -- so the fleet behaves like N asynchronous serving loops glued
together by the router.  Determinism is preserved end to end: replicas are
visited in index order, event ties resolve step-ends before arrivals, and the
arrival heap orders equal timestamps by request id, so a seeded run reproduces
every routing decision and timestamp bit-for-bit.

Homogeneous replicas share one memoized step-cost model (the cluster scenario
builds one per *distinct* system preset), so a 16-replica fleet pays for the
distinct ``(batch, seq-bucket)`` shapes it visits, not for 16 copies of them.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.cluster.metrics import ClusterMetrics, ReplicaMetrics
from repro.cluster.router import Router
from repro.common.errors import ConfigError
from repro.serve.arrival import ArrivalProcess
from repro.serve.metrics import RequestMetrics, ServeSLO
from repro.serve.scheduler import BatchConfig, ContinuousBatchScheduler
from repro.serve.simulator import MAX_STEPS, complete_step
from repro.serve.stepcost import StepCostModel


class ReplicaSim:
    """One accelerator replica: a scheduler plus a step-cost model and a clock.

    Exposes the two load signals routers read (``queue_depth``,
    ``outstanding``) and accumulates the counters that become its
    :class:`~repro.cluster.metrics.ReplicaMetrics`.
    """

    def __init__(
        self,
        replica_id: int,
        cost_model: StepCostModel,
        frequency_ghz: float,
        batch: BatchConfig | None = None,
        system_name: str = "system",
    ) -> None:
        if frequency_ghz <= 0:
            raise ConfigError(f"frequency_ghz must be positive, got {frequency_ghz}")
        self.replica_id = replica_id
        self.cost_model = cost_model
        self.frequency_ghz = frequency_ghz
        self.system_name = system_name
        self.scheduler = ContinuousBatchScheduler(
            config=(batch if batch is not None else BatchConfig()).validate()
        )
        #: End time of the in-flight step; None while idle.
        self.step_end_s: float | None = None
        self.steps = 0
        self.total_cycles = 0
        self.busy_s = 0.0
        self.routed = 0
        self.completed: list[RequestMetrics] = []

    # -- load signals (read by routers) ------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.step_end_s is not None

    @property
    def queue_depth(self) -> int:
        """Requests routed here but not yet admitted into the batch."""

        return len(self.scheduler.waiting)

    @property
    def outstanding(self) -> int:
        """Queued plus running requests (issued minus completed)."""

        return len(self.scheduler.waiting) + len(self.scheduler.running)

    @property
    def has_work(self) -> bool:
        return self.scheduler.has_work

    # -- event-loop hooks --------------------------------------------------------------
    def enqueue(self, request) -> None:
        self.routed += 1
        self.scheduler.enqueue(request)

    def maybe_start_step(self, now_s: float) -> bool:
        """Admit waiting requests and launch one iteration if any are running."""

        if self.busy:
            return False
        self.scheduler.admit(now_s)
        if not self.scheduler.running:
            return False
        batch, context_bucket = self.scheduler.batch_shape()
        cycles = self.cost_model.step_cycles(batch, context_bucket)
        if cycles <= 0:
            raise ConfigError(f"step cost model returned {cycles} cycles")
        self.steps += 1
        self.total_cycles += cycles
        duration_s = cycles / (self.frequency_ghz * 1e9)
        self.busy_s += duration_s
        self.step_end_s = now_s + duration_s
        return True

    def finish_step(self) -> list:
        """Complete the in-flight iteration via the shared step-completion path.

        Returns the evicted :class:`~repro.serve.scheduler.ActiveRequest`
        objects so the cluster loop can feed completions back into the arrival
        process.
        """

        assert self.step_end_s is not None
        end_s = self.step_end_s
        self.step_end_s = None
        finished = []
        for active, record in complete_step(self.scheduler, end_s):
            self.completed.append(record)
            finished.append(active)
        return finished

    def metrics(self) -> ReplicaMetrics:
        return ReplicaMetrics(
            replica_id=self.replica_id,
            system=self.system_name,
            frequency_ghz=self.frequency_ghz,
            steps=self.steps,
            total_cycles=self.total_cycles,
            busy_s=self.busy_s,
            routed=self.routed,
            requests=tuple(sorted(self.completed, key=lambda r: r.request_id)),
        ).validate()


class ClusterSimulator:
    """Simulate serving one request stream on a fleet of replicas."""

    def __init__(
        self,
        arrival: ArrivalProcess,
        router: Router,
        replicas: Sequence[ReplicaSim],
        slo: ServeSLO | None = None,
        label: str = "cluster",
        workload_name: str = "workload",
        router_name: str | None = None,
    ) -> None:
        if not replicas:
            raise ConfigError("a cluster needs at least one replica")
        if router.num_replicas != len(replicas):
            raise ConfigError(
                f"router expects {router.num_replicas} replicas, fleet has {len(replicas)}"
            )
        self.arrival = arrival
        self.router = router
        self.replicas = list(replicas)
        self.slo = (slo if slo is not None else ServeSLO()).validate()
        self.label = label
        self.workload_name = workload_name
        self.router_name = router_name if router_name is not None else router.name

    def _route(self, request, now_s: float) -> ReplicaSim:
        chosen = self.router.select(request, self.replicas, now_s)
        if not 0 <= chosen < len(self.replicas):
            raise ConfigError(
                f"router {self.router_name!r} chose replica {chosen} "
                f"of a {len(self.replicas)}-replica fleet"
            )
        return self.replicas[chosen]

    def run(self) -> ClusterMetrics:
        # The pending heap orders un-routed requests by (arrival, id); ids are
        # unique, so heap order -- and thus every routing decision -- is total.
        pending: list[tuple[float, int, object]] = []
        for request in self.arrival.initial():
            request = request.validate()
            heapq.heappush(pending, (request.arrival_s, request.request_id, request))
        if not pending:
            raise ConfigError(
                f"arrival process {self.arrival.name!r} produced no requests"
            )
        first_arrival_s = pending[0][0]

        now_s = 0.0
        while True:
            # Route everything that has arrived by now: the router sees queue
            # depths as they stand after earlier same-instant completions.
            while pending and pending[0][0] <= now_s:
                _, _, request = heapq.heappop(pending)
                self._route(request, now_s).enqueue(request)

            # Launch steps on every idle replica with admissible work.
            for replica in self.replicas:
                replica.maybe_start_step(now_s)

            # Advance the clock to the next event (step end or arrival).
            event_times = [r.step_end_s for r in self.replicas if r.step_end_s is not None]
            if pending:
                event_times.append(pending[0][0])
            if not event_times:
                break  # fleet drained and the stream is exhausted

            # Runaway guard, checked only while work remains so a run that
            # drains in exactly the budget still returns.  Each replica gets
            # the single-accelerator step budget (the fleet cap scales with
            # its size, matching ServingSimulator per replica).
            fleet_steps = sum(replica.steps for replica in self.replicas)
            if fleet_steps >= MAX_STEPS * len(self.replicas):
                completed = sum(len(r.completed) for r in self.replicas)
                outstanding = sum(r.outstanding for r in self.replicas)
                raise ConfigError(
                    f"cluster run exceeded {MAX_STEPS * len(self.replicas)} "
                    f"fleet steps without draining ({completed} completed, "
                    f"{outstanding} outstanding)"
                )
            now_s = min(event_times)

            # Step-ends resolve before same-instant arrivals, so a request
            # arriving exactly as a batch slot frees observes the freed slot.
            for replica in self.replicas:
                if replica.step_end_s is not None and replica.step_end_s <= now_s:
                    for active in replica.finish_step():
                        follow_up = self.arrival.on_complete(active.request, now_s)
                        if follow_up is not None:
                            follow_up = follow_up.validate()
                            heapq.heappush(
                                pending,
                                (follow_up.arrival_s, follow_up.request_id, follow_up),
                            )

        replica_metrics = tuple(replica.metrics() for replica in self.replicas)
        last_finish_s = max(
            (r.finish_s for replica in replica_metrics for r in replica.requests),
            default=first_arrival_s,
        )
        meta = {
            "arrival": self.arrival.name,
            "router": self.router_name,
            "num_replicas": len(self.replicas),
            "routed": [replica.routed for replica in self.replicas],
        }
        # Homogeneous fleets share cost models; report the distinct tables.
        tables = {id(r.cost_model): r.cost_model for r in self.replicas}
        sizes = [getattr(m, "table_size", None) for m in tables.values()]
        if all(size is not None for size in sizes):
            meta["step_cost_entries"] = sum(sizes)
            meta["step_simulations"] = sum(
                getattr(m, "simulations", getattr(m, "table_size", 0))
                for m in tables.values()
            )
        return ClusterMetrics(
            label=self.label,
            workload=self.workload_name,
            router=self.router_name,
            duration_s=max(0.0, last_finish_s - first_arrival_s),
            replicas=replica_metrics,
            slo=self.slo,
            meta=meta,
        )
