"""The multi-replica serving simulator.

:class:`ClusterSimulator` runs N accelerator replicas against one shared
arrival stream.  Each replica is a full single-accelerator serving pipeline --
its own :class:`~repro.serve.scheduler.ContinuousBatchScheduler`, step-planning
policy and step-cost model -- while a pluggable
:class:`~repro.cluster.router.Router` decides, at each request's arrival
instant, which replica receives it.

The event loop interleaves three event kinds on one clock:

1. **arrival** -- the next request of the shared stream is routed (the router
   observes replica queues exactly as they stand at that instant) and
   enqueued on the chosen replica;
2. **step end** -- a replica finishes one planned iteration: prompt chunks
   shrink ``prefill_remaining``, every planned decode is credited a token,
   finished requests are evicted (and reported to the arrival process, closing
   the loop for closed-loop traffic), and the replica immediately re-forms its
   batch and starts the next step;
3. **handoff** -- in a *disaggregated* fleet, a request whose prompt finished
   on a prefill replica becomes admissible on a decode replica once its KV
   cache has been transferred (``kv_transfer_s`` later); the decode router
   picks the receiving replica at that instant.

Colocated fleets tag every replica ``"mixed"``; disaggregated fleets split
them into ``"prefill"`` replicas (running
:class:`~repro.serve.schedpolicy.PrefillOnlyPolicy`, fed by the arrival
router) and ``"decode"`` replicas (fed exclusively by handoffs).

Replicas advance independently between events -- a busy replica never blocks
an idle one -- so the fleet behaves like N asynchronous serving loops glued
together by the routers.  Determinism is preserved end to end: replicas are
visited in index order, event ties resolve step-ends before same-instant
arrivals, and both the arrival and handoff heaps order equal timestamps by
request id, so a seeded run reproduces every routing decision and timestamp
bit-for-bit.

Homogeneous replicas share one memoized step-cost model (the cluster scenario
builds one per *distinct* system preset), so a 16-replica fleet pays for the
distinct ``(batch, seq-bucket)`` shapes it visits, not for 16 copies of them.
"""

from __future__ import annotations

import heapq
import logging
from typing import Sequence

from repro.cluster.metrics import ClusterMetrics, ReplicaMetrics
from repro.cluster.router import Router
from repro.common.errors import ConfigError, LivelockError
from repro.obs.telemetry import TelemetryRecorder
from repro.obs.tracer import (
    CAT_HANDOFF,
    CAT_STEP,
    NULL_TRACER,
    Tracer,
    trace_request,
)
from repro.serve.arrival import ArrivalProcess
from repro.serve.metrics import RequestMetrics, ServeSLO
from repro.serve.schedpolicy import (
    DecodeFirstPolicy,
    PrefillOnlyPolicy,
    SchedulerPolicy,
    StepPlan,
)
from repro.serve.scheduler import (
    ActiveRequest,
    BatchConfig,
    ContinuousBatchScheduler,
    HandoffRequest,
    bucket_context,
)
from repro.serve.simulator import (
    MAX_STEPS,
    build_serve_stall_report,
    complete_step,
    plan_cycles,
)
from repro.serve.stepcost import StepCostModel

#: The replica roles a fleet may mix: every colocated replica is "mixed";
#: a disaggregated fleet is partitioned into "prefill" and "decode".
REPLICA_ROLES = ("mixed", "prefill", "decode")

logger = logging.getLogger(__name__)


class ReplicaSim:
    """One accelerator replica: a scheduler, a step planner, a cost model, a clock.

    Exposes the two load signals routers read (``queue_depth``,
    ``outstanding``) and accumulates the counters that become its
    :class:`~repro.cluster.metrics.ReplicaMetrics`.  ``role`` tags the
    replica's place in a disaggregated fleet; a ``"prefill"`` replica evicts
    each request the moment its prompt completes and surfaces it through
    :meth:`take_handoffs` for the cluster loop to transfer.
    """

    def __init__(
        self,
        replica_id: int,
        cost_model: StepCostModel,
        frequency_ghz: float,
        batch: BatchConfig | None = None,
        system_name: str = "system",
        role: str = "mixed",
        policy: SchedulerPolicy | None = None,
    ) -> None:
        if frequency_ghz <= 0:
            raise ConfigError(f"frequency_ghz must be positive, got {frequency_ghz}")
        if role not in REPLICA_ROLES:
            raise ConfigError(
                f"replica role must be one of {REPLICA_ROLES}, got {role!r}"
            )
        self.replica_id = replica_id
        self.cost_model = cost_model
        self.frequency_ghz = frequency_ghz
        self.system_name = system_name
        self.role = role
        if policy is not None:
            self.policy = policy
        else:
            self.policy = PrefillOnlyPolicy() if role == "prefill" else DecodeFirstPolicy()
        self.scheduler = ContinuousBatchScheduler(
            config=(batch if batch is not None else BatchConfig()).validate()
        )
        #: End time of the in-flight step; None while idle.
        self.step_end_s: float | None = None
        #: The in-flight step's plan (set exactly while ``step_end_s`` is).
        self._plan: StepPlan | None = None
        #: Prefill-complete requests awaiting pickup by the cluster loop.
        self._ready_handoffs: list[ActiveRequest] = []
        self.steps = 0
        self.total_cycles = 0
        self.busy_s = 0.0
        #: Busy time spent with admission stalled on KV memory (or funding
        #: decode growth through preemption) -- the memory-bound signal.
        self.mem_bound_s = 0.0
        self.routed = 0
        self.handoffs = 0
        self.completed: list[RequestMetrics] = []
        #: Observability sinks, installed by :meth:`ClusterSimulator.run`
        #: (the null defaults keep standalone replicas zero-overhead).
        self.tracer: Tracer = NULL_TRACER
        self.recorder: TelemetryRecorder | None = None
        self.probe = None

    # -- load signals (read by routers) ------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.step_end_s is not None

    @property
    def queue_depth(self) -> int:
        """Requests routed here but not yet admitted into the batch."""

        return len(self.scheduler.waiting)

    @property
    def outstanding(self) -> int:
        """Queued plus running requests (issued minus completed)."""

        return len(self.scheduler.waiting) + len(self.scheduler.running)

    @property
    def has_work(self) -> bool:
        return self.scheduler.has_work

    # -- event-loop hooks --------------------------------------------------------------
    def enqueue(self, request) -> None:
        self.routed += 1
        self.scheduler.enqueue(request)

    def _harvest_handoffs(self) -> None:
        """Evict prefill-complete requests (prefill replicas only)."""

        if self.role != "prefill":
            return
        done = [a for a in self.scheduler.running if not a.in_prefill]
        if done:
            self.scheduler.running = [a for a in self.scheduler.running if a.in_prefill]
            for active in done:
                # The KV pages travel with the request; this replica's copy is
                # freed the moment the transfer is initiated.
                self.scheduler.release_kv(active)
            self.handoffs += len(done)
            self._ready_handoffs.extend(done)

    def take_handoffs(self) -> list[ActiveRequest]:
        """Drain the requests whose prompt completed since the last call."""

        out, self._ready_handoffs = self._ready_handoffs, []
        return out

    def maybe_start_step(self, now_s: float) -> bool:
        """Admit waiting requests and launch one planned iteration.

        Zero-cost plans (free prefill) are applied instantly without consuming
        a step, exactly like the single-accelerator loop; the replica then
        re-plans against the updated batch.
        """

        if self.busy:
            return False
        while True:
            self.scheduler.admit(now_s)
            if not self.scheduler.running:
                if self.recorder is not None:
                    self.recorder.observe(self.replica_id, now_s, self.queue_depth, 0)
                return False
            preempted = self.scheduler.ensure_kv_growth(now_s)
            plan = self.policy.plan(self.scheduler.running)
            cycles = plan_cycles(
                self.cost_model, plan, self.scheduler.config.seq_bucket_floor
            )
            if cycles < 0:
                raise ConfigError(f"step cost model returned {cycles} cycles")
            if cycles == 0:
                if plan.decode:
                    raise ConfigError("step cost model priced a decode step at 0 cycles")
                complete_step(self.scheduler, plan, now_s)
                self._harvest_handoffs()
                continue
            self.steps += 1
            self.total_cycles += cycles
            if self.probe is not None:
                self.probe.record_step(
                    replica_id=self.replica_id,
                    step=self.steps,
                    start_s=now_s,
                    scheduler=self.scheduler,
                    plan=plan,
                    cycles=cycles,
                )
            duration_s = cycles / (self.frequency_ghz * 1e9)
            self.busy_s += duration_s
            if self.scheduler.kv_blocked or preempted:
                self.mem_bound_s += duration_s
            self.step_end_s = now_s + duration_s
            self._plan = plan
            # The step's span is fully known at launch, so both sinks record
            # here; completion only applies the plan.
            if self.tracer.enabled:
                args = plan.trace_args()
                args["cycles"] = cycles
                if plan.decode:
                    args["seq_bucket"] = bucket_context(
                        plan.decode_context(), self.scheduler.config.seq_bucket_floor
                    )
                self.tracer.complete(
                    "step", CAT_STEP, self.replica_id, 0, now_s, self.step_end_s,
                    args=args,
                )
            if self.recorder is not None:
                self.recorder.on_step(
                    self.replica_id,
                    now_s,
                    self.step_end_s,
                    self.queue_depth,
                    len(self.scheduler.running),
                    len(plan.decode),
                )
            return True

    def finish_step(self) -> list:
        """Complete the in-flight iteration via the shared step-completion path.

        Returns the evicted (decode-finished)
        :class:`~repro.serve.scheduler.ActiveRequest` objects so the cluster
        loop can feed completions back into the arrival process; prefill
        completions are harvested separately through :meth:`take_handoffs`.
        """

        assert self.step_end_s is not None and self._plan is not None
        end_s = self.step_end_s
        plan = self._plan
        self.step_end_s = None
        self._plan = None
        finished = []
        for active, record in complete_step(self.scheduler, plan, end_s):
            self.completed.append(record)
            finished.append(active)
        self._harvest_handoffs()
        return finished

    def metrics(self) -> ReplicaMetrics:
        return ReplicaMetrics(
            replica_id=self.replica_id,
            system=self.system_name,
            frequency_ghz=self.frequency_ghz,
            steps=self.steps,
            total_cycles=self.total_cycles,
            busy_s=self.busy_s,
            routed=self.routed,
            handoffs=self.handoffs,
            role=self.role,
            requests=tuple(sorted(self.completed, key=lambda r: r.request_id)),
        ).validate()


class ClusterSimulator:
    """Simulate serving one request stream on a fleet of replicas.

    ``router`` spreads arrivals over the arrival-eligible replicas (the whole
    fleet when colocated, the prefill replicas when disaggregated);
    ``decode_router`` -- required exactly when the fleet is disaggregated --
    spreads prefill-complete handoffs over the decode replicas, each arriving
    ``kv_transfer_s`` after its prompt finished.
    """

    def __init__(
        self,
        arrival: ArrivalProcess,
        router: Router,
        replicas: Sequence[ReplicaSim],
        slo: ServeSLO | None = None,
        label: str = "cluster",
        workload_name: str = "workload",
        router_name: str | None = None,
        kv_transfer_s: float = 0.0,
        decode_router: Router | None = None,
        telemetry_ms: float | None = None,
    ) -> None:
        if not replicas:
            raise ConfigError("a cluster needs at least one replica")
        if kv_transfer_s < 0:
            raise ConfigError(f"kv_transfer_s must be >= 0, got {kv_transfer_s}")
        if telemetry_ms is not None and telemetry_ms <= 0:
            raise ConfigError(f"telemetry_ms must be positive, got {telemetry_ms}")
        self.replicas = list(replicas)
        self.prefill_replicas = [r for r in self.replicas if r.role == "prefill"]
        self.decode_replicas = [r for r in self.replicas if r.role == "decode"]
        self.disaggregated = bool(self.prefill_replicas or self.decode_replicas)
        if self.disaggregated:
            if any(r.role == "mixed" for r in self.replicas):
                raise ConfigError(
                    "a disaggregated fleet must tag every replica prefill or decode"
                )
            if not self.prefill_replicas or not self.decode_replicas:
                raise ConfigError(
                    "a disaggregated fleet needs at least one prefill and one "
                    "decode replica"
                )
            if decode_router is None:
                raise ConfigError("a disaggregated fleet needs a decode_router")
            if decode_router.num_replicas != len(self.decode_replicas):
                raise ConfigError(
                    f"decode router expects {decode_router.num_replicas} replicas, "
                    f"fleet has {len(self.decode_replicas)} decode replicas"
                )
        elif decode_router is not None:
            raise ConfigError("decode_router is only meaningful for disaggregated fleets")
        self.entry_replicas = (
            self.prefill_replicas if self.disaggregated else self.replicas
        )
        if router.num_replicas != len(self.entry_replicas):
            raise ConfigError(
                f"router expects {router.num_replicas} replicas, fleet has "
                f"{len(self.entry_replicas)} arrival-eligible replicas"
            )
        self.arrival = arrival
        self.router = router
        self.decode_router = decode_router
        self.kv_transfer_s = kv_transfer_s
        self.slo = (slo if slo is not None else ServeSLO()).validate()
        self.label = label
        self.workload_name = workload_name
        self.router_name = router_name if router_name is not None else router.name
        self.telemetry_ms = telemetry_ms
        #: Wall-clock profile of the fleet's step-cost tables; populated by
        #: :meth:`run`, never serialized into metrics.
        self.profile: dict = {}

    def _select(self, router: Router, group: list[ReplicaSim], request, now_s: float):
        chosen = router.select(request, group, now_s)
        if not 0 <= chosen < len(group):
            raise ConfigError(
                f"router {self.router_name!r} chose replica {chosen} "
                f"of a {len(group)}-replica group"
            )
        return group[chosen]

    def run(self, tracer: Tracer | None = None, probe=None) -> ClusterMetrics:
        tracer = NULL_TRACER if tracer is None else tracer
        if probe is not None:
            # The determinism probe (repro.analysis.runtime.StepProbe) digests
            # per-replica scheduler state; like the tracer and recorder it is
            # installed on every replica and reads the arrival's RNG position
            # through this attribute.
            probe.arrival = self.arrival
        recorder = (
            TelemetryRecorder(
                interval_s=self.telemetry_ms * 1e-3,
                num_replicas=len(self.replicas),
            )
            if self.telemetry_ms is not None
            else None
        )
        # Replica pids are their ids; the per-request swimlanes live one past.
        requests_pid = len(self.replicas)
        if tracer.enabled:
            for replica in self.replicas:
                tracer.name_process(
                    replica.replica_id,
                    f"replica {replica.replica_id} [{replica.role}]",
                )
                tracer.name_thread(replica.replica_id, 0, "scheduler")
            tracer.name_process(requests_pid, "requests")
        for replica in self.replicas:
            replica.tracer = tracer
            replica.recorder = recorder
            replica.probe = probe

        # The pending heap orders un-routed requests by (arrival, id); ids are
        # unique, so heap order -- and thus every routing decision -- is total.
        # The handoff heap is keyed the same way on KV-transfer completion.
        pending: list[tuple[float, int, object]] = []
        handoffs: list[tuple[float, int, ActiveRequest]] = []
        handoff_count = 0
        for request in self.arrival.initial():
            request = request.validate()
            heapq.heappush(pending, (request.arrival_s, request.request_id, request))
        if not pending:
            raise ConfigError(
                f"arrival process {self.arrival.name!r} produced no requests"
            )
        first_arrival_s = pending[0][0]

        def collect_handoffs(now_s: float) -> None:
            nonlocal handoff_count
            for replica in self.prefill_replicas:
                for active in replica.take_handoffs():
                    handoff_count += 1
                    if tracer.enabled:
                        tracer.complete(
                            "kv-transfer",
                            CAT_HANDOFF,
                            requests_pid,
                            active.request.request_id,
                            now_s,
                            now_s + self.kv_transfer_s,
                            args={"from_replica": replica.replica_id},
                        )
                    heapq.heappush(
                        handoffs,
                        (
                            now_s + self.kv_transfer_s,
                            active.request.request_id,
                            active,
                        ),
                    )

        now_s = 0.0
        while True:
            # Route everything that has arrived by now: the router sees queue
            # depths as they stand after earlier same-instant completions.
            while pending and pending[0][0] <= now_s:
                _, _, request = heapq.heappop(pending)
                self._select(self.router, self.entry_replicas, request, now_s).enqueue(
                    request
                )

            # Deliver KV transfers that completed by now to decode replicas.
            while handoffs and handoffs[0][0] <= now_s:
                ready_s, _, active = heapq.heappop(handoffs)
                assert self.decode_router is not None
                replica = self._select(
                    self.decode_router, self.decode_replicas, active.request, now_s
                )
                if tracer.enabled:
                    tracer.instant(
                        "handoff",
                        CAT_HANDOFF,
                        requests_pid,
                        active.request.request_id,
                        ready_s,
                        args={"to_replica": replica.replica_id},
                    )
                replica.enqueue(HandoffRequest(active=active, arrival_s=ready_s))

            # Launch steps on every idle replica with admissible work (free
            # prefill may complete instantly and surface handoffs here).
            for replica in self.replicas:
                replica.maybe_start_step(now_s)
            collect_handoffs(now_s)

            # Advance the clock to the next event (step end, arrival, handoff,
            # or an idle replica's future re-admission -- a swap-preempted
            # request waiting out its transfer is an event source too).
            event_times = [r.step_end_s for r in self.replicas if r.step_end_s is not None]
            if pending:
                event_times.append(pending[0][0])
            if handoffs:
                event_times.append(handoffs[0][0])
            for replica in self.replicas:
                if replica.step_end_s is None:
                    next_arrival = replica.scheduler.next_arrival_s()
                    if next_arrival is not None and next_arrival > now_s:
                        event_times.append(next_arrival)
            if not event_times:
                stuck = [r for r in self.replicas if r.has_work]
                if stuck:
                    # Work remains but no event can ever fire: every stuck
                    # replica refused admission into an empty batch (a full-KV
                    # stall).  Raise a structured report instead of silently
                    # dropping the queued requests.
                    reports = [
                        build_serve_stall_report(
                            r.scheduler,
                            "admission blocked with an empty batch",
                            now_s,
                            r.steps,
                            len(r.completed),
                            replica_id=r.replica_id,
                        )
                        for r in stuck
                    ]
                    raise LivelockError(
                        "\n".join(report.render() for report in reports),
                        report=reports[0],
                    )
                break  # fleet drained and the stream is exhausted

            # Runaway guard, checked only while work remains so a run that
            # drains in exactly the budget still returns.  Each replica gets
            # the single-accelerator step budget (the fleet cap scales with
            # its size, matching ServingSimulator per replica).
            fleet_steps = sum(replica.steps for replica in self.replicas)
            if fleet_steps >= MAX_STEPS * len(self.replicas):
                reports = [
                    build_serve_stall_report(
                        r.scheduler,
                        f"fleet exceeded {MAX_STEPS * len(self.replicas)} steps "
                        f"without draining",
                        now_s,
                        r.steps,
                        len(r.completed),
                        replica_id=r.replica_id,
                    )
                    for r in self.replicas
                ]
                raise LivelockError(
                    "\n".join(report.render() for report in reports),
                    report=reports[0],
                )
            now_s = min(event_times)

            # Step-ends resolve before same-instant arrivals, so a request
            # arriving exactly as a batch slot frees observes the freed slot.
            for replica in self.replicas:
                if replica.step_end_s is not None and replica.step_end_s <= now_s:
                    for active in replica.finish_step():
                        follow_up = self.arrival.on_complete(active.request, now_s)
                        if follow_up is not None:
                            follow_up = follow_up.validate()
                            heapq.heappush(
                                pending,
                                (follow_up.arrival_s, follow_up.request_id, follow_up),
                            )
            collect_handoffs(now_s)

        replica_metrics = tuple(replica.metrics() for replica in self.replicas)
        if tracer.enabled:
            # Lifecycle spans per completed request, in (replica, id) order --
            # trace viewers sort by timestamp, so emission order only needs to
            # be deterministic, not chronological.
            for replica in replica_metrics:
                for record in replica.requests:
                    trace_request(tracer, record, requests_pid)
        last_finish_s = max(
            (r.finish_s for replica in replica_metrics for r in replica.requests),
            default=first_arrival_s,
        )
        meta = {
            "arrival": self.arrival.name,
            "router": self.router_name,
            "num_replicas": len(self.replicas),
            "routed": [replica.routed for replica in self.replicas],
        }
        if self.disaggregated:
            meta["roles"] = [replica.role for replica in self.replicas]
            meta["handoffs"] = handoff_count
            meta["kv_transfer_s"] = self.kv_transfer_s
        kv_managers = [m for r in self.replicas if (m := r.scheduler.kv) is not None]
        if len(kv_managers) == len(self.replicas):
            # Emitted only when the KV memory model is on fleet-wide, keeping
            # legacy (unbounded-memory) cluster meta byte-identical.
            kv_cfg = self.replicas[0].scheduler.config.kv
            completed_total = sum(len(r.completed) for r in self.replicas)
            preemptions_total = sum(r.scheduler.preemptions for r in self.replicas)
            meta["kv_budget_tokens"] = [
                r.scheduler.config.kv.budget_tokens for r in self.replicas
            ]
            meta["kv_block_tokens"] = kv_cfg.block_tokens
            meta["preemption"] = kv_cfg.preemption
            meta["preemptions"] = [r.scheduler.preemptions for r in self.replicas]
            meta["preemption_rate"] = preemptions_total / max(1, completed_total)
            meta["kv_peak_utilization"] = [m.peak_utilization for m in kv_managers]
            meta["kv_memory_bound_s"] = [r.mem_bound_s for r in self.replicas]
        # Homogeneous fleets share cost models; report the distinct tables.
        tables = {id(r.cost_model): r.cost_model for r in self.replicas}
        sizes = [getattr(m, "table_size", None) for m in tables.values()]
        if all(size is not None for size in sizes):
            meta["step_cost_entries"] = sum(sizes)
            meta["step_simulations"] = sum(
                getattr(m, "simulations", getattr(m, "table_size", 0))
                for m in tables.values()
            )
        self.profile = {
            "step_cost": [
                m.profile() for m in tables.values() if m.profile()
            ]
        }
        logger.debug(
            "cluster run [%s]: %d replicas, %d requests, step_cost=%s",
            self.label,
            len(self.replicas),
            sum(len(r.requests) for r in replica_metrics),
            self.profile["step_cost"],
        )
        telemetry = (
            recorder.build(first_arrival_s) if recorder is not None else None
        )
        return ClusterMetrics(
            label=self.label,
            workload=self.workload_name,
            router=self.router_name,
            duration_s=max(0.0, last_finish_s - first_arrival_s),
            replicas=replica_metrics,
            slo=self.slo,
            meta=meta,
            telemetry=telemetry,
        )
