"""Cluster metrics: per-replica accounting merged into fleet-level aggregates.

The authoritative data is one :class:`ReplicaMetrics` per replica, each holding
the :class:`~repro.serve.metrics.RequestMetrics` records of the requests that
replica completed plus its own step/cycle/busy-time counters.  Everything the
evaluation reports at fleet level -- merged p50/p95/p99 latency and TTFT,
fleet tokens/s and requests/s, per-replica utilization and the load-imbalance
factor -- is derived on demand through :mod:`repro.common.mathutils`, exactly
like :class:`~repro.serve.metrics.ServeMetrics` derives its aggregates.

:class:`ClusterMetrics` serializes with ``to_dict``/``from_dict`` and carries
``result_kind = "cluster"``, so cluster points flow through the sweep result
store next to kernel (``"sim"``) and single-accelerator (``"serve"``) records.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar

from repro.common.errors import ConfigError
from repro.common.mathutils import mean, percentile, percentiles, safe_div, weighted_mean
from repro.obs.metrics import Histogram
from repro.obs.telemetry import TelemetrySeries
from repro.serve.metrics import REPORTED_PERCENTILES, RequestMetrics, ServeSLO


@dataclass(frozen=True, slots=True)
class ReplicaMetrics:
    """One replica's share of a cluster run.

    ``role`` is "mixed" for colocated fleets; disaggregated fleets split into
    "prefill" replicas (which complete no requests -- they hand each one off
    once its prompt is processed, counted in ``handoffs``) and "decode"
    replicas (whose ``routed`` counts delivered handoffs).
    """

    replica_id: int
    system: str
    frequency_ghz: float
    #: Scheduler iterations this replica executed.
    steps: int
    #: Total simulated cycles across this replica's iterations.
    total_cycles: int
    #: Wall-clock seconds the replica spent mid-step (vs. idle).
    busy_s: float
    #: Requests the router sent here (>= len(requests) only transiently;
    #: equal once the run drains, except on prefill replicas).
    routed: int
    requests: tuple[RequestMetrics, ...] = ()
    role: str = "mixed"
    #: Requests handed off to a decode replica (prefill replicas only).
    handoffs: int = 0

    def validate(self) -> "ReplicaMetrics":
        if self.replica_id < 0:
            raise ConfigError(f"replica_id must be >= 0, got {self.replica_id}")
        if self.frequency_ghz <= 0:
            raise ConfigError(f"frequency_ghz must be positive, got {self.frequency_ghz}")
        if self.busy_s < 0:
            raise ConfigError(f"busy_s must be >= 0, got {self.busy_s}")
        if self.handoffs < 0:
            raise ConfigError(f"handoffs must be >= 0, got {self.handoffs}")
        if self.routed < len(self.requests):
            raise ConfigError(
                f"replica {self.replica_id} completed {len(self.requests)} requests "
                f"but was routed only {self.routed}"
            )
        return self

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.requests)

    def utilization(self, duration_s: float) -> float:
        """Fraction of ``duration_s`` this replica spent executing steps."""

        return min(1.0, safe_div(self.busy_s, duration_s))

    def to_dict(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "system": self.system,
            "frequency_ghz": self.frequency_ghz,
            "steps": self.steps,
            "total_cycles": self.total_cycles,
            "busy_s": self.busy_s,
            "routed": self.routed,
            "role": self.role,
            "handoffs": self.handoffs,
            "requests": [r.to_dict() for r in self.requests],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicaMetrics":
        return cls(
            replica_id=data["replica_id"],
            system=data["system"],
            frequency_ghz=data["frequency_ghz"],
            steps=data["steps"],
            total_cycles=data["total_cycles"],
            busy_s=data["busy_s"],
            routed=data["routed"],
            # Stores written before disaggregation carry neither key.
            role=data.get("role", "mixed"),
            handoffs=data.get("handoffs", 0),
            requests=tuple(RequestMetrics.from_dict(r) for r in data["requests"]),
        ).validate()


@dataclass(frozen=True, slots=True)
class ClusterMetrics:
    """Complete result of one multi-replica serving simulation."""

    #: Result-kind tag used by the sweep store to pick the right deserializer.
    result_kind: ClassVar[str] = "cluster"

    label: str
    workload: str
    router: str
    #: Wall-clock span of the run: first arrival to last finish, seconds.
    duration_s: float
    replicas: tuple[ReplicaMetrics, ...] = ()
    slo: ServeSLO = field(default_factory=ServeSLO)
    meta: dict = field(default_factory=dict)
    #: Optional fixed-cadence time series; None unless the run sampled
    #: telemetry, and omitted from serialization when None so pre-telemetry
    #: metrics dicts (and golden fixtures) stay bit-for-bit identical.
    telemetry: TelemetrySeries | None = None
    #: Opt-in sketch mode (``--metrics-sketch``): fleet percentiles are
    #: answered by merging one log-bucketed histogram per replica (see
    #: :meth:`merged_histogram`) within the documented relative error bound,
    #: instead of concatenating and re-sorting every replica's per-request
    #: list.  Off by default (and omitted from serialization when off) so
    #: golden fixtures stay bit-for-bit identical.
    sketch: bool = False

    # -- fleet-level series ------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def requests(self) -> tuple[RequestMetrics, ...]:
        """Every completed request in the fleet, merged and id-sorted."""

        merged = [r for replica in self.replicas for r in replica.requests]
        return tuple(sorted(merged, key=lambda r: r.request_id))

    @property
    def num_requests(self) -> int:
        return sum(replica.num_requests for replica in self.replicas)

    @property
    def total_output_tokens(self) -> int:
        return sum(replica.output_tokens for replica in self.replicas)

    @property
    def steps(self) -> int:
        return sum(replica.steps for replica in self.replicas)

    @property
    def total_cycles(self) -> int:
        return sum(replica.total_cycles for replica in self.replicas)

    # -- headline aggregates -----------------------------------------------------------
    def merged_histogram(self, span: str) -> Histogram:
        """One histogram per replica, merged -- the fixed-memory fleet path.

        ``span`` is "latency", "ttft" or "prefill".  Each replica's requests
        are bucketed independently and the per-replica histograms are merged
        (exact bucket-count addition, deterministic replica order), which is
        how fleet percentiles scale to runs too large to concatenate
        per-request lists for.
        """

        merged = Histogram()
        for replica in self.replicas:
            merged.merge(Histogram.of(self._spans_s(replica.requests, span)))
        return merged

    @staticmethod
    def _spans_s(requests: tuple[RequestMetrics, ...], span: str) -> list[float]:
        if span == "latency":
            return [r.latency_s for r in requests]
        if span == "ttft":
            return [r.ttft_s for r in requests]
        if span == "prefill":
            return [r.prefill_s for r in requests if r.prefill_s is not None]
        raise ConfigError(f"unknown request span {span!r}")

    def _percentile_s(self, span: str, point: float) -> float:
        """Exact merged-list percentile, or the histogram merge when opted in."""

        if self.sketch:
            return self.merged_histogram(span).quantile(point)
        return percentile(self._spans_s(self.requests, span), point)

    def latency_percentile_ms(self, point: float) -> float:
        return self._percentile_s("latency", point) * 1e3

    def ttft_percentile_ms(self, point: float) -> float:
        return self._percentile_s("ttft", point) * 1e3

    @property
    def mean_tpot_ms(self) -> float:
        """Fleet decode pace, weighted by each request's decoded tokens."""

        requests = self.requests
        weights = [max(0, r.output_tokens - 1) for r in requests]
        if not requests or sum(weights) == 0:
            return 0.0
        return weighted_mean([r.tpot_s for r in requests], weights) * 1e3

    @property
    def tokens_per_s(self) -> float:
        """Fleet throughput: completed output tokens over the makespan."""

        return safe_div(self.total_output_tokens, self.duration_s)

    @property
    def requests_per_s(self) -> float:
        return safe_div(self.num_requests, self.duration_s)

    @property
    def utilizations(self) -> list[float]:
        """Per-replica busy fraction of the fleet makespan, replica order."""

        return [replica.utilization(self.duration_s) for replica in self.replicas]

    # -- disaggregation (per-phase) aggregates -----------------------------------------
    @property
    def is_disaggregated(self) -> bool:
        """Whether the fleet split replicas into prefill and decode roles."""

        return any(replica.role == "prefill" for replica in self.replicas)

    @property
    def handoffs(self) -> int:
        """Prefill-to-decode handoffs across the fleet (0 when colocated)."""

        return sum(replica.handoffs for replica in self.replicas)

    def role_utilization(self, role: str) -> float:
        """Mean busy fraction of the replicas tagged ``role`` (0.0 if none)."""

        members = [r for r in self.replicas if r.role == role]
        if not members:
            return 0.0
        return mean([r.utilization(self.duration_s) for r in members])

    @property
    def prefill_utilization(self) -> float:
        return self.role_utilization("prefill")

    @property
    def decode_utilization(self) -> float:
        return self.role_utilization("decode")

    @property
    def has_prefill_phase(self) -> bool:
        """Whether any completed request carries prefill-phase accounting."""

        return any(r.prefill_end_s is not None for r in self.requests)

    def prefill_percentile_ms(self, point: float) -> float:
        """Merged prefill-span percentile over the prefill-phase requests (ms)."""

        return self._percentile_s("prefill", point) * 1e3

    @property
    def load_imbalance(self) -> float:
        """Max/mean completed output tokens across replicas (1.0 = balanced).

        The classic imbalance factor: how much hotter the hottest replica ran
        than the fleet average.  0.0 when the fleet completed nothing.
        """

        tokens = [replica.output_tokens for replica in self.replicas]
        if not tokens or sum(tokens) == 0:
            return 0.0
        return max(tokens) / mean(tokens)

    @property
    def slo_attainment(self) -> float:
        """Fraction of fleet requests meeting every objective (1.0 if none)."""

        requests = self.requests
        if not requests or self.slo.is_trivial:
            return 1.0
        return sum(1 for r in requests if self.slo.attained(r)) / len(requests)

    # -- formatting --------------------------------------------------------------------
    def headline_metrics(self) -> dict:
        # Merge the per-replica records once and batch the percentile points
        # over one sort each -- this runs on every store write (to_dict).
        requests = self.requests
        out = {
            "label": self.label,
            "workload": self.workload,
            "router": self.router,
            "num_replicas": self.num_replicas,
            "num_requests": len(requests),
            "duration_s": self.duration_s,
            "steps": self.steps,
            "total_cycles": self.total_cycles,
            "tokens_per_s": self.tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "mean_tpot_ms": self.mean_tpot_ms,
            "load_imbalance": self.load_imbalance,
            "slo_attainment": self.slo_attainment,
            "utilizations": self.utilizations,
        }
        if requests:
            if self.sketch:
                latency = self.merged_histogram("latency").quantiles(REPORTED_PERCENTILES)
                ttft = self.merged_histogram("ttft").quantiles(REPORTED_PERCENTILES)
            else:
                latency = percentiles([r.latency_s for r in requests], REPORTED_PERCENTILES)
                ttft = percentiles([r.ttft_s for r in requests], REPORTED_PERCENTILES)
            for point, lat_ms, ttft_ms in zip(REPORTED_PERCENTILES, latency, ttft, strict=True):
                out[f"latency_p{point:g}_ms"] = lat_ms * 1e3
                out[f"ttft_p{point:g}_ms"] = ttft_ms * 1e3
        prefill_spans = self._spans_s(requests, "prefill")
        if prefill_spans:
            spans = (
                self.merged_histogram("prefill").quantiles(REPORTED_PERCENTILES)
                if self.sketch
                else percentiles(prefill_spans, REPORTED_PERCENTILES)
            )
            for point, span in zip(REPORTED_PERCENTILES, spans, strict=True):
                out[f"prefill_p{point:g}_ms"] = span * 1e3
        if self.is_disaggregated:
            out["handoffs"] = self.handoffs
            out["prefill_utilization"] = self.prefill_utilization
            out["decode_utilization"] = self.decode_utilization
        return out

    def summary(self) -> str:
        requests = self.requests
        if not requests:
            return f"[{self.label}] {self.workload}: no completed requests"
        p50, p95, p99 = (self.latency_percentile_ms(p) for p in REPORTED_PERCENTILES)
        disagg = (
            f"{self.handoffs} handoffs, prefill/decode util "
            f"{self.prefill_utilization:.1%}/{self.decode_utilization:.1%}, "
            if self.is_disaggregated
            else ""
        )
        return (
            f"[{self.label}] {self.workload} x{self.num_replicas} via {self.router}: "
            f"{len(requests)} requests in {self.duration_s * 1e3:.2f} ms "
            f"({self.steps} fleet steps), "
            f"latency p50/p95/p99 = {p50:.3f}/{p95:.3f}/{p99:.3f} ms, "
            f"TTFT p95 {self.ttft_percentile_ms(95):.3f} ms, "
            f"{self.tokens_per_s:.0f} tokens/s, {self.requests_per_s:.0f} req/s, "
            f"{disagg}imbalance {self.load_imbalance:.2f}, SLO {self.slo_attainment:.1%}"
        )

    # -- serialization (sweep result store) --------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips via :meth:`from_dict`.

        The per-replica records are authoritative; the derived fleet
        aggregates ride along under ``"metrics"`` for human consumers and are
        recomputed on demand after a reload.
        """

        data = {
            "label": self.label,
            "workload": self.workload,
            "router": self.router,
            "duration_s": self.duration_s,
            "replicas": [replica.to_dict() for replica in self.replicas],
            "slo": self.slo.to_dict(),
            "meta": dict(self.meta),
            # Derived ride-along block for humans/dashboards; recomputed from
            # the replica records on load, so from_dict never reads it.
            "metrics": self.headline_metrics(),  # repro: noqa[SER001]
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.to_dict()
        if self.sketch:
            data["sketch"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterMetrics":
        return cls(
            label=data["label"],
            workload=data["workload"],
            router=data["router"],
            duration_s=data["duration_s"],
            replicas=tuple(ReplicaMetrics.from_dict(r) for r in data["replicas"]),
            slo=ServeSLO.from_dict(data.get("slo", {})),
            meta=dict(data.get("meta", {})),
            telemetry=(
                TelemetrySeries.from_dict(data["telemetry"])
                if data.get("telemetry") is not None
                else None
            ),
            sketch=bool(data.get("sketch", False)),
        )

    def with_label(self, label: str) -> "ClusterMetrics":
        return self if label == self.label else replace(self, label=label)

    def with_sketch(self, sketch: bool = True) -> "ClusterMetrics":
        """A copy answering fleet percentiles via merged histograms."""

        return self if sketch == self.sketch else replace(self, sketch=sketch)
