"""ClusterScenario: one multi-replica serving point, named by registry strings.

The cluster counterpart of :class:`~repro.serve.scenario.ServeScenario`: a
frozen, content-hashed description of a fleet run -- workload / policy /
arrival / router names, the per-replica system presets (the heterogeneous-fleet
axis) and the traffic knobs.  Everything resolves through
:mod:`repro.registry`, so a router or system preset registered anywhere is
immediately servable from the Python API, ``llamcat cluster`` and cluster
sweep grids.

Replicas that share a system preset also share one memoized
:class:`~repro.serve.stepcost.SimStepCostModel`: a 16-replica homogeneous
fleet simulates each distinct ``(batch, seq-bucket)`` shape once, not 16
times.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.simulator import ClusterSimulator, ReplicaSim
from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier, parse_tier, scale_system
from repro.registry import (
    resolve_arrival,
    resolve_policy,
    resolve_router,
    resolve_system,
    resolve_workload,
)
from repro.serve.metrics import ServeSLO
from repro.serve.request import (
    DEFAULT_OUTPUT_TOKENS,
    DEFAULT_PROMPT_TOKENS,
    RequestSampler,
)
from repro.serve.scenario import DEFAULT_SERVE_SYSTEM
from repro.serve.scheduler import SEQ_BUCKET_FLOOR, BatchConfig
from repro.serve.stepcost import SimStepCostModel
from repro.sim.runner import clear_trace_cache

#: The router a ClusterScenario uses when none is given.
DEFAULT_ROUTER = "round-robin"


@dataclass(frozen=True, slots=True)
class ClusterScenario:
    """One fleet-level serving simulation point.

    ``systems`` is the heterogeneous-fleet axis: a single preset name is
    replicated across all ``replicas``; a tuple of exactly ``replicas`` names
    gives each replica its own (tier-scaled) accelerator.
    """

    workload: str
    arrival: str = "poisson"
    #: Requests/s for open-loop processes; user population for closed-loop.
    rate: float = 2000.0
    num_requests: int = 32
    replicas: int = 2
    router: str = DEFAULT_ROUTER
    #: Per-replica maximum batch (each replica batches independently).
    max_batch: int = 4
    seed: int = 0
    policy: str = "unopt"
    #: One system preset per replica; a single name is broadcast to the fleet.
    systems: tuple[str, ...] = (DEFAULT_SERVE_SYSTEM,)
    tier: ScaleTier = ScaleTier.CI
    prompt_tokens: tuple[int, int] = DEFAULT_PROMPT_TOKENS
    output_tokens: tuple[int, int] = DEFAULT_OUTPUT_TOKENS
    #: Extra keyword parameters for the arrival builder, as sorted pairs.
    arrival_params: tuple[tuple[str, object], ...] = ()
    #: Extra keyword parameters for the router builder (e.g. ``weights``).
    router_params: tuple[tuple[str, object], ...] = ()
    slo_ttft_ms: float | None = None
    slo_latency_ms: float | None = None
    max_cycles: int | None = None
    #: Display label (defaults to "<router>x<replicas>@<arrival>"); never hashed.
    label: str | None = None

    # -- validation / resolution -------------------------------------------------------
    def validate(self) -> "ClusterScenario":
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {self.num_requests}")
        if self.replicas <= 0:
            raise ConfigError(f"replicas must be positive, got {self.replicas}")
        if self.max_batch <= 0:
            raise ConfigError(f"max_batch must be positive, got {self.max_batch}")
        if not isinstance(self.tier, ScaleTier):
            raise ConfigError(f"tier must be a ScaleTier, got {self.tier!r}")
        if not self.systems:
            raise ConfigError("ClusterScenario.systems must be non-empty")
        if len(self.systems) not in (1, self.replicas):
            raise ConfigError(
                f"systems must name 1 preset (homogeneous fleet) or exactly "
                f"{self.replicas} (one per replica), got {len(self.systems)}"
            )
        self.slo().validate()
        resolve_arrival(self.arrival)   # raises ConfigError on unknown names
        resolve_router(self.router)
        resolve_workload(self.workload)
        resolve_policy(self.policy)
        for system in self.systems:
            resolve_system(system)
        return self

    def replica_systems(self) -> tuple[str, ...]:
        """The fleet's system preset names, one entry per replica."""

        if len(self.systems) == 1:
            return self.systems * self.replicas
        return self.systems

    def slo(self) -> ServeSLO:
        return ServeSLO(ttft_ms=self.slo_ttft_ms, latency_ms=self.slo_latency_ms)

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        return f"{self.router}x{self.replicas}@{self.arrival}"

    # -- identity ----------------------------------------------------------------------
    def config_dict(self) -> dict:
        """The outcome-determining configuration as JSON-able data.

        Display labels are excluded, mirroring :meth:`ServeScenario.config_dict`:
        two cluster points that differ only in labelling share one simulation.
        """

        data = self.to_dict()
        data.pop("label")
        return data

    def key(self) -> str:
        """Content hash identifying this cluster simulation (store/dedup key)."""

        canonical = json.dumps(self.config_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- (de)serialization -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "arrival": self.arrival,
            "rate": self.rate,
            "num_requests": self.num_requests,
            "replicas": self.replicas,
            "router": self.router,
            "max_batch": self.max_batch,
            "seed": self.seed,
            "policy": self.policy,
            "systems": list(self.systems),
            "tier": self.tier.name,
            "prompt_tokens": list(self.prompt_tokens),
            "output_tokens": list(self.output_tokens),
            "arrival_params": [[k, v] for k, v in self.arrival_params],
            "router_params": [[k, v] for k, v in self.router_params],
            "slo_ttft_ms": self.slo_ttft_ms,
            "slo_latency_ms": self.slo_latency_ms,
            "max_cycles": self.max_cycles,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterScenario":
        defaults = {f.name: f.default for f in fields(cls)}
        return cls(
            workload=data["workload"],
            arrival=data.get("arrival", "poisson"),
            rate=data.get("rate", defaults["rate"]),
            num_requests=data.get("num_requests", defaults["num_requests"]),
            replicas=data.get("replicas", defaults["replicas"]),
            router=data.get("router", DEFAULT_ROUTER),
            max_batch=data.get("max_batch", defaults["max_batch"]),
            seed=data.get("seed", 0),
            policy=data.get("policy", "unopt"),
            systems=tuple(data.get("systems", (DEFAULT_SERVE_SYSTEM,))),
            tier=parse_tier(data.get("tier", ScaleTier.CI.name)),
            prompt_tokens=tuple(data.get("prompt_tokens", DEFAULT_PROMPT_TOKENS)),
            output_tokens=tuple(data.get("output_tokens", DEFAULT_OUTPUT_TOKENS)),
            arrival_params=tuple((k, v) for k, v in data.get("arrival_params", ())),
            router_params=tuple((k, v) for k, v in data.get("router_params", ())),
            slo_ttft_ms=data.get("slo_ttft_ms"),
            slo_latency_ms=data.get("slo_latency_ms"),
            max_cycles=data.get("max_cycles"),
            label=data.get("label"),
        )

    # -- execution ---------------------------------------------------------------------
    def build_simulator(self) -> ClusterSimulator:
        """Assemble the arrival stream, router and replica fleet for this point."""

        self.validate()
        workload = resolve_workload(self.workload)
        policy = resolve_policy(self.policy)
        sampler = RequestSampler(
            seed=self.seed,
            prompt_tokens=self.prompt_tokens,
            output_tokens=self.output_tokens,
        )
        arrival = resolve_arrival(self.arrival)(
            sampler, self.rate, self.num_requests, **dict(self.arrival_params)
        )
        router = resolve_router(self.router)(
            self.replicas, **dict(self.router_params)
        )
        # One cost model (and thus one memo table) per distinct system preset:
        # homogeneous fleets simulate each step shape exactly once.
        cost_models: dict[str, SimStepCostModel] = {}
        frequencies: dict[str, float] = {}
        for name in dict.fromkeys(self.replica_systems()):
            system = scale_system(resolve_system(name), self.tier)
            frequencies[name] = system.frequency_ghz
            cost_models[name] = SimStepCostModel(
                system=system,
                workload=workload,
                policy=policy,
                tier=self.tier,
                max_cycles=self.max_cycles,
                seq_bucket_floor=SEQ_BUCKET_FLOOR,
            )
        fleet = [
            ReplicaSim(
                replica_id=i,
                cost_model=cost_models[name],
                frequency_ghz=frequencies[name],
                batch=BatchConfig(max_batch=self.max_batch),
                system_name=name,
            )
            for i, name in enumerate(self.replica_systems())
        ]
        return ClusterSimulator(
            arrival=arrival,
            router=router,
            replicas=fleet,
            slo=self.slo(),
            label=self.display_label,
            workload_name=self.workload,
            router_name=self.router,
        )

    def run(self) -> ClusterMetrics:
        """Simulate this cluster point and return its fleet metrics.

        Like :meth:`ServeScenario.run`, the module-level trace cache is
        cleared afterwards: a fleet visits up to ``max_batch x seq-buckets``
        distinct step shapes per distinct system preset, which would otherwise
        linger into whatever a long-lived process runs next.
        """

        try:
            return self.build_simulator().run()
        finally:
            clear_trace_cache()


def run_cluster_scenario(scenario: ClusterScenario) -> ClusterMetrics:
    """Module-level convenience: resolve and simulate one cluster scenario."""

    return scenario.run()
