"""ClusterScenario: one multi-replica serving point, named by registry strings.

The cluster counterpart of :class:`~repro.serve.scenario.ServeScenario`: a
frozen, content-hashed description of a fleet run -- workload / policy /
arrival / router / scheduler names, the per-replica system presets (the
heterogeneous-fleet axis), the ``"<P>p<D>d"`` prefill/decode disaggregation
split with its KV-transfer latency, and the traffic knobs.  Everything
resolves through :mod:`repro.registry`, so a router, scheduler or system
preset registered anywhere is immediately servable from the Python API,
``llamcat cluster`` and cluster sweep grids.

Replicas that share a system preset also share one memoized
:class:`~repro.serve.stepcost.SimStepCostModel`: a 16-replica homogeneous
fleet simulates each distinct ``(batch, seq-bucket)`` shape once, not 16
times.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, fields

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.simulator import ClusterSimulator, ReplicaSim
from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier, parse_tier, scale_system
from repro.registry import (
    resolve_arrival,
    resolve_policy,
    resolve_router,
    resolve_scheduler,
    resolve_system,
    resolve_workload,
)
from repro.serve.kvcache import DEFAULT_SWAP_MS, KVCacheConfig
from repro.serve.metrics import ServeSLO
from repro.serve.request import (
    DEFAULT_OUTPUT_TOKENS,
    DEFAULT_PROMPT_TOKENS,
    RequestSampler,
)
from repro.serve.scenario import DEFAULT_SCHEDULER, DEFAULT_SERVE_SYSTEM
from repro.serve.schedpolicy import DEFAULT_PREFILL_CHUNK, PrefillOnlyPolicy
from repro.serve.scheduler import SEQ_BUCKET_FLOOR, BatchConfig
from repro.serve.stepcost import SimStepCostModel
from repro.sim.runner import clear_trace_cache

#: The router a ClusterScenario uses when none is given.
DEFAULT_ROUTER = "round-robin"

_DISAGG_RE = re.compile(r"^(\d+)p(\d+)d$")


def parse_disaggregated(spec: str) -> tuple[int, int]:
    """Parse a ``"<P>p<D>d"`` fleet split into (prefill, decode) counts.

    ``"2p2d"`` is two prefill replicas feeding two decode replicas; both
    counts must be at least one.
    """

    match = _DISAGG_RE.match(spec.strip().lower())
    if match is None:
        raise ConfigError(
            f"disaggregated spec must look like '2p2d' "
            f"(<prefill>p<decode>d), got {spec!r}"
        )
    prefill, decode = int(match.group(1)), int(match.group(2))
    if prefill < 1 or decode < 1:
        raise ConfigError(
            f"a disaggregated fleet needs at least one prefill and one decode "
            f"replica, got {spec!r}"
        )
    return prefill, decode


@dataclass(frozen=True, slots=True)
class ClusterScenario:
    """One fleet-level serving simulation point.

    ``systems`` is the heterogeneous-fleet axis: a single preset name is
    replicated across all ``replicas``; a tuple of exactly ``replicas`` names
    gives each replica its own (tier-scaled) accelerator.

    ``disaggregated`` switches the fleet from colocated prefill+decode
    replicas to a ``"<P>p<D>d"`` split: the first P replicas only prefill
    (fed by ``router``), the remaining D only decode (fed by prefill-complete
    handoffs, each delayed by the ``kv_transfer_ms`` KV-cache transfer and
    dispatched by a second instance of the same router discipline).
    ``replicas`` must equal P + D.
    """

    workload: str
    arrival: str = "poisson"
    #: Requests/s for open-loop processes; user population for closed-loop.
    rate: float = 2000.0
    num_requests: int = 32
    replicas: int = 2
    router: str = DEFAULT_ROUTER
    #: Per-replica maximum batch (each replica batches independently).
    max_batch: int = 4
    seed: int = 0
    policy: str = "unopt"
    #: Step-planning policy on mixed/decode replicas (SCHEDULERS registry name).
    scheduler: str = DEFAULT_SCHEDULER
    #: Token budget of one chunked-prefill iteration (chunked scheduler only).
    prefill_chunk: int = DEFAULT_PREFILL_CHUNK
    #: Model the prefill phase; off, prompts are free and the run reproduces
    #: the legacy decode-only fleet bit-for-bit (colocated fleets only).
    prefill_cost: bool = True
    #: "<P>p<D>d" prefill/decode split, or None for a colocated fleet.
    disaggregated: str | None = None
    #: KV-cache transfer latency of one prefill-to-decode handoff.
    kv_transfer_ms: float = 0.0
    #: One system preset per replica; a single name is broadcast to the fleet.
    systems: tuple[str, ...] = (DEFAULT_SERVE_SYSTEM,)
    tier: ScaleTier = ScaleTier.CI
    prompt_tokens: tuple[int, int] = DEFAULT_PROMPT_TOKENS
    output_tokens: tuple[int, int] = DEFAULT_OUTPUT_TOKENS
    #: Extra keyword parameters for the arrival builder, as sorted pairs.
    arrival_params: tuple[tuple[str, object], ...] = ()
    #: Extra keyword parameters for the router builder (e.g. ``weights``).
    router_params: tuple[tuple[str, object], ...] = ()
    slo_ttft_ms: float | None = None
    slo_latency_ms: float | None = None
    max_cycles: int | None = None
    #: Telemetry sampling cadence in simulated milliseconds; None disables
    #: sampling.  Serialized only when set, so pre-telemetry scenario hashes
    #: (and store resume) stay valid.
    telemetry_ms: float | None = None
    #: Per-replica KV-cache budget in tokens, ``"system"`` for each replica's
    #: preset :attr:`~repro.config.system.SystemConfig.kv_budget_tokens`, or
    #: None to keep KV accounting off fleet-wide.  The KV knobs are serialized
    #: only when a budget is set, so pre-KV scenario hashes stay valid.
    kv_budget: int | str | None = None
    #: Paged-KV block size in tokens (1 = exact token-granular accounting).
    kv_block: int = 1
    #: PREEMPTIONS registry name: what eviction under KV pressure costs.
    preemption: str = "recompute"
    #: One-way KV swap transfer latency in milliseconds (swap policy only).
    kv_swap_ms: float = DEFAULT_SWAP_MS
    #: Display label (defaults to "<router>x<replicas>@<arrival>"); never hashed.
    label: str | None = None

    # -- validation / resolution -------------------------------------------------------
    def validate(self) -> "ClusterScenario":
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {self.num_requests}")
        if self.replicas <= 0:
            raise ConfigError(f"replicas must be positive, got {self.replicas}")
        if self.max_batch <= 0:
            raise ConfigError(f"max_batch must be positive, got {self.max_batch}")
        if self.prefill_chunk <= 0:
            raise ConfigError(f"prefill_chunk must be positive, got {self.prefill_chunk}")
        if self.kv_transfer_ms < 0:
            raise ConfigError(
                f"kv_transfer_ms must be >= 0, got {self.kv_transfer_ms}"
            )
        if self.telemetry_ms is not None and self.telemetry_ms <= 0:
            raise ConfigError(f"telemetry_ms must be positive, got {self.telemetry_ms}")
        if self.disaggregated is not None:
            prefill, decode = parse_disaggregated(self.disaggregated)
            if prefill + decode != self.replicas:
                raise ConfigError(
                    f"disaggregated spec {self.disaggregated!r} names "
                    f"{prefill + decode} replicas but the fleet has {self.replicas}"
                )
            if not self.prefill_cost:
                raise ConfigError(
                    "a disaggregated fleet needs prefill_cost=True (free "
                    "prefill leaves the prefill replicas nothing to do)"
                )
        if not isinstance(self.tier, ScaleTier):
            raise ConfigError(f"tier must be a ScaleTier, got {self.tier!r}")
        if not self.systems:
            raise ConfigError("ClusterScenario.systems must be non-empty")
        if len(self.systems) not in (1, self.replicas):
            raise ConfigError(
                f"systems must name 1 preset (homogeneous fleet) or exactly "
                f"{self.replicas} (one per replica), got {len(self.systems)}"
            )
        self.slo().validate()
        resolve_arrival(self.arrival)   # raises ConfigError on unknown names
        resolve_router(self.router)
        resolve_scheduler(self.scheduler)
        resolve_workload(self.workload)
        resolve_policy(self.policy)
        for system in self.systems:
            resolve_system(system)
        if self.kv_budget is not None:
            if not self.prefill_cost:
                raise ConfigError(
                    "kv_budget needs prefill_cost=True: recompute preemption "
                    "re-prefills evicted context"
                )
            for name in dict.fromkeys(self.replica_systems()):
                self.kv_config(scale_system(resolve_system(name), self.tier)).validate()
        return self

    def replica_systems(self) -> tuple[str, ...]:
        """The fleet's system preset names, one entry per replica."""

        if len(self.systems) == 1:
            return self.systems * self.replicas
        return self.systems

    def replica_roles(self) -> tuple[str, ...]:
        """Role tags, one per replica: mixed, or the P prefill then D decode."""

        if self.disaggregated is None:
            return ("mixed",) * self.replicas
        prefill, decode = parse_disaggregated(self.disaggregated)
        return ("prefill",) * prefill + ("decode",) * decode

    def canonical_disaggregated(self) -> str | None:
        """The fleet split in canonical ``"<P>p<D>d"`` spelling (None when
        colocated).

        :func:`parse_disaggregated` accepts case/whitespace variants
        (``" 2P2D "``), so hashes and labels must go through this
        normalization -- otherwise equivalent scenarios would occupy distinct
        result-store keys and re-simulate on resume.
        """

        if self.disaggregated is None:
            return None
        prefill, decode = parse_disaggregated(self.disaggregated)
        return f"{prefill}p{decode}d"

    def slo(self) -> ServeSLO:
        return ServeSLO(ttft_ms=self.slo_ttft_ms, latency_ms=self.slo_latency_ms)

    def kv_config(self, system) -> KVCacheConfig:
        """The KV memory model of one replica (accounting off when no budget).

        ``kv_budget="system"`` resolves against the replica's own tier-scaled
        :class:`~repro.config.system.SystemConfig`, so a heterogeneous fleet
        gives each replica its preset's budget.
        """

        if self.kv_budget is None:
            return KVCacheConfig()
        if self.kv_budget == "system":
            budget = system.kv_budget_tokens
        elif isinstance(self.kv_budget, int):
            budget = self.kv_budget
        else:
            raise ConfigError(
                f'kv_budget must be a token count, "system" or None, '
                f"got {self.kv_budget!r}"
            )
        return KVCacheConfig(
            budget_tokens=budget,
            block_tokens=self.kv_block,
            preemption=self.preemption,
            swap_ms=self.kv_swap_ms,
        )

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        fleet = self.canonical_disaggregated()
        if fleet is None:
            fleet = self.replicas
        return f"{self.router}x{fleet}@{self.arrival}"

    # -- identity ----------------------------------------------------------------------
    def config_dict(self) -> dict:
        """The outcome-determining configuration as JSON-able data.

        Display labels are excluded, mirroring :meth:`ServeScenario.config_dict`:
        two cluster points that differ only in labelling share one simulation.
        """

        data = self.to_dict()
        data.pop("label")
        return data

    def key(self) -> str:
        """Content hash identifying this cluster simulation (store/dedup key)."""

        canonical = json.dumps(self.config_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- (de)serialization -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "arrival": self.arrival,
            "rate": self.rate,
            "num_requests": self.num_requests,
            "replicas": self.replicas,
            "router": self.router,
            "max_batch": self.max_batch,
            "seed": self.seed,
            "policy": self.policy,
            "scheduler": self.scheduler,
            "prefill_chunk": self.prefill_chunk,
            "prefill_cost": self.prefill_cost,
            "disaggregated": self.canonical_disaggregated(),
            "kv_transfer_ms": self.kv_transfer_ms,
            "systems": list(self.systems),
            "tier": self.tier.name,
            "prompt_tokens": list(self.prompt_tokens),
            "output_tokens": list(self.output_tokens),
            "arrival_params": [[k, v] for k, v in self.arrival_params],
            "router_params": [[k, v] for k, v in self.router_params],
            "slo_ttft_ms": self.slo_ttft_ms,
            "slo_latency_ms": self.slo_latency_ms,
            "max_cycles": self.max_cycles,
            "label": self.label,
        } | ({} if self.telemetry_ms is None else {"telemetry_ms": self.telemetry_ms}) | (
            {}
            if self.kv_budget is None
            else {
                "kv_budget": self.kv_budget,
                "kv_block": self.kv_block,
                "preemption": self.preemption,
                "kv_swap_ms": self.kv_swap_ms,
            }
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterScenario":
        defaults = {f.name: f.default for f in fields(cls)}
        return cls(
            workload=data["workload"],
            arrival=data.get("arrival", "poisson"),
            rate=data.get("rate", defaults["rate"]),
            num_requests=data.get("num_requests", defaults["num_requests"]),
            replicas=data.get("replicas", defaults["replicas"]),
            router=data.get("router", DEFAULT_ROUTER),
            max_batch=data.get("max_batch", defaults["max_batch"]),
            seed=data.get("seed", 0),
            policy=data.get("policy", "unopt"),
            scheduler=data.get("scheduler", DEFAULT_SCHEDULER),
            prefill_chunk=data.get("prefill_chunk", DEFAULT_PREFILL_CHUNK),
            prefill_cost=data.get("prefill_cost", True),
            disaggregated=data.get("disaggregated"),
            kv_transfer_ms=data.get("kv_transfer_ms", 0.0),
            systems=tuple(data.get("systems", (DEFAULT_SERVE_SYSTEM,))),
            tier=parse_tier(data.get("tier", ScaleTier.CI.name)),
            prompt_tokens=tuple(data.get("prompt_tokens", DEFAULT_PROMPT_TOKENS)),
            output_tokens=tuple(data.get("output_tokens", DEFAULT_OUTPUT_TOKENS)),
            arrival_params=tuple((k, v) for k, v in data.get("arrival_params", ())),
            router_params=tuple((k, v) for k, v in data.get("router_params", ())),
            slo_ttft_ms=data.get("slo_ttft_ms"),
            slo_latency_ms=data.get("slo_latency_ms"),
            max_cycles=data.get("max_cycles"),
            telemetry_ms=data.get("telemetry_ms"),
            kv_budget=data.get("kv_budget"),
            kv_block=data.get("kv_block", 1),
            preemption=data.get("preemption", "recompute"),
            kv_swap_ms=data.get("kv_swap_ms", DEFAULT_SWAP_MS),
            label=data.get("label"),
        )

    # -- execution ---------------------------------------------------------------------
    def build_simulator(self) -> ClusterSimulator:
        """Assemble the arrival stream, router and replica fleet for this point."""

        self.validate()
        workload = resolve_workload(self.workload)
        policy = resolve_policy(self.policy)
        sampler = RequestSampler(
            seed=self.seed,
            prompt_tokens=self.prompt_tokens,
            output_tokens=self.output_tokens,
        )
        arrival = resolve_arrival(self.arrival)(
            sampler, self.rate, self.num_requests, **dict(self.arrival_params)
        )
        roles = self.replica_roles()
        router_builder = resolve_router(self.router)
        router_params = dict(self.router_params)
        # Arrivals are spread over the arrival-eligible replicas: the whole
        # fleet when colocated, the prefill replicas when disaggregated (the
        # decode side then gets its own instance of the same discipline).
        entry_count = roles.count("prefill") if self.disaggregated else self.replicas
        router = router_builder(entry_count, **router_params)
        decode_router = (
            router_builder(roles.count("decode"), **router_params)
            if self.disaggregated
            else None
        )
        scheduler_builder = resolve_scheduler(self.scheduler)
        # One cost model (and thus one memo table) per distinct system preset:
        # homogeneous fleets simulate each step shape exactly once.
        cost_models: dict[str, SimStepCostModel] = {}
        frequencies: dict[str, float] = {}
        kv_configs: dict[str, KVCacheConfig] = {}
        for name in dict.fromkeys(self.replica_systems()):
            system = scale_system(resolve_system(name), self.tier)
            frequencies[name] = system.frequency_ghz
            kv_configs[name] = self.kv_config(system)
            cost_models[name] = SimStepCostModel(
                system=system,
                workload=workload,
                policy=policy,
                tier=self.tier,
                max_cycles=self.max_cycles,
                seq_bucket_floor=SEQ_BUCKET_FLOOR,
            )
        fleet = [
            ReplicaSim(
                replica_id=i,
                cost_model=cost_models[name],
                frequency_ghz=frequencies[name],
                batch=BatchConfig(
                    max_batch=self.max_batch,
                    prefill=self.prefill_cost,
                    kv=kv_configs[name],
                ),
                system_name=name,
                role=role,
                policy=(
                    PrefillOnlyPolicy()
                    if role == "prefill"
                    else scheduler_builder(prefill_chunk=self.prefill_chunk)
                ),
            )
            for i, (name, role) in enumerate(zip(self.replica_systems(), roles, strict=True))
        ]
        return ClusterSimulator(
            arrival=arrival,
            router=router,
            replicas=fleet,
            slo=self.slo(),
            label=self.display_label,
            workload_name=self.workload,
            router_name=self.router,
            kv_transfer_s=self.kv_transfer_ms / 1e3,
            decode_router=decode_router,
            telemetry_ms=self.telemetry_ms,
        )

    def run(self, tracer=None, profiler=None, probe=None) -> ClusterMetrics:
        """Simulate this cluster point and return its fleet metrics.

        Like :meth:`ServeScenario.run`, the module-level trace cache is
        cleared afterwards: a fleet visits up to ``max_batch x seq-buckets``
        distinct step shapes per distinct system preset, which would otherwise
        linger into whatever a long-lived process runs next.

        ``tracer`` receives the fleet's event timeline (None keeps the
        zero-overhead null tracer); ``profiler`` (a
        :class:`~repro.obs.profile.Profiler`) accumulates the fleet's
        wall-clock profile; ``probe`` (a
        :class:`~repro.analysis.runtime.StepProbe`) collects per-step
        determinism digests -- all side channels that never influence the
        metrics.
        """

        simulator = self.build_simulator()
        try:
            metrics = simulator.run(tracer=tracer, probe=probe)
        finally:
            clear_trace_cache()
        if profiler is not None:
            for step_cost in simulator.profile.get("step_cost", ()):
                profiler.add(
                    "cluster.step_cost_build",
                    step_cost.get("build_wall_s", 0.0),
                    calls=step_cost.get("misses", 0),
                )
                profiler.count("cluster.step_cost_hit", step_cost.get("hits", 0))
        return metrics


def run_cluster_scenario(scenario: ClusterScenario) -> ClusterMetrics:
    """Module-level convenience: resolve and simulate one cluster scenario."""

    return scenario.run()
