"""Cluster-scale serving: a fleet of replicas behind a pluggable router.

``repro.cluster`` layers multi-replica serving on top of :mod:`repro.serve`:
N accelerator replicas -- homogeneous or mixed system presets -- each run
their own continuous-batching scheduler, step-planning policy and memoized
step-cost table, while a router registered under
:data:`repro.registry.ROUTERS` (round-robin, least-outstanding,
join-shortest-queue, weighted) spreads one shared arrival stream across the
fleet.  Fleets are colocated (every replica prefills and decodes) or
*disaggregated* (``disaggregated="2p2d"``: prefill replicas process prompts
and hand each request off to a decode replica after a configurable
KV-transfer latency).  :class:`ClusterMetrics` aggregates fleet throughput,
merged latency percentiles, per-replica and per-phase utilization, handoff
counts and the load-imbalance factor.

Quick start::

    from repro.cluster import ClusterScenario

    metrics = ClusterScenario(
        workload="llama3-70b", replicas=4, router="least-outstanding",
        arrival="poisson", rate=4000, seed=0,
    ).run()
    print(metrics.summary())

Cluster points also sweep through the parallel executor::

    from repro.cluster import ClusterSweepSpec
    from repro.sweep import run_sweep

    spec = ClusterSweepSpec(
        workloads=("llama3-70b",), rates=(2000, 4000),
        replica_counts=(2, 4), routers=("round-robin", "join-shortest-queue"),
    )
    report = run_sweep(spec.expand(), jobs=4)
"""

from repro.cluster.metrics import ClusterMetrics, ReplicaMetrics
from repro.cluster.router import (
    JoinShortestQueueRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    WeightedRouter,
)
from repro.cluster.scenario import (
    ClusterScenario,
    parse_disaggregated,
    run_cluster_scenario,
)
from repro.cluster.simulator import ClusterSimulator, ReplicaSim
from repro.cluster.sweep import ClusterPoint, ClusterSweepSpec

__all__ = [
    "ClusterMetrics",
    "ClusterPoint",
    "ClusterScenario",
    "ClusterSimulator",
    "ClusterSweepSpec",
    "JoinShortestQueueRouter",
    "LeastOutstandingRouter",
    "ReplicaMetrics",
    "ReplicaSim",
    "RoundRobinRouter",
    "Router",
    "WeightedRouter",
    "parse_disaggregated",
    "run_cluster_scenario",
]
