"""Request routers: how a shared arrival stream is spread over replicas.

A :class:`Router` makes one decision per request: which replica receives it.
The decision happens at the request's arrival time, so state-aware routers
(least-outstanding, join-shortest-queue) observe exactly the queues a real
front-end load balancer would see.  Routers are deliberately deterministic --
ties break towards the lowest replica index -- so a seeded cluster run
reproduces every routing decision bit-for-bit.

Builders are registered under :data:`repro.registry.ROUTERS` via
``@register_router`` with the uniform signature ``(num_replicas, **params)``,
which makes a new routing discipline immediately addressable from
``llamcat cluster --router <name>``, :class:`~repro.cluster.scenario.ClusterScenario`
and cluster sweep grids.

The replica objects handed to :meth:`Router.select` expose two load signals:

* ``queue_depth``  -- requests routed but not yet admitted into the batch;
* ``outstanding``  -- queued plus currently running requests.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ConfigError
from repro.registry import register_router
from repro.serve.request import Request


class Router:
    """Base class: assign each arriving request to one replica."""

    name = "router"

    def __init__(self, num_replicas: int) -> None:
        if num_replicas <= 0:
            raise ConfigError(f"num_replicas must be positive, got {num_replicas}")
        self.num_replicas = num_replicas

    def select(self, request: Request, replicas: Sequence, now_s: float) -> int:
        """The replica index in ``[0, num_replicas)`` that receives ``request``."""

        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order, oblivious to load."""

    name = "round-robin"

    def __init__(self, num_replicas: int) -> None:
        super().__init__(num_replicas)
        self._next = 0

    def select(self, request: Request, replicas: Sequence, now_s: float) -> int:
        chosen = self._next
        self._next = (self._next + 1) % self.num_replicas
        return chosen


class LeastOutstandingRouter(Router):
    """Send each request to the replica with the fewest in-flight requests.

    "In flight" counts both the queued and the running requests, which is what
    a front-end tracking issued-minus-completed per backend actually knows.
    """

    name = "least-outstanding"

    def select(self, request: Request, replicas: Sequence, now_s: float) -> int:
        return min(range(self.num_replicas), key=lambda i: (replicas[i].outstanding, i))


class JoinShortestQueueRouter(Router):
    """Send each request to the replica with the shortest admission queue.

    Unlike least-outstanding this ignores the running batch: a replica that is
    busy but has an empty queue looks as attractive as an idle one, which
    mirrors queue-length-only dispatching (the classic JSQ policy).
    """

    name = "join-shortest-queue"

    def select(self, request: Request, replicas: Sequence, now_s: float) -> int:
        return min(range(self.num_replicas), key=lambda i: (replicas[i].queue_depth, i))


class WeightedRouter(Router):
    """Smooth weighted round-robin over per-replica weights.

    The classic nginx algorithm: every pick adds each replica's weight to its
    running credit, routes to the highest credit (lowest index on ties) and
    subtracts the weight total from the winner.  Over any window the share of
    requests a replica receives is proportional to its weight, without the
    bursts a naive weighted cycle would produce.  With equal weights this
    degenerates to plain round-robin.
    """

    name = "weighted"

    def __init__(self, num_replicas: int, weights: Sequence[float] = ()) -> None:
        super().__init__(num_replicas)
        expanded = tuple(float(w) for w in weights) if weights else (1.0,) * num_replicas
        if len(expanded) != num_replicas:
            raise ConfigError(
                f"weighted router needs one weight per replica, got "
                f"{len(expanded)} weights for {num_replicas} replicas"
            )
        if any(w <= 0 for w in expanded):
            raise ConfigError(f"router weights must be positive, got {expanded}")
        self.weights = expanded
        self._credit = [0.0] * num_replicas

    def select(self, request: Request, replicas: Sequence, now_s: float) -> int:
        for i, weight in enumerate(self.weights):
            self._credit[i] += weight
        chosen = max(range(self.num_replicas), key=lambda i: (self._credit[i], -i))
        self._credit[chosen] -= sum(self.weights)
        return chosen


@register_router("round-robin", aliases=("rr",),
                 description="Cycle through replicas in arrival order")
def round_robin_router(num_replicas: int) -> Router:
    return RoundRobinRouter(num_replicas)


@register_router("least-outstanding", aliases=("lor",),
                 description="Fewest in-flight (queued + running) requests wins")
def least_outstanding_router(num_replicas: int) -> Router:
    return LeastOutstandingRouter(num_replicas)


@register_router("join-shortest-queue", aliases=("jsq",),
                 description="Shortest admission queue wins (running batch ignored)")
def join_shortest_queue_router(num_replicas: int) -> Router:
    return JoinShortestQueueRouter(num_replicas)


@register_router("weighted", aliases=("wrr",),
                 description="Smooth weighted round-robin (`weights=` parameter)")
def weighted_router(num_replicas: int, weights: Sequence[float] = ()) -> Router:
    return WeightedRouter(num_replicas, weights=weights)
