"""The unified scenario API: the single entry point for naming and running
simulations.

A :class:`Scenario` names one simulation point entirely through registry
strings -- workload, system and policy names plus the scalar knobs (sequence
length, L2 capacity, scale tier, dispatch ordering, dataflow constraints).  It
is the common currency of the stack: the CLI, declarative sweep grids
(:mod:`repro.sweep.spec`) and the figure/table harnesses all resolve their
points through it, and its content key is exactly the
:meth:`~repro.sweep.spec.SweepPoint.key` hash, so results stored by any layer
are shared by all of them.

Quick start::

    from repro.api import Simulation

    result = (
        Simulation.builder()
        .system("table5")
        .workload("llama3-70b", seq_len=8192)
        .policy("dynmg+BMA")
        .tier("ci")
        .run()
    )
    print(result.summary())

Anything registered through :mod:`repro.registry` is immediately addressable
here, from ``llamcat`` and from sweep grids, with zero further edits.

The serving counterpart, :class:`~repro.serve.scenario.ServeScenario`, is
re-exported here: it names one request-stream serving run (workload, arrival
process, rate, SLOs) the same way a :class:`Scenario` names one kernel run.
So is the fleet counterpart, :class:`~repro.cluster.scenario.ClusterScenario`,
which adds the replica count, the router and the per-replica system presets
(heterogeneous fleets) on top.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, NamedTuple

from repro.cluster.scenario import ClusterScenario, run_cluster_scenario
from repro.common.errors import ConfigError
from repro.config.policies import PolicyConfig
from repro.config.scale import ScaleTier, parse_tier, scale_experiment
from repro.config.system import MIB, SystemConfig
from repro.config.workload import WorkloadConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.ordering import ThreadBlockOrdering, parse_ordering
from repro.registry import resolve_policy, resolve_system, resolve_workload
from repro.serve.scenario import ServeScenario, run_serve_scenario
from repro.sim.results import SimResult
from repro.sim.runner import PolicyComparison, compare_policies, run_policy
from repro.sweep.spec import SweepPoint, config_to_jsonable, resolved_point

#: The system name a Scenario uses when none is given.
DEFAULT_SYSTEM = "table5"




class ResolvedScenario(NamedTuple):
    """Concrete, tier-scaled configuration objects behind a Scenario."""

    system: SystemConfig
    workload: WorkloadConfig
    policy: PolicyConfig


@dataclass(frozen=True, slots=True)
class Scenario:
    """One simulation point, named by registry strings.

    ``workload``, ``system`` and ``policy`` are names resolved through
    :mod:`repro.registry`; everything else parameterises the resolved point.
    ``policy_config`` is the escape hatch for parameter sweeps (Tables 2-4
    vary throttling knobs that no label captures): when set, it is simulated
    verbatim and ``policy`` is just the display name.
    """

    workload: str
    policy: str = "unopt"
    system: str = DEFAULT_SYSTEM
    #: Requested (unscaled) sequence length; None keeps the builder's default.
    seq_len: int | None = None
    #: Total L2 capacity override in MiB; None keeps the system's capacity.
    l2_mib: int | None = None
    tier: ScaleTier = ScaleTier.CI
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED
    constraints: DataflowConstraints | None = None
    max_cycles: int | None = None
    #: Display label (defaults to the policy name); never part of the key.
    label: str | None = None
    policy_config: PolicyConfig | None = None

    @classmethod
    def create(
        cls, workload: str, policy: "str | PolicyConfig" = "unopt", **kwargs
    ) -> "Scenario":
        """Build a Scenario from a policy label *or* an explicit PolicyConfig.

        The single construction path used by sweep grids and the experiment
        harnesses: label strings resolve through the registry, explicit
        configs (parameter sweeps) ride along as ``policy_config``.
        """

        if isinstance(policy, PolicyConfig):
            return cls(workload=workload, policy=policy.label, policy_config=policy, **kwargs)
        return cls(workload=workload, policy=policy, **kwargs)

    # -- validation / resolution -------------------------------------------------------
    def validate(self) -> "Scenario":
        if self.seq_len is not None and self.seq_len <= 0:
            raise ConfigError(f"seq_len must be positive, got {self.seq_len}")
        if self.l2_mib is not None and self.l2_mib <= 0:
            raise ConfigError(f"l2_mib must be positive, got {self.l2_mib}")
        if not isinstance(self.tier, ScaleTier):
            raise ConfigError(f"tier must be a ScaleTier, got {self.tier!r}")
        if not isinstance(self.ordering, ThreadBlockOrdering):
            raise ConfigError(
                f"ordering must be a ThreadBlockOrdering, got {self.ordering!r} "
                f"(use repro.api.parse_ordering for names)"
            )
        self.resolve()  # raises ConfigError on unknown names
        return self

    def _resolve_unscaled(self) -> ResolvedScenario:
        """Registry resolution + overrides, before tier scaling."""

        system = resolve_system(self.system)
        if self.l2_mib is not None:
            system = system.with_l2_size(self.l2_mib * MIB)
        workload = resolve_workload(self.workload, self.seq_len)
        policy = (
            self.policy_config if self.policy_config is not None
            else resolve_policy(self.policy)
        )
        return ResolvedScenario(system=system, workload=workload, policy=policy)

    def resolve(self) -> ResolvedScenario:
        """Resolve names through the registries and apply overrides + scaling."""

        unscaled = self._resolve_unscaled()
        system, workload = scale_experiment(unscaled.system, unscaled.workload, self.tier)
        return ResolvedScenario(system=system, workload=workload, policy=unscaled.policy)

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else self.policy

    @property
    def requested_seq_len(self) -> int:
        """The unscaled sequence length (builder default when not overridden)."""

        if self.seq_len is not None:
            return self.seq_len
        return resolve_workload(self.workload).shape.seq_len

    # -- bridges to the sweep subsystem ------------------------------------------------
    def to_point(
        self,
        label: str | None = None,
        extra_coords: Iterable[tuple[str, object]] = (),
    ) -> SweepPoint:
        """Resolve into a fully scaled :class:`SweepPoint` job descriptor.

        The point's content hash is the scenario's identity: two scenarios
        that resolve to the same configuration share one key (and thus one
        simulation / one result-store record).
        """

        unscaled = self._resolve_unscaled()
        system, workload = scale_experiment(unscaled.system, unscaled.workload, self.tier)
        coords: dict[str, object] = {
            "model": self.workload,
            # The as-requested (unscaled) sequence length, matching user flags.
            "seq_len": unscaled.workload.shape.seq_len,
            "policy": self.policy,
            "l2_mib": self.l2_mib,
            "tier": self.tier.name,
        }
        if self.system != DEFAULT_SYSTEM:
            coords["system"] = self.system
        coords.update(dict(extra_coords))
        return resolved_point(
            system,
            workload,
            unscaled.policy,
            label if label is not None else self.display_label,
            coords,
            max_cycles=self.max_cycles,
            ordering=self.ordering,
            constraints=self.constraints,
        )

    def key(self) -> str:
        """Content hash shared with :meth:`SweepPoint.key` (store/dedup key)."""

        return self.to_point().key()

    # -- (de)serialization -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "system": self.system,
            "seq_len": self.seq_len,
            "l2_mib": self.l2_mib,
            "tier": self.tier.name,
            "ordering": self.ordering.value,
            "constraints": config_to_jsonable(self.constraints),
            "max_cycles": self.max_cycles,
            "label": self.label,
            "policy_config": config_to_jsonable(self.policy_config),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        constraints = data.get("constraints")
        policy_config = data.get("policy_config")
        return cls(
            workload=data["workload"],
            policy=data.get("policy", "unopt"),
            system=data.get("system", DEFAULT_SYSTEM),
            seq_len=data.get("seq_len"),
            l2_mib=data.get("l2_mib"),
            tier=parse_tier(data.get("tier", ScaleTier.CI.name)),
            ordering=parse_ordering(
                data.get("ordering", ThreadBlockOrdering.GQA_SHARED.value)
            ),
            constraints=(
                DataflowConstraints(**constraints) if constraints is not None else None
            ),
            max_cycles=data.get("max_cycles"),
            label=data.get("label"),
            policy_config=(
                PolicyConfig.from_dict(policy_config) if policy_config is not None else None
            ),
        )

    # -- execution ---------------------------------------------------------------------
    def run(self) -> SimResult:
        """Simulate this scenario (reusing cached traces) and return the result."""

        resolved = self.resolve()
        return run_policy(
            resolved.system,
            resolved.workload,
            resolved.policy,
            label=self.display_label,
            max_cycles=self.max_cycles,
            ordering=self.ordering,
            constraints=self.constraints,
        )

    def describe(self) -> str:
        return self.to_point().describe()


class SimulationBuilder:
    """Fluent construction of a :class:`Scenario` / :class:`Simulation`."""

    def __init__(self) -> None:
        self._fields: dict[str, object] = {}

    def workload(self, name: str, seq_len: int | None = None) -> "SimulationBuilder":
        self._fields["workload"] = name
        if seq_len is not None:
            self._fields["seq_len"] = seq_len
        return self

    def seq_len(self, seq_len: int) -> "SimulationBuilder":
        self._fields["seq_len"] = seq_len
        return self

    def system(self, name: str) -> "SimulationBuilder":
        self._fields["system"] = name
        return self

    def policy(self, policy: str | PolicyConfig) -> "SimulationBuilder":
        if isinstance(policy, PolicyConfig):
            self._fields["policy"] = policy.label
            self._fields["policy_config"] = policy
        else:
            self._fields["policy"] = policy
            # A later label call overrides an earlier explicit config entirely.
            self._fields.pop("policy_config", None)
        return self

    def tier(self, tier: ScaleTier | str) -> "SimulationBuilder":
        self._fields["tier"] = parse_tier(tier)
        return self

    def l2_mib(self, l2_mib: int) -> "SimulationBuilder":
        self._fields["l2_mib"] = l2_mib
        return self

    def ordering(self, ordering: ThreadBlockOrdering | str) -> "SimulationBuilder":
        self._fields["ordering"] = parse_ordering(ordering)
        return self

    def constraints(self, constraints: DataflowConstraints) -> "SimulationBuilder":
        self._fields["constraints"] = constraints
        return self

    def max_cycles(self, max_cycles: int) -> "SimulationBuilder":
        self._fields["max_cycles"] = max_cycles
        return self

    def label(self, label: str) -> "SimulationBuilder":
        self._fields["label"] = label
        return self

    def build(self) -> Scenario:
        if "workload" not in self._fields:
            raise ConfigError("SimulationBuilder needs .workload(name) before .build()")
        return Scenario(**self._fields).validate()  # type: ignore[arg-type]

    def run(self) -> SimResult:
        return self.build().run()


class Simulation:
    """A runnable simulation bound to one :class:`Scenario`."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    @classmethod
    def builder(cls) -> SimulationBuilder:
        return SimulationBuilder()

    @classmethod
    def of(cls, workload: str, **kwargs) -> "Simulation":
        """Shorthand: ``Simulation.of("llama3-70b", policy="dynmg", tier=...)``."""

        if "tier" in kwargs:
            kwargs["tier"] = parse_tier(kwargs["tier"])
        if "ordering" in kwargs:
            kwargs["ordering"] = parse_ordering(kwargs["ordering"])
        return cls(Scenario(workload=workload, **kwargs).validate())

    def run(self) -> SimResult:
        return self.scenario.run()

    def compare(
        self, policies: Iterable[str], baseline: str = "unopt"
    ) -> PolicyComparison:
        """Run several policy labels on this scenario's workload and system.

        Every speedup is normalised against ``baseline`` (run additionally if
        it is not among ``policies``); ordering and constraints are honoured.
        """

        scenario = self.scenario
        resolved = scenario.resolve()
        labelled = {baseline: resolve_policy(baseline)}
        labelled.update({label: resolve_policy(label) for label in policies})
        return compare_policies(
            resolved.system,
            resolved.workload,
            labelled,
            baseline_label=baseline,
            max_cycles=scenario.max_cycles,
            ordering=scenario.ordering,
            constraints=scenario.constraints,
        )


def run_scenario(scenario: Scenario) -> SimResult:
    """Module-level convenience: resolve and simulate one scenario."""

    return scenario.run()


def scenario_matrix(
    workloads: Iterable[str],
    policies: Iterable[str],
    base: Scenario | None = None,
    **overrides,
) -> list[Scenario]:
    """Cartesian helper: one Scenario per (workload, policy) pair.

    ``base`` supplies the shared knobs (tier, seq_len, ...); ``overrides`` are
    applied on top.  Useful for ad-hoc grids without a full SweepSpec.
    """

    template = base if base is not None else Scenario(workload="llama3-70b")
    if "tier" in overrides:
        overrides["tier"] = parse_tier(overrides["tier"])  # accept strings
    if "ordering" in overrides:
        overrides["ordering"] = parse_ordering(overrides["ordering"])
    # The cell's policy label must win outright: a policy_config or display
    # label inherited from `base` would silently override every cell's policy.
    cell_fields = {"policy_config": None, "label": None, **overrides}
    return [
        replace(template, workload=w, policy=p, **cell_fields)
        for w in workloads
        for p in policies
    ]


__all__ = [
    "ClusterScenario",
    "DEFAULT_SYSTEM",
    "ResolvedScenario",
    "Scenario",
    "ServeScenario",
    "Simulation",
    "SimulationBuilder",
    "parse_ordering",
    "run_cluster_scenario",
    "run_scenario",
    "run_serve_scenario",
    "scenario_matrix",
]
