"""Serving requests: what arrives, and the sampled token budgets it carries.

A :class:`Request` is one user's generation job: it shows up at ``arrival_s``
with a ``prompt_tokens``-token prompt that must first be *prefilled* (processed
into the KV cache, paying :meth:`~repro.serve.stepcost.StepCostModel.prefill_cycles`
under the scheduler's step-planning policy) before ``output_tokens`` are
decoded one per iteration.  Requests are frozen -- all mutable progress
(prompt tokens prefilled, tokens generated so far, admission/prefill-end/
first-token/finish timestamps) lives in the scheduler's
:class:`~repro.serve.scheduler.ActiveRequest` wrapper, so arrival processes
can hand the same request objects to any number of simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed, make_rng

#: Default (min, max) prompt lengths, inclusive, in tokens.
DEFAULT_PROMPT_TOKENS = (128, 1024)

#: Default (min, max) output lengths, inclusive, in tokens.
DEFAULT_OUTPUT_TOKENS = (16, 64)


@dataclass(frozen=True, slots=True)
class Request:
    """One prefill-then-decode request of a serving stream."""

    request_id: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int

    def validate(self) -> "Request":
        if self.arrival_s < 0:
            raise ConfigError(f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.prompt_tokens <= 0:
            raise ConfigError(f"prompt_tokens must be positive, got {self.prompt_tokens}")
        if self.output_tokens <= 0:
            raise ConfigError(f"output_tokens must be positive, got {self.output_tokens}")
        return self

    def context_at(self, generated: int) -> int:
        """KV-cache length once ``generated`` output tokens have been produced."""

        return self.prompt_tokens + generated


class RequestSampler:
    """Draws per-request token budgets from a seeded RNG.

    Arrival processes own the *timing* of a stream; the sampler owns the
    *sizes*.  It derives an independent RNG stream from the run seed, so the
    sampled sizes do not depend on how many timing draws an arrival process
    makes (two processes with the same seed sample identical size sequences).
    """

    #: Stream id mixed into the seed so size draws never alias timing draws.
    _STREAM = 0x5A

    def __init__(
        self,
        seed: int,
        prompt_tokens: tuple[int, int] = DEFAULT_PROMPT_TOKENS,
        output_tokens: tuple[int, int] = DEFAULT_OUTPUT_TOKENS,
    ) -> None:
        for name, (lo, hi) in (("prompt_tokens", prompt_tokens), ("output_tokens", output_tokens)):
            if lo <= 0 or hi < lo:
                raise ConfigError(
                    f"{name} range must satisfy 0 < min <= max, got ({lo}, {hi})"
                )
        self.seed = int(seed)
        self.prompt_tokens = (int(prompt_tokens[0]), int(prompt_tokens[1]))
        self.output_tokens = (int(output_tokens[0]), int(output_tokens[1]))
        self._rng = make_rng(derive_seed(self.seed, self._STREAM))
        self._next_id = 0

    def sample(self, arrival_s: float) -> Request:
        """Create the next request of the stream, arriving at ``arrival_s``."""

        request = Request(
            request_id=self._next_id,
            arrival_s=float(arrival_s),
            prompt_tokens=int(self._rng.integers(self.prompt_tokens[0], self.prompt_tokens[1] + 1)),
            output_tokens=int(self._rng.integers(self.output_tokens[0], self.output_tokens[1] + 1)),
        ).validate()
        self._next_id += 1
        return request
