"""The request-level serving simulator.

:class:`ServingSimulator` composes the serve components -- an arrival process,
the continuous-batching scheduler, a step-planning policy and a step-cost
model -- into an event loop whose inner step is one cycle-engine evaluation:

1. admit arrived requests into free batch slots (FCFS);
2. ask the step-planning policy for this iteration's mix of prefill chunks
   and decode tokens, and the cost model for its cycles (decode shape plus
   chunk-bucketed prefill shape);
3. advance the clock, apply the plan -- prompt chunks shrink
   ``prefill_remaining``, decodes credit one output token -- and evict the
   finished requests (notifying the arrival process, which closes the loop
   for closed-loop traffic).

When the batch is empty the clock jumps to the next arrival, so idle gaps cost
nothing to simulate.  A plan whose total cost is zero cycles (a prefill-free
configuration) is applied instantly without consuming a step, which is what
makes ``decode-first`` with prefill cost disabled bit-for-bit identical to the
legacy decode-only scheduler.  The loop is fully deterministic: a seeded
arrival stream plus a deterministic cost model reproduces every timestamp
bit-for-bit.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.common.errors import ConfigError, LivelockError
from repro.obs.telemetry import TelemetryRecorder
from repro.obs.tracer import CAT_STEP, NULL_TRACER, Tracer, trace_request
from repro.serve.arrival import ArrivalProcess
from repro.serve.metrics import RequestMetrics, ServeMetrics, ServeSLO
from repro.serve.schedpolicy import DecodeFirstPolicy, SchedulerPolicy, StepPlan
from repro.serve.scheduler import (
    SEQ_BUCKET_FLOOR,
    ActiveRequest,
    BatchConfig,
    ContinuousBatchScheduler,
    bucket_context,
)
from repro.serve.stepcost import StepCostModel

#: Hard cap on scheduler iterations -- a guard against a stream that can never
#: drain (e.g. a zero-cost model paired with an infinite closed loop).
MAX_STEPS = 10_000_000

#: Trace pid of the per-request swimlanes (the accelerator itself is pid 0).
REQUESTS_PID = 1

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class ServeStallReport:
    """Scheduler-occupancy snapshot attached to a serve-loop LivelockError.

    The serve-layer counterpart of :class:`repro.sim.liveness.StallReport`:
    when the loop trips the :data:`MAX_STEPS` guard or detects a no-progress
    state (admission blocked on KV memory with an empty batch), the error
    carries queue, batch and KV occupancy so the stall is diagnosable from
    the exception alone.
    """

    reason: str
    now_s: float
    steps: int
    completed: int
    running: int
    waiting: int
    next_arrival_s: float | None
    kv_blocked: bool = False
    preemptions: int = 0
    kv_used_blocks: int | None = None
    kv_capacity_blocks: int | None = None
    replica_id: int | None = None

    def render(self) -> str:
        where = "serve loop" if self.replica_id is None else f"replica {self.replica_id}"
        lines = [
            f"{where} stalled ({self.reason}) at t={self.now_s:.6f}s after "
            f"{self.steps} steps:",
            f"  completed={self.completed} running={self.running} "
            f"waiting={self.waiting} next_arrival_s={self.next_arrival_s}",
        ]
        if self.kv_capacity_blocks is not None:
            lines.append(
                f"  kv: {self.kv_used_blocks}/{self.kv_capacity_blocks} blocks "
                f"used, admission_blocked={self.kv_blocked}, "
                f"preemptions={self.preemptions}"
            )
        return "\n".join(lines)


def build_serve_stall_report(
    scheduler: ContinuousBatchScheduler,
    reason: str,
    now_s: float,
    steps: int,
    completed: int,
    replica_id: int | None = None,
) -> ServeStallReport:
    """Snapshot a scheduler's occupancy for a structured stall error."""

    return ServeStallReport(
        reason=reason,
        now_s=now_s,
        steps=steps,
        completed=completed,
        running=len(scheduler.running),
        waiting=len(scheduler.waiting),
        next_arrival_s=scheduler.next_arrival_s(),
        kv_blocked=scheduler.kv_blocked,
        preemptions=scheduler.preemptions,
        kv_used_blocks=scheduler.kv.used_blocks if scheduler.kv is not None else None,
        kv_capacity_blocks=(
            scheduler.kv.capacity_blocks if scheduler.kv is not None else None
        ),
        replica_id=replica_id,
    )


def plan_cycles(
    cost_model: StepCostModel, plan: StepPlan, seq_bucket_floor: int = SEQ_BUCKET_FLOOR
) -> int:
    """Total cycles of one planned iteration: decode shape + prefill chunks.

    The decode half is priced at the batch's effective ``(batch, context)``
    shape -- the context bucketed exactly as :meth:`ContinuousBatchScheduler.
    batch_shape` always bucketed it, so a decode-only plan costs bit-for-bit
    what the legacy loop charged; the prefill half at the chunk-bucketed
    ``(tokens, context)`` shape.  A mixed iteration pays for both serially --
    the accelerator is one device; interleaving buys schedule freedom, not
    free compute.
    """

    cycles = 0
    if plan.decode:
        cycles += cost_model.step_cycles(
            len(plan.decode), bucket_context(plan.decode_context(), seq_bucket_floor)
        )
    if plan.prefill:
        cycles += cost_model.prefill_cycles(
            plan.prefill_tokens,
            bucket_context(plan.prefill_context(), seq_bucket_floor),
        )
    return cycles


def complete_step(
    scheduler: ContinuousBatchScheduler, plan: StepPlan, end_s: float
) -> list[tuple[ActiveRequest, RequestMetrics]]:
    """Finish one planned iteration ending at ``end_s``.

    Applies the plan's prompt chunks (stamping ``prefill_end_s`` on the
    requests whose prompt completes), credits one output token to every
    planned decode, stamps first-token times, evicts the requests whose output
    budget is exhausted and returns them paired with their finished
    :class:`RequestMetrics` record.  The one definition of step-completion
    semantics, shared by the single-accelerator loop here and every
    :class:`~repro.cluster.simulator.ReplicaSim` in a cluster fleet -- the two
    must never disagree on how a step completes.
    """

    for active, chunk in plan.prefill:
        # Clamp overshooting chunks: a chunk larger than the remaining prompt
        # (validated plans never carry one, but defend the shared primitive)
        # must finish the prefill, not drive the counter negative and leave
        # the request stuck in_prefill forever.
        active.prefill_remaining = max(0, active.prefill_remaining - chunk)
        if active.prefill_remaining <= 0 and active.prefill_end_s is None:
            # Stamp only the first completion: a recompute-preempted request
            # re-prefills later, but prefill_end_s keeps describing when the
            # prompt was first fully processed (metrics validation orders it
            # before first_token_s).
            active.prefill_end_s = end_s
    for active in plan.decode:
        active.generated += 1
        if scheduler.kv is not None:
            scheduler.kv.grow(active.request.request_id, active.context_tokens)
        if active.first_token_s is None:
            active.first_token_s = end_s
    finished = []
    for active in scheduler.evict_finished(end_s):
        assert active.first_token_s is not None and active.finish_s is not None
        finished.append(
            (
                active,
                RequestMetrics(
                    request_id=active.request.request_id,
                    arrival_s=active.request.arrival_s,
                    admitted_s=active.admitted_s,
                    first_token_s=active.first_token_s,
                    finish_s=active.finish_s,
                    prompt_tokens=active.request.prompt_tokens,
                    output_tokens=active.request.output_tokens,
                    prefill_end_s=active.prefill_end_s,
                ).validate(),
            )
        )
    return finished


class ServingSimulator:
    """Simulate serving one request stream on one accelerator."""

    def __init__(
        self,
        arrival: ArrivalProcess,
        cost_model: StepCostModel,
        frequency_ghz: float,
        batch: BatchConfig | None = None,
        policy: SchedulerPolicy | None = None,
        slo: ServeSLO | None = None,
        label: str = "serve",
        workload_name: str = "workload",
        telemetry_ms: float | None = None,
    ) -> None:
        if frequency_ghz <= 0:
            raise ConfigError(f"frequency_ghz must be positive, got {frequency_ghz}")
        if telemetry_ms is not None and telemetry_ms <= 0:
            raise ConfigError(f"telemetry_ms must be positive, got {telemetry_ms}")
        self.arrival = arrival
        self.cost_model = cost_model
        self.frequency_ghz = frequency_ghz
        self.batch_config = (batch if batch is not None else BatchConfig()).validate()
        self.policy = policy if policy is not None else DecodeFirstPolicy()
        self.slo = (slo if slo is not None else ServeSLO()).validate()
        self.label = label
        self.workload_name = workload_name
        self.telemetry_ms = telemetry_ms
        #: Wall-clock profile of the run's hot paths (step-cost table builds);
        #: populated by :meth:`run`, never serialized into metrics.
        self.profile: dict = {}

    def _cycles_to_seconds(self, cycles: int) -> float:
        return cycles / (self.frequency_ghz * 1e9)

    def run(self, tracer: Tracer | None = None, probe=None) -> ServeMetrics:
        tracer = NULL_TRACER if tracer is None else tracer
        if probe is not None:
            # The determinism probe (repro.analysis.runtime.StepProbe) digests
            # scheduler state per step; it reads the arrival's RNG position
            # through this attribute rather than per-call plumbing.
            probe.arrival = self.arrival
        recorder = (
            TelemetryRecorder(interval_s=self.telemetry_ms * 1e-3, num_replicas=1)
            if self.telemetry_ms is not None
            else None
        )
        if tracer.enabled:
            tracer.name_process(0, f"accelerator [{self.label}]")
            tracer.name_thread(0, 0, "scheduler")
            tracer.name_process(REQUESTS_PID, "requests")
        scheduler = ContinuousBatchScheduler(config=self.batch_config)
        for request in self.arrival.initial():
            scheduler.enqueue(request.validate())
        if not scheduler.has_work:
            raise ConfigError(
                f"arrival process {self.arrival.name!r} produced no requests"
            )

        now_s = 0.0
        steps = 0
        total_cycles = 0
        prefill_tokens = 0
        prefill_steps = 0
        kv_memory_bound_s = 0.0
        first_arrival_s = min(r.arrival_s for r in scheduler.waiting)
        completed: list[RequestMetrics] = []

        while scheduler.has_work:
            scheduler.admit(now_s)
            if not scheduler.running:
                # Idle: jump straight to the next arrival.
                next_arrival = scheduler.next_arrival_s()
                assert next_arrival is not None  # has_work and nothing running
                if next_arrival <= now_s:
                    # An already-arrived request was refused admission into an
                    # empty batch; jumping to "the next arrival" would never
                    # advance the clock again.  Raise instead of spinning.
                    report = build_serve_stall_report(
                        scheduler,
                        "admission blocked with an empty batch",
                        now_s,
                        steps,
                        len(completed),
                    )
                    raise LivelockError(report.render(), report=report)
                if recorder is not None:
                    recorder.observe(0, now_s, len(scheduler.waiting), 0)
                now_s = next_arrival
                continue

            preempted = scheduler.ensure_kv_growth(now_s)

            if steps >= MAX_STEPS:
                report = build_serve_stall_report(
                    scheduler,
                    f"exceeded {MAX_STEPS} steps without draining",
                    now_s,
                    steps,
                    len(completed),
                )
                raise LivelockError(report.render(), report=report)

            plan = self.policy.plan(scheduler.running)
            cycles = plan_cycles(
                self.cost_model, plan, self.batch_config.seq_bucket_floor
            )
            if cycles < 0:
                raise ConfigError(f"step cost model returned {cycles} cycles")
            if cycles == 0:
                if plan.decode:
                    raise ConfigError("step cost model priced a decode step at 0 cycles")
                # Free prefill completes instantly: apply the chunks without
                # advancing the clock or consuming an iteration (the legacy
                # decode-only timeline).  Progress is guaranteed -- validated
                # plans only carry positive chunks -- so this cannot spin.
                complete_step(scheduler, plan, now_s)
                continue
            steps += 1
            total_cycles += cycles
            if plan.prefill:
                prefill_steps += 1
                prefill_tokens += plan.prefill_tokens
            step_start_s = now_s
            queue_depth = len(scheduler.waiting)
            running = len(scheduler.running)
            if probe is not None:
                probe.record_step(
                    replica_id=0,
                    step=steps,
                    start_s=step_start_s,
                    scheduler=scheduler,
                    plan=plan,
                    cycles=cycles,
                )
            now_s += self._cycles_to_seconds(cycles)
            if scheduler.kv_blocked or preempted:
                # A step whose admission stalled on KV memory (or that had to
                # preempt to fund decode growth) is time the run spent
                # memory-bound rather than batch-slot-bound.
                kv_memory_bound_s += now_s - step_start_s
            if tracer.enabled:
                args = plan.trace_args()
                args["cycles"] = cycles
                if plan.decode:
                    args["seq_bucket"] = bucket_context(
                        plan.decode_context(), self.batch_config.seq_bucket_floor
                    )
                tracer.complete("step", CAT_STEP, 0, 0, step_start_s, now_s, args=args)
            if recorder is not None:
                recorder.on_step(
                    0, step_start_s, now_s, queue_depth, running, len(plan.decode)
                )

            for active, record in complete_step(scheduler, plan, now_s):
                completed.append(record)
                if tracer.enabled:
                    trace_request(tracer, record, REQUESTS_PID)
                follow_up = self.arrival.on_complete(active.request, now_s)
                if follow_up is not None:
                    scheduler.enqueue(follow_up.validate())

        completed.sort(key=lambda r: r.request_id)
        meta = {
            "arrival": self.arrival.name,
            "max_batch": self.batch_config.max_batch,
            "seq_bucket_floor": self.batch_config.seq_bucket_floor,
        }
        if self.batch_config.prefill:
            # Emitted only when the prefill phase is modeled, so decode-only
            # runs keep the exact legacy meta (golden fixture compatibility).
            meta["scheduler"] = self.policy.name
            meta.update(self.policy.meta())
            meta["prefill_steps"] = prefill_steps
            meta["prefill_tokens"] = prefill_tokens
        if self.batch_config.kv.enabled:
            # Emitted only when the KV memory model is on, keeping the meta of
            # every legacy (unbounded-memory) run byte-identical.
            assert scheduler.kv is not None
            duration_s = max(0.0, now_s - first_arrival_s)
            meta["kv_budget_tokens"] = self.batch_config.kv.budget_tokens
            meta["kv_block_tokens"] = self.batch_config.kv.block_tokens
            meta["preemption"] = self.batch_config.kv.preemption
            meta["preemptions"] = scheduler.preemptions
            meta["preemption_rate"] = scheduler.preemptions / max(1, len(completed))
            meta["kv_peak_utilization"] = scheduler.kv.peak_utilization
            meta["kv_peak_fragmentation_tokens"] = (
                scheduler.kv.peak_fragmentation_tokens
            )
            meta["kv_memory_bound_s"] = kv_memory_bound_s
            meta["kv_memory_bound_frac"] = (
                kv_memory_bound_s / duration_s if duration_s > 0 else 0.0
            )
        table_size = getattr(self.cost_model, "table_size", None)
        if table_size is not None:
            meta["step_cost_entries"] = table_size
            meta["step_simulations"] = getattr(self.cost_model, "simulations", table_size)
        self.profile = {"step_cost": self.cost_model.profile()}
        logger.debug(
            "serve run [%s]: %d steps, %d requests, step_cost=%s",
            self.label, steps, len(completed), self.profile["step_cost"],
        )
        telemetry = (
            recorder.build(first_arrival_s, now_s) if recorder is not None else None
        )
        return ServeMetrics(
            label=self.label,
            workload=self.workload_name,
            frequency_ghz=self.frequency_ghz,
            duration_s=max(0.0, now_s - first_arrival_s),
            steps=steps,
            total_cycles=total_cycles,
            requests=tuple(completed),
            slo=self.slo,
            meta=meta,
            telemetry=telemetry,
        )
