"""The request-level serving simulator.

:class:`ServingSimulator` composes the three serve components -- an arrival
process, the continuous-batching scheduler and a step-cost model -- into an
event loop whose inner step is one cycle-engine evaluation:

1. admit arrived requests into free batch slots (FCFS);
2. ask the cost model for the cycles of the batch's effective shape;
3. advance the clock by ``cycles / frequency``, credit one output token to
   every batched request, and evict the finished ones (notifying the arrival
   process, which closes the loop for closed-loop traffic).

When the batch is empty the clock jumps to the next arrival, so idle gaps cost
nothing to simulate.  The loop is fully deterministic: a seeded arrival stream
plus a deterministic cost model reproduces every timestamp bit-for-bit.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.serve.arrival import ArrivalProcess
from repro.serve.metrics import RequestMetrics, ServeMetrics, ServeSLO
from repro.serve.scheduler import ActiveRequest, BatchConfig, ContinuousBatchScheduler
from repro.serve.stepcost import StepCostModel

#: Hard cap on scheduler iterations -- a guard against a stream that can never
#: drain (e.g. a zero-cost model paired with an infinite closed loop).
MAX_STEPS = 10_000_000


def complete_step(
    scheduler: ContinuousBatchScheduler, end_s: float
) -> list[tuple[ActiveRequest, RequestMetrics]]:
    """Finish one batched iteration ending at ``end_s``.

    Credits one output token to every running request, stamps first-token
    times, evicts the requests whose output budget is exhausted and returns
    them paired with their finished :class:`RequestMetrics` record.  The one
    definition of step-completion semantics, shared by the single-accelerator
    loop here and every :class:`~repro.cluster.simulator.ReplicaSim` in a
    cluster fleet -- the two must never disagree on how a step completes.
    """

    for active in scheduler.running:
        active.generated += 1
        if active.first_token_s is None:
            active.first_token_s = end_s
    finished = []
    for active in scheduler.evict_finished(end_s):
        assert active.first_token_s is not None and active.finish_s is not None
        finished.append(
            (
                active,
                RequestMetrics(
                    request_id=active.request.request_id,
                    arrival_s=active.request.arrival_s,
                    admitted_s=active.admitted_s,
                    first_token_s=active.first_token_s,
                    finish_s=active.finish_s,
                    prompt_tokens=active.request.prompt_tokens,
                    output_tokens=active.request.output_tokens,
                ).validate(),
            )
        )
    return finished


class ServingSimulator:
    """Simulate serving one request stream on one accelerator."""

    def __init__(
        self,
        arrival: ArrivalProcess,
        cost_model: StepCostModel,
        frequency_ghz: float,
        batch: BatchConfig | None = None,
        slo: ServeSLO | None = None,
        label: str = "serve",
        workload_name: str = "workload",
    ) -> None:
        if frequency_ghz <= 0:
            raise ConfigError(f"frequency_ghz must be positive, got {frequency_ghz}")
        self.arrival = arrival
        self.cost_model = cost_model
        self.frequency_ghz = frequency_ghz
        self.batch_config = (batch if batch is not None else BatchConfig()).validate()
        self.slo = (slo if slo is not None else ServeSLO()).validate()
        self.label = label
        self.workload_name = workload_name

    def _cycles_to_seconds(self, cycles: int) -> float:
        return cycles / (self.frequency_ghz * 1e9)

    def run(self) -> ServeMetrics:
        scheduler = ContinuousBatchScheduler(config=self.batch_config)
        for request in self.arrival.initial():
            scheduler.enqueue(request.validate())
        if not scheduler.has_work:
            raise ConfigError(
                f"arrival process {self.arrival.name!r} produced no requests"
            )

        now_s = 0.0
        steps = 0
        total_cycles = 0
        first_arrival_s = min(r.arrival_s for r in scheduler.waiting)
        completed: list[RequestMetrics] = []

        while scheduler.has_work:
            scheduler.admit(now_s)
            if not scheduler.running:
                # Idle: jump straight to the next arrival.
                next_arrival = scheduler.next_arrival_s()
                assert next_arrival is not None  # has_work and nothing running
                now_s = max(now_s, next_arrival)
                continue

            if steps >= MAX_STEPS:
                raise ConfigError(
                    f"serving run exceeded {MAX_STEPS} steps without draining "
                    f"({len(completed)} completed, {len(scheduler.running)} running, "
                    f"{len(scheduler.waiting)} waiting)"
                )

            batch, context_bucket = scheduler.batch_shape()
            cycles = self.cost_model.step_cycles(batch, context_bucket)
            if cycles <= 0:
                raise ConfigError(f"step cost model returned {cycles} cycles")
            steps += 1
            total_cycles += cycles
            now_s += self._cycles_to_seconds(cycles)

            for active, record in complete_step(scheduler, now_s):
                completed.append(record)
                follow_up = self.arrival.on_complete(active.request, now_s)
                if follow_up is not None:
                    scheduler.enqueue(follow_up.validate())

        completed.sort(key=lambda r: r.request_id)
        meta = {
            "arrival": self.arrival.name,
            "max_batch": self.batch_config.max_batch,
            "seq_bucket_floor": self.batch_config.seq_bucket_floor,
        }
        table_size = getattr(self.cost_model, "table_size", None)
        if table_size is not None:
            meta["step_cost_entries"] = table_size
            meta["step_simulations"] = getattr(self.cost_model, "simulations", table_size)
        return ServeMetrics(
            label=self.label,
            workload=self.workload_name,
            frequency_ghz=self.frequency_ghz,
            duration_s=max(0.0, now_s - first_arrival_s),
            steps=steps,
            total_cycles=total_cycles,
            requests=tuple(completed),
            slo=self.slo,
            meta=meta,
        )
