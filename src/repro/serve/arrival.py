"""Arrival processes: how request streams reach the serving simulator.

An :class:`ArrivalProcess` produces the request stream of one serving run.
Open-loop generators (Poisson, bursty, trace replay) timestamp every request up
front in :meth:`~ArrivalProcess.initial`; the closed-loop generator models a
fixed population of users, so each completion triggers the user's next request
through :meth:`~ArrivalProcess.on_complete`.

Builders are registered under :data:`repro.registry.ARRIVALS` via
``@register_arrival`` with the uniform signature
``(sampler, rate, num_requests, **params)``, which is what makes a new traffic
pattern immediately addressable from ``llamcat serve --arrival <name>``,
:class:`~repro.serve.scenario.ServeScenario` and serve sweep grids.  All
randomness flows through :mod:`repro.common.rng`: one seed reproduces the
stream (timings *and* sampled token budgets) bit-for-bit.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed, make_rng
from repro.registry import register_arrival
from repro.serve.request import Request, RequestSampler

#: Stream id for timing draws (size draws use the sampler's own stream).
_TIMING_STREAM = 0xA7


def _timing_rng(sampler: RequestSampler):
    """An RNG for arrival timings, independent of the sampler's size stream."""

    # The sampler's RNG state is reserved for token-budget draws; timings get
    # their own derived stream so the two never perturb each other.
    return make_rng(derive_seed(sampler.seed, _TIMING_STREAM))


class ArrivalProcess:
    """Base class: a (possibly reactive) stream of serving requests."""

    name = "arrival"

    def initial(self) -> tuple[Request, ...]:
        """Every request known before the run starts, sorted by arrival time."""

        raise NotImplementedError

    def on_complete(self, request: Request, now_s: float) -> Request | None:
        """React to ``request`` finishing at ``now_s`` (closed-loop feedback).

        Open-loop processes return None; closed-loop processes may return the
        completing user's next request.
        """

        return None


def _validate_stream(rate: float, num_requests: int, kind: str) -> None:
    if rate <= 0:
        raise ConfigError(f"{kind} arrival rate must be positive, got {rate}")
    if num_requests <= 0:
        raise ConfigError(f"{kind} num_requests must be positive, got {num_requests}")


class OpenLoopArrivals(ArrivalProcess):
    """An arrival process fully described by a pre-computed request list."""

    def __init__(self, name: str, requests: tuple[Request, ...]) -> None:
        self.name = name
        self._requests = tuple(sorted(requests, key=lambda r: (r.arrival_s, r.request_id)))

    def initial(self) -> tuple[Request, ...]:
        return self._requests


@register_arrival("poisson", description="Open-loop Poisson arrivals at `rate` requests/s")
def poisson_arrivals(
    sampler: RequestSampler, rate: float, num_requests: int
) -> ArrivalProcess:
    """Memoryless open-loop traffic: exponential inter-arrival times."""

    _validate_stream(rate, num_requests, "poisson")
    rng = _timing_rng(sampler)
    now = 0.0
    requests = []
    for _ in range(num_requests):
        now += float(rng.exponential(1.0 / rate))
        requests.append(sampler.sample(now))
    return OpenLoopArrivals("poisson", tuple(requests))


@register_arrival(
    "bursty",
    description="Poisson bursts of `burst_size` back-to-back requests (mean `rate` req/s)",
)
def bursty_arrivals(
    sampler: RequestSampler,
    rate: float,
    num_requests: int,
    burst_size: int = 8,
    burst_factor: float = 16.0,
) -> ArrivalProcess:
    """Clustered open-loop traffic.

    Bursts start as a Poisson process at ``rate / burst_size`` so the long-run
    average stays at ``rate``; within a burst, requests arrive ``burst_factor``
    times faster than the mean rate.  ``burst_factor`` must be > 1, otherwise
    the process degenerates to plain Poisson.
    """

    _validate_stream(rate, num_requests, "bursty")
    if burst_size <= 0:
        raise ConfigError(f"burst_size must be positive, got {burst_size}")
    if burst_factor <= 1.0:
        raise ConfigError(f"burst_factor must be > 1, got {burst_factor}")
    rng = _timing_rng(sampler)
    intra_gap = 1.0 / (rate * burst_factor)
    requests = []
    burst_start = 0.0
    while len(requests) < num_requests:
        burst_start += float(rng.exponential(burst_size / rate))
        for i in range(min(int(burst_size), num_requests - len(requests))):
            requests.append(sampler.sample(burst_start + i * intra_gap))
    return OpenLoopArrivals("bursty", tuple(requests))


@register_arrival(
    "trace",
    aliases=("replay",),
    description="Replay explicit arrival timestamps (`times=` parameter)",
)
def trace_arrivals(
    sampler: RequestSampler,
    rate: float,
    num_requests: int,
    times: tuple[float, ...] = (),
) -> ArrivalProcess:
    """Replay a recorded stream: one request per timestamp in ``times``.

    ``rate`` is ignored (the trace fixes the timing); ``num_requests`` truncates
    the trace when smaller than ``len(times)``.  Token budgets are still drawn
    from the sampler, so the same trace can be replayed against any size
    distribution.
    """

    if not times:
        raise ConfigError("trace arrivals need a non-empty `times` parameter")
    if num_requests <= 0:
        raise ConfigError(f"trace num_requests must be positive, got {num_requests}")
    stamps = sorted(float(t) for t in times)[:num_requests]
    if stamps[0] < 0:
        raise ConfigError(f"trace arrival times must be >= 0, got {stamps[0]}")
    return OpenLoopArrivals("trace", tuple(sampler.sample(t) for t in stamps))


class ClosedLoopArrivals(ArrivalProcess):
    """A fixed population of users, each with at most one request in flight."""

    name = "closed-loop"

    def __init__(
        self,
        sampler: RequestSampler,
        users: int,
        num_requests: int,
        think_time_s: float,
    ) -> None:
        if users <= 0:
            raise ConfigError(f"closed-loop users must be positive, got {users}")
        if num_requests <= 0:
            raise ConfigError(f"closed-loop num_requests must be positive, got {num_requests}")
        if think_time_s < 0:
            raise ConfigError(f"think_time_s must be >= 0, got {think_time_s}")
        self._sampler = sampler
        self.users = users
        self.num_requests = num_requests
        self.think_time_s = think_time_s
        self._issued = 0

    def _issue(self, arrival_s: float) -> Request:
        self._issued += 1
        return self._sampler.sample(arrival_s)

    def initial(self) -> tuple[Request, ...]:
        first_wave = min(self.users, self.num_requests - self._issued)
        return tuple(self._issue(0.0) for _ in range(first_wave))

    def on_complete(self, request: Request, now_s: float) -> Request | None:
        if self._issued >= self.num_requests:
            return None
        return self._issue(now_s + self.think_time_s)


@register_arrival(
    "closed-loop",
    aliases=("closed",),
    description="`users` concurrent users; each completion triggers the next request",
)
def closed_loop_arrivals(
    sampler: RequestSampler,
    rate: float,
    num_requests: int,
    users: int | None = None,
    think_time_s: float = 0.0,
) -> ArrivalProcess:
    """Closed-loop traffic: concurrency is capped by the user population.

    ``users`` defaults to ``int(rate)`` so the CLI's single ``--rate`` knob
    selects the population size for this process.
    """

    population = int(rate) if users is None else int(users)
    return ClosedLoopArrivals(sampler, population, num_requests, think_time_s)
