"""KV-cache memory accounting: budgets, paged blocks, preemption policies.

Real serving is capped by KV-cache HBM, not by a batch-slot count: every
admitted request pins ``prompt_tokens + generated`` tokens of KV state
(:attr:`~repro.serve.scheduler.ActiveRequest.context_tokens`), and the batch
may only grow while that footprint fits the device budget.  This module owns
the three pieces of that model:

* :class:`KVCacheConfig` -- the knobs (token budget, paged block size,
  preemption policy, swap transfer cost).  ``budget_tokens=None`` disables KV
  accounting entirely, which is the legacy unbounded-memory behaviour and the
  mode every golden fixture is recorded in.
* :class:`KVCacheManager` -- per-request block allocation against the budget,
  in the vLLM paged-attention style: capacity is ``budget_tokens //
  block_tokens`` fixed-size blocks, a request holding ``t`` tokens pins
  ``ceil(t / block_tokens)`` blocks, and the tokens rounded up to the block
  boundary are *internal fragmentation* the manager tracks.  ``block_tokens=1``
  is exact token-granular accounting (no fragmentation).
* :data:`PREEMPTIONS` registry entries -- what to do with a victim when the
  running batch needs KV blocks the device no longer has.  ``recompute`` drops
  the victim's KV and re-prefills its whole context on re-admission (cheap
  eviction, expensive return); ``swap`` preserves the KV off-device and pays a
  configurable transfer latency each way (expensive eviction, cheap return).

The scheduler (:class:`~repro.serve.scheduler.ContinuousBatchScheduler`) calls
into the manager at admission, growth and eviction; policies only mutate the
victim's progress record and price its return -- victim *selection* (LIFO,
last-admitted first, so the oldest requests never starve) stays with the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.common.errors import ConfigError, SimulationError
from repro.registry import PREEMPTIONS, register_preemption

if TYPE_CHECKING:  # scheduler imports us; annotate without the cycle
    from repro.serve.scheduler import ActiveRequest

#: Default one-way KV swap transfer latency (milliseconds).
DEFAULT_SWAP_MS = 0.1


@dataclass(frozen=True, slots=True)
class KVCacheConfig:
    """KV-memory model knobs; ``budget_tokens=None`` disables the model.

    With accounting disabled the scheduler never touches a
    :class:`KVCacheManager` and reproduces the legacy unbounded-memory
    timeline bit-for-bit -- golden fixtures are all recorded in this mode.
    """

    #: Device KV capacity in tokens, or None for unbounded (accounting off).
    budget_tokens: int | None = None
    #: Paged-KV block size in tokens; 1 means exact token-granular accounting.
    block_tokens: int = 1
    #: PREEMPTIONS registry name deciding what eviction under pressure costs.
    preemption: str = "recompute"
    #: One-way swap transfer latency in milliseconds (``swap`` policy only).
    swap_ms: float = DEFAULT_SWAP_MS

    @property
    def enabled(self) -> bool:
        return self.budget_tokens is not None

    @property
    def capacity_blocks(self) -> int:
        """Whole blocks that fit the budget (0 when accounting is off)."""

        if self.budget_tokens is None:
            return 0
        return self.budget_tokens // self.block_tokens

    def validate(self) -> "KVCacheConfig":
        if self.block_tokens <= 0:
            raise ConfigError(f"kv block_tokens must be positive, got {self.block_tokens}")
        if self.swap_ms < 0:
            raise ConfigError(f"kv swap_ms must be non-negative, got {self.swap_ms}")
        PREEMPTIONS.get(self.preemption)  # unknown names raise ConfigError
        if self.budget_tokens is not None:
            if self.budget_tokens <= 0:
                raise ConfigError(
                    f"kv budget_tokens must be positive, got {self.budget_tokens}"
                )
            if self.capacity_blocks < 1:
                raise ConfigError(
                    f"kv budget of {self.budget_tokens} tokens fits no "
                    f"{self.block_tokens}-token block"
                )
        return self

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "KVCacheConfig":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data}).validate()


@dataclass(slots=True)
class KVCacheManager:
    """Paged per-request KV block allocation against a fixed device budget."""

    config: KVCacheConfig
    #: Tokens of KV state currently pinned, per admitted request id.
    tokens: dict = field(default_factory=dict, init=False)
    #: Blocks backing those tokens, per admitted request id.
    blocks: dict = field(default_factory=dict, init=False)
    used_blocks: int = field(default=0, init=False)
    #: High-water marks over the run (utilization is a block fraction;
    #: fragmentation is block-padding waste as a fraction of the budget).
    peak_used_blocks: int = field(default=0, init=False)
    peak_fragmentation_tokens: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.config.enabled:
            raise ConfigError("KVCacheManager needs a finite budget_tokens")
        self.config.validate()

    @property
    def capacity_blocks(self) -> int:
        return self.config.capacity_blocks

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - self.used_blocks

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` of KV state (ceiling division)."""

        return -(-tokens // self.config.block_tokens)

    def fits(self, tokens: int) -> bool:
        """Whether a new request pinning ``tokens`` fits the free blocks."""

        return self.blocks_for(tokens) <= self.free_blocks

    def growth_blocks(self, request_id: int, tokens: int) -> int:
        """Extra blocks request ``request_id`` needs to reach ``tokens``."""

        return max(0, self.blocks_for(tokens) - self.blocks.get(request_id, 0))

    def reserve(self, request_id: int, tokens: int) -> None:
        """Pin ``tokens`` of KV for a newly admitted request."""

        if request_id in self.tokens:
            raise SimulationError(f"request {request_id} already holds KV blocks")
        need = self.blocks_for(tokens)
        if need > self.free_blocks:
            raise SimulationError(
                f"KV reservation of {need} blocks for request {request_id} "
                f"exceeds the {self.free_blocks} free (admission must gate on fits())"
            )
        self.tokens[request_id] = tokens
        self.blocks[request_id] = need
        self.used_blocks += need
        self._observe()

    def grow(self, request_id: int, tokens: int) -> None:
        """Grow an admitted request's pinned KV to ``tokens`` (decode growth)."""

        if request_id not in self.tokens:
            raise SimulationError(f"request {request_id} holds no KV to grow")
        delta = self.blocks_for(tokens) - self.blocks[request_id]
        if delta > self.free_blocks:
            raise SimulationError(
                f"KV growth of {delta} blocks for request {request_id} exceeds "
                f"the {self.free_blocks} free (the scheduler must preempt first)"
            )
        self.tokens[request_id] = tokens
        self.blocks[request_id] += delta
        self.used_blocks += delta
        self._observe()

    def release(self, request_id: int) -> None:
        """Free every block a request holds (finish, handoff or preemption)."""

        if request_id not in self.tokens:
            raise SimulationError(f"request {request_id} holds no KV to release")
        self.used_blocks -= self.blocks.pop(request_id)
        del self.tokens[request_id]

    def _observe(self) -> None:
        self.peak_used_blocks = max(self.peak_used_blocks, self.used_blocks)
        waste = self.used_blocks * self.config.block_tokens - sum(self.tokens.values())
        self.peak_fragmentation_tokens = max(self.peak_fragmentation_tokens, waste)

    @property
    def peak_utilization(self) -> float:
        """Peak fraction of the block budget ever pinned at once."""

        return self.peak_used_blocks / self.capacity_blocks


class PreemptionPolicy:
    """What evicting a running request under KV pressure does and costs.

    Subclasses mutate the victim's progress record as the eviction demands and
    return the time at which the victim becomes admissible again; the
    scheduler handles victim selection, block release and re-queueing.
    """

    name = "preemption"

    def preempt(self, active: "ActiveRequest", now_s: float) -> float:
        """Evict ``active`` at ``now_s``; return its re-admission time."""

        raise NotImplementedError


class RecomputePreemption(PreemptionPolicy):
    """Drop the victim's KV; re-prefill its whole context on return.

    Eviction is free (the blocks are simply reused) but re-admission must
    re-run prefill over everything the request had accumulated -- prompt plus
    already-generated tokens -- so ``prefill_remaining`` is restored to the
    full ``context_tokens``.  The victim is admissible again immediately.
    """

    name = "recompute"

    def preempt(self, active: "ActiveRequest", now_s: float) -> float:
        active.prefill_remaining = active.context_tokens
        return now_s


class SwapPreemption(PreemptionPolicy):
    """Swap the victim's KV off-device; pay a transfer latency each way.

    Progress is preserved -- no re-prefill -- but the request only becomes
    admissible after the swap-out plus swap-in transfers complete, priced at
    ``swap_ms`` one way.
    """

    name = "swap"

    def __init__(self, swap_ms: float = DEFAULT_SWAP_MS) -> None:
        self.swap_s = swap_ms * 1e-3

    def preempt(self, active: "ActiveRequest", now_s: float) -> float:
        return now_s + 2.0 * self.swap_s


@register_preemption(
    "recompute", description="drop KV on eviction, re-prefill the context on return"
)
def recompute_preemption(kv: KVCacheConfig) -> PreemptionPolicy:
    return RecomputePreemption()


@register_preemption(
    "swap", description="preserve KV off-device, pay a transfer latency each way"
)
def swap_preemption(kv: KVCacheConfig) -> PreemptionPolicy:
    return SwapPreemption(swap_ms=kv.swap_ms)
