"""Serving metrics: per-request latency breakdowns and fleet-level aggregates.

The raw, authoritative data is one :class:`RequestMetrics` per completed
request (arrival / admission / first-token / finish timestamps plus token
budgets); everything the evaluation reports -- p50/p95/p99 latency,
time-to-first-token, time-per-output-token, throughput and SLO attainment --
is derived from it on demand through :mod:`repro.common.mathutils`.  Like
:class:`~repro.sim.results.SimResult`, :class:`ServeMetrics` serializes with
``to_dict``/``from_dict`` (raw records round-trip; derived metrics ride along
for human consumers) so serving points flow through the sweep result store
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import ClassVar

from repro.common.errors import ConfigError
from repro.common.mathutils import percentile, safe_div, weighted_mean
from repro.obs.metrics import Histogram
from repro.obs.telemetry import TelemetrySeries

#: The percentile points every summary reports.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True, slots=True)
class RequestMetrics:
    """Lifecycle timestamps and token budgets of one completed request.

    ``prefill_end_s`` is when the last prompt token was processed; it is None
    for decode-only runs that never model the prefill phase, and such records
    serialize without the field so decode-only metrics dicts stay bit-for-bit
    identical to the pre-prefill format (old stores load unchanged).
    """

    request_id: int
    arrival_s: float
    admitted_s: float
    first_token_s: float
    finish_s: float
    prompt_tokens: int
    output_tokens: int
    prefill_end_s: float | None = None

    def validate(self) -> "RequestMetrics":
        if not self.arrival_s <= self.admitted_s <= self.first_token_s <= self.finish_s:
            raise ConfigError(
                f"request {self.request_id} timestamps must be ordered "
                f"arrival <= admitted <= first_token <= finish, got "
                f"{self.arrival_s} / {self.admitted_s} / {self.first_token_s} / {self.finish_s}"
            )
        if self.prefill_end_s is not None and not (
            self.admitted_s <= self.prefill_end_s <= self.first_token_s
        ):
            raise ConfigError(
                f"request {self.request_id} prefill_end_s must satisfy "
                f"admitted <= prefill_end <= first_token, got "
                f"{self.admitted_s} / {self.prefill_end_s} / {self.first_token_s}"
            )
        if self.output_tokens <= 0:
            raise ConfigError(f"output_tokens must be positive, got {self.output_tokens}")
        return self

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to last generated token."""

        return self.finish_s - self.arrival_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting for a batch slot."""

        return self.admitted_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Time to first token, measured from arrival."""

        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Time per output token after the first (0 for single-token outputs)."""

        if self.output_tokens <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.output_tokens - 1)

    @property
    def prefill_s(self) -> float | None:
        """Admission-to-last-prompt-token span (None when prefill unmodeled)."""

        if self.prefill_end_s is None:
            return None
        return self.prefill_end_s - self.admitted_s

    @property
    def decode_s(self) -> float:
        """First-to-last output token span: the pure decode phase."""

        return self.finish_s - self.first_token_s

    def to_dict(self) -> dict:
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "prefill_end_s"
        }
        if self.prefill_end_s is not None:
            data["prefill_end_s"] = self.prefill_end_s
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RequestMetrics":
        kwargs = {
            f.name: data[f.name] for f in fields(cls) if f.name != "prefill_end_s"
        }
        return cls(**kwargs, prefill_end_s=data.get("prefill_end_s")).validate()


@dataclass(frozen=True, slots=True)
class ServeSLO:
    """Latency objectives a request must meet to count as SLO-attained."""

    ttft_ms: float | None = None
    latency_ms: float | None = None

    def validate(self) -> "ServeSLO":
        for name in ("ttft_ms", "latency_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"ServeSLO.{name} must be positive, got {value}")
        return self

    @property
    def is_trivial(self) -> bool:
        return self.ttft_ms is None and self.latency_ms is None

    def attained(self, request: RequestMetrics) -> bool:
        """Whether ``request`` met every configured objective."""

        if self.ttft_ms is not None and request.ttft_s * 1e3 > self.ttft_ms:
            return False
        if self.latency_ms is not None and request.latency_s * 1e3 > self.latency_ms:
            return False
        return True

    def to_dict(self) -> dict:
        return {"ttft_ms": self.ttft_ms, "latency_ms": self.latency_ms}

    @classmethod
    def from_dict(cls, data: dict) -> "ServeSLO":
        return cls(
            ttft_ms=data.get("ttft_ms"), latency_ms=data.get("latency_ms")
        ).validate()


@dataclass(frozen=True, slots=True)
class ServeMetrics:
    """Complete result of one serving simulation."""

    #: Result-kind tag used by the sweep store to pick the right deserializer.
    result_kind: ClassVar[str] = "serve"

    label: str
    workload: str
    frequency_ghz: float
    #: Wall-clock span of the run: first arrival to last finish, seconds.
    duration_s: float
    #: Scheduler iterations executed (each decodes one token per batched request).
    steps: int
    #: Total simulated cycles across all iterations.
    total_cycles: int
    requests: tuple[RequestMetrics, ...] = ()
    slo: ServeSLO = field(default_factory=ServeSLO)
    meta: dict = field(default_factory=dict)
    #: Optional fixed-cadence time series; None unless the run sampled
    #: telemetry, and omitted from serialization when None so pre-telemetry
    #: metrics dicts (and golden fixtures) stay bit-for-bit identical.
    telemetry: TelemetrySeries | None = None
    #: Opt-in sketch mode (``--metrics-sketch``): percentiles are answered by
    #: a log-bucketed :class:`~repro.obs.metrics.Histogram` within its
    #: documented relative error bound instead of the exact per-request list.
    #: Off by default (and omitted from serialization when off) so golden
    #: fixtures stay bit-for-bit identical.
    sketch: bool = False

    # -- per-request series ------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def latencies_s(self) -> list[float]:
        return [r.latency_s for r in self.requests]

    @property
    def ttfts_s(self) -> list[float]:
        return [r.ttft_s for r in self.requests]

    @property
    def prefills_s(self) -> list[float]:
        """Per-request prefill spans, for requests whose prefill was modeled."""

        return [r.prefill_s for r in self.requests if r.prefill_s is not None]

    @property
    def decodes_s(self) -> list[float]:
        return [r.decode_s for r in self.requests]

    @property
    def has_prefill_phase(self) -> bool:
        """Whether any completed request carries prefill-phase accounting."""

        return any(r.prefill_end_s is not None for r in self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.requests)

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.requests)

    # -- headline aggregates -----------------------------------------------------------
    def _percentile_s(self, values: list[float], point: float) -> float:
        """Exact-list percentile, or the histogram sketch when opted in."""

        if self.sketch:
            return Histogram.of(values).quantile(point)
        return percentile(values, point)

    def latency_percentile_ms(self, point: float) -> float:
        return self._percentile_s(self.latencies_s, point) * 1e3

    def ttft_percentile_ms(self, point: float) -> float:
        return self._percentile_s(self.ttfts_s, point) * 1e3

    def prefill_percentile_ms(self, point: float) -> float:
        """Prefill-span percentile over the prefill-phase requests (ms)."""

        return self._percentile_s(self.prefills_s, point) * 1e3

    def decode_percentile_ms(self, point: float) -> float:
        return self._percentile_s(self.decodes_s, point) * 1e3

    @property
    def mean_tpot_ms(self) -> float:
        """Per-token decode pace, weighted by each request's decoded tokens."""

        weights = [max(0, r.output_tokens - 1) for r in self.requests]
        if not self.requests or sum(weights) == 0:
            return 0.0
        return weighted_mean([r.tpot_s for r in self.requests], weights) * 1e3

    @property
    def tokens_per_s(self) -> float:
        return safe_div(self.total_output_tokens, self.duration_s)

    @property
    def requests_per_s(self) -> float:
        return safe_div(self.num_requests, self.duration_s)

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests meeting every configured objective (1.0 if none)."""

        if not self.requests or self.slo.is_trivial:
            return 1.0
        return sum(1 for r in self.requests if self.slo.attained(r)) / len(self.requests)

    # -- formatting --------------------------------------------------------------------
    def headline_metrics(self) -> dict:
        out = {
            "label": self.label,
            "workload": self.workload,
            "num_requests": self.num_requests,
            "duration_s": self.duration_s,
            "steps": self.steps,
            "total_cycles": self.total_cycles,
            "tokens_per_s": self.tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "mean_tpot_ms": self.mean_tpot_ms,
            "slo_attainment": self.slo_attainment,
        }
        if self.requests:
            for point in REPORTED_PERCENTILES:
                out[f"latency_p{point:g}_ms"] = self.latency_percentile_ms(point)
                out[f"ttft_p{point:g}_ms"] = self.ttft_percentile_ms(point)
        # Per-phase aggregates exist only when the run modeled prefill, so
        # decode-only runs keep the exact legacy headline (golden compat).
        if self.has_prefill_phase:
            for point in REPORTED_PERCENTILES:
                out[f"prefill_p{point:g}_ms"] = self.prefill_percentile_ms(point)
                out[f"decode_p{point:g}_ms"] = self.decode_percentile_ms(point)
        # KV-memory aggregates exist only when the run carried a KV budget, so
        # unbounded-memory runs keep the exact legacy headline (golden compat).
        if "preemptions" in self.meta:
            for key in (
                "preemptions",
                "preemption_rate",
                "kv_peak_utilization",
                "kv_memory_bound_frac",
            ):
                if key in self.meta:
                    out[key] = self.meta[key]
        return out

    def summary(self) -> str:
        if not self.requests:
            return f"[{self.label}] {self.workload}: no completed requests"
        p50, p95, p99 = (self.latency_percentile_ms(p) for p in REPORTED_PERCENTILES)
        prefill = (
            f"prefill p95 {self.prefill_percentile_ms(95):.3f} ms, "
            if self.has_prefill_phase
            else ""
        )
        kv = (
            f"KV peak {self.meta['kv_peak_utilization']:.0%} "
            f"({self.meta['preemptions']} preemptions), "
            if "kv_peak_utilization" in self.meta
            else ""
        )
        return (
            f"[{self.label}] {self.workload}: {self.num_requests} requests in "
            f"{self.duration_s * 1e3:.2f} ms ({self.steps} steps), "
            f"latency p50/p95/p99 = {p50:.3f}/{p95:.3f}/{p99:.3f} ms, "
            f"TTFT p95 {self.ttft_percentile_ms(95):.3f} ms, {prefill}{kv}"
            f"TPOT {self.mean_tpot_ms:.4f} ms, "
            f"{self.tokens_per_s:.0f} tokens/s, {self.requests_per_s:.0f} req/s, "
            f"SLO {self.slo_attainment:.1%}"
        )

    # -- serialization (sweep result store) --------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips via :meth:`from_dict`.

        The per-request records are authoritative; the derived aggregates ride
        along under ``"metrics"`` and are recomputed on demand after a reload.
        """

        data = {
            "label": self.label,
            "workload": self.workload,
            "frequency_ghz": self.frequency_ghz,
            "duration_s": self.duration_s,
            "steps": self.steps,
            "total_cycles": self.total_cycles,
            "requests": [r.to_dict() for r in self.requests],
            "slo": self.slo.to_dict(),
            "meta": dict(self.meta),
            # Derived ride-along block for humans/dashboards; recomputed from
            # the request records on load, so from_dict never reads it.
            "metrics": self.headline_metrics(),  # repro: noqa[SER001]
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.to_dict()
        if self.sketch:
            data["sketch"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServeMetrics":
        return cls(
            label=data["label"],
            workload=data["workload"],
            frequency_ghz=data["frequency_ghz"],
            duration_s=data["duration_s"],
            steps=data["steps"],
            total_cycles=data["total_cycles"],
            requests=tuple(RequestMetrics.from_dict(r) for r in data["requests"]),
            slo=ServeSLO.from_dict(data.get("slo", {})),
            meta=dict(data.get("meta", {})),
            telemetry=(
                TelemetrySeries.from_dict(data["telemetry"])
                if data.get("telemetry") is not None
                else None
            ),
            sketch=bool(data.get("sketch", False)),
        )

    def with_label(self, label: str) -> "ServeMetrics":
        return self if label == self.label else replace(self, label=label)

    def with_sketch(self, sketch: bool = True) -> "ServeMetrics":
        """A copy answering percentiles via the histogram sketch path."""

        return self if sketch == self.sketch else replace(self, sketch=sketch)
