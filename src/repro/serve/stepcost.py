"""Per-iteration step costs: the bridge from serving steps to the cycle engine.

One serving iteration decodes one token for every request in the batch.  Its
cost is obtained by simulating the decode operator at the batch's effective
shape: ``batch`` requests each contribute their own KV heads (a batch of B
requests times H KV head groups is exactly B*H independent thread-block groups
streaming disjoint KV caches), at the bucketed maximum context in the batch.
Prefill chunks reuse the same machinery: a chunk of T prompt tokens maps onto
``ceil(T / 64)`` query blocks standing in for the batch axis, so prefill and
decode costs share one memoized shape table.

Simulating every step would be ruinously slow -- a serving run takes thousands
of steps but only ever visits a handful of distinct ``(batch, seq-bucket)``
shapes, so :class:`SimStepCostModel` memoizes cycles per shape, keyed like the
trace cache in :mod:`repro.sim.runner` (workload identity + line size +
ordering + constraints, extended by the batch dimension and the policy).
Repeated shapes cost a dictionary lookup; the underlying trace is additionally
shared through :func:`~repro.sim.runner.cached_trace`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.config.policies import PolicyConfig
from repro.config.scale import ScaleTier, scale_seq_len
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.ordering import ThreadBlockOrdering
from repro.serve.scheduler import bucket_context
from repro.sim.runner import _trace_key, cached_trace
from repro.sim.simulator import simulate


#: Query tile width of the prefill cost mapping: a prefill chunk of T tokens
#: is costed as ``ceil(T / 64)`` query blocks, each shaped like one decode
#: step (64 matches the sequence-bucket floor, so chunk buckets and context
#: buckets share one grid).
PREFILL_QUERY_BLOCK = 64

#: Largest query-block count handed to the cycle engine in one simulation;
#: wider chunks are priced as whole multiples of this shape (the engine's
#: cost is linear in independent head groups anyway, and the cap keeps the
#: biggest prefill trace within a few times the biggest decode trace).
PREFILL_MAX_BLOCKS = 4


class StepCostModel:
    """Interface: per-iteration serving costs.

    ``step_cycles`` prices decoding one token for each of ``batch`` requests;
    ``prefill_cycles`` prices processing a prompt chunk of ``tokens`` new
    tokens whose attention context ends at ``context_tokens``.
    """

    def step_cycles(self, batch: int, context_tokens: int) -> int:
        raise NotImplementedError

    def prefill_cycles(self, tokens: int, context_tokens: int) -> int:
        raise NotImplementedError

    def profile(self) -> dict:
        """Wall-clock/hit-rate introspection; analytical models have none."""

        return {}


@dataclass(frozen=True, slots=True)
class LinearStepCostModel(StepCostModel):
    """An analytical stand-in: ``base + batch * (request + token * context)``.

    Used by unit tests and quick what-if studies where the cycle engine's
    fidelity is not needed; the serving loop is oblivious to which model backs
    it.  Prefill is the matching analog: a per-prompt-token term plus the
    attention term over the chunk's context, tiled by
    :data:`PREFILL_QUERY_BLOCK` (prefill queries amortize the KV stream a
    whole tile at a time, which is why prefill is compute- rather than
    bandwidth-bound).
    """

    base_cycles: int = 1000
    cycles_per_request: int = 100
    cycles_per_token: int = 1
    #: Cost of processing one prompt token during prefill.
    cycles_per_prefill_token: int = 8

    def step_cycles(self, batch: int, context_tokens: int) -> int:
        if batch <= 0 or context_tokens <= 0:
            raise ConfigError(
                f"step shape must be positive, got batch={batch} context={context_tokens}"
            )
        return self.base_cycles + batch * (
            self.cycles_per_request + self.cycles_per_token * context_tokens
        )

    def prefill_cycles(self, tokens: int, context_tokens: int) -> int:
        if tokens <= 0 or context_tokens <= 0:
            raise ConfigError(
                f"prefill shape must be positive, got tokens={tokens} "
                f"context={context_tokens}"
            )
        attend = (
            tokens * self.cycles_per_token * context_tokens
        ) // PREFILL_QUERY_BLOCK
        return self.base_cycles + tokens * self.cycles_per_prefill_token + attend


class SimStepCostModel(StepCostModel):
    """Cycle-engine-backed step costs with a memoized (batch, bucket) table.

    ``system`` must already be tier-scaled (the serve scenario scales it once);
    per-step contexts are scaled here with the same tier so the working-set :
    capacity ratio the tiers preserve also holds inside a serving run.
    """

    def __init__(
        self,
        system: SystemConfig,
        workload: WorkloadConfig,
        policy: PolicyConfig,
        tier: ScaleTier = ScaleTier.FULL,
        ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
        constraints: DataflowConstraints | None = None,
        max_cycles: int | None = None,
        seq_bucket_floor: int = 64,
    ) -> None:
        self.system = system
        self.workload = workload
        self.policy = policy
        self.tier = tier
        self.ordering = ordering
        self.constraints = constraints
        self.max_cycles = max_cycles
        self.seq_bucket_floor = seq_bucket_floor
        self._table: dict[tuple, int] = {}
        #: Cycle-engine runs actually performed (table misses); fidelity /
        #: performance introspection for tests and the CLI.
        self.simulations = 0
        #: Table lookups answered without a cycle-engine run.
        self.hits = 0
        #: Wall-clock seconds spent inside the cycle engine filling the table.
        self.build_wall_s = 0.0

    def batched_workload(self, batch: int, context_tokens: int) -> WorkloadConfig:
        """The effective workload of one step: B*H KV heads at the seq bucket.

        The batch is encoded *only* through the head dimension (B requests x H
        KV heads = B*H independent head groups over disjoint KV caches);
        ``batch_size`` stays 1 so the workload's byte/FLOP accessors count the
        batched footprint exactly once.
        """

        if batch <= 0 or context_tokens <= 0:
            raise ConfigError(
                f"step shape must be positive, got batch={batch} context={context_tokens}"
            )
        bucket = bucket_context(
            scale_seq_len(context_tokens, self.tier), self.seq_bucket_floor
        )
        shape = self.workload.shape
        return replace(
            self.workload,
            shape=replace(shape, num_kv_heads=shape.num_kv_heads * batch, seq_len=bucket),
        ).validate()

    def _step_key(self, step_workload: WorkloadConfig, batch: int) -> tuple:
        # The trace-cache key already identifies the workload shape, line size,
        # ordering and constraints; the step cost additionally depends on the
        # policy and the cycle cap.
        return (
            _trace_key(step_workload, self.system, self.ordering, self.constraints),
            batch,
            self.policy.label,
            self.max_cycles,
        )

    def step_cycles(self, batch: int, context_tokens: int) -> int:
        step_workload = self.batched_workload(batch, context_tokens)
        key = self._step_key(step_workload, batch)
        cycles = self._table.get(key)
        if cycles is None:
            # Wall-clock profiling of table builds only; build_wall_s feeds
            # the debug-log profile and is never serialized into metrics.
            build_start = time.perf_counter()  # repro: noqa[DET002]
            trace = cached_trace(step_workload, self.system, self.ordering, self.constraints)
            kwargs = {} if self.max_cycles is None else {"max_cycles": self.max_cycles}
            result = simulate(
                self.system,
                self.policy,
                trace=trace,
                label=f"serve-step[b={batch}]",
                **kwargs,
            )
            cycles = result.cycles
            self._table[key] = cycles
            self.simulations += 1
            self.build_wall_s += time.perf_counter() - build_start  # repro: noqa[DET002]
        else:
            self.hits += 1
        return cycles

    def prefill_chunk_blocks(self, tokens: int) -> int:
        """Query blocks of a prefill chunk: the chunk-bucketed shape axis.

        The chunk is rounded up to a power of two (so a request's chunk sizes
        visit O(log L) distinct shapes) and tiled into
        :data:`PREFILL_QUERY_BLOCK`-query blocks.  Deliberately *not*
        tier-scaled: tier scaling preserves the working-set : capacity ratio
        by shrinking contexts, but prefill work is compute proportional to the
        actual prompt tokens -- scaling it would price a whole prompt like one
        chunk and erase the trade-off the schedulers exist to explore.
        """

        if tokens <= 0:
            raise ConfigError(f"prefill tokens must be positive, got {tokens}")
        bucket = bucket_context(tokens, floor=PREFILL_QUERY_BLOCK)
        return bucket // PREFILL_QUERY_BLOCK

    def prefill_cycles(self, tokens: int, context_tokens: int) -> int:
        """Cycle-engine cost of one prefill chunk, via the memoized table.

        A chunk of T prompt tokens at attention context C is costed as the
        decode-step shape with ``ceil(T / 64)`` query blocks standing in for
        the batch axis: each tile of prefill queries occupies the accelerator
        like one decode request's KV-head groups at context C.  (Tiles of one
        prompt share a KV cache where batched decodes stream disjoint ones, so
        this slightly overprices prefill DRAM traffic -- acceptable, and it
        keeps prefill and decode in one ``(batch, seq-bucket)`` memo table.)
        Chunks wider than :data:`PREFILL_MAX_BLOCKS` blocks are priced as
        whole multiples of the capped shape, so arbitrarily long prompts cost
        proportionally more without ever growing the simulated trace.
        """

        blocks = self.prefill_chunk_blocks(tokens)
        sim_blocks = min(blocks, PREFILL_MAX_BLOCKS)
        # Block counts are powers of two (bucketed), so this divides exactly.
        repeats = -(-blocks // sim_blocks)
        return repeats * self.step_cycles(sim_blocks, context_tokens)

    @property
    def table_size(self) -> int:
        """Distinct (batch, seq-bucket) shapes simulated so far."""

        return len(self._table)

    def profile(self) -> dict:
        """Where the model's wall clock went: table builds vs. lookups.

        ``misses`` equals :attr:`simulations`; ``build_wall_s`` is the real
        time spent inside the cycle engine.  Wall-clock figures never enter
        metrics objects -- they are surfaced via simulator ``profile``
        attributes and debug logging only.
        """

        return {
            "entries": self.table_size,
            "hits": self.hits,
            "misses": self.simulations,
            "build_wall_s": self.build_wall_s,
        }
