"""Step-planning policies: what mix of prefill and decode one iteration runs.

A :class:`SchedulerPolicy` looks at the running batch and produces a
:class:`StepPlan` -- which requests decode one token this iteration and which
process a chunk of their prompt.  The continuous-batching scheduler keeps
owning admission and eviction; the policy only decides the *composition* of
each iteration, which is exactly the axis real serving engines differ on:

* ``decode-first``  -- in-flight decodes are never stalled by new prompts;
  prefill runs only on iterations with nothing to decode.  With prefill cost
  disabled this is bit-for-bit the legacy decode-only scheduler.
* ``prefill-first`` -- pending prompts always preempt decode (the classic
  vLLM default): each such iteration prefills every pending prompt in full.
* ``chunked``       -- token-budgeted prefill chunks ride along with the
  decode batch every iteration (the vLLM ``--enable-chunked-prefill`` knob):
  decodes keep streaming while at most ``prefill_chunk`` prompt tokens are
  processed per step, FCFS across pending prompts.

Builders are registered under :data:`repro.registry.SCHEDULERS` via
``@register_scheduler`` with the uniform signature
``(prefill_chunk, **params) -> SchedulerPolicy``, which makes a new admission
discipline immediately addressable from ``llamcat serve --scheduler <name>``,
:class:`~repro.serve.scenario.ServeScenario` and serve/cluster sweep grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ConfigError
from repro.registry import register_scheduler
from repro.serve.scheduler import ActiveRequest

#: Default token budget of one chunked-prefill iteration.
DEFAULT_PREFILL_CHUNK = 256


@dataclass(frozen=True, slots=True)
class StepPlan:
    """The composition of one scheduler iteration.

    ``decode`` lists the requests generating one output token this step;
    ``prefill`` pairs each prefilling request with the number of prompt tokens
    it processes this step.  A request never appears in both lists: decode
    strictly follows prefill completion.
    """

    decode: tuple[ActiveRequest, ...] = ()
    prefill: tuple[tuple[ActiveRequest, int], ...] = ()

    def validate(self) -> "StepPlan":
        if not self.decode and not self.prefill:
            raise ConfigError("a step plan must schedule some work")
        for active in self.decode:
            if active.in_prefill:
                raise ConfigError(
                    f"request {active.request.request_id} planned for decode "
                    f"with {active.prefill_remaining} prompt tokens unprefilled"
                )
        for active, chunk in self.prefill:
            if chunk <= 0 or chunk > active.prefill_remaining:
                raise ConfigError(
                    f"request {active.request.request_id} planned a prefill "
                    f"chunk of {chunk} with {active.prefill_remaining} remaining"
                )
        return self

    @property
    def prefill_tokens(self) -> int:
        """Prompt tokens processed by this step across all chunks."""

        return sum(chunk for _, chunk in self.prefill)

    def prefill_context(self) -> int:
        """The largest attention context any prefill chunk reaches this step."""

        return max(active.prefill_processed + chunk for active, chunk in self.prefill)

    def decode_context(self) -> int:
        """The longest decode context in the planned batch."""

        return max(active.context_tokens for active in self.decode)

    def trace_args(self) -> dict:
        """The plan's composition as trace-event args (for step spans)."""

        args: dict = {"decode": len(self.decode)}
        if self.decode:
            args["decode_context"] = self.decode_context()
        if self.prefill:
            args["prefill_reqs"] = len(self.prefill)
            args["prefill_tokens"] = self.prefill_tokens
            args["prefill_context"] = self.prefill_context()
        return args


class SchedulerPolicy:
    """Base class: plan one iteration over the running batch."""

    name = "scheduler"

    def plan(self, running: Sequence[ActiveRequest]) -> StepPlan:
        """The work of the next iteration (``running`` is in admission order)."""

        raise NotImplementedError

    def meta(self) -> dict:
        """Policy knobs worth reporting in the run's metrics meta."""

        return {}


def _split_phases(
    running: Sequence[ActiveRequest],
) -> tuple[list[ActiveRequest], list[ActiveRequest]]:
    decode_ready = [a for a in running if not a.in_prefill]
    prefilling = [a for a in running if a.in_prefill]
    return decode_ready, prefilling


class DecodeFirstPolicy(SchedulerPolicy):
    """Decode whenever anything can decode; prefill only on idle-decode steps.

    In-flight requests keep their per-token pace no matter how many prompts
    queue up behind them; a prompt waits until an iteration has no decode-ready
    request, then the whole backlog prefills in one step.
    """

    name = "decode-first"

    def plan(self, running: Sequence[ActiveRequest]) -> StepPlan:
        decode_ready, prefilling = _split_phases(running)
        if decode_ready:
            return StepPlan(decode=tuple(decode_ready)).validate()
        return StepPlan(
            prefill=tuple((a, a.prefill_remaining) for a in prefilling)
        ).validate()


class PrefillFirstPolicy(SchedulerPolicy):
    """Pending prompts always preempt decode; each prefills in full.

    The classic continuous-batching default: new requests reach their first
    token as fast as the accelerator allows, at the price of stalling every
    in-flight decode for whole prompts at a time (TPOT jitter).
    """

    name = "prefill-first"

    def plan(self, running: Sequence[ActiveRequest]) -> StepPlan:
        decode_ready, prefilling = _split_phases(running)
        if prefilling:
            return StepPlan(
                prefill=tuple((a, a.prefill_remaining) for a in prefilling)
            ).validate()
        return StepPlan(decode=tuple(decode_ready)).validate()


class ChunkedPrefillPolicy(SchedulerPolicy):
    """Mixed batches: decode everything, plus <= ``prefill_chunk`` prompt tokens.

    Every iteration decodes the decode-ready requests *and* spends a bounded
    token budget on the oldest pending prompts (FCFS), so prompts never stall
    decode and decode never starves prompts -- the chunked-prefill trade-off.
    """

    name = "chunked"

    def __init__(self, prefill_chunk: int = DEFAULT_PREFILL_CHUNK) -> None:
        if prefill_chunk <= 0:
            raise ConfigError(f"prefill_chunk must be positive, got {prefill_chunk}")
        self.prefill_chunk = int(prefill_chunk)

    def plan(self, running: Sequence[ActiveRequest]) -> StepPlan:
        decode_ready, prefilling = _split_phases(running)
        budget = self.prefill_chunk
        chunks: list[tuple[ActiveRequest, int]] = []
        for active in prefilling:
            if budget <= 0:
                break
            chunk = min(active.prefill_remaining, budget)
            chunks.append((active, chunk))
            budget -= chunk
        return StepPlan(decode=tuple(decode_ready), prefill=tuple(chunks)).validate()

    def meta(self) -> dict:
        return {"prefill_chunk": self.prefill_chunk}


class PrefillOnlyPolicy(SchedulerPolicy):
    """Prefill every pending prompt in full; never decode.

    The step planner of a *prefill replica* in a disaggregated fleet: requests
    leave the replica as soon as their prompt is processed (the cluster loop
    evicts and hands them off), so a decode phase never exists here.  Not
    registered -- a colocated serving loop running this policy would never
    finish a request.
    """

    name = "prefill-only"

    def plan(self, running: Sequence[ActiveRequest]) -> StepPlan:
        _, prefilling = _split_phases(running)
        if not prefilling:
            raise ConfigError(
                "prefill-only replica has nothing to prefill (decode-phase "
                "requests must never be routed here)"
            )
        return StepPlan(
            prefill=tuple((a, a.prefill_remaining) for a in prefilling)
        ).validate()


@register_scheduler(
    "decode-first",
    aliases=("decode",),
    description="Decode-ready requests never stall; prefill runs on decode-idle steps",
)
def decode_first_scheduler(prefill_chunk: int = DEFAULT_PREFILL_CHUNK) -> SchedulerPolicy:
    return DecodeFirstPolicy()


@register_scheduler(
    "prefill-first",
    aliases=("prefill",),
    description="Pending prompts preempt decode and prefill in full (vLLM default)",
)
def prefill_first_scheduler(prefill_chunk: int = DEFAULT_PREFILL_CHUNK) -> SchedulerPolicy:
    return PrefillFirstPolicy()


@register_scheduler(
    "chunked",
    aliases=("chunked-prefill",),
    description="Token-budgeted prefill chunks interleaved with decode (`prefill_chunk=`)",
)
def chunked_scheduler(prefill_chunk: int = DEFAULT_PREFILL_CHUNK) -> SchedulerPolicy:
    return ChunkedPrefillPolicy(prefill_chunk=prefill_chunk)
