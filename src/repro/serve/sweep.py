"""Serving sweep grids: arrival-rate studies through the parallel executor.

A :class:`ServeSweepSpec` names a cartesian grid -- workloads x arrival
processes x rates x schedulers x prefill chunks x policies -- and expands it
into :class:`ServePoint` job descriptors.  ServePoints satisfy the same contract as
:class:`~repro.sweep.spec.SweepPoint` (``key()`` / ``label`` / ``describe()`` /
``config_dict()`` / ``execute()``), so they run through the existing
:func:`repro.sweep.executor.run_sweep` process pool and persist into the same
JSON-lines :class:`~repro.sweep.store.ResultStore`, resumable and
content-deduplicated exactly like kernel-level sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.config.scale import ScaleTier, parse_tier
from repro.registry import (
    ARRIVALS,
    PREEMPTIONS,
    SCHEDULERS,
    WORKLOADS,
    resolve_policy,
    resolve_system,
)
from repro.serve.kvcache import DEFAULT_SWAP_MS
from repro.serve.metrics import ServeMetrics
from repro.serve.request import DEFAULT_OUTPUT_TOKENS, DEFAULT_PROMPT_TOKENS
from repro.serve.scenario import DEFAULT_SCHEDULER, ServeScenario
from repro.serve.schedpolicy import DEFAULT_PREFILL_CHUNK


@dataclass(frozen=True, slots=True)
class ServePoint:
    """One fully described serving job, executable in any worker process.

    The scenario names its components through the registries, which every
    worker can resolve (built-in arrival processes bootstrap on first lookup),
    so the point pickles small and needs no pre-resolved configuration.
    """

    label: str
    scenario: ServeScenario
    #: Sorted (axis, value) pairs locating the point in its grid.
    coords: tuple[tuple[str, object], ...] = ()
    #: Lazily memoized content hash.
    _key: str | None = field(default=None, init=False, repr=False, compare=False)

    def config_dict(self) -> dict:
        return {"kind": "serve", "scenario": self.scenario.config_dict()}

    def key(self) -> str:
        """Content hash identifying this serving simulation (labels excluded)."""

        if self._key is None:
            # Lazy memo of a derived field (compare=False): identity unchanged.
            object.__setattr__(self, "_key", self.scenario.key())  # repro: noqa[API001]
        return self._key

    def coord(self, axis: str, default=None):
        for name, value in self.coords:
            if name == axis:
                return value
        return default

    def describe(self) -> str:
        s = self.scenario
        return (
            f"{self.label}: serve {s.workload} {s.arrival}@{s.rate:g} "
            f"{s.scheduler} n={s.num_requests} b<={s.max_batch} seed={s.seed}"
        )

    def execute(self) -> ServeMetrics:
        """Run the serving simulation (the executor's worker entry point)."""

        return replace(self.scenario.run(), label=self.label)


@dataclass(frozen=True, slots=True)
class ServeSweepSpec:
    """A declarative cartesian grid of serving points.

    Workloads, arrival processes, schedulers and policies are registry names;
    ``rates`` is the traffic axis (requests/s open-loop, users closed-loop),
    ``schedulers`` x ``prefill_chunks`` the prefill-scheduling axes and
    ``kv_budgets`` x ``kv_blocks`` x ``preemptions`` the KV-memory axes (the
    defaults keep KV accounting off).  Expansion order is workload -> arrival
    -> rate -> scheduler -> chunk -> policy -> kv-budget -> kv-block ->
    preemption.
    """

    workloads: tuple[str, ...]
    rates: tuple[float, ...]
    arrivals: tuple[str, ...] = ("poisson",)
    schedulers: tuple[str, ...] = (DEFAULT_SCHEDULER,)
    prefill_chunks: tuple[int, ...] = (DEFAULT_PREFILL_CHUNK,)
    policies: tuple[str, ...] = ("unopt",)
    #: KV-budget axis: token counts and/or "system"; (None,) keeps KV off.
    kv_budgets: tuple[int | str | None, ...] = (None,)
    #: Paged-KV block-size axis (tokens per block).
    kv_blocks: tuple[int, ...] = (1,)
    #: Preemption-policy axis (PREEMPTIONS registry names).
    preemptions: tuple[str, ...] = ("recompute",)
    #: One-way KV swap transfer latency (ms), applied to every point.
    kv_swap_ms: float = DEFAULT_SWAP_MS
    num_requests: int = 32
    max_batch: int = 4
    seed: int = 0
    prefill_cost: bool = True
    system: str = "table5"
    tier: ScaleTier = ScaleTier.CI
    prompt_tokens: tuple[int, int] = DEFAULT_PROMPT_TOKENS
    output_tokens: tuple[int, int] = DEFAULT_OUTPUT_TOKENS
    slo_ttft_ms: float | None = None
    slo_latency_ms: float | None = None
    max_cycles: int | None = None
    #: Telemetry sampling cadence (simulated ms) applied to every point; None
    #: keeps sampling off and every point's content hash pre-telemetry.
    telemetry_ms: float | None = None

    def validate(self) -> "ServeSweepSpec":
        for axis in ("workloads", "rates", "arrivals", "schedulers",
                     "prefill_chunks", "policies", "kv_budgets", "kv_blocks",
                     "preemptions"):
            if not getattr(self, axis):
                raise ConfigError(f"ServeSweepSpec.{axis} must be non-empty")
        for workload in self.workloads:
            WORKLOADS.get(workload)  # raises ConfigError listing known names
        for arrival in self.arrivals:
            ARRIVALS.get(arrival)
        for scheduler in self.schedulers:
            SCHEDULERS.get(scheduler)
        for policy in self.policies:
            resolve_policy(policy)
        for preemption in self.preemptions:
            PREEMPTIONS.get(preemption)
        for budget in self.kv_budgets:
            if budget is None or budget == "system":
                continue
            if not isinstance(budget, int) or budget <= 0:
                raise ConfigError(
                    f'kv_budgets entries must be positive token counts, "system" '
                    f"or None, got {budget!r}"
                )
        if any(b <= 0 for b in self.kv_blocks):
            raise ConfigError("kv_blocks must be positive")
        if self.kv_swap_ms < 0:
            raise ConfigError("kv_swap_ms must be non-negative")
        resolve_system(self.system)
        if any(r <= 0 for r in self.rates):
            raise ConfigError("rates must be positive")
        if any(c <= 0 for c in self.prefill_chunks):
            raise ConfigError("prefill_chunks must be positive")
        if self.num_requests <= 0:
            raise ConfigError("num_requests must be positive")
        if self.max_batch <= 0:
            raise ConfigError("max_batch must be positive")
        if self.telemetry_ms is not None and self.telemetry_ms <= 0:
            raise ConfigError("telemetry_ms must be positive")
        return self

    @property
    def num_points(self) -> int:
        return (
            len(self.workloads) * len(self.arrivals) * len(self.rates)
            * len(self.schedulers) * len(self.prefill_chunks) * len(self.policies)
            * len(self.kv_budgets) * len(self.kv_blocks) * len(self.preemptions)
        )

    def scenarios(self) -> tuple[ServeScenario, ...]:
        """The grid as :class:`ServeScenario` objects, in expansion order."""

        self.validate()
        return tuple(
            ServeScenario(
                workload=workload,
                arrival=arrival,
                rate=rate,
                num_requests=self.num_requests,
                max_batch=self.max_batch,
                seed=self.seed,
                policy=policy,
                scheduler=scheduler,
                prefill_chunk=chunk,
                prefill_cost=self.prefill_cost,
                system=self.system,
                tier=self.tier,
                prompt_tokens=self.prompt_tokens,
                output_tokens=self.output_tokens,
                slo_ttft_ms=self.slo_ttft_ms,
                slo_latency_ms=self.slo_latency_ms,
                max_cycles=self.max_cycles,
                telemetry_ms=self.telemetry_ms,
                kv_budget=kv_budget,
                kv_block=kv_block,
                preemption=preemption,
                kv_swap_ms=self.kv_swap_ms,
            )
            for workload in self.workloads
            for arrival in self.arrivals
            for rate in self.rates
            for scheduler in self.schedulers
            for chunk in self.prefill_chunks
            for policy in self.policies
            for kv_budget in self.kv_budgets
            for kv_block in self.kv_blocks
            for preemption in self.preemptions
        )

    def expand(self) -> tuple[ServePoint, ...]:
        """Expand the grid into serving points, in deterministic order."""

        points = []
        for scenario in self.scenarios():
            coords = {
                "model": scenario.workload,
                "arrival": scenario.arrival,
                "rate": scenario.rate,
                "scheduler": scenario.scheduler,
                "prefill_chunk": scenario.prefill_chunk,
                "policy": scenario.policy,
                "tier": scenario.tier.name,
                "kv_budget": scenario.kv_budget,
                "kv_block": scenario.kv_block,
                "preemption": scenario.preemption,
            }
            points.append(
                ServePoint(
                    label=f"{scenario.display_label}@{scenario.rate:g}",
                    scenario=scenario,
                    coords=tuple(sorted(coords.items(), key=lambda kv: kv[0])),
                )
            )
        return tuple(points)

    # -- (de)serialization for CLI spec files -------------------------------------------
    def to_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "rates": list(self.rates),
            "arrivals": list(self.arrivals),
            "schedulers": list(self.schedulers),
            "prefill_chunks": list(self.prefill_chunks),
            "policies": list(self.policies),
            "num_requests": self.num_requests,
            "max_batch": self.max_batch,
            "seed": self.seed,
            "prefill_cost": self.prefill_cost,
            "system": self.system,
            "tier": self.tier.name,
            "prompt_tokens": list(self.prompt_tokens),
            "output_tokens": list(self.output_tokens),
            "slo_ttft_ms": self.slo_ttft_ms,
            "slo_latency_ms": self.slo_latency_ms,
            "max_cycles": self.max_cycles,
            "telemetry_ms": self.telemetry_ms,
            "kv_budgets": list(self.kv_budgets),
            "kv_blocks": list(self.kv_blocks),
            "preemptions": list(self.preemptions),
            "kv_swap_ms": self.kv_swap_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServeSweepSpec":
        return cls(
            workloads=tuple(data["workloads"]),
            rates=tuple(data["rates"]),
            arrivals=tuple(data.get("arrivals", ("poisson",))),
            schedulers=tuple(data.get("schedulers", (DEFAULT_SCHEDULER,))),
            prefill_chunks=tuple(data.get("prefill_chunks", (DEFAULT_PREFILL_CHUNK,))),
            policies=tuple(data.get("policies", ("unopt",))),
            num_requests=data.get("num_requests", 32),
            max_batch=data.get("max_batch", 4),
            seed=data.get("seed", 0),
            prefill_cost=data.get("prefill_cost", True),
            system=data.get("system", "table5"),
            tier=parse_tier(data.get("tier", "CI")),
            prompt_tokens=tuple(data.get("prompt_tokens", DEFAULT_PROMPT_TOKENS)),
            output_tokens=tuple(data.get("output_tokens", DEFAULT_OUTPUT_TOKENS)),
            slo_ttft_ms=data.get("slo_ttft_ms"),
            slo_latency_ms=data.get("slo_latency_ms"),
            max_cycles=data.get("max_cycles"),
            telemetry_ms=data.get("telemetry_ms"),
            kv_budgets=tuple(data.get("kv_budgets", (None,))),
            kv_blocks=tuple(data.get("kv_blocks", (1,))),
            preemptions=tuple(data.get("preemptions", ("recompute",))),
            kv_swap_ms=data.get("kv_swap_ms", DEFAULT_SWAP_MS),
        ).validate()
