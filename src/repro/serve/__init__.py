"""Request-stream serving simulation with continuous batching and SLO metrics.

``repro.serve`` layers a request-level simulator on top of the cycle-accurate
engine: arrival processes (:mod:`repro.serve.arrival`, pluggable through
``@register_arrival``) generate a stream of prefill-then-decode requests, a
continuous-batching scheduler re-forms the running batch every iteration
under a step-planning policy (:mod:`repro.serve.schedpolicy`, pluggable
through ``@register_scheduler``: decode-first, prefill-first, chunked
prefill), and each iteration's cost comes from the existing trace-driven
simulator through a memoized step-cost table covering both decode and
chunk-bucketed prefill shapes.  The metrics layer reports per-request
latency, TTFT, TPOT, per-phase (prefill/decode) spans, p50/p95/p99
percentiles, throughput and SLO attainment.

Quick start::

    from repro.serve import ServeScenario

    metrics = ServeScenario(
        workload="llama3-70b", arrival="poisson", rate=2000, seed=0
    ).run()
    print(metrics.summary())

Serving points also sweep through the parallel executor::

    from repro.serve import ServeSweepSpec
    from repro.sweep import run_sweep

    spec = ServeSweepSpec(workloads=("llama3-70b",), rates=(1000, 2000, 4000))
    report = run_sweep(spec.expand(), jobs=4)
"""

from repro.serve.arrival import ArrivalProcess, OpenLoopArrivals
from repro.serve.kvcache import (
    KVCacheConfig,
    KVCacheManager,
    PreemptionPolicy,
    RecomputePreemption,
    SwapPreemption,
)
from repro.serve.metrics import RequestMetrics, ServeMetrics, ServeSLO
from repro.serve.request import Request, RequestSampler
from repro.serve.scenario import ServeScenario, run_serve_scenario
from repro.serve.schedpolicy import (
    ChunkedPrefillPolicy,
    DecodeFirstPolicy,
    PrefillFirstPolicy,
    PrefillOnlyPolicy,
    SchedulerPolicy,
    StepPlan,
)
from repro.serve.scheduler import (
    BatchConfig,
    ContinuousBatchScheduler,
    HandoffRequest,
    bucket_context,
)
from repro.serve.simulator import ServeStallReport, ServingSimulator
from repro.serve.stepcost import LinearStepCostModel, SimStepCostModel, StepCostModel
from repro.serve.sweep import ServePoint, ServeSweepSpec

__all__ = [
    "ArrivalProcess",
    "BatchConfig",
    "ChunkedPrefillPolicy",
    "ContinuousBatchScheduler",
    "DecodeFirstPolicy",
    "HandoffRequest",
    "KVCacheConfig",
    "KVCacheManager",
    "LinearStepCostModel",
    "OpenLoopArrivals",
    "PreemptionPolicy",
    "PrefillFirstPolicy",
    "PrefillOnlyPolicy",
    "RecomputePreemption",
    "Request",
    "RequestMetrics",
    "RequestSampler",
    "SchedulerPolicy",
    "ServeMetrics",
    "ServePoint",
    "ServeSLO",
    "ServeScenario",
    "ServeStallReport",
    "ServeSweepSpec",
    "ServingSimulator",
    "SwapPreemption",
    "SimStepCostModel",
    "StepCostModel",
    "StepPlan",
    "bucket_context",
    "run_serve_scenario",
]
