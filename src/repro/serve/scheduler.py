"""Continuous batching: admit, grow, shrink -- one iteration at a time.

The scheduler keeps a *running batch* of at most ``max_batch`` requests.  At
every iteration boundary it admits waiting requests (FCFS by arrival time) into
free batch slots and evicts requests whose output budget is exhausted -- the
"continuous" in continuous batching: the batch is re-formed every step rather
than waiting for the whole batch to drain.

When :attr:`BatchConfig.prefill` is on, an admitted request first passes
through a *prefill phase*: its prompt must be processed (``prefill_remaining``
counts down the unprocessed prompt tokens) before it may decode.  What mix of
prefill and decode work one iteration performs is the step-planning policy's
decision (:mod:`repro.serve.schedpolicy`, registered under
:data:`repro.registry.SCHEDULERS`) -- the scheduler itself only owns admission
and eviction.

The batch's *effective decode shape* for a step is ``(batch, context)``:
``batch`` requests, each contributing its own KV cache, at the longest context
currently in the batch (shorter requests ride along, exactly like padded
batched decode on real accelerators).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field, fields

from repro.common.errors import ConfigError, SimulationError
from repro.registry import resolve_preemption
from repro.serve.kvcache import KVCacheConfig, KVCacheManager, PreemptionPolicy
from repro.serve.request import Request

#: Contexts are never simulated below this many tokens (matches the scale-tier
#: floor in :mod:`repro.config.scale`, so tiered serve runs stay consistent).
SEQ_BUCKET_FLOOR = 64


def bucket_context(context_tokens: int, floor: int = SEQ_BUCKET_FLOOR) -> int:
    """Round a context length up to the next power of two, at least ``floor``.

    Bucketing is what makes the memoized step-cost table small: a request's
    context grows by one token per step, but its bucket changes only O(log L)
    times over its lifetime.
    """

    if floor <= 0:
        raise ConfigError(f"bucket floor must be positive, got {floor}")
    size = max(int(context_tokens), floor)
    bucket = floor
    while bucket < size:
        bucket *= 2
    return bucket


@dataclass(slots=True)
class ActiveRequest:
    """Mutable progress of one admitted request.

    ``prefill_remaining`` is the number of prompt tokens still to be processed
    before the first decode step; it is 0 for the whole lifetime of a request
    when the scheduler does not model prefill (:attr:`BatchConfig.prefill`
    off), which is exactly the legacy decode-only behaviour.
    """

    request: Request
    admitted_s: float
    generated: int = 0
    #: Prompt tokens not yet prefilled; decode may not start until this is 0.
    prefill_remaining: int = 0
    #: When the last prompt token was processed (None while prefilling, and
    #: for decode-only runs that never model the prefill phase).
    prefill_end_s: float | None = None
    first_token_s: float | None = None
    finish_s: float | None = None

    @property
    def in_prefill(self) -> bool:
        """Whether this request still has unprocessed prompt tokens."""

        return self.prefill_remaining > 0

    @property
    def prefill_processed(self) -> int:
        """Context tokens already prefilled (the KV cache length mid-prefill).

        Measured against the full context rather than the prompt alone: a
        recompute-preempted request re-prefills prompt *plus* already-generated
        tokens, so its remaining count may exceed ``prompt_tokens``.  For the
        ordinary first prefill (``generated == 0``) this is exactly the number
        of prompt tokens processed so far.
        """

        return self.request.prompt_tokens + self.generated - self.prefill_remaining

    @property
    def context_tokens(self) -> int:
        return self.request.context_at(self.generated)

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass(slots=True)
class HandoffRequest:
    """A prefilled request in transit between replicas (disaggregated fleets).

    Wraps the :class:`ActiveRequest` evicted from a prefill replica so the
    decode replica resumes the *same* progress record (admission timestamp and
    prefill accounting survive the handoff); ``arrival_s`` is when the KV
    transfer completes, i.e. when the request becomes admissible again.  The
    duck-typed ``(arrival_s, request_id)`` pair lets handoffs share the
    scheduler's FCFS admission queue with plain requests.
    """

    active: ActiveRequest
    arrival_s: float

    @property
    def request_id(self) -> int:
        return self.active.request.request_id


@dataclass(frozen=True, slots=True)
class BatchConfig:
    """Knobs of the continuous-batching scheduler.

    ``prefill`` switches the prefill phase on: admitted requests then carry
    ``prefill_remaining = prompt_tokens`` and must be prefilled before they
    decode.  Off (the default) reproduces the legacy decode-only scheduler
    bit-for-bit.
    """

    max_batch: int = 4
    seq_bucket_floor: int = SEQ_BUCKET_FLOOR
    prefill: bool = False
    #: KV-memory model; the default (budget ``None``) keeps accounting off and
    #: the scheduler byte-identical to the legacy unbounded-memory behaviour.
    kv: KVCacheConfig = field(default_factory=KVCacheConfig)

    def validate(self) -> "BatchConfig":
        if self.max_batch <= 0:
            raise ConfigError(f"max_batch must be positive, got {self.max_batch}")
        if self.seq_bucket_floor <= 0:
            raise ConfigError(
                f"seq_bucket_floor must be positive, got {self.seq_bucket_floor}"
            )
        self.kv.validate()
        if self.kv.enabled and not self.prefill:
            raise ConfigError(
                "KV accounting needs the prefill phase modeled (prefill=True): "
                "recompute preemption re-prefills evicted context"
            )
        return self

    def to_dict(self) -> dict:
        # The "kv" key appears only when the memory model is on, so legacy
        # serialized configs (and their hashes) are untouched by the KV axis.
        base = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "kv"
        }
        return base | ({"kv": self.kv.to_dict()} if self.kv.enabled else {})

    @classmethod
    def from_dict(cls, data: dict) -> "BatchConfig":
        kwargs = {
            f.name: data[f.name]
            for f in fields(cls)
            if f.name in data and f.name != "kv"
        }
        if "kv" in data:
            kwargs["kv"] = KVCacheConfig.from_dict(data["kv"])
        return cls(**kwargs).validate()


@dataclass(slots=True)
class ContinuousBatchScheduler:
    """FCFS admission into a bounded, per-iteration re-formed batch.

    When the config carries a finite KV budget the scheduler also owns the
    memory side of admission: a request is admitted only if its current KV
    footprint fits the free blocks (``kv_blocked`` flags the head-of-line
    request that arrived in time but found no memory), every decode step's
    context growth is pre-funded by :meth:`ensure_kv_growth` -- which preempts
    the *last-admitted* running request (LIFO, so the oldest never starve)
    under the configured PREEMPTIONS policy until the batch fits -- and blocks
    are released on finish, handoff and preemption.
    """

    config: BatchConfig = field(default_factory=BatchConfig)
    #: Requests that have arrived but not yet been admitted, FCFS order.
    waiting: list = field(default_factory=list)
    #: The running batch (at most ``config.max_batch`` entries).
    running: list = field(default_factory=list)
    #: KV block allocator (None whenever accounting is off).
    kv: KVCacheManager | None = field(default=None, init=False)
    #: Eviction policy under KV pressure (None whenever accounting is off).
    preemption: PreemptionPolicy | None = field(default=None, init=False)
    #: Requests preempted so far (re-admissions do not reset it).
    preemptions: int = field(default=0, init=False)
    #: Whether the last :meth:`admit` left an arrived request waiting on
    #: memory rather than on a batch slot -- the "memory-bound" signal.
    kv_blocked: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.config.validate()
        if self.config.kv.enabled:
            self.kv = KVCacheManager(self.config.kv)
            self.preemption = resolve_preemption(self.config.kv.preemption)(
                self.config.kv
            )

    def enqueue(self, request) -> None:
        """Add an arrived request to the admission queue (kept FCFS-sorted).

        Accepts plain :class:`~repro.serve.request.Request` objects and
        :class:`HandoffRequest` wrappers (prefilled requests arriving from a
        prefill replica, or preempted requests awaiting re-admission) -- both
        expose ``(arrival_s, request_id)``.
        """

        insort(self.waiting, request, key=lambda r: (r.arrival_s, r.request_id))

    def _kv_demand(self, entry) -> tuple[int, int]:
        """``(tokens now, lifetime peak tokens)`` KV footprint of an entry."""

        if isinstance(entry, HandoffRequest):
            active = entry.active
            return (
                active.context_tokens,
                active.request.prompt_tokens + active.request.output_tokens,
            )
        return entry.prompt_tokens, entry.prompt_tokens + entry.output_tokens

    def admit(self, now_s: float) -> list[ActiveRequest]:
        """Admit waiting requests with ``arrival_s <= now_s`` into free slots.

        With KV accounting on, admission additionally requires the head
        request's current footprint to fit the free blocks; a head that
        arrived in time but does not fit sets :attr:`kv_blocked` and stalls
        the queue (admission stays strictly FCFS -- no skip-ahead).
        """

        admitted: list[ActiveRequest] = []
        self.kv_blocked = False
        while self.waiting and len(self.running) < self.config.max_batch:
            entry = self.waiting[0]
            if entry.arrival_s > now_s:
                break
            if self.kv is not None:
                tokens_now, tokens_peak = self._kv_demand(entry)
                if self.kv.blocks_for(tokens_peak) > self.kv.capacity_blocks:
                    raise ConfigError(
                        f"request {entry.request_id} needs "
                        f"{self.kv.blocks_for(tokens_peak)} KV blocks at peak but "
                        f"the device budget is {self.kv.capacity_blocks} blocks "
                        f"({self.config.kv.budget_tokens} tokens)"
                    )
                if not self.kv.fits(tokens_now):
                    self.kv_blocked = True
                    break
            self.waiting.pop(0)
            if isinstance(entry, HandoffRequest):
                # Resume the prior progress record: admission and prefill
                # timestamps describe the request's first admission.
                active = entry.active
            else:
                active = ActiveRequest(
                    request=entry,
                    admitted_s=now_s,
                    prefill_remaining=entry.prompt_tokens if self.config.prefill else 0,
                )
            if self.kv is not None:
                self.kv.reserve(active.request.request_id, active.context_tokens)
            self.running.append(active)
            admitted.append(active)
        return admitted

    def ensure_kv_growth(self, now_s: float) -> list[ActiveRequest]:
        """Preempt until every decode-ready request can grow by one token.

        Called between admission and step planning: decode grows each
        non-prefilling request's context by one token, and that growth may
        need fresh blocks.  While the batch's aggregate growth demand exceeds
        the free blocks, the last-admitted running request is preempted --
        its blocks released, its progress record mutated by the PREEMPTIONS
        policy, and the request re-queued as a :class:`HandoffRequest` at the
        policy's re-admission time.  Returns the victims (newest first).
        """

        if self.kv is None:
            return []
        preempted: list[ActiveRequest] = []
        while True:
            needed = sum(
                self.kv.growth_blocks(a.request.request_id, a.context_tokens + 1)
                for a in self.running
                if not a.in_prefill
            )
            if needed <= self.kv.free_blocks:
                return preempted
            if len(self.running) <= 1:
                # Unreachable given the admission-time peak-footprint guard:
                # a lone request's one-block growth always fits.
                raise SimulationError(
                    "sole running request cannot grow within the KV budget"
                )
            victim = self.running.pop()
            self.kv.release(victim.request.request_id)
            self.preemptions += 1
            assert self.preemption is not None
            readmit_s = self.preemption.preempt(victim, now_s)
            self.enqueue(HandoffRequest(active=victim, arrival_s=readmit_s))
            preempted.append(victim)

    def release_kv(self, active: ActiveRequest) -> None:
        """Free an evicted request's KV blocks (finish or replica handoff)."""

        if self.kv is not None:
            self.kv.release(active.request.request_id)

    def evict_finished(self, now_s: float) -> list[ActiveRequest]:
        """Remove requests whose output budget is exhausted; stamp finish time."""

        finished = [a for a in self.running if a.done]
        for active in finished:
            active.finish_s = now_s
            self.release_kv(active)
        self.running = [a for a in self.running if not a.done]
        return finished

    def batch_shape(self) -> tuple[int, int]:
        """The effective ``(batch, context_bucket)`` of the next iteration."""

        if not self.running:
            raise ConfigError("batch_shape() on an empty batch")
        context = max(a.context_tokens for a in self.running)
        return len(self.running), bucket_context(context, self.config.seq_bucket_floor)

    @property
    def has_work(self) -> bool:
        return bool(self.running or self.waiting)

    def next_arrival_s(self) -> float | None:
        """Arrival time of the earliest waiting request (None when idle)."""

        return self.waiting[0].arrival_s if self.waiting else None
