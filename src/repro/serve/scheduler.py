"""Continuous batching: admit, grow, shrink -- one iteration at a time.

The scheduler keeps a *running batch* of at most ``max_batch`` requests.  At
every iteration boundary it admits waiting requests (FCFS by arrival time) into
free batch slots and evicts requests whose output budget is exhausted -- the
"continuous" in continuous batching: the batch is re-formed every step rather
than waiting for the whole batch to drain.

When :attr:`BatchConfig.prefill` is on, an admitted request first passes
through a *prefill phase*: its prompt must be processed (``prefill_remaining``
counts down the unprocessed prompt tokens) before it may decode.  What mix of
prefill and decode work one iteration performs is the step-planning policy's
decision (:mod:`repro.serve.schedpolicy`, registered under
:data:`repro.registry.SCHEDULERS`) -- the scheduler itself only owns admission
and eviction.

The batch's *effective decode shape* for a step is ``(batch, context)``:
``batch`` requests, each contributing its own KV cache, at the longest context
currently in the batch (shorter requests ride along, exactly like padded
batched decode on real accelerators).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.common.errors import ConfigError
from repro.serve.request import Request

#: Contexts are never simulated below this many tokens (matches the scale-tier
#: floor in :mod:`repro.config.scale`, so tiered serve runs stay consistent).
SEQ_BUCKET_FLOOR = 64


def bucket_context(context_tokens: int, floor: int = SEQ_BUCKET_FLOOR) -> int:
    """Round a context length up to the next power of two, at least ``floor``.

    Bucketing is what makes the memoized step-cost table small: a request's
    context grows by one token per step, but its bucket changes only O(log L)
    times over its lifetime.
    """

    if floor <= 0:
        raise ConfigError(f"bucket floor must be positive, got {floor}")
    size = max(int(context_tokens), floor)
    bucket = floor
    while bucket < size:
        bucket *= 2
    return bucket


@dataclass(slots=True)
class ActiveRequest:
    """Mutable progress of one admitted request.

    ``prefill_remaining`` is the number of prompt tokens still to be processed
    before the first decode step; it is 0 for the whole lifetime of a request
    when the scheduler does not model prefill (:attr:`BatchConfig.prefill`
    off), which is exactly the legacy decode-only behaviour.
    """

    request: Request
    admitted_s: float
    generated: int = 0
    #: Prompt tokens not yet prefilled; decode may not start until this is 0.
    prefill_remaining: int = 0
    #: When the last prompt token was processed (None while prefilling, and
    #: for decode-only runs that never model the prefill phase).
    prefill_end_s: float | None = None
    first_token_s: float | None = None
    finish_s: float | None = None

    @property
    def in_prefill(self) -> bool:
        """Whether this request still has unprocessed prompt tokens."""

        return self.prefill_remaining > 0

    @property
    def prefill_processed(self) -> int:
        """Prompt tokens already prefilled (the KV cache length mid-prefill)."""

        return self.request.prompt_tokens - self.prefill_remaining

    @property
    def context_tokens(self) -> int:
        return self.request.context_at(self.generated)

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass(slots=True)
class HandoffRequest:
    """A prefilled request in transit between replicas (disaggregated fleets).

    Wraps the :class:`ActiveRequest` evicted from a prefill replica so the
    decode replica resumes the *same* progress record (admission timestamp and
    prefill accounting survive the handoff); ``arrival_s`` is when the KV
    transfer completes, i.e. when the request becomes admissible again.  The
    duck-typed ``(arrival_s, request_id)`` pair lets handoffs share the
    scheduler's FCFS admission queue with plain requests.
    """

    active: ActiveRequest
    arrival_s: float

    @property
    def request_id(self) -> int:
        return self.active.request.request_id


@dataclass(frozen=True, slots=True)
class BatchConfig:
    """Knobs of the continuous-batching scheduler.

    ``prefill`` switches the prefill phase on: admitted requests then carry
    ``prefill_remaining = prompt_tokens`` and must be prefilled before they
    decode.  Off (the default) reproduces the legacy decode-only scheduler
    bit-for-bit.
    """

    max_batch: int = 4
    seq_bucket_floor: int = SEQ_BUCKET_FLOOR
    prefill: bool = False

    def validate(self) -> "BatchConfig":
        if self.max_batch <= 0:
            raise ConfigError(f"max_batch must be positive, got {self.max_batch}")
        if self.seq_bucket_floor <= 0:
            raise ConfigError(
                f"seq_bucket_floor must be positive, got {self.seq_bucket_floor}"
            )
        return self

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "BatchConfig":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data}).validate()


@dataclass(slots=True)
class ContinuousBatchScheduler:
    """FCFS admission into a bounded, per-iteration re-formed batch."""

    config: BatchConfig = field(default_factory=BatchConfig)
    #: Requests that have arrived but not yet been admitted, FCFS order.
    waiting: list = field(default_factory=list)
    #: The running batch (at most ``config.max_batch`` entries).
    running: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.config.validate()

    def enqueue(self, request) -> None:
        """Add an arrived request to the admission queue (kept FCFS-sorted).

        Accepts plain :class:`~repro.serve.request.Request` objects and
        :class:`HandoffRequest` wrappers (prefilled requests arriving from a
        prefill replica) -- both expose ``(arrival_s, request_id)``.
        """

        self.waiting.append(request)
        self.waiting.sort(key=lambda r: (r.arrival_s, r.request_id))

    def admit(self, now_s: float) -> list[ActiveRequest]:
        """Admit waiting requests with ``arrival_s <= now_s`` into free slots."""

        admitted: list[ActiveRequest] = []
        while self.waiting and len(self.running) < self.config.max_batch:
            if self.waiting[0].arrival_s > now_s:
                break
            entry = self.waiting.pop(0)
            if isinstance(entry, HandoffRequest):
                # Resume the prefill replica's progress record: admission and
                # prefill timestamps describe the request's first admission.
                active = entry.active
            else:
                active = ActiveRequest(
                    request=entry,
                    admitted_s=now_s,
                    prefill_remaining=entry.prompt_tokens if self.config.prefill else 0,
                )
            self.running.append(active)
            admitted.append(active)
        return admitted

    def evict_finished(self, now_s: float) -> list[ActiveRequest]:
        """Remove requests whose output budget is exhausted; stamp finish time."""

        finished = [a for a in self.running if a.done]
        for active in finished:
            active.finish_s = now_s
        self.running = [a for a in self.running if not a.done]
        return finished

    def batch_shape(self) -> tuple[int, int]:
        """The effective ``(batch, context_bucket)`` of the next iteration."""

        if not self.running:
            raise ConfigError("batch_shape() on an empty batch")
        context = max(a.context_tokens for a in self.running)
        return len(self.running), bucket_context(context, self.config.seq_bucket_floor)

    @property
    def has_work(self) -> bool:
        return bool(self.running or self.waiting)

    def next_arrival_s(self) -> float | None:
        """Arrival time of the earliest waiting request (None when idle)."""

        return self.waiting[0].arrival_s if self.waiting else None
