"""ServeScenario: one serving simulation point, named by registry strings.

The serving counterpart of :class:`repro.api.Scenario`: a frozen, serializable
description of a serving run -- workload / system / policy / arrival-process /
scheduler names plus the traffic knobs (rate, request count, batch bound,
prefill chunk budget, seed, SLOs).  Everything resolves through
:mod:`repro.registry`, so a workload, arrival process or scheduler policy
registered anywhere is immediately servable from the Python API, the
``llamcat serve`` subcommand and serve sweep grids.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import NamedTuple

from repro.common.errors import ConfigError
from repro.config.policies import PolicyConfig
from repro.config.scale import ScaleTier, parse_tier, scale_system
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.registry import (
    resolve_arrival,
    resolve_policy,
    resolve_scheduler,
    resolve_system,
    resolve_workload,
)
from repro.serve.kvcache import DEFAULT_SWAP_MS, KVCacheConfig
from repro.serve.metrics import ServeMetrics, ServeSLO
from repro.serve.request import (
    DEFAULT_OUTPUT_TOKENS,
    DEFAULT_PROMPT_TOKENS,
    RequestSampler,
)
from repro.serve.schedpolicy import DEFAULT_PREFILL_CHUNK
from repro.serve.scheduler import SEQ_BUCKET_FLOOR, BatchConfig
from repro.serve.simulator import ServingSimulator
from repro.serve.stepcost import SimStepCostModel
from repro.sim.runner import clear_trace_cache

#: The system name a ServeScenario uses when none is given (matches
#: :data:`repro.api.DEFAULT_SYSTEM`).
DEFAULT_SERVE_SYSTEM = "table5"

#: The step-planning policy a ServeScenario uses when none is given.
DEFAULT_SCHEDULER = "decode-first"


class ResolvedServeScenario(NamedTuple):
    """Concrete, tier-scaled configuration objects behind a ServeScenario."""

    system: SystemConfig
    workload: WorkloadConfig
    policy: PolicyConfig


@dataclass(frozen=True, slots=True)
class ServeScenario:
    """One serving simulation point over a stream of decode requests."""

    workload: str
    arrival: str = "poisson"
    #: Requests/s for open-loop processes; user population for closed-loop.
    rate: float = 2000.0
    num_requests: int = 32
    max_batch: int = 4
    seed: int = 0
    policy: str = "unopt"
    #: Step-planning policy (SCHEDULERS registry name): decode-first /
    #: prefill-first / chunked.
    scheduler: str = DEFAULT_SCHEDULER
    #: Token budget of one chunked-prefill iteration (chunked scheduler only).
    prefill_chunk: int = DEFAULT_PREFILL_CHUNK
    #: Model the prefill phase; off, prompts are free and the run reproduces
    #: the legacy decode-only scheduler bit-for-bit.
    prefill_cost: bool = True
    system: str = DEFAULT_SERVE_SYSTEM
    tier: ScaleTier = ScaleTier.CI
    prompt_tokens: tuple[int, int] = DEFAULT_PROMPT_TOKENS
    output_tokens: tuple[int, int] = DEFAULT_OUTPUT_TOKENS
    #: Extra keyword parameters for the arrival builder, as sorted pairs
    #: (e.g. ``(("burst_size", 4),)`` for bursty traffic).
    arrival_params: tuple[tuple[str, object], ...] = ()
    slo_ttft_ms: float | None = None
    slo_latency_ms: float | None = None
    max_cycles: int | None = None
    #: Telemetry sampling cadence in simulated milliseconds; None disables
    #: sampling.  Serialized only when set, so pre-telemetry scenario hashes
    #: (and store resume) stay valid.
    telemetry_ms: float | None = None
    #: KV-cache budget in tokens, ``"system"`` for the system preset's
    #: :attr:`~repro.config.system.SystemConfig.kv_budget_tokens`, or None to
    #: keep KV accounting off (the legacy unbounded-memory default).  The KV
    #: knobs are serialized only when a budget is set, so pre-KV scenario
    #: hashes (and store resume) stay valid.
    kv_budget: int | str | None = None
    #: Paged-KV block size in tokens (1 = exact token-granular accounting).
    kv_block: int = 1
    #: PREEMPTIONS registry name: what eviction under KV pressure costs.
    preemption: str = "recompute"
    #: One-way KV swap transfer latency in milliseconds (swap policy only).
    kv_swap_ms: float = DEFAULT_SWAP_MS
    #: Display label (defaults to "<policy>@<arrival>"); never part of the key.
    label: str | None = None

    # -- validation / resolution -------------------------------------------------------
    def validate(self) -> "ServeScenario":
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {self.num_requests}")
        if self.max_batch <= 0:
            raise ConfigError(f"max_batch must be positive, got {self.max_batch}")
        if self.prefill_chunk <= 0:
            raise ConfigError(f"prefill_chunk must be positive, got {self.prefill_chunk}")
        if self.telemetry_ms is not None and self.telemetry_ms <= 0:
            raise ConfigError(f"telemetry_ms must be positive, got {self.telemetry_ms}")
        if not isinstance(self.tier, ScaleTier):
            raise ConfigError(f"tier must be a ScaleTier, got {self.tier!r}")
        self.slo().validate()
        resolve_arrival(self.arrival)  # raises ConfigError on unknown names
        resolve_scheduler(self.scheduler)
        resolved = self.resolve()
        if self.kv_budget is not None:
            if not self.prefill_cost:
                raise ConfigError(
                    "kv_budget needs prefill_cost=True: recompute preemption "
                    "re-prefills evicted context"
                )
            self.kv_config(resolved.system).validate()
        return self

    def resolve(self) -> ResolvedServeScenario:
        """Resolve names through the registries and tier-scale the system.

        The workload keeps its builder-default sequence length: per-step
        contexts come from the request stream, so only the shape family
        (heads, head_dim, operator) matters here.
        """

        system = scale_system(resolve_system(self.system), self.tier)
        workload = resolve_workload(self.workload)
        policy = resolve_policy(self.policy)
        return ResolvedServeScenario(system=system, workload=workload, policy=policy)

    def slo(self) -> ServeSLO:
        return ServeSLO(ttft_ms=self.slo_ttft_ms, latency_ms=self.slo_latency_ms)

    def kv_config(self, system: SystemConfig | None = None) -> KVCacheConfig:
        """The KV memory model of this point (accounting off when no budget).

        ``kv_budget="system"`` resolves to the (tier-scaled) system preset's
        :attr:`~repro.config.system.SystemConfig.kv_budget_tokens`; pass the
        already-resolved system to skip a second registry resolution.
        """

        if self.kv_budget is None:
            return KVCacheConfig()
        if self.kv_budget == "system":
            if system is None:
                system = self.resolve().system
            budget = system.kv_budget_tokens
        elif isinstance(self.kv_budget, int):
            budget = self.kv_budget
        else:
            raise ConfigError(
                f'kv_budget must be a token count, "system" or None, '
                f"got {self.kv_budget!r}"
            )
        return KVCacheConfig(
            budget_tokens=budget,
            block_tokens=self.kv_block,
            preemption=self.preemption,
            swap_ms=self.kv_swap_ms,
        )

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else f"{self.policy}@{self.arrival}"

    # -- identity ----------------------------------------------------------------------
    def config_dict(self) -> dict:
        """The outcome-determining configuration as JSON-able data.

        Display labels are excluded, mirroring :meth:`SweepPoint.key`: two
        serving points that differ only in labelling share one simulation.
        """

        data = self.to_dict()
        data.pop("label")
        return data

    def key(self) -> str:
        """Content hash identifying this serving simulation (store/dedup key)."""

        canonical = json.dumps(self.config_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- (de)serialization -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "arrival": self.arrival,
            "rate": self.rate,
            "num_requests": self.num_requests,
            "max_batch": self.max_batch,
            "seed": self.seed,
            "policy": self.policy,
            "scheduler": self.scheduler,
            "prefill_chunk": self.prefill_chunk,
            "prefill_cost": self.prefill_cost,
            "system": self.system,
            "tier": self.tier.name,
            "prompt_tokens": list(self.prompt_tokens),
            "output_tokens": list(self.output_tokens),
            "arrival_params": [[k, v] for k, v in self.arrival_params],
            "slo_ttft_ms": self.slo_ttft_ms,
            "slo_latency_ms": self.slo_latency_ms,
            "max_cycles": self.max_cycles,
            "label": self.label,
        } | ({} if self.telemetry_ms is None else {"telemetry_ms": self.telemetry_ms}) | (
            {}
            if self.kv_budget is None
            else {
                "kv_budget": self.kv_budget,
                "kv_block": self.kv_block,
                "preemption": self.preemption,
                "kv_swap_ms": self.kv_swap_ms,
            }
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ServeScenario":
        defaults = {f.name: f.default for f in fields(cls)}
        return cls(
            workload=data["workload"],
            arrival=data.get("arrival", "poisson"),
            rate=data.get("rate", defaults["rate"]),
            num_requests=data.get("num_requests", defaults["num_requests"]),
            max_batch=data.get("max_batch", defaults["max_batch"]),
            seed=data.get("seed", 0),
            policy=data.get("policy", "unopt"),
            scheduler=data.get("scheduler", DEFAULT_SCHEDULER),
            prefill_chunk=data.get("prefill_chunk", DEFAULT_PREFILL_CHUNK),
            prefill_cost=data.get("prefill_cost", True),
            system=data.get("system", DEFAULT_SERVE_SYSTEM),
            tier=parse_tier(data.get("tier", ScaleTier.CI.name)),
            prompt_tokens=tuple(data.get("prompt_tokens", DEFAULT_PROMPT_TOKENS)),
            output_tokens=tuple(data.get("output_tokens", DEFAULT_OUTPUT_TOKENS)),
            arrival_params=tuple(
                (k, v) for k, v in data.get("arrival_params", ())
            ),
            slo_ttft_ms=data.get("slo_ttft_ms"),
            slo_latency_ms=data.get("slo_latency_ms"),
            max_cycles=data.get("max_cycles"),
            telemetry_ms=data.get("telemetry_ms"),
            kv_budget=data.get("kv_budget"),
            kv_block=data.get("kv_block", 1),
            preemption=data.get("preemption", "recompute"),
            kv_swap_ms=data.get("kv_swap_ms", DEFAULT_SWAP_MS),
            label=data.get("label"),
        )

    # -- execution ---------------------------------------------------------------------
    def build_simulator(self) -> ServingSimulator:
        """Assemble the arrival process, cost model and scheduler for this point."""

        resolved = self.resolve()
        sampler = RequestSampler(
            seed=self.seed,
            prompt_tokens=self.prompt_tokens,
            output_tokens=self.output_tokens,
        )
        arrival = resolve_arrival(self.arrival)(
            sampler, self.rate, self.num_requests, **dict(self.arrival_params)
        )
        cost_model = SimStepCostModel(
            system=resolved.system,
            workload=resolved.workload,
            policy=resolved.policy,
            tier=self.tier,
            max_cycles=self.max_cycles,
            seq_bucket_floor=SEQ_BUCKET_FLOOR,
        )
        return ServingSimulator(
            arrival=arrival,
            cost_model=cost_model,
            frequency_ghz=resolved.system.frequency_ghz,
            batch=BatchConfig(
                max_batch=self.max_batch,
                prefill=self.prefill_cost,
                kv=self.kv_config(resolved.system),
            ),
            policy=resolve_scheduler(self.scheduler)(prefill_chunk=self.prefill_chunk),
            slo=self.slo(),
            label=self.display_label,
            workload_name=self.workload,
            telemetry_ms=self.telemetry_ms,
        )

    def run(self, tracer=None, profiler=None, probe=None) -> ServeMetrics:
        """Simulate this serving point and return its metrics.

        Long-lived processes run many scenarios back to back, so each run ends
        by clearing the module-level trace cache: a serving run generates up to
        ``max_batch x seq-buckets`` distinct step traces (large at high batch),
        which would otherwise linger into -- and LRU-evict the traces of --
        whatever runs next.  Within the run itself, traces are still shared
        through :func:`~repro.sim.runner.cached_trace` and the memoized step
        table.

        ``tracer`` receives the run's event timeline (None keeps the
        zero-overhead null tracer); ``profiler`` (a
        :class:`~repro.obs.profile.Profiler`) accumulates the run's wall-clock
        profile; ``probe`` (a :class:`~repro.analysis.runtime.StepProbe`)
        collects per-step determinism digests -- all side channels that never
        influence the metrics.
        """

        simulator = self.build_simulator()
        try:
            metrics = simulator.run(tracer=tracer, probe=probe)
        finally:
            clear_trace_cache()
        if profiler is not None:
            step_cost = simulator.profile.get("step_cost", {})
            if step_cost:
                profiler.add(
                    "serve.step_cost_build",
                    step_cost.get("build_wall_s", 0.0),
                    calls=step_cost.get("misses", 0),
                )
                profiler.count("serve.step_cost_hit", step_cost.get("hits", 0))
        return metrics


def run_serve_scenario(scenario: ServeScenario) -> ServeMetrics:
    """Module-level convenience: resolve and simulate one serving scenario."""

    return scenario.run()
