"""Global thread-block scheduler.

All thread blocks of the operator live in one global dispatch queue in the
order produced by the dataflow mapping.  Any core with a free (and unthrottled)
instruction window pulls the next block -- this is the paper's compensation for
the original Ramulator2 front-end, where every core could only replay its own
trace file and fast cores had to idle while the slowest finished.
"""

from __future__ import annotations

from collections import deque

from repro.trace.threadblock import ThreadBlock, Trace


class ThreadBlockScheduler:
    """FIFO dispatch of thread blocks to requesting cores."""

    def __init__(self, trace: Trace) -> None:
        trace.validate()
        self.trace = trace
        self._queue: deque[ThreadBlock] = deque(trace.blocks)
        self.total_blocks = len(trace.blocks)
        self.dispatched = 0
        self.completed = 0
        self.dispatch_by_core: dict[int, int] = {}

    # -- dispatch -----------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def has_pending(self) -> bool:
        return bool(self._queue)

    def next_block(self, core_id: int) -> ThreadBlock | None:
        """Pop the next thread block for ``core_id`` (None when exhausted)."""

        if not self._queue:
            return None
        block = self._queue.popleft()
        self.dispatched += 1
        self.dispatch_by_core[core_id] = self.dispatch_by_core.get(core_id, 0) + 1
        return block

    def notify_complete(self, block: ThreadBlock) -> None:
        self.completed += 1
        if self.completed > self.total_blocks:
            raise RuntimeError("more thread blocks completed than were dispatched")

    # -- progress -------------------------------------------------------------------------
    @property
    def all_complete(self) -> bool:
        return self.completed >= self.total_blocks

    @property
    def progress(self) -> float:
        return self.completed / self.total_blocks if self.total_blocks else 1.0
