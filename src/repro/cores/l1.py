"""Private per-core L1 cache.

Table 5 configures the L1 as a small streaming cache: allocate-on-fill,
write-no-allocate, write-through.  Only reads can hit locally; every write and
every read miss is forwarded to the shared L2.  Lines are installed when the
L2/DRAM response returns (allocate-on-fill).
"""

from __future__ import annotations

from repro.common.address import AddressMap
from repro.common.mathutils import safe_div
from repro.config.system import L1Config
from repro.llc.storage import CacheStorage


class L1Cache:
    """Presence-tracking model of the private L1."""

    def __init__(self, config: L1Config, core_id: int = 0) -> None:
        config.validate()
        self.config = config
        self.core_id = core_id
        # The L1 is private, so its index function simply uses line-granular
        # interleaving over its own sets (num_slices=1).
        self._map = AddressMap(line_size=config.line_size, num_slices=1)
        self._line_shift = (config.line_size - 1).bit_length()
        num_sets = config.num_sets
        self.storage = CacheStorage(
            num_sets=num_sets,
            associativity=config.associativity,
            index_fn=self._map.set_index_fn(num_sets),
        )
        self.read_hits = 0
        self.read_misses = 0
        self.writes = 0

    def line_addr(self, addr: int) -> int:
        return (addr >> self._line_shift) << self._line_shift

    def access_read(self, addr: int) -> bool:
        """Probe for a read; True on hit (the access completes locally)."""

        hit = self.storage.lookup(self.line_addr(addr))
        if hit:
            self.read_hits += 1
        else:
            self.read_misses += 1
        return hit

    def access_write(self, addr: int) -> None:
        """Writes are write-through / write-no-allocate: always forwarded to L2."""

        self.writes += 1
        line = self.line_addr(addr)
        # If the line happens to be present, keep it coherent (it stays clean
        # locally because the write is propagated immediately).
        self.storage.lookup(line)

    def fill(self, line_addr: int) -> None:
        """Install a line when its response returns (allocate-on-fill)."""

        self.storage.fill(line_addr, dirty=False)

    @property
    def hit_rate(self) -> float:
        return safe_div(self.read_hits, self.read_hits + self.read_misses)
