"""Instruction windows: the per-core structures a thread block executes in."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.threadblock import ThreadBlock


@dataclass(slots=True)
class InstructionWindow:
    """One instruction window holding (at most) one thread block.

    The window walks its thread block's trace entries in order.  Memory
    accesses may overlap -- up to ``depth`` requests can be outstanding, which
    models the latency-hiding capacity of the 128-entry window of Table 5 --
    but the compute attached to an entry must finish before that entry's access
    is issued.
    """

    window_id: int
    depth: int
    tb: ThreadBlock | None = None
    cursor: int = 0
    outstanding: int = 0
    compute_ready_cycle: int = 0
    compute_charged: bool = False
    assigned_cycle: int = 0
    stat_blocks_completed: int = 0
    #: A request already prepared (L1 probed, trace entry consumed) that could
    #: not be injected into the interconnect due to back-pressure; retried on
    #: later cycles without repeating the L1 probe.
    pending_request: object | None = None

    def assign(self, tb: ThreadBlock, cycle: int) -> None:
        self.tb = tb
        self.cursor = 0
        self.outstanding = 0
        self.compute_ready_cycle = cycle
        self.compute_charged = False
        self.assigned_cycle = cycle
        self.pending_request = None

    @property
    def busy(self) -> bool:
        """True while a thread block is assigned (running or draining)."""

        return self.tb is not None

    @property
    def exhausted(self) -> bool:
        """All entries issued; the window is only draining outstanding requests."""

        return self.tb is not None and self.cursor >= len(self.tb.entries)

    @property
    def drained(self) -> bool:
        """The assigned thread block is completely finished."""

        return self.exhausted and self.outstanding == 0

    def release(self) -> ThreadBlock:
        """Clear the window after its thread block drained."""

        assert self.tb is not None
        finished = self.tb
        self.tb = None
        self.cursor = 0
        self.outstanding = 0
        self.compute_charged = False
        self.pending_request = None
        self.stat_blocks_completed += 1
        return finished


@dataclass(slots=True)
class WindowIssueResult:
    """What happened when the core tried to issue from a window this cycle."""

    issued: bool = False
    blocked_on_compute: bool = False
    blocked_on_memory: bool = False
    completed_block: ThreadBlock | None = None
    extra: dict = field(default_factory=dict)
