"""Vector cores, private L1 caches and the thread-block scheduler."""

from repro.cores.core import VectorCore
from repro.cores.l1 import L1Cache
from repro.cores.scheduler import ThreadBlockScheduler
from repro.cores.window import InstructionWindow

__all__ = ["InstructionWindow", "L1Cache", "ThreadBlockScheduler", "VectorCore"]
