"""The vector core model (§3.1 and the extended SimpleO3 front-end of §5).

Each core is a 128-element vector unit with a private streaming L1 and
``num_inst_windows`` instruction windows.  A thread block is assigned to a
window; when the window cannot issue (its next entry is still computing, its
data has not returned, or the interconnect back-pressures), the core switches
to another window -- the runtime scheduling mechanism the paper models.

Throttling controllers limit ``max_running_blocks``: windows beyond that count
keep their in-flight requests but may not issue new work, which shrinks the
core's active working set and its memory-request rate.
"""

from __future__ import annotations

from typing import Callable

from repro.common.types import AccessType, MemRequest, MemResponse
from repro.config.system import CoreConfig
from repro.cores.l1 import L1Cache
from repro.cores.scheduler import ThreadBlockScheduler
from repro.cores.window import InstructionWindow

RequestSink = Callable[[MemRequest, int], bool]


class VectorCore:
    """One vector core with instruction windows and a private L1."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        l1: L1Cache,
        request_sink: RequestSink,
        scheduler: ThreadBlockScheduler,
    ) -> None:
        config.validate()
        self.core_id = core_id
        self.config = config
        self.l1 = l1
        self.request_sink = request_sink
        self.scheduler = scheduler

        self.windows = [
            InstructionWindow(window_id=i, depth=config.inst_window_depth)
            for i in range(config.num_inst_windows)
        ]
        #: Maximum number of windows allowed to issue (set by throttling).
        self.max_running_blocks = config.num_inst_windows
        #: Set by the global multi-gear controller; read by the in-core controller.
        self.throttled = False
        self._rr_pointer = 0
        self._req_window: dict[int, int] = {}

        # -- statistics (cumulative; controllers take period deltas) --------------------
        self.stat_issued_requests = 0
        self.stat_l1_hits = 0
        self.stat_mem_stall_cycles = 0     # C_mem: all running blocks wait on memory
        self.stat_compute_cycles = 0       # cycles blocked only by compute
        self.stat_idle_cycles = 0          # C_idle: no thread block available to run
        self.stat_active_cycles = 0        # cycles with at least one issue
        self.stat_completed_blocks = 0
        self.stat_backpressure_stalls = 0
        self.stat_first_block_cycles = -1  # duration of the first completed block (LCS)
        self._first_block_start = -1

    # ------------------------------------------------------------------------------
    # throttling interface
    # ------------------------------------------------------------------------------
    def set_max_running_blocks(self, value: int) -> None:
        self.max_running_blocks = max(1, min(self.config.num_inst_windows, value))

    def adjust_max_running_blocks(self, delta: int) -> None:
        self.set_max_running_blocks(self.max_running_blocks + delta)

    # ------------------------------------------------------------------------------
    # response delivery (from the interconnect)
    # ------------------------------------------------------------------------------
    def receive(self, resp: MemResponse, cycle: int) -> None:
        window_id = self._req_window.pop(resp.req_id, None)
        if window_id is not None:
            window = self.windows[window_id]
            if window.outstanding > 0:
                window.outstanding -= 1
        if resp.rw == AccessType.READ:
            self.l1.fill(self.l1.line_addr(resp.line_addr))

    # ------------------------------------------------------------------------------
    # per-cycle execution
    # ------------------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        self._retire_and_refill(cycle)

        # Select the running windows inline (the first ``max_running_blocks``
        # windows that hold a thread block); this is the hottest loop of the
        # whole simulator, so attribute access is kept to a minimum.
        windows = self.windows
        limit = self.max_running_blocks
        running: list[InstructionWindow] = []
        for window in windows:
            if window.tb is not None:
                running.append(window)
                if len(running) >= limit:
                    break
        if not running:
            self.stat_idle_cycles += 1
            return

        issued = 0
        blocked_on_compute = False
        n = len(running)
        rr = self._rr_pointer
        for k in range(n):
            window = running[(rr + k) % n]
            result = self._try_issue(window, cycle)
            if result == "issued":
                issued += 1
                self._rr_pointer = (rr + k) % n
                if issued >= self.config.issue_width:
                    break
            elif result == "compute":
                blocked_on_compute = True

        if issued:
            self.stat_active_cycles += 1
            self.stat_issued_requests += issued
        elif blocked_on_compute:
            self.stat_compute_cycles += 1
        else:
            self.stat_mem_stall_cycles += 1

    # -- helpers ---------------------------------------------------------------------------
    def _retire_and_refill(self, cycle: int) -> None:
        busy = 0
        free_window: InstructionWindow | None = None
        for window in self.windows:
            tb = window.tb
            if tb is None:
                if free_window is None:
                    free_window = window
                continue
            # Retire a drained thread block (all entries issued, all data back).
            if window.outstanding == 0 and window.cursor >= len(tb.entries):
                block = window.release()
                self.stat_completed_blocks += 1
                self.scheduler.notify_complete(block)
                if self.stat_first_block_cycles < 0:
                    self.stat_first_block_cycles = cycle - self._first_block_start
                if free_window is None:
                    free_window = window
            else:
                busy += 1
        if free_window is None or busy >= self.max_running_blocks:
            return
        # Refill at most one window per cycle (the global scheduler hands out one
        # thread block per core per cycle, striping consecutive blocks across
        # cores the way a GPU CTA dispatcher does).
        block = self.scheduler.next_block(self.core_id)
        if block is None:
            return
        free_window.assign(block, cycle)
        if self._first_block_start < 0:
            self._first_block_start = cycle

    def _try_issue(self, window: InstructionWindow, cycle: int) -> str:
        """Attempt one issue from ``window``; returns 'issued', 'compute' or 'memory'."""

        tb = window.tb
        if tb is None or window.cursor >= len(tb.entries):
            return "memory"  # draining: waiting for outstanding responses

        # A request rejected by interconnect back-pressure on an earlier cycle is
        # retried as-is (its L1 probe and trace-entry bookkeeping already happened).
        pending = window.pending_request
        if pending is not None:
            if not self.request_sink(pending, cycle):
                self.stat_backpressure_stalls += 1
                return "memory"
            self._complete_send(window, pending)
            return "issued"

        entry = tb.entries[window.cursor]

        # Charge the entry's compute cost once, before its memory access issues.
        if not window.compute_charged and entry.compute_cycles > 0:
            window.compute_ready_cycle = cycle + entry.compute_cycles
            window.compute_charged = True
        if window.compute_charged and window.compute_ready_cycle > cycle:
            return "compute"

        if not entry.has_access:
            window.cursor += 1
            window.compute_charged = False
            return "issued"

        if window.outstanding >= window.depth:
            return "memory"

        if entry.rw == AccessType.READ and self.l1.access_read(entry.addr):
            # L1 hit: completes locally within the cycle (latency 1 absorbed).
            self.stat_l1_hits += 1
            window.cursor += 1
            window.compute_charged = False
            return "issued"

        if entry.rw == AccessType.WRITE:
            self.l1.access_write(entry.addr)

        req = MemRequest(
            addr=entry.addr,
            rw=entry.rw,
            core_id=self.core_id,
            tb_id=tb.tb_id,
            kind=entry.kind,
            size=entry.size,
            issue_cycle=cycle,
        )
        if not self.request_sink(req, cycle):
            self.stat_backpressure_stalls += 1
            window.pending_request = req
            return "memory"
        self._complete_send(window, req)
        return "issued"

    def _complete_send(self, window: InstructionWindow, req: MemRequest) -> None:
        window.pending_request = None
        self._req_window[req.req_id] = window.window_id
        window.outstanding += 1
        window.cursor += 1
        window.compute_charged = False

    # ------------------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------------------
    @property
    def outstanding_requests(self) -> int:
        return sum(w.outstanding for w in self.windows)

    @property
    def busy(self) -> bool:
        return any(w.busy for w in self.windows)

    def counters(self) -> dict[str, int]:
        """Cumulative counters used by the throttling controllers."""

        return {
            "mem_stall": self.stat_mem_stall_cycles,
            "idle": self.stat_idle_cycles,
            "active": self.stat_active_cycles,
            "compute": self.stat_compute_cycles,
            "issued": self.stat_issued_requests,
            "completed_blocks": self.stat_completed_blocks,
        }
