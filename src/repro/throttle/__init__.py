"""Thread-throttling controllers (§4.2) and baselines (§7.4)."""

from repro.throttle.base import NullThrottleController, ThrottleController
from repro.throttle.dyncta import DynctaController
from repro.throttle.dynmg import DynMgController
from repro.throttle.factory import make_throttle_controller
from repro.throttle.incore import InCoreThrottle
from repro.throttle.lcs import LcsController
from repro.throttle.multigear import MultiGearState

__all__ = [
    "DynMgController",
    "DynctaController",
    "InCoreThrottle",
    "LcsController",
    "MultiGearState",
    "NullThrottleController",
    "ThrottleController",
    "make_throttle_controller",
]
