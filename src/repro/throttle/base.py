"""Throttle-controller interface.

A controller observes the cores and the LLC at its own sampling cadence and
adjusts each core's ``max_running_blocks`` (the "maximum running thread
blocks" of the paper).  The simulation engine calls :meth:`tick` every cycle;
controllers are expected to return immediately except at period boundaries.
"""

from __future__ import annotations

from repro.cores.core import VectorCore
from repro.llc.llc import SlicedLLC


class ThrottleController:
    """Base class: no throttling (the unoptimized configuration)."""

    name = "none"

    def __init__(self) -> None:
        self.cores: list[VectorCore] = []
        self.llc: SlicedLLC | None = None
        self.num_slices = 0
        self.adjustments = 0          # number of max_tb changes applied
        self.samples = 0              # number of sampling-period evaluations

    def attach(self, cores: list[VectorCore], llc: SlicedLLC) -> None:
        """Bind the controller to the system it throttles."""

        self.cores = cores
        self.llc = llc
        self.num_slices = len(llc.slices)
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for subclasses (initial state, baseline snapshots)."""

    def tick(self, cycle: int) -> None:
        """Called once per simulated cycle."""

    # -- helpers shared by subclasses -----------------------------------------------------
    def _set_core_limit(self, core: VectorCore, value: int) -> None:
        before = core.max_running_blocks
        core.set_max_running_blocks(value)
        if core.max_running_blocks != before:
            self.adjustments += 1

    def _adjust_core_limit(self, core: VectorCore, delta: int) -> None:
        if delta == 0:
            return
        self._set_core_limit(core, core.max_running_blocks + delta)


class NullThrottleController(ThrottleController):
    """Explicit alias for the unoptimized configuration."""

    name = "none"
