"""DYNCTA baseline (Kayiran et al., PACT 2013), as characterised in §2.5 / §7.4.

Every core monitors its own idle cycles and memory-contention stall cycles with
its performance counters and adjusts its thread-block limit each sampling
period: excessive idleness relaxes throttling, heavy memory contention
tightens it.  The policy applies to *all* cores (no spatial dimension) and uses
thresholds swept over general-purpose workloads, which is why it reacts only
when contention is far more severe than the LLM-decode norm.
"""

from __future__ import annotations

from repro.config.policies import DynctaParams
from repro.throttle.base import ThrottleController


class DynctaController(ThrottleController):
    """Per-core dynamic thread-block throttling, applied to every core."""

    name = "dyncta"

    def __init__(self, params: DynctaParams) -> None:
        super().__init__()
        self.params = params.validate()
        self._next_sample = params.sampling_period
        self._last_mem: list[int] = []
        self._last_idle: list[int] = []

    def on_attach(self) -> None:
        self._last_mem = [0] * len(self.cores)
        self._last_idle = [0] * len(self.cores)

    def tick(self, cycle: int) -> None:
        if cycle < self._next_sample:
            return
        self._next_sample += self.params.sampling_period
        self.samples += 1
        for i, core in enumerate(self.cores):
            mem_delta = core.stat_mem_stall_cycles - self._last_mem[i]
            idle_delta = core.stat_idle_cycles - self._last_idle[i]
            self._last_mem[i] = core.stat_mem_stall_cycles
            self._last_idle[i] = core.stat_idle_cycles

            if idle_delta > self.params.c_idle_threshold:
                # The core starves for work: relax throttling.
                self._adjust_core_limit(core, +1)
            elif mem_delta > self.params.c_mem_high:
                self._adjust_core_limit(core, -1)
            elif mem_delta < self.params.c_mem_low:
                self._adjust_core_limit(core, +1)
