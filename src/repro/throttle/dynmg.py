"""Two-level dynamic multi-gear throttling ("dynmg", §4.2) -- the paper's policy.

Level 1 (global, every ``sampling_period`` cycles): classify system contention
from the LLC stall ratio, move the gear (Algorithm 1) and throttle the fastest
cores -- those whose requests the LLC served the most during the last period
(largest progress-counter increase).

Level 2 (in-core, every ``sub_period`` cycles): each *throttled* core adjusts
its own maximum running thread blocks using the DYNCTA-style C_mem / C_idle
rules with the LLM-tuned thresholds of Table 4.  Cores that are not throttled
run at the full window count.
"""

from __future__ import annotations

from repro.config.policies import InCoreThrottleParams, MultiGearParams
from repro.throttle.base import ThrottleController
from repro.throttle.incore import InCoreThrottle
from repro.throttle.multigear import MultiGearState


class DynMgController(ThrottleController):
    """Two-level dynamic multi-gear throttling controller."""

    name = "dynmg"

    def __init__(self, multigear: MultiGearParams, incore: InCoreThrottleParams) -> None:
        super().__init__()
        self.params = multigear.validate()
        self.incore_params = incore.validate()
        self.state = MultiGearState(params=multigear)
        self.incore = InCoreThrottle(params=incore)
        self.throttled_cores: set[int] = set()
        self._last_stall_total = 0
        self._last_progress: list[int] = []
        self._next_sample = multigear.sampling_period
        self._next_sub = incore.sub_period

    def on_attach(self) -> None:
        self._last_progress = [0] * len(self.cores)
        self.throttled_cores = set()

    # ------------------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if cycle >= self._next_sample:
            self._global_sample(cycle)
            self._next_sample += self.params.sampling_period
        if cycle >= self._next_sub:
            self._sub_period_sample(cycle)
            self._next_sub += self.incore_params.sub_period

    # -- level 1: global gear + fastest-core selection ---------------------------------
    def _global_sample(self, cycle: int) -> None:
        assert self.llc is not None
        self.samples += 1
        stall_total = self.llc.stall_cycles_total()
        stall_delta = stall_total - self._last_stall_total
        self._last_stall_total = stall_total
        window = self.params.sampling_period * max(1, self.num_slices)
        stall_ratio = stall_delta / window

        self.state.update(stall_ratio, cycle)
        count = self.state.throttled_core_count(len(self.cores))

        progress = self.llc.progress_by_core()
        deltas = [p - last for p, last in zip(progress, self._last_progress, strict=True)]
        self._last_progress = progress

        # Throttle the cores that made the most progress during the last period.
        order = sorted(range(len(self.cores)), key=lambda i: deltas[i], reverse=True)
        new_throttled = set(order[:count])

        for core in self.cores:
            if core.core_id in new_throttled:
                core.throttled = True
            else:
                core.throttled = False
                # Released cores immediately return to the full window count.
                self._set_core_limit(core, core.config.num_inst_windows)
        self.throttled_cores = new_throttled

    # -- level 2: in-core thread-block adjustment -----------------------------------------
    def _sub_period_sample(self, cycle: int) -> None:
        for core in self.cores:
            delta = self.incore.evaluate(
                core, throttled=core.throttled, max_blocks=core.max_running_blocks
            )
            if delta:
                self._adjust_core_limit(core, delta)
