"""Construct the throttle controller requested by a :class:`PolicyConfig`.

Each controller registers itself in :data:`repro.registry.THROTTLES` keyed by
its :class:`ThrottleKind` value; :func:`make_throttle_controller` is a plain
registry lookup.  A new controller therefore needs only a new enum member and
one ``@register_throttle`` factory -- no dispatch code changes.
"""

from __future__ import annotations

from repro.config.policies import PolicyConfig, ThrottleKind
from repro.registry import THROTTLES, register_throttle
from repro.throttle.base import NullThrottleController, ThrottleController
from repro.throttle.dyncta import DynctaController
from repro.throttle.dynmg import DynMgController
from repro.throttle.lcs import LcsController


@register_throttle(ThrottleKind.NONE, description="No throttling (unoptimized)")
def _null_controller(policy: PolicyConfig) -> ThrottleController:
    return NullThrottleController()


@register_throttle(
    ThrottleKind.DYNMG, description="Two-level dynamic multi-gear (this paper)"
)
def _dynmg_controller(policy: PolicyConfig) -> ThrottleController:
    return DynMgController(policy.multigear, policy.incore)


@register_throttle(ThrottleKind.DYNCTA, description="DYNCTA baseline (PACT 2013)")
def _dyncta_controller(policy: PolicyConfig) -> ThrottleController:
    return DynctaController(policy.dyncta)


@register_throttle(ThrottleKind.LCS, description="LCS baseline (HPCA 2014)")
def _lcs_controller(policy: PolicyConfig) -> ThrottleController:
    return LcsController(policy.lcs)


def make_throttle_controller(policy: PolicyConfig) -> ThrottleController:
    """Build the throttle controller for ``policy`` via the registry."""

    return THROTTLES.get(policy.throttle.value)(policy)
