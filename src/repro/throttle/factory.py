"""Construct the throttle controller requested by a :class:`PolicyConfig`."""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.config.policies import PolicyConfig, ThrottleKind
from repro.throttle.base import NullThrottleController, ThrottleController
from repro.throttle.dyncta import DynctaController
from repro.throttle.dynmg import DynMgController
from repro.throttle.lcs import LcsController


def make_throttle_controller(policy: PolicyConfig) -> ThrottleController:
    """Build the throttle controller for ``policy``."""

    kind = policy.throttle
    if kind == ThrottleKind.NONE:
        return NullThrottleController()
    if kind == ThrottleKind.DYNMG:
        return DynMgController(policy.multigear, policy.incore)
    if kind == ThrottleKind.DYNCTA:
        return DynctaController(policy.dyncta)
    if kind == ThrottleKind.LCS:
        return LcsController(policy.lcs)
    raise ConfigError(f"unsupported throttle kind {kind}")
