"""LCS baseline (Lee et al., HPCA 2014 -- "lazy CTA scheduling").

LCS observes the execution of the first thread block on each core and derives a
fixed thread-block count for the rest of the run, with no further dynamic
tuning.  The per-core count is chosen so that the core has just enough blocks
to cover its observed issue utilisation: a compute-heavy block needs few
companions, a memory-bound block (utilisation far below one) saturates at the
hardware window count -- which is why LCS barely deviates from the unoptimized
configuration on decode-stage attention (§6.3.1).
"""

from __future__ import annotations

from repro.common.mathutils import clamp
from repro.config.policies import LcsParams
from repro.throttle.base import ThrottleController


class LcsController(ThrottleController):
    """Observe the first completed thread block per core, then fix max_tb."""

    name = "lcs"

    def __init__(self, params: LcsParams) -> None:
        super().__init__()
        self.params = params.validate()
        self._decided: set[int] = set()
        self.chosen_limits: dict[int, int] = {}

    def on_attach(self) -> None:
        # Observation phase: every core starts with a single running block so the
        # first block's behaviour can be measured in isolation.
        for core in self.cores:
            self._set_core_limit(core, 1)
        self._decided = set()
        self.chosen_limits = {}

    def tick(self, cycle: int) -> None:
        if len(self._decided) == len(self.cores):
            return
        for core in self.cores:
            if core.core_id in self._decided:
                continue
            if core.stat_completed_blocks < self.params.observation_blocks:
                continue
            # Issue utilisation observed while the first block(s) ran.
            observed = max(1, core.stat_active_cycles + core.stat_mem_stall_cycles
                           + core.stat_compute_cycles)
            utilisation = core.stat_active_cycles / observed
            if utilisation <= 0.0:
                target = core.config.num_inst_windows
            else:
                # Enough blocks to cover the idle fraction, bounded by hardware.
                target = int(round(self.params.target_latency_factor / max(utilisation, 1e-6)))
            target = int(clamp(target, 1, core.config.num_inst_windows))
            self._set_core_limit(core, target)
            self.chosen_limits[core.core_id] = target
            self._decided.add(core.core_id)
            self.samples += 1
