"""In-core (per-core) throttling logic shared by dynmg and DYNCTA (Table 4).

Each core monitors, over one sub-period, the cycles in which all of its running
thread blocks were waiting for memory (``C_mem``) and the cycles in which it
had no thread block to run (``C_idle``), and nudges its maximum running
thread-block count accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.policies import InCoreThrottleParams
from repro.cores.core import VectorCore


@dataclass(slots=True)
class _CoreSnapshot:
    mem_stall: int = 0
    idle: int = 0


@dataclass(slots=True)
class InCoreThrottle:
    """Per-core sub-period decision logic."""

    params: InCoreThrottleParams
    _snapshots: dict[int, _CoreSnapshot] = field(default_factory=dict)
    decisions_up: int = 0
    decisions_down: int = 0

    def __post_init__(self) -> None:
        self.params.validate()

    def _delta(self, core: VectorCore) -> tuple[int, int]:
        snap = self._snapshots.setdefault(core.core_id, _CoreSnapshot())
        mem_delta = core.stat_mem_stall_cycles - snap.mem_stall
        idle_delta = core.stat_idle_cycles - snap.idle
        snap.mem_stall = core.stat_mem_stall_cycles
        snap.idle = core.stat_idle_cycles
        return mem_delta, idle_delta

    def evaluate(self, core: VectorCore, throttled: bool, max_blocks: int) -> int:
        """Return the max-running-blocks delta for ``core`` this sub-period.

        Unthrottled cores still have their counters sampled (so the deltas stay
        per-sub-period) but always get delta ``0`` -- the in-core logic only
        applies to cores selected by the global gear (§4.2).
        """

        mem_delta, idle_delta = self._delta(core)
        if not throttled:
            return 0
        delta = 0
        if mem_delta > self.params.c_mem_upper:
            delta -= 1
        elif mem_delta < self.params.c_mem_lower:
            delta += 1
        if idle_delta > self.params.c_idle_upper:
            delta += 1
        if delta > 0:
            self.decisions_up += 1
        elif delta < 0:
            self.decisions_down += 1
        del max_blocks
        return delta
