"""Global multi-gear throttling state machine (Algorithm 1, Tables 1 and 3).

The gear selects what fraction of the cores is throttled (Table 1); the gear
moves up or down based on the contention level classified from the proportion
of cache-stall cycles (Table 3).  Extreme contention jumps two gears at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.policies import ContentionLevel, MultiGearParams


@dataclass(slots=True)
class MultiGearState:
    """Gear state machine; pure logic, no references to the simulated system."""

    params: MultiGearParams
    gear: int = 0
    history: list[tuple[int, ContentionLevel, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.params.validate()

    def classify(self, stall_ratio: float) -> ContentionLevel:
        clamped = min(1.0, max(0.0, stall_ratio))
        return self.params.thresholds.classify(clamped)

    def update(self, stall_ratio: float, cycle: int = 0) -> int:
        """Apply Algorithm 1 for one sampling period; returns the new gear."""

        level = self.classify(stall_ratio)
        max_gear = self.params.max_gear
        if level == ContentionLevel.HIGH:
            if self.gear < max_gear:
                self.gear += 1
        elif level == ContentionLevel.LOW:
            if self.gear > 0:
                self.gear -= 1
        elif level == ContentionLevel.EXTREME:
            if self.gear <= max_gear - 2:
                self.gear += 2
            else:
                self.gear = max_gear
        # NORMAL contention leaves the gear unchanged.
        self.history.append((cycle, level, self.gear))
        return self.gear

    def throttled_core_count(self, num_cores: int) -> int:
        """Number of cores throttled at the current gear (Table 1)."""

        fraction = self.params.gear_fractions[self.gear]
        return int(fraction * num_cores)
