"""Generic named registries with decorator-based registration.

A :class:`Registry` maps names to objects (workload builders, system builders,
policy builders, throttle-controller factories) and is the single mechanism
behind every lookup-by-name in the reproduction.  Properties that make it
suitable as a public extension point:

* **Decorator registration** -- ``@REGISTRY.register("name")`` on a builder is
  the complete act of adding a scenario component; the CLI, the sweep grid and
  the :mod:`repro.api` builder all see it immediately.
* **Lazy bootstrap** -- each registry names the modules that register the
  built-in entries; they are imported on first use, so ``repro.registry`` never
  imports ``repro.config`` at module load time (no import cycles).
* **Uniform errors** -- every unknown name raises :class:`ConfigError` listing
  the known names, regardless of which layer asked.
* **Aliases and a compositional fallback** -- display-name aliases resolve to
  the canonical entry; a registry may carry a ``fallback`` parser for names
  that are composed rather than enumerated (e.g. policy labels such as
  ``"lcs+MA"``).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, TypeVar

from repro.common.errors import ConfigError

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class RegistryEntry(Generic[T]):
    """One registered object plus its listing metadata."""

    name: str
    obj: T
    description: str = ""
    aliases: tuple[str, ...] = ()


@dataclass(slots=True)
class Registry(Generic[T]):
    """A named collection of pluggable components.

    Parameters
    ----------
    kind:
        Human-readable singular noun used in error messages ("workload", ...).
    bootstrap:
        Module paths imported (once, lazily) before the first lookup; importing
        them runs the built-in ``@register_*`` decorators.
    normalize:
        Optional canonicalisation applied to every registered and looked-up
        name (e.g. ``str.lower`` for case-insensitive policy labels).
    """

    kind: str
    bootstrap: tuple[str, ...] = ()
    normalize: Callable[[str], str] | None = None
    #: Optional parser tried when a name is not registered; it must return an
    #: object or raise KeyError/ValueError (mapped to a uniform ConfigError).
    fallback: Callable[[str], T] | None = None
    _entries: dict[str, RegistryEntry[T]] = field(default_factory=dict)
    _aliases: dict[str, str] = field(default_factory=dict)
    _loaded: bool = False
    _bootstrap_error: BaseException | None = None

    # -- registration ------------------------------------------------------------------
    def register(
        self,
        name: str,
        obj: T | None = None,
        *,
        description: str = "",
        aliases: tuple[str, ...] | list[str] = (),
        replace: bool = False,
    ):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Raises :class:`ConfigError` if the name (or an alias) is already taken
        and ``replace`` is false.
        """

        def _register(target: T) -> T:
            key = self._norm(name)
            alias_keys = tuple(self._norm(alias) for alias in aliases)
            desc_text = description
            if not desc_text:
                doc = (getattr(target, "__doc__", "") or "").strip()
                desc_text = doc.splitlines()[0] if doc else ""
            taken = [
                a for a in (key, *alias_keys)
                if a in self._entries or a in self._aliases
            ]
            if taken and not replace:
                raise ConfigError(
                    f"{self.kind} {taken[0]!r} is already registered; "
                    f"pass replace=True to override"
                )
            for stale in taken:
                # The new entry shadows whatever held these names before --
                # evict stale alias mappings and displaced entries (plus the
                # displaced entries' own aliases) so lookups cannot resolve
                # past the override.
                owner_key = self._aliases.pop(stale, None)
                if owner_key is not None and owner_key in self._entries:
                    # The alias' owning entry survives; strip the alias from
                    # its metadata so listings stay truthful.
                    owner = self._entries[owner_key]
                    self._entries[owner_key] = RegistryEntry(
                        name=owner.name,
                        obj=owner.obj,
                        description=owner.description,
                        aliases=tuple(
                            a for a in owner.aliases if self._norm(a) != stale
                        ),
                    )
                displaced = self._entries.pop(stale, None)
                if displaced is not None:
                    for alias in displaced.aliases:
                        self._aliases.pop(self._norm(alias), None)
            entry = RegistryEntry(
                name=name, obj=target, description=desc_text, aliases=tuple(aliases)
            )
            self._entries[key] = entry
            for alias in aliases:
                self._aliases[self._norm(alias)] = key
            return target

        if obj is not None:
            return _register(obj)
        return _register

    def unregister(self, name: str) -> None:
        """Remove an entry and its aliases (primarily for tests)."""

        key = self._canonical_key(self._norm(name))
        entry = self._entries.pop(key, None)
        if entry is None:
            raise ConfigError(f"{self.kind} {name!r} is not registered")
        for alias in entry.aliases:
            self._aliases.pop(self._norm(alias), None)

    # -- lookup ------------------------------------------------------------------------
    def get(self, name: str) -> T:
        """The object registered under ``name`` (or an alias, or the fallback)."""

        return self.entry(name).obj

    def entry(self, name: str) -> RegistryEntry[T]:
        self._ensure_loaded()
        key = self._canonical_key(self._norm(name))
        found = self._entries.get(key)
        if found is not None:
            return found
        if self.fallback is not None:
            try:
                return RegistryEntry(name=name, obj=self.fallback(name))
            except (KeyError, ValueError):
                pass
        raise ConfigError(
            f"unknown {self.kind} {name!r} (choose from {self.names()})"
        )

    def names(self) -> list[str]:
        """Sorted canonical (display) names of every registered entry."""

        self._ensure_loaded()
        return sorted(entry.name for entry in self._entries.values())

    def entries(self) -> Iterator[RegistryEntry[T]]:
        self._ensure_loaded()
        for key in sorted(self._entries):
            yield self._entries[key]

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        key = self._canonical_key(self._norm(name))
        if key in self._entries:
            return True
        if self.fallback is not None:
            try:
                self.fallback(name)
                return True
            except (KeyError, ValueError):
                return False
        return False

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    # -- internals ---------------------------------------------------------------------
    def _norm(self, name: str) -> str:
        return self.normalize(name) if self.normalize is not None else name

    def _canonical_key(self, key: str) -> str:
        return self._aliases.get(key, key)

    def _ensure_loaded(self) -> None:
        if self._loaded:
            if self._bootstrap_error is not None:
                # Re-raise the original failure on every lookup instead of
                # answering from a half-populated registry with misleading
                # "unknown name" errors.
                raise ConfigError(
                    f"the {self.kind} registry failed to load its built-in "
                    f"entries: {self._bootstrap_error}"
                ) from self._bootstrap_error
            return
        self._loaded = True  # set first: bootstrap modules call register()
        try:
            for module in self.bootstrap:
                importlib.import_module(module)
        except BaseException as exc:
            self._bootstrap_error = exc
            raise
