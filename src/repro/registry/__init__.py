"""Scenario-component registries: the extension point of the whole stack.

Nine global registries name every pluggable piece of a simulation:

* :data:`WORKLOADS` -- ``name -> builder(seq_len) -> WorkloadConfig``
* :data:`SYSTEMS`   -- ``name -> builder() -> SystemConfig``
* :data:`POLICIES`  -- ``label -> builder() -> PolicyConfig`` (case-insensitive,
  with a compositional fallback for ``"throttle+arbitration"`` labels)
* :data:`THROTTLES` -- ``ThrottleKind -> factory(PolicyConfig) -> controller``
* :data:`ARRIVALS`  -- ``name -> builder(sampler, rate, num_requests, **params)
  -> ArrivalProcess`` (request streams for :mod:`repro.serve`)
* :data:`SCHEDULERS` -- ``name -> builder(prefill_chunk, **params) ->
  SchedulerPolicy`` (prefill/decode step planning for :mod:`repro.serve`)
* :data:`ROUTERS`   -- ``name -> builder(num_replicas, **params) -> Router``
  (replica dispatch for :mod:`repro.cluster`)
* :data:`ARBITERS`  -- ``kind -> builder(policy, l2, num_cores) ->
  BaseArbiter`` (LLC-slice request/response arbitration policies)
* :data:`PREEMPTIONS` -- ``name -> builder(KVCacheConfig) ->
  PreemptionPolicy`` (KV-pressure eviction policies for :mod:`repro.serve`)

Registering a component makes it usable everywhere at once -- the CLI
(``llamcat list/run/sweep``), declarative sweep grids, the figure harnesses and
the :class:`repro.api.Simulation` builder all resolve names through here::

    from repro.registry import register_workload

    @register_workload("my-model", description="My model's decode Logit")
    def my_model(seq_len: int = 8192) -> WorkloadConfig:
        ...

The built-in entries live in :mod:`repro.config.presets` (workloads, systems,
policies) and :mod:`repro.throttle.factory` (throttle controllers); those
modules are imported lazily on first lookup, so importing this package is
cycle-free and cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.registry.core import Registry, RegistryEntry

if TYPE_CHECKING:  # real imports would be cyclic (presets registers through us)
    from repro.config.system import SystemConfig
    from repro.config.workload import WorkloadConfig


def _policy_norm(label: str) -> str:
    return label.strip().lower()


WORKLOADS: Registry = Registry("workload", bootstrap=("repro.config.presets",))
SYSTEMS: Registry = Registry("system", bootstrap=("repro.config.presets",))
POLICIES: Registry = Registry(
    "policy", bootstrap=("repro.config.presets",), normalize=_policy_norm
)
THROTTLES: Registry = Registry(
    "throttle controller",
    bootstrap=("repro.throttle.factory",),
    normalize=_policy_norm,
)
ARRIVALS: Registry = Registry(
    "arrival process",
    bootstrap=("repro.serve.arrival",),
    normalize=_policy_norm,
)
SCHEDULERS: Registry = Registry(
    "scheduler",
    bootstrap=("repro.serve.schedpolicy",),
    normalize=_policy_norm,
)
ROUTERS: Registry = Registry(
    "router",
    bootstrap=("repro.cluster.router",),
    normalize=_policy_norm,
)
ARBITERS: Registry = Registry(
    "arbiter",
    bootstrap=("repro.arbiter.factory",),
    normalize=_policy_norm,
)
PREEMPTIONS: Registry = Registry(
    "preemption policy",
    bootstrap=("repro.serve.kvcache",),
    normalize=_policy_norm,
)


# -- decorators (the public registration surface) ----------------------------------------
def register_workload(name: str, **kwargs):
    """Register a ``(seq_len) -> WorkloadConfig`` builder under ``name``."""

    return WORKLOADS.register(name, **kwargs)


def register_system(name: str, **kwargs):
    """Register a ``() -> SystemConfig`` builder under ``name``."""

    return SYSTEMS.register(name, **kwargs)


def register_policy(name: str, **kwargs):
    """Register a ``() -> PolicyConfig`` builder under a paper-style label."""

    return POLICIES.register(name, **kwargs)


def register_throttle(kind, **kwargs):
    """Register a ``(PolicyConfig) -> ThrottleController`` factory.

    ``kind`` may be a :class:`~repro.config.policies.ThrottleKind` member or
    its string value.
    """

    name = getattr(kind, "value", kind)
    return THROTTLES.register(name, **kwargs)


def register_arrival(name: str, **kwargs):
    """Register an arrival-process builder for the serving simulator.

    The builder signature is
    ``(sampler, rate, num_requests, **params) -> ArrivalProcess`` -- see
    :mod:`repro.serve.arrival` for the built-in generators.
    """

    return ARRIVALS.register(name, **kwargs)


def register_scheduler(name: str, **kwargs):
    """Register a step-planning policy builder for the serving scheduler.

    The builder signature is ``(prefill_chunk, **params) -> SchedulerPolicy``
    -- see :mod:`repro.serve.schedpolicy` for the built-in disciplines.
    """

    return SCHEDULERS.register(name, **kwargs)


def register_router(name: str, **kwargs):
    """Register a replica-routing builder for the cluster simulator.

    The builder signature is ``(num_replicas, **params) -> Router`` -- see
    :mod:`repro.cluster.router` for the built-in disciplines.
    """

    return ROUTERS.register(name, **kwargs)


def register_arbiter(name: str, **kwargs):
    """Register an LLC-slice arbiter builder under an arbitration-kind name.

    The builder signature is ``(policy, l2, num_cores) -> BaseArbiter`` -- see
    :mod:`repro.arbiter.factory` for the built-in policies.  Every registered
    arbiter is pinned by the conformance suite in
    ``tests/arbiter/test_conformance.py`` (drain guarantee, grant-count
    conservation).
    """

    return ARBITERS.register(name, **kwargs)


def register_preemption(name: str, **kwargs):
    """Register a KV-pressure preemption policy builder under ``name``.

    The builder signature is ``(KVCacheConfig) -> PreemptionPolicy`` -- see
    :mod:`repro.serve.kvcache` for the built-in ``recompute``/``swap``
    policies.  Every registered policy is pinned by the conformance suite in
    ``tests/serve/test_preemption_conformance.py`` (request conservation, no
    preempted-request loss).
    """

    return PREEMPTIONS.register(name, **kwargs)


# -- resolution helpers (name strings -> config objects) ---------------------------------
def resolve_workload(name: str, seq_len: int | None = None) -> "WorkloadConfig":
    """Build the workload registered under ``name``.

    ``seq_len=None`` keeps the builder's own default sequence length.
    """

    builder = WORKLOADS.get(name)
    if seq_len is not None:
        return builder(seq_len)
    try:
        return builder()
    except TypeError as exc:
        raise ConfigError(
            f"workload {name!r} has no default sequence length; pass seq_len "
            f"explicitly ({exc})"
        ) from exc


def resolve_system(name: str) -> "SystemConfig":
    """Build the system registered under ``name``."""

    return SYSTEMS.get(name)()


def resolve_arrival(name: str):
    """The arrival-process builder registered under ``name``."""

    return ARRIVALS.get(name)


def resolve_scheduler(name: str):
    """The scheduler-policy builder registered under ``name``."""

    return SCHEDULERS.get(name)


def resolve_router(name: str):
    """The replica-router builder registered under ``name``."""

    return ROUTERS.get(name)


def resolve_arbiter(name: str):
    """The arbiter builder registered under ``name`` (an arbitration kind)."""

    return ARBITERS.get(name)


def resolve_preemption(name: str):
    """The KV preemption-policy builder registered under ``name``."""

    return PREEMPTIONS.get(name)


def resolve_policy(label: str):
    """Build a policy from a registered label or a compositional one.

    Canonical paper labels (``"dynmg+BMA"``, ``"unopt"``...) hit the registry;
    other ``"+"``-joined combinations of known components are composed by the
    registry's fallback parser.  Unknown names raise :class:`ConfigError`
    listing the registered labels.
    """

    return POLICIES.get(label)()


__all__ = [
    "ARBITERS",
    "ARRIVALS",
    "POLICIES",
    "PREEMPTIONS",
    "ROUTERS",
    "Registry",
    "RegistryEntry",
    "SCHEDULERS",
    "SYSTEMS",
    "THROTTLES",
    "WORKLOADS",
    "register_arbiter",
    "register_arrival",
    "register_policy",
    "register_preemption",
    "register_router",
    "register_scheduler",
    "register_system",
    "register_throttle",
    "register_workload",
    "resolve_arbiter",
    "resolve_arrival",
    "resolve_policy",
    "resolve_preemption",
    "resolve_router",
    "resolve_scheduler",
    "resolve_system",
    "resolve_workload",
]
