"""Command-line interface: ``llamcat <subcommand>``.

Subcommands

* ``run``   -- simulate one policy on one workload and print the summary
* ``fig7``  -- regenerate the Fig 7 speedup panels
* ``fig8``  -- regenerate the Fig 8 mechanism statistics
* ``fig9``  -- regenerate the Fig 9 cache-size sweep
* ``hwcost``-- print the §6.1 area estimates
* ``info``  -- describe a workload and its analytical bounds
"""

from __future__ import annotations

import argparse
import sys

from repro.config.policies import PolicyConfig
from repro.config.presets import (
    llama3_405b_logit,
    llama3_70b_logit,
    policy_by_label,
    table5_system,
)
from repro.config.scale import ScaleTier, scale_experiment
from repro.dataflow.analytical import analyze
from repro.experiments.fig7 import run_fig7_cumulative, run_fig7_throttling
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.hwcost_exp import run_hwcost
from repro.experiments.reporting import format_grid
from repro.sim.runner import run_policy


def _workload(model: str, seq_len: int):
    if model == "llama3-70b":
        return llama3_70b_logit(seq_len)
    if model == "llama3-405b":
        return llama3_405b_logit(seq_len)
    raise SystemExit(f"unknown model {model!r} (choose llama3-70b or llama3-405b)")


def _tier(name: str) -> ScaleTier:
    try:
        return ScaleTier[name.upper().replace("-", "_")]
    except KeyError as exc:
        raise SystemExit(f"unknown scale tier {name!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="llamcat", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one policy")
    run_p.add_argument("--model", default="llama3-70b")
    run_p.add_argument("--seq-len", type=int, default=4096)
    run_p.add_argument("--policy", default="dynmg+BMA", help='e.g. "unopt", "dynmg", "dynmg+BMA"')
    run_p.add_argument("--tier", default="ci")

    for name in ("fig7", "fig8", "fig9"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--tier", default="ci")

    sub.add_parser("hwcost", help="print the area estimates of Section 6.1")

    info_p = sub.add_parser("info", help="describe a workload and its analytical bounds")
    info_p.add_argument("--model", default="llama3-70b")
    info_p.add_argument("--seq-len", type=int, default=4096)
    info_p.add_argument("--tier", default="full")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "run":
        system, workload = scale_experiment(
            table5_system(), _workload(args.model, args.seq_len), _tier(args.tier)
        )
        policy = policy_by_label(args.policy)
        baseline = run_policy(system, workload, PolicyConfig(), label="unoptimized")
        result = run_policy(system, workload, policy, label=args.policy)
        print(baseline.summary())
        print(result.summary())
        print(f"speedup over unoptimized: {baseline.cycles / result.cycles:.3f}x")
        return 0

    if args.command == "fig7":
        tier = _tier(args.tier)
        print(run_fig7_throttling(tier=tier).render())
        print()
        print(run_fig7_cumulative(tier=tier).render())
        return 0

    if args.command == "fig8":
        print(run_fig8(tier=_tier(args.tier)).render())
        return 0

    if args.command == "fig9":
        print(run_fig9(tier=_tier(args.tier)).render())
        return 0

    if args.command == "hwcost":
        print(format_grid("Section 6.1 -- area estimates", run_hwcost()))
        return 0

    if args.command == "info":
        system, workload = scale_experiment(
            table5_system(), _workload(args.model, args.seq_len), _tier(args.tier)
        )
        estimate = analyze(workload, system)
        print(workload.describe())
        print(f"thread blocks:        {estimate.thread_blocks}")
        print(f"L2 line requests:     {estimate.total_l2_accesses}")
        print(f"unique DRAM traffic:  {estimate.total_dram_bytes / 2**20:.1f} MiB")
        print(f"stall-free cycles:    {estimate.stall_free_cycles}")
        print(f"bottleneck:           {estimate.bottleneck}")
        return 0

    raise SystemExit(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
