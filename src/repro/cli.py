"""Command-line interface: ``llamcat <subcommand>``.

Subcommands

* ``run``     -- simulate one policy on one workload and print the summary
* ``serve``   -- simulate serving a request stream with continuous batching
* ``cluster`` -- simulate a multi-replica fleet behind a pluggable router
* ``sweep``   -- run a grid of (model x seq-len x policy x L2) points in parallel,
  of serving points (``--serve`` with repeatable ``--rate``) or of cluster
  points (``--cluster`` with repeatable ``--replicas``/``--router``)
* ``timeline`` -- render ASCII telemetry timelines from a stored sweep point
* ``bench``   -- run registered benchmarks (warmup/repeat timing), append the
  results to the root-level ``BENCH_<name>.json`` trend files, and gate on
  regressions with ``--compare BASELINE``
* ``report``  -- render a self-contained markdown/HTML run report from trend
  files and/or a result store
* ``check``   -- run the determinism & invariant checks (static lint rules
  over the source tree, ``--explain CODE`` docs, ``--determinism SCENARIO``
  runtime divergence localization)
* ``list``    -- list registered workloads / systems / policies / throttles /
  arrivals / schedulers / routers / preemptions / benches
* ``fig7``  -- regenerate the Fig 7 speedup panels
* ``fig8``  -- regenerate the Fig 8 mechanism statistics
* ``fig9``  -- regenerate the Fig 9 cache-size sweep
* ``hwcost``-- print the §6.1 area estimates
* ``info``  -- describe a workload and its analytical bounds

Every simulation point is named through :class:`repro.api.Scenario`, so
anything registered via :mod:`repro.registry` (``@register_workload`` etc.) is
immediately addressable from every subcommand.
"""

from __future__ import annotations

import argparse
import importlib
import json
import logging
import os
import sys
from dataclasses import replace

from repro.analysis import (
    RngJitterArrival,
    check_determinism,
    check_liveness,
    check_paths,
    discover_files,
    explain_rule,
    findings_to_json,
)
from repro.api import Scenario
from repro.bench.registry import BENCHES, bench_names, resolve_bench
from repro.bench.report import render_report
from repro.bench.runner import run_bench
from repro.bench.trend import (
    append_trend,
    compare_trends,
    trend_path,
    validate_trends,
)
from repro.cluster.scenario import ClusterScenario, parse_disaggregated
from repro.cluster.sweep import ClusterSweepSpec
from repro.common.errors import ConfigError, LivelockError
from repro.config.presets import FIG9_L2_MIB, FIG9_SEQ_LEN
from repro.config.scale import parse_tier
from repro.dataflow.analytical import analyze
from repro.experiments.fig7 import run_fig7_cumulative, run_fig7_throttling
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.hwcost_exp import run_hwcost
from repro.experiments.reporting import format_grid
from repro.obs import ChromeTracer, Profiler, render_timeline
from repro.obs.timeline import DEFAULT_METRICS, DEFAULT_WIDTH
from repro.registry import (
    ARRIVALS,
    POLICIES,
    PREEMPTIONS,
    ROUTERS,
    SCHEDULERS,
    SYSTEMS,
    THROTTLES,
    WORKLOADS,
)
from repro.serve.kvcache import DEFAULT_SWAP_MS
from repro.serve.metrics import REPORTED_PERCENTILES
from repro.serve.scenario import DEFAULT_SCHEDULER, ServeScenario
from repro.serve.schedpolicy import DEFAULT_PREFILL_CHUNK
from repro.serve.sweep import ServeSweepSpec
from repro.sweep.executor import run_sweep
from repro.sweep.spec import FIG9_POLICY_LABELS, SweepSpec
from repro.sweep.store import ResultStore

#: ``llamcat list <what>`` -> registry.
LISTABLE_REGISTRIES = {
    "workloads": WORKLOADS,
    "systems": SYSTEMS,
    "policies": POLICIES,
    "throttles": THROTTLES,
    "arrivals": ARRIVALS,
    "schedulers": SCHEDULERS,
    "routers": ROUTERS,
    "preemptions": PREEMPTIONS,
    "benches": BENCHES,
}

#: Default noise threshold of ``llamcat bench --compare`` (percent).
BENCH_COMPARE_THRESHOLD_PCT = 10.0

#: Defaults of the serving sweep's traffic axis (requests/s).
SERVE_SWEEP_RATES = (1000.0, 2000.0, 4000.0)

#: Defaults of the cluster sweep's fleet-size axis.
CLUSTER_SWEEP_REPLICAS = (2, 4)

logger = logging.getLogger(__name__)


def _configure_logging(verbose: int, log_quiet: int) -> None:
    """Attach a stderr handler to the ``repro`` logger hierarchy.

    ``-v`` lowers the threshold to DEBUG (per-point sweep progress, profiling
    summaries); ``-q`` raises it to WARNING.  Diagnostics go to stderr so the
    deterministic result tables on stdout stay byte-comparable across runs.
    """

    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        root.addHandler(handler)
        root.propagate = False
    if verbose:
        root.setLevel(logging.DEBUG)
    elif log_quiet:
        root.setLevel(logging.WARNING)
    else:
        root.setLevel(logging.INFO)


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """The observability knobs shared by ``serve`` and ``cluster``."""

    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace_event JSON of the run (open in Perfetto)",
    )
    parser.add_argument(
        "--telemetry", type=float, default=None, metavar="MS",
        help="sample queue depth / batch size / utilization every MS simulated "
             "milliseconds and print an ASCII timeline",
    )
    parser.add_argument(
        "--metrics-sketch", action="store_true",
        help="compute latency percentiles from merged log-bucketed histograms "
             "(fixed memory, bounded relative error) instead of exact "
             "per-request sample lists",
    )


def _add_prefill_args(parser: argparse.ArgumentParser) -> None:
    """The prefill-scheduling knobs shared by ``serve`` and ``cluster``."""

    parser.add_argument(
        "--scheduler", default=DEFAULT_SCHEDULER,
        help='registered step-planning policy, e.g. "decode-first", '
             '"prefill-first", "chunked"',
    )
    parser.add_argument(
        "--prefill-chunk", type=int, default=DEFAULT_PREFILL_CHUNK,
        help="token budget of one chunked-prefill iteration "
             "(chunked scheduler only)",
    )
    parser.add_argument(
        "--no-prefill-cost", dest="prefill_cost", action="store_false",
        help="treat prompts as free (the legacy decode-only timeline)",
    )


def _kv_budget_value(text: str) -> int | str:
    """Parse a ``--kv-budget`` value: a token count or the literal "system"."""

    if text == "system":
        return text
    try:
        budget = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f'expected a token count or "system", got {text!r}'
        ) from None
    if budget <= 0:
        raise argparse.ArgumentTypeError("KV budget must be a positive token count")
    return budget


def _add_kv_args(parser: argparse.ArgumentParser, *, sweep: bool = False) -> None:
    """The KV-memory knobs shared by ``serve`` and ``cluster``.

    With ``sweep=True`` the budget / block-size / policy flags become
    repeatable sweep axes (plural dests matching the sweep-spec fields).
    """

    axis = " (repeatable sweep axis)" if sweep else ""
    many: dict = {"action": "append"} if sweep else {}
    parser.add_argument(
        "--kv-budget", type=_kv_budget_value, default=None, metavar="TOKENS",
        dest="kv_budgets" if sweep else "kv_budget",
        help='KV-cache budget in tokens, or "system" to take the preset\'s '
             f"device budget; omit to keep KV accounting off{axis}",
        **many,
    )
    parser.add_argument(
        "--kv-block", type=int, default=None if sweep else 1, metavar="TOKENS",
        dest="kv_blocks" if sweep else "kv_block",
        help=f"paged-KV block size in tokens (default 1 = exact accounting){axis}",
        **many,
    )
    parser.add_argument(
        "--preemption", default=None if sweep else "recompute",
        dest="preemptions" if sweep else "preemption",
        help='registered preemption policy, e.g. "recompute", "swap" '
             f"(used when the KV budget is exhausted){axis}",
        **many,
    )
    parser.add_argument(
        "--kv-swap-ms", type=float, default=DEFAULT_SWAP_MS,
        help="one-way KV transfer latency of the swap preemption policy (ms)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="llamcat", description=__doc__)
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="debug logging on stderr (per-point progress, profiling)",
    )
    parser.add_argument(
        "-q", action="count", default=0, dest="log_quiet",
        help="warnings and errors only on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one policy")
    run_p.add_argument("--model", default="llama3-70b")
    run_p.add_argument("--seq-len", type=int, default=4096)
    run_p.add_argument("--policy", default="dynmg+BMA", help='e.g. "unopt", "dynmg", "dynmg+BMA"')
    run_p.add_argument("--system", default="table5", help="registered system name")
    run_p.add_argument("--tier", default="ci")

    serve_p = sub.add_parser(
        "serve",
        help="simulate serving a request stream (continuous batching, SLO metrics)",
    )
    serve_p.add_argument(
        "--workload", "--model", dest="workload", default="llama3-70b",
        help="registered workload name (e.g. llama3-70b-decode)",
    )
    serve_p.add_argument(
        "--arrival", default="poisson",
        help='registered arrival process, e.g. "poisson", "bursty", "closed-loop"',
    )
    serve_p.add_argument(
        "--rate", type=float, default=2000.0,
        help="requests/s (open-loop) or user population (closed-loop)",
    )
    serve_p.add_argument("--num-requests", type=int, default=32)
    serve_p.add_argument("--max-batch", type=int, default=4)
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--policy", default="unopt")
    _add_prefill_args(serve_p)
    _add_kv_args(serve_p)
    serve_p.add_argument("--system", default="table5", help="registered system name")
    serve_p.add_argument("--tier", default="ci")
    serve_p.add_argument("--slo-ttft-ms", type=float, default=None)
    serve_p.add_argument("--slo-latency-ms", type=float, default=None)
    serve_p.add_argument(
        "--smoke", action="store_true",
        help="fast CI preset: smoke tier, 8 requests, batch <= 2",
    )
    _add_obs_args(serve_p)

    cluster_p = sub.add_parser(
        "cluster",
        help="simulate a multi-replica serving fleet behind a pluggable router",
    )
    cluster_p.add_argument(
        "--workload", "--model", dest="workload", default="llama3-70b",
        help="registered workload name (e.g. llama3-70b-decode)",
    )
    cluster_p.add_argument(
        "--arrival", default="poisson",
        help='registered arrival process, e.g. "poisson", "bursty", "closed-loop"',
    )
    cluster_p.add_argument(
        "--rate", type=float, default=2000.0,
        help="requests/s (open-loop) or user population (closed-loop)",
    )
    cluster_p.add_argument("--num-requests", type=int, default=32)
    cluster_p.add_argument("--replicas", type=int, default=2,
                           help="fleet size (accelerator replicas)")
    cluster_p.add_argument(
        "--router", default="round-robin",
        help='registered router, e.g. "round-robin", "least-outstanding", '
             '"join-shortest-queue", "weighted"',
    )
    cluster_p.add_argument("--max-batch", type=int, default=4,
                           help="per-replica continuous-batching bound")
    cluster_p.add_argument("--seed", type=int, default=0)
    cluster_p.add_argument("--policy", default="unopt")
    _add_prefill_args(cluster_p)
    _add_kv_args(cluster_p)
    cluster_p.add_argument(
        "--disaggregated", nargs="?", const="1p1d", default=None, metavar="PpDd",
        help='split the fleet into prefill and decode replicas, e.g. "2p2d" '
             "(replica count follows the spec; bare flag means 1p1d)",
    )
    cluster_p.add_argument(
        "--kv-transfer-ms", type=float, default=0.0,
        help="KV-cache transfer latency of one prefill-to-decode handoff",
    )
    cluster_p.add_argument(
        "--system", action="append", dest="systems",
        help="repeatable system preset; one name is broadcast to every "
             "replica, N names give a heterogeneous fleet (default: table5)",
    )
    cluster_p.add_argument("--tier", default="ci")
    cluster_p.add_argument("--slo-ttft-ms", type=float, default=None)
    cluster_p.add_argument("--slo-latency-ms", type=float, default=None)
    cluster_p.add_argument(
        "--smoke", action="store_true",
        help="fast CI preset: smoke tier, 8 requests, 2 replicas, batch <= 2",
    )
    _add_obs_args(cluster_p)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a grid of simulation points in parallel (Fig 9-style by default)",
    )
    sweep_p.add_argument(
        "--model", action="append", dest="models",
        help="repeatable; default: llama3-70b and llama3-405b",
    )
    sweep_p.add_argument(
        "--seq-len", type=int, action="append", dest="seq_lens",
        help=f"repeatable; default: {FIG9_SEQ_LEN}",
    )
    sweep_p.add_argument(
        "--policy", action="append", dest="policies",
        help='repeatable paper-style labels, e.g. "unopt", "dynmg+BMA"; '
             "the first is the speedup baseline (default: the Fig 9 legend)",
    )
    sweep_p.add_argument(
        "--l2-mib", type=int, action="append", dest="l2_mib",
        help=f"repeatable L2 capacities in MiB; default: {FIG9_L2_MIB}",
    )
    sweep_p.add_argument(
        "--serve", action="store_true",
        help="sweep serving points (workloads x arrivals x rates x policies) "
             "instead of kernel points",
    )
    sweep_p.add_argument(
        "--cluster", action="store_true",
        help="sweep cluster points (workloads x arrivals x rates x replicas x "
             "routers x policies) instead of kernel points",
    )
    sweep_p.add_argument(
        "--rate", type=float, action="append", dest="rates",
        help=f"repeatable serving arrival rates (requests/s); "
             f"default: {SERVE_SWEEP_RATES} (only with --serve/--cluster)",
    )
    sweep_p.add_argument(
        "--arrival", action="append", dest="arrivals",
        help='repeatable arrival-process names; default: "poisson" '
             "(only with --serve/--cluster)",
    )
    sweep_p.add_argument(
        "--scheduler", action="append", dest="schedulers",
        help='repeatable step-planning policies, e.g. "decode-first", '
             '"chunked"; default: "decode-first" (only with --serve/--cluster)',
    )
    sweep_p.add_argument(
        "--prefill-chunk", type=int, action="append", dest="prefill_chunks",
        help=f"repeatable chunked-prefill token budgets; default: "
             f"{DEFAULT_PREFILL_CHUNK} (only with --serve/--cluster)",
    )
    sweep_p.add_argument(
        "--replicas", type=int, action="append", dest="replica_counts",
        help=f"repeatable fleet sizes; default: {CLUSTER_SWEEP_REPLICAS} "
             "(only with --cluster)",
    )
    sweep_p.add_argument(
        "--router", action="append", dest="routers",
        help='repeatable router names; default: "round-robin" (only with --cluster)',
    )
    _add_kv_args(sweep_p, sweep=True)
    sweep_p.add_argument("--num-requests", type=int, default=32,
                         help="requests per serving point (only with --serve/--cluster)")
    sweep_p.add_argument("--max-batch", type=int, default=4,
                         help="continuous-batching bound (only with --serve/--cluster)")
    sweep_p.add_argument("--seed", type=int, default=0,
                         help="arrival-stream seed (only with --serve/--cluster)")
    sweep_p.add_argument("--tier", default="ci")
    sweep_p.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep_p.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSON-lines result store; completed points are reused on re-runs",
    )
    sweep_p.add_argument(
        "--force", action="store_true", help="re-simulate even if stored"
    )
    sweep_p.add_argument("--max-cycles", type=int, default=None)
    sweep_p.add_argument("--quiet", action="store_true", help="suppress per-point progress")
    sweep_p.add_argument(
        "--telemetry", type=float, default=None, metavar="MS",
        help="sample telemetry every MS simulated milliseconds on every point "
             "(only with --serve/--cluster; view via `llamcat timeline`)",
    )

    timeline_p = sub.add_parser(
        "timeline",
        help="render ASCII telemetry timelines from a stored sweep point",
    )
    timeline_p.add_argument("store", metavar="STORE", help="JSON-lines result store")
    timeline_p.add_argument(
        "key", metavar="KEY",
        help="content-hash prefix (git-style abbreviation) or point label",
    )
    timeline_p.add_argument(
        "--metric", action="append", dest="metrics",
        help="repeatable: utilization, queue_depth, running, tokens_per_s or "
             "util:<replica> (default: the first four)",
    )
    timeline_p.add_argument(
        "--width", type=int, default=DEFAULT_WIDTH,
        help=f"sparkline width in glyphs (default: {DEFAULT_WIDTH})",
    )

    bench_p = sub.add_parser(
        "bench",
        help="run registered benchmarks and track the results as trend files",
    )
    bench_p.add_argument(
        "--bench", action="append", dest="benches", metavar="NAME",
        help="repeatable registered bench name (default: every bench; "
             "see `llamcat list benches`)",
    )
    bench_p.add_argument("--tier", default="ci")
    bench_p.add_argument(
        "--warmup", type=int, default=0,
        help="untimed executions before timing (populates the step-cost memo)",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=1,
        help="timed executions; the minimum wall time is recorded",
    )
    bench_p.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding the BENCH_<name>.json trend files "
             "(default: the current directory, i.e. the repo root)",
    )
    bench_p.add_argument(
        "--no-write", action="store_true",
        help="run and print without appending to the trend files",
    )
    bench_p.add_argument(
        "--compare", nargs="?", const="", default=None, metavar="BASELINE",
        help="compare instead of running: deltas of --root's trend files vs "
             "BASELINE (a directory or one trend file); comparing a root "
             "against itself diffs each bench's latest run vs its previous "
             "one; exits 1 on regression beyond the threshold",
    )
    bench_p.add_argument(
        "--threshold", type=float, default=BENCH_COMPARE_THRESHOLD_PCT,
        metavar="PCT",
        help="noise threshold for --compare in percent "
             f"(default: {BENCH_COMPARE_THRESHOLD_PCT:g})",
    )
    bench_p.add_argument(
        "--wall-threshold", type=float, default=None, metavar="PCT",
        help="also gate on wall-clock regressions beyond PCT percent "
             "(default: wall time is informational only)",
    )
    bench_p.add_argument(
        "--validate", action="store_true",
        help="schema-check the trend files under --root and exit",
    )

    report_p = sub.add_parser(
        "report",
        help="render a run report from trend files and/or a result store",
    )
    report_p.add_argument(
        "--trend-root", default=None, metavar="DIR",
        help="directory holding BENCH_<name>.json trend files to summarize",
    )
    report_p.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSON-lines result store to summarize (headline tables, "
             "per-phase latency breakdowns, telemetry sparklines)",
    )
    report_p.add_argument(
        "--format", choices=("markdown", "html"), default="markdown",
        help="output format (html is a self-contained page)",
    )
    report_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    report_p.add_argument(
        "--title", default="llamcat run report",
        help="report title",
    )

    check_p = sub.add_parser(
        "check",
        help="run the determinism & invariant checks (repro.analysis)",
    )
    check_p.add_argument(
        "paths", nargs="*", default=["src", "tests", "examples"], metavar="PATH",
        help="files/directories to lint (default: src tests examples)",
    )
    check_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is canonical and byte-stable)",
    )
    check_p.add_argument(
        "--select", action="append", dest="select", metavar="CODE",
        help="repeatable: run only these rule codes",
    )
    check_p.add_argument(
        "--explain", metavar="CODE", default=None,
        help="print one rule code's documentation and exit",
    )
    check_p.add_argument(
        "--determinism", metavar="SCENARIO", default=None,
        choices=("serve-smoke", "cluster-smoke", "liveness-smoke"),
        help="run SCENARIO twice and bisect to the first divergent step "
             "instead of linting; liveness-smoke runs the previously-"
             "livelocked cobrra kernel point and demands completed status "
             "plus byte-identical results",
    )
    check_p.add_argument(
        "--inject-rng", action="store_true",
        help="with --determinism: inject an unseeded-RNG arrival jitter to "
             "demonstrate localization (expected to diverge, exits 1)",
    )
    check_p.add_argument(
        "--inject-starvation", action="store_true",
        help="with --determinism liveness-smoke: swap the pre-fix starving "
             "cobrra arbiter back in to demonstrate the liveness watchdog "
             "(expected to livelock with a stall report, exits 1)",
    )
    check_p.add_argument("--seed", type=int, default=0,
                         help="scenario seed for --determinism")
    check_p.add_argument(
        "--patience", type=int, default=None, metavar="CYCLES",
        help="liveness watchdog patience for --determinism liveness-smoke "
             "(default: the engine default)",
    )

    list_p = sub.add_parser("list", help="list registered scenario components")
    list_p.add_argument(
        "what",
        choices=tuple(LISTABLE_REGISTRIES),
        help="which registry to list",
    )

    for name in ("fig7", "fig8", "fig9"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--tier", default="ci")
        p.add_argument("--jobs", type=int, default=1, help="worker processes")
        p.add_argument(
            "--store", default=None, metavar="PATH",
            help="JSON-lines result store; completed points are reused on re-runs",
        )

    sub.add_parser("hwcost", help="print the area estimates of Section 6.1")

    info_p = sub.add_parser("info", help="describe a workload and its analytical bounds")
    info_p.add_argument("--model", default="llama3-70b")
    info_p.add_argument("--seq-len", type=int, default=4096)
    info_p.add_argument("--system", default="table5", help="registered system name")
    info_p.add_argument("--tier", default="full")
    return parser


def _validate_jobs(jobs: int) -> None:
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")


def _percentile_rows(metrics) -> list[dict]:
    """Latency/TTFT (and prefill, when modeled) percentile table rows."""

    rows = []
    for point in REPORTED_PERCENTILES:
        row = {
            "metric": f"p{point:g}",
            "latency_ms": metrics.latency_percentile_ms(point),
            "ttft_ms": metrics.ttft_percentile_ms(point),
        }
        if metrics.has_prefill_phase:
            row["prefill_ms"] = metrics.prefill_percentile_ms(point)
        rows.append(row)
    return rows


def _make_tracer(args: argparse.Namespace) -> ChromeTracer | None:
    return ChromeTracer() if args.trace_out else None


def _finish_obs(args: argparse.Namespace, tracer: ChromeTracer | None, metrics) -> None:
    """Write the trace file and print the telemetry timeline, when asked for."""

    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer)} events)")
    if metrics.telemetry is not None:
        print()
        print(render_timeline(metrics.telemetry))


def _serve_command(args: argparse.Namespace) -> int:
    tier = "smoke" if args.smoke else args.tier
    scenario = ServeScenario(
        workload=args.workload,
        arrival=args.arrival,
        rate=args.rate,
        num_requests=8 if args.smoke else args.num_requests,
        max_batch=min(args.max_batch, 2) if args.smoke else args.max_batch,
        seed=args.seed,
        policy=args.policy,
        scheduler=args.scheduler,
        prefill_chunk=args.prefill_chunk,
        prefill_cost=args.prefill_cost,
        system=args.system,
        tier=parse_tier(tier),
        slo_ttft_ms=args.slo_ttft_ms,
        slo_latency_ms=args.slo_latency_ms,
        telemetry_ms=args.telemetry,
        kv_budget=args.kv_budget,
        kv_block=args.kv_block,
        preemption=args.preemption,
        kv_swap_ms=args.kv_swap_ms,
    ).validate()
    tracer = _make_tracer(args)
    profiler = Profiler()
    metrics = scenario.run(tracer=tracer, profiler=profiler)
    if args.metrics_sketch:
        metrics = metrics.with_sketch()
    logger.debug("profile:\n%s", profiler.summary())
    print(metrics.summary())
    print()
    print(
        format_grid(
            f"latency percentiles ({scenario.display_label}, {scenario.scheduler})",
            _percentile_rows(metrics),
        )
    )
    print(
        f"throughput: {metrics.tokens_per_s:.0f} tokens/s, "
        f"{metrics.requests_per_s:.0f} requests/s "
        f"({metrics.steps} serving steps, "
        f"{metrics.meta.get('step_simulations', 0)} cycle-engine runs)"
    )
    if "preemptions" in metrics.meta:
        print(
            f"KV memory: {metrics.meta['kv_budget_tokens']} tokens in "
            f"{metrics.meta['kv_block_tokens']}-token blocks, "
            f"peak utilization {metrics.meta['kv_peak_utilization']:.1%}, "
            f"{metrics.meta['preemptions']} preemptions "
            f"({metrics.meta['preemption']}), "
            f"memory-bound {metrics.meta['kv_memory_bound_frac']:.1%} of the run"
        )
    if not scenario.slo().is_trivial:
        print(f"SLO attainment: {metrics.slo_attainment:.1%}")
    _finish_obs(args, tracer, metrics)
    return 0


def _cluster_command(args: argparse.Namespace) -> int:
    tier = "smoke" if args.smoke else args.tier
    if args.disaggregated is not None:
        # The fleet split fixes the replica count (smoke keeps the bare-flag
        # default of 1p1d small on its own); a contradicting --replicas is an
        # error, not a silent override.  The parser default (2) is
        # indistinguishable from an explicit "--replicas 2" and passes.
        prefill, decode = parse_disaggregated(args.disaggregated)
        replicas = prefill + decode
        if args.replicas not in (2, replicas):
            raise SystemExit(
                f"--replicas {args.replicas} contradicts --disaggregated "
                f"{args.disaggregated} ({replicas} replicas); drop --replicas "
                f"or make them agree"
            )
    else:
        replicas = min(args.replicas, 2) if args.smoke else args.replicas
    systems = tuple(args.systems) if args.systems else ("table5",)
    if args.smoke and len(systems) > 1:
        systems = systems[:replicas]
    scenario = ClusterScenario(
        workload=args.workload,
        arrival=args.arrival,
        rate=args.rate,
        num_requests=8 if args.smoke else args.num_requests,
        replicas=replicas,
        router=args.router,
        max_batch=min(args.max_batch, 2) if args.smoke else args.max_batch,
        seed=args.seed,
        policy=args.policy,
        scheduler=args.scheduler,
        prefill_chunk=args.prefill_chunk,
        prefill_cost=args.prefill_cost,
        disaggregated=args.disaggregated,
        kv_transfer_ms=args.kv_transfer_ms,
        systems=systems,
        tier=parse_tier(tier),
        slo_ttft_ms=args.slo_ttft_ms,
        slo_latency_ms=args.slo_latency_ms,
        telemetry_ms=args.telemetry,
        kv_budget=args.kv_budget,
        kv_block=args.kv_block,
        preemption=args.preemption,
        kv_swap_ms=args.kv_swap_ms,
    ).validate()
    tracer = _make_tracer(args)
    profiler = Profiler()
    metrics = scenario.run(tracer=tracer, profiler=profiler)
    if args.metrics_sketch:
        metrics = metrics.with_sketch()
    logger.debug("profile:\n%s", profiler.summary())
    print(metrics.summary())
    print()
    replica_rows = [
        {
            "replica": replica.replica_id,
            "system": replica.system,
            "role": replica.role,
            "requests": replica.num_requests,
            "routed": replica.routed,
            "handoffs": replica.handoffs,
            "steps": replica.steps,
            "tokens": replica.output_tokens,
            "utilization": replica.utilization(metrics.duration_s),
        }
        for replica in metrics.replicas
    ]
    print(format_grid(f"fleet ({scenario.display_label})", replica_rows))
    print()
    print(format_grid("merged latency percentiles", _percentile_rows(metrics)))
    # Handoff counts and per-phase utilization already lead the summary()
    # line; repeating them here would just drift out of sync.
    print(
        f"fleet throughput: {metrics.tokens_per_s:.0f} tokens/s, "
        f"{metrics.requests_per_s:.0f} requests/s "
        f"(imbalance {metrics.load_imbalance:.2f}, "
        f"{metrics.steps} fleet steps, "
        f"{metrics.meta.get('step_simulations', 0)} cycle-engine runs)"
    )
    if "preemption_rate" in metrics.meta:
        peaks = ", ".join(f"{u:.0%}" for u in metrics.meta["kv_peak_utilization"])
        print(
            f"KV memory: {metrics.meta['kv_block_tokens']}-token blocks, "
            f"per-replica peak utilization [{peaks}], "
            f"{sum(metrics.meta['preemptions'])} preemptions "
            f"({metrics.meta['preemption']})"
        )
    if not scenario.slo().is_trivial:
        print(f"SLO attainment: {metrics.slo_attainment:.1%}")
    _finish_obs(args, tracer, metrics)
    return 0


def _point_progress(done: int, total: int, outcome, detail: str = "") -> None:
    """One finished sweep point, logged at INFO (stderr; silenced by -q)."""

    status = "cached" if outcome.cached else ("ok" if outcome.ok else "FAILED")
    logger.info(
        "[%*d/%d] %-60s %s%s (%.1fs)",
        len(str(total)), done, total, outcome.point.describe(),
        detail, status, outcome.elapsed_s,
    )


def _run_cluster_sweep_command(args: argparse.Namespace) -> int:
    _validate_jobs(args.jobs)
    spec = ClusterSweepSpec(
        workloads=tuple(args.models or ("llama3-70b",)),
        rates=tuple(args.rates or SERVE_SWEEP_RATES),
        replica_counts=tuple(args.replica_counts or CLUSTER_SWEEP_REPLICAS),
        routers=tuple(args.routers or ("round-robin",)),
        arrivals=tuple(args.arrivals or ("poisson",)),
        schedulers=tuple(args.schedulers or (DEFAULT_SCHEDULER,)),
        prefill_chunks=tuple(args.prefill_chunks or (DEFAULT_PREFILL_CHUNK,)),
        policies=tuple(args.policies or ("unopt",)),
        kv_budgets=tuple(args.kv_budgets or (None,)),
        kv_blocks=tuple(args.kv_blocks or (1,)),
        preemptions=tuple(args.preemptions or ("recompute",)),
        kv_swap_ms=args.kv_swap_ms,
        num_requests=args.num_requests,
        max_batch=args.max_batch,
        seed=args.seed,
        tier=parse_tier(args.tier),
        max_cycles=args.max_cycles,
        telemetry_ms=args.telemetry,
    ).validate()

    points = spec.expand()
    print(
        f"cluster sweep: {len(points)} points = {len(spec.workloads)} workloads x "
        f"{len(spec.arrivals)} arrivals x {len(spec.rates)} rates x "
        f"{len(spec.replica_counts)} fleet sizes x {len(spec.routers)} routers x "
        f"{len(spec.schedulers)} schedulers x {len(spec.prefill_chunks)} chunks x "
        f"{len(spec.policies)} policies x {len(spec.kv_budgets)} KV budgets x "
        f"{len(spec.kv_blocks)} KV blocks x {len(spec.preemptions)} preemptions "
        f"(tier={spec.tier.name}, jobs={args.jobs})"
    )
    store = ResultStore(args.store) if args.store else None
    if store is not None and store.completed_count:
        print(f"store: {store.path} ({store.completed_count} completed points on disk)")

    report = run_sweep(
        points,
        jobs=args.jobs,
        store=store,
        progress=None if args.quiet else _point_progress,
        force=args.force,
    )
    logger.debug("sweep profile: %s", report.profile())

    rows = []
    for outcome in report.outcomes:
        point = outcome.point
        row = {
            "model": point.coord("model"),
            "rate": point.coord("rate"),
            "replicas": point.coord("replicas"),
            "router": point.coord("router"),
            "scheduler": point.coord("scheduler"),
        }
        if outcome.ok:
            metrics = outcome.result
            row.update(
                {
                    "p50_ms": metrics.latency_percentile_ms(50),
                    "p99_ms": metrics.latency_percentile_ms(99),
                    "tokens_per_s": metrics.tokens_per_s,
                    "imbalance": metrics.load_imbalance,
                    "slo": metrics.slo_attainment,
                }
            )
        else:
            row.update(
                {"p50_ms": "FAILED", "p99_ms": "-", "tokens_per_s": "-",
                 "imbalance": "-", "slo": "-"}
            )
        rows.append(row)
    print()
    print(format_grid(f"cluster sweep results (tier={spec.tier.name})", rows))
    print(report.summary())
    for failure in report.failures:
        print(f"FAILED {failure.point.describe()}:\n{failure.error}")
    return 1 if report.failures else 0


def _run_serve_sweep_command(args: argparse.Namespace) -> int:
    _validate_jobs(args.jobs)
    spec = ServeSweepSpec(
        workloads=tuple(args.models or ("llama3-70b",)),
        rates=tuple(args.rates or SERVE_SWEEP_RATES),
        arrivals=tuple(args.arrivals or ("poisson",)),
        schedulers=tuple(args.schedulers or (DEFAULT_SCHEDULER,)),
        prefill_chunks=tuple(args.prefill_chunks or (DEFAULT_PREFILL_CHUNK,)),
        policies=tuple(args.policies or ("unopt",)),
        kv_budgets=tuple(args.kv_budgets or (None,)),
        kv_blocks=tuple(args.kv_blocks or (1,)),
        preemptions=tuple(args.preemptions or ("recompute",)),
        kv_swap_ms=args.kv_swap_ms,
        num_requests=args.num_requests,
        max_batch=args.max_batch,
        seed=args.seed,
        tier=parse_tier(args.tier),
        max_cycles=args.max_cycles,
        telemetry_ms=args.telemetry,
    ).validate()

    points = spec.expand()
    print(
        f"serve sweep: {len(points)} points = {len(spec.workloads)} workloads x "
        f"{len(spec.arrivals)} arrivals x {len(spec.rates)} rates x "
        f"{len(spec.schedulers)} schedulers x {len(spec.prefill_chunks)} chunks x "
        f"{len(spec.policies)} policies x {len(spec.kv_budgets)} KV budgets x "
        f"{len(spec.kv_blocks)} KV blocks x {len(spec.preemptions)} preemptions "
        f"(tier={spec.tier.name}, jobs={args.jobs})"
    )
    store = ResultStore(args.store) if args.store else None
    if store is not None and store.completed_count:
        print(f"store: {store.path} ({store.completed_count} completed points on disk)")

    report = run_sweep(
        points,
        jobs=args.jobs,
        store=store,
        progress=None if args.quiet else _point_progress,
        force=args.force,
    )
    logger.debug("sweep profile: %s", report.profile())

    rows = []
    for outcome in report.outcomes:
        point = outcome.point
        row = {
            "model": point.coord("model"),
            "arrival": point.coord("arrival"),
            "rate": point.coord("rate"),
            "scheduler": point.coord("scheduler"),
            "policy": point.coord("policy"),
        }
        if outcome.ok:
            metrics = outcome.result
            row.update(
                {
                    "p50_ms": metrics.latency_percentile_ms(50),
                    "p95_ms": metrics.latency_percentile_ms(95),
                    "p99_ms": metrics.latency_percentile_ms(99),
                    "tokens_per_s": metrics.tokens_per_s,
                    "slo": metrics.slo_attainment,
                }
            )
        else:
            row.update(
                {"p50_ms": "FAILED", "p95_ms": "-", "p99_ms": "-",
                 "tokens_per_s": "-", "slo": "-"}
            )
        rows.append(row)
    print()
    print(format_grid(f"serve sweep results (tier={spec.tier.name})", rows))
    print(report.summary())
    for failure in report.failures:
        print(f"FAILED {failure.point.describe()}:\n{failure.error}")
    return 1 if report.failures else 0


def _run_sweep_command(args: argparse.Namespace) -> int:
    # Axes are mode-specific; reject mixed flags instead of silently dropping
    # them (e.g. `--rate` without `--serve` would otherwise launch the full
    # kernel grid while ignoring the requested serving study).
    if args.serve and args.cluster:
        raise SystemExit("--serve and --cluster are mutually exclusive sweep modes")
    if (args.serve or args.cluster) and (args.seq_lens or args.l2_mib):
        raise SystemExit(
            "--seq-len/--l2-mib are kernel-sweep axes; drop them or drop "
            "--serve/--cluster"
        )
    if not args.cluster and (args.replica_counts or args.routers):
        raise SystemExit(
            "--replicas/--router are cluster-sweep axes; pass --cluster to "
            "sweep cluster points"
        )
    if not (args.serve or args.cluster) and (
        args.rates or args.arrivals or args.schedulers or args.prefill_chunks
        or args.kv_budgets or args.kv_blocks or args.preemptions
    ):
        raise SystemExit(
            "--rate/--arrival/--scheduler/--prefill-chunk/--kv-budget/"
            "--kv-block/--preemption are serving-sweep axes; pass --serve or "
            "--cluster to sweep serving points"
        )
    if not (args.serve or args.cluster) and args.telemetry is not None:
        raise SystemExit(
            "--telemetry samples serving-time series; pass --serve or "
            "--cluster to sweep serving points"
        )
    if args.cluster:
        return _run_cluster_sweep_command(args)
    if args.serve:
        return _run_serve_sweep_command(args)
    _validate_jobs(args.jobs)
    spec = SweepSpec(
        models=tuple(args.models or ("llama3-70b", "llama3-405b")),
        seq_lens=tuple(args.seq_lens or (FIG9_SEQ_LEN,)),
        policies=tuple(args.policies or FIG9_POLICY_LABELS),
        l2_mib=tuple(args.l2_mib or FIG9_L2_MIB),
        tier=parse_tier(args.tier),
        max_cycles=args.max_cycles,
    ).validate()

    points = spec.expand()
    print(
        f"sweep: {len(points)} points = {len(spec.models)} models x "
        f"{len(spec.l2_mib)} L2 sizes x {len(spec.seq_lens)} seq lens x "
        f"{len(spec.policies)} policies (tier={spec.tier.name}, jobs={args.jobs})"
    )
    store = ResultStore(args.store) if args.store else None
    if store is not None and store.completed_count:
        print(f"store: {store.path} ({store.completed_count} completed points on disk)")

    def progress(done: int, total: int, outcome) -> None:
        cycles = f"{outcome.result.cycles:>10}" if outcome.ok else " " * 10
        _point_progress(done, total, outcome, detail=f"{cycles} cycles  ")

    report = run_sweep(
        points,
        jobs=args.jobs,
        store=store,
        progress=None if args.quiet else progress,
        force=args.force,
    )
    logger.debug("sweep profile: %s", report.profile())

    # Summary table: speedups are normalised against the first --policy label
    # within each (model, L2, seq-len) cell.
    baseline_label = spec.policies[0]
    baseline_cycles = {
        o.point.coords: o.result.cycles
        for o in report.outcomes
        if o.ok and o.point.coord("policy") == baseline_label
    }
    rows = []
    for outcome in report.outcomes:
        point = outcome.point
        base_coords = tuple(
            (axis, baseline_label if axis == "policy" else value)
            for axis, value in point.coords
        )
        base = baseline_cycles.get(base_coords)
        rows.append(
            {
                "model": point.coord("model"),
                # The as-requested (unscaled) axes, matching the user's flags.
                "seq_len": point.coord("seq_len", point.workload.shape.seq_len),
                "l2_mib": point.coord("l2_mib") or "default",
                "policy": point.label,
                "cycles": outcome.result.cycles if outcome.ok else "FAILED",
                f"speedup vs {baseline_label}": (
                    base / outcome.result.cycles if outcome.ok and base else float("nan")
                ),
            }
        )
    print()
    print(format_grid(f"sweep results (tier={spec.tier.name})", rows))
    print(report.summary())
    for failure in report.failures:
        print(f"FAILED {failure.point.describe()}:\n{failure.error}")
    return 1 if report.failures else 0


def _bench_command(args: argparse.Namespace) -> int:
    if args.validate:
        validation = validate_trends(args.root)
        print(validation.render())
        return 0 if validation.ok else 1
    if args.compare is not None:
        # A bare `--compare` baselines the trend root against itself, i.e.
        # each bench's latest run against its previous one.
        comparison = compare_trends(
            args.root,
            args.compare or args.root,
            threshold_pct=args.threshold,
            wall_threshold_pct=args.wall_threshold,
            benches=tuple(args.benches) if args.benches else None,
        )
        print(comparison.render())
        return 0 if comparison.ok else 1
    names = list(args.benches or bench_names())
    for name in names:
        resolve_bench(name)  # an unknown name is a usage error, not a bench failure
    tier = parse_tier(args.tier)
    failed: list[str] = []
    for name in names:
        try:
            run = run_bench(name, tier=tier, warmup=args.warmup, repeat=args.repeat)
        except ConfigError:
            raise
        except Exception as exc:  # one failing bench must not silence the rest
            failed.append(name)
            print(f"FAILED {name}: {type(exc).__name__}: {exc}")
            continue
        print(run.render())
        if not args.no_write:
            path = append_trend(trend_path(args.root, run.output.bench), run.records())
            print(f"trend: {path} (+{len(run.records())} records)")
    if failed:
        print(f"{len(failed)}/{len(names)} benches failed: {', '.join(failed)}")
        return 1
    return 0


def _report_command(args: argparse.Namespace) -> int:
    if args.trend_root is None and args.store is None:
        raise SystemExit("report needs --trend-root and/or --store")
    store = None
    if args.store is not None:
        if not os.path.exists(args.store):
            raise SystemExit(f"no result store at {args.store}")
        store = ResultStore(args.store)
    text = render_report(
        trend_root=args.trend_root, store=store, fmt=args.format, title=args.title
    )
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report: {args.out} ({len(text)} bytes, {args.format})")
    else:
        print(text, end="")
    return 0


def _timeline_command(args: argparse.Namespace) -> int:
    if not os.path.exists(args.store):
        raise SystemExit(f"no result store at {args.store}")
    store = ResultStore(args.store)
    try:
        record = store.find(args.key)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from exc
    if not record.ok:
        raise SystemExit(
            f"stored point {record.key[:12]} ({record.label}) failed; "
            "no telemetry to render"
        )
    telemetry = getattr(record.result, "telemetry", None)
    if telemetry is None:
        raise SystemExit(
            f"stored point {record.key[:12]} ({record.label}) carries no "
            "telemetry; re-run the sweep with --telemetry MS"
        )
    metrics = (
        tuple((m, m) for m in args.metrics) if args.metrics else DEFAULT_METRICS
    )
    print(f"{record.label} [{record.key[:12]}]")
    print(render_timeline(telemetry, metrics=metrics, width=args.width))
    return 0


def _list_command(what: str) -> int:
    registry = LISTABLE_REGISTRIES[what]
    entries = list(registry.entries())
    width = max((len(entry.name) for entry in entries), default=0)
    print(f"registered {what} ({len(entries)}):")
    for entry in entries:
        aliases = f"  (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"  {entry.name:<{width}}  {entry.description}{aliases}")
    if what == "policies":
        print(
            "  (any 'throttle+arbitration' combination of known components is "
            "also a valid label, e.g. 'lcs+MA')"
        )
    return 0


#: ``--determinism SCENARIO`` presets, mirroring the ``--smoke`` serve/cluster
#: shapes so the checked scenarios are exactly the ones CI already pins.
def _determinism_scenario(name: str, seed: int):
    if name == "serve-smoke":
        return ServeScenario(
            workload="llama3-70b",
            arrival="poisson",
            rate=2000.0,
            num_requests=8,
            max_batch=2,
            seed=seed,
            tier=parse_tier("smoke"),
            label=name,
        )
    return ClusterScenario(
        workload="llama3-70b",
        arrival="poisson",
        rate=2000.0,
        num_requests=8,
        max_batch=2,
        replicas=2,
        seed=seed,
        tier=parse_tier("smoke"),
        label=name,
    )


def _check_command(args: argparse.Namespace) -> int:
    if args.explain is not None:
        print(explain_rule(args.explain))
        return 0

    if args.determinism == "liveness-smoke":
        kwargs = {} if args.patience is None else {"patience": args.patience}
        liveness = check_liveness(
            inject_starvation=args.inject_starvation, **kwargs
        )
        if args.format == "json":
            print(json.dumps(liveness.to_dict(), sort_keys=True, indent=2))
        else:
            print(liveness.render())
        return 0 if liveness.ok else 1

    if args.determinism is not None:
        scenario = _determinism_scenario(args.determinism, args.seed)
        wrap = (lambda arrival: RngJitterArrival(arrival)) if args.inject_rng else None
        report = check_determinism(scenario, label=args.determinism, wrap_arrival=wrap)
        if args.format == "json":
            print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
        else:
            print(report.render())
        return 0 if report.deterministic else 1

    files_checked = len(discover_files(args.paths))
    findings = check_paths(args.paths, select=args.select)
    if args.format == "json":
        print(findings_to_json(findings, files_checked))
    else:
        for finding in findings:
            print(finding.render())
        noun = "file" if files_checked == 1 else "files"
        if findings:
            print(f"{len(findings)} finding(s) in {files_checked} {noun} checked")
        else:
            print(f"checked {files_checked} {noun}: no findings")
    return 1 if findings else 0


def _load_plugins() -> None:
    """Import the modules named in ``LLAMCAT_PLUGINS`` (comma-separated).

    This is how out-of-tree code gets its ``@register_*`` decorators executed
    inside the ``llamcat`` process: each named module must be importable (on
    ``PYTHONPATH``); importing it registers its scenario components.
    """

    for name in filter(None, (m.strip() for m in os.environ.get("LLAMCAT_PLUGINS", "").split(","))):
        try:
            importlib.import_module(name)
        except ImportError as exc:
            raise SystemExit(f"LLAMCAT_PLUGINS: cannot import {name!r}: {exc}") from exc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.log_quiet)
    try:
        _load_plugins()
        return _dispatch(args)
    except ConfigError as exc:
        # Bad names/values from the command line; internal errors (simulation
        # bugs) propagate with their tracebacks.
        raise SystemExit(str(exc)) from exc


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        scenario = Scenario(
            workload=args.model,
            policy=args.policy,
            system=args.system,
            seq_len=args.seq_len,
            tier=parse_tier(args.tier),
        ).validate()
        try:
            baseline = replace(scenario, policy="unopt", label="unoptimized").run()
            result = scenario.run()
        except LivelockError as exc:
            # The message embeds the rendered stall report (queue occupancies,
            # MSHR state, arbiter grants, first stuck cycle).
            print(f"LIVELOCK: {exc}")
            return 1
        print(baseline.summary())
        print(result.summary())
        print(f"speedup over unoptimized: {baseline.cycles / result.cycles:.3f}x")
        return 0

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "cluster":
        return _cluster_command(args)

    if args.command == "sweep":
        return _run_sweep_command(args)

    if args.command == "timeline":
        return _timeline_command(args)

    if args.command == "bench":
        return _bench_command(args)

    if args.command == "report":
        return _report_command(args)

    if args.command == "check":
        return _check_command(args)

    if args.command == "list":
        return _list_command(args.what)

    if args.command in ("fig7", "fig8", "fig9"):
        _validate_jobs(args.jobs)
        tier = parse_tier(args.tier)
        store = ResultStore(args.store) if args.store else None
        if args.command == "fig7":
            print(run_fig7_throttling(tier=tier, jobs=args.jobs, store=store).render())
            print()
            print(run_fig7_cumulative(tier=tier, jobs=args.jobs, store=store).render())
        elif args.command == "fig8":
            print(run_fig8(tier=tier, jobs=args.jobs, store=store).render())
        else:
            print(run_fig9(tier=tier, jobs=args.jobs, store=store).render())
        return 0

    if args.command == "hwcost":
        print(format_grid("Section 6.1 -- area estimates", run_hwcost()))
        return 0

    if args.command == "info":
        scenario = Scenario(
            workload=args.model,
            system=args.system,
            seq_len=args.seq_len,
            tier=parse_tier(args.tier),
        )
        resolved = scenario.resolve()
        estimate = analyze(resolved.workload, resolved.system)
        print(resolved.workload.describe())
        print(f"thread blocks:        {estimate.thread_blocks}")
        print(f"L2 line requests:     {estimate.total_l2_accesses}")
        print(f"unique DRAM traffic:  {estimate.total_dram_bytes / 2**20:.1f} MiB")
        print(f"stall-free cycles:    {estimate.stall_free_cycles}")
        print(f"bottleneck:           {estimate.bottleneck}")
        return 0

    raise SystemExit(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
