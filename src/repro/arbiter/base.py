"""Arbiter interface shared by all request-selection policies."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.fifo import BoundedFifo
from repro.common.types import MemRequest


@dataclass(slots=True)
class ArbiterStats:
    """Bookkeeping common to all arbiters."""

    selections: int = 0
    predicted_hits: int = 0
    predicted_mshr_hits: int = 0
    prediction_correct: int = 0
    prediction_wrong: int = 0
    per_core_served: dict[int, int] = field(default_factory=dict)


class BaseArbiter:
    """Base class: FCFS behaviour plus the progress counters of §4.1.

    The progress counters ("cnt0..cnt3" in Fig 4) count requests served per
    requesting core; they are read both by the balanced arbitration policy and
    by the global multi-gear throttling controller (to find the fastest cores).
    """

    #: Paper-facing policy name (overridden by subclasses).
    name = "fcfs"

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        self.num_cores = num_cores
        self.progress_counters: list[int] = [0] * num_cores
        self.stats = ArbiterStats()
        # -- storage-port arbitration grant counters (kept on the base class so
        # conservation -- grants summing to calls -- holds for every policy).
        self.response_priority_grants = 0
        self.request_priority_grants = 0
        self.default_priority_grants = 0
        self.arbitration_calls = 0

    # -- request selection -----------------------------------------------------------
    def select(
        self, queue: BoundedFifo[MemRequest], mshr_lines: set[int], cycle: int
    ) -> int:
        """Return the index (0 = oldest) of the request to serve this cycle.

        ``queue`` is guaranteed non-empty by the caller.  ``mshr_lines`` is the
        real-time MSHR snapshot (line addresses with an open entry).
        """

        return 0

    def notify_selected(self, req: MemRequest, cycle: int) -> None:
        """Called after a request was popped and sent into the slice pipeline."""

        self.progress_counters[req.core_id] += 1
        self.stats.selections += 1
        served = self.stats.per_core_served
        served[req.core_id] = served.get(req.core_id, 0) + 1

    # -- feedback from the slice pipeline ------------------------------------------------
    def notify_hit(self, line_addr: int, cycle: int) -> None:
        """A cache hit was determined for ``line_addr`` (updates hit history)."""

    def notify_fill(self, line_addr: int, cycle: int) -> None:
        """A line was filled into the cache storage (used by reuse predictors)."""

    def notify_outcome(self, req: MemRequest, was_hit: bool, was_mshr_hit: bool) -> None:
        """Actual outcome of a previously selected request (prediction accounting)."""

    # -- request-vs-response arbitration hook ----------------------------------------------
    def wants_response_priority(
        self, resp_queue_len: int, resp_queue_capacity: int, req_queue_len: int
    ) -> bool | None:
        """Override the slice's request/response arbitration.

        Return ``True`` to force serving a response this cycle, ``False`` to
        force serving a request, or ``None`` to use the slice's configured
        default (response-queue-first in the paper's experiments).

        Liveness contract (pinned by the arbiter conformance suite): an
        implementation must never return ``False`` while ``req_queue_len`` is
        zero and ``resp_queue_len`` is positive -- forcing request priority
        with nothing to serve starves the response queue and livelocks the
        uncore drain once the request stream dries up.
        """

        return None

    def arbitrate_port(
        self, resp_queue_len: int, resp_queue_capacity: int, req_queue_len: int
    ) -> bool | None:
        """Storage-port arbitration entry point used by the LLC slice.

        Delegates the decision to :meth:`wants_response_priority` and keeps the
        grant accounting in one place so every policy satisfies
        ``response + request + default grants == arbitration calls``.
        """

        decision = self.wants_response_priority(
            resp_queue_len, resp_queue_capacity, req_queue_len
        )
        self.arbitration_calls += 1
        if decision is True:
            self.response_priority_grants += 1
        elif decision is False:
            self.request_priority_grants += 1
        else:
            self.default_priority_grants += 1
        return decision

    # -- control ------------------------------------------------------------------------------
    def reset_progress(self) -> None:
        """Reset the progress counters (done at the start of each operator)."""

        for i in range(self.num_cores):
            self.progress_counters[i] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_cores={self.num_cores})"
