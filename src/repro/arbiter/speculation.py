"""Speculation hardware of the MSHR-aware arbiter (§4.3.1).

Two small structures let the arbiter *predict* the fate of a queued request
before the actual cache / MSHR lookup:

* :class:`HitBuffer` -- a FIFO of recently determined cache hits.  A queued
  request whose line appears here is speculated to be a cache hit.
* :class:`SentReqs` -- a FIFO of requests recently sent into the slice
  pipeline.  A cache-missing request only becomes visible in the MSHR after
  ``hit_latency + mshr_latency`` cycles; until then the MSHR snapshot is stale,
  so sent_reqs supplies the missing information.  Each entry carries the
  speculated-hit bit of the request, which masks it out of the MSHR view
  (speculated hits never allocate MSHR entries).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass


class HitBuffer:
    """FIFO of line addresses of recent cache hits, with O(1) membership."""

    __slots__ = ("capacity", "_fifo", "_counts", "insertions")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("HitBuffer capacity must be positive")
        self.capacity = capacity
        self._fifo: deque[int] = deque()
        self._counts: Counter[int] = Counter()
        self.insertions = 0

    def record_hit(self, line_addr: int) -> None:
        """Record a newly determined cache hit, evicting the oldest if full."""

        if len(self._fifo) >= self.capacity:
            old = self._fifo.popleft()
            self._counts[old] -= 1
            if self._counts[old] <= 0:
                del self._counts[old]
        self._fifo.append(line_addr)
        self._counts[line_addr] += 1
        self.insertions += 1

    def contains(self, line_addr: int) -> bool:
        return self._counts.get(line_addr, 0) > 0

    def __len__(self) -> int:
        return len(self._fifo)


@dataclass(slots=True)
class _SentEntry:
    line_addr: int
    speculated_hit: bool
    expiry_cycle: int


class SentReqs:
    """FIFO of recently selected requests, visible until the MSHR catches up."""

    __slots__ = ("capacity", "lifetime", "_fifo")

    def __init__(self, capacity: int, lifetime: int) -> None:
        if capacity <= 0:
            raise ValueError("SentReqs capacity must be positive")
        if lifetime <= 0:
            raise ValueError("SentReqs lifetime must be positive")
        self.capacity = capacity
        self.lifetime = lifetime
        self._fifo: deque[_SentEntry] = deque()

    def record(self, line_addr: int, speculated_hit: bool, cycle: int) -> None:
        """Record a selected request; it stays visible for ``lifetime`` cycles."""

        self.expire(cycle)
        if len(self._fifo) >= self.capacity:
            self._fifo.popleft()
        self._fifo.append(
            _SentEntry(line_addr, speculated_hit, cycle + self.lifetime)
        )

    def expire(self, cycle: int) -> None:
        """Drop entries whose MSHR-visibility window has elapsed."""

        fifo = self._fifo
        while fifo and fifo[0].expiry_cycle <= cycle:
            fifo.popleft()

    def pending_mshr_lines(self, cycle: int) -> set[int]:
        """Lines of in-flight requests that will occupy MSHR entries.

        Entries whose speculated-hit bit is set are masked out (step 1 of
        Fig 5): a cache hit never reaches the MSHR.
        """

        self.expire(cycle)
        return {e.line_addr for e in self._fifo if not e.speculated_hit}

    def __len__(self) -> int:
        return len(self._fifo)
