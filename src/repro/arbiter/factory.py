"""Construct the arbiter instance requested by a :class:`PolicyConfig`."""

from __future__ import annotations

from repro.arbiter.balanced import BalancedArbiter
from repro.arbiter.base import BaseArbiter
from repro.arbiter.cobrra import CobrraArbiter
from repro.arbiter.fcfs import FcfsArbiter
from repro.arbiter.mshr_aware import BalancedMshrAwareArbiter, MshrAwareArbiter
from repro.common.errors import ConfigError
from repro.config.policies import ArbitrationKind, PolicyConfig
from repro.config.system import L2Config


def make_arbiter(policy: PolicyConfig, l2: L2Config, num_cores: int) -> BaseArbiter:
    """Build one arbiter (per LLC slice) for the configured arbitration policy."""

    kind = policy.arbitration
    if kind == ArbitrationKind.FCFS:
        return FcfsArbiter(num_cores)
    if kind == ArbitrationKind.BALANCED:
        return BalancedArbiter(num_cores)
    if kind == ArbitrationKind.MSHR_AWARE:
        return MshrAwareArbiter(
            num_cores,
            policy.mshr_aware,
            hit_latency=l2.hit_latency,
            mshr_latency=l2.mshr_latency,
        )
    if kind == ArbitrationKind.BALANCED_MSHR_AWARE:
        return BalancedMshrAwareArbiter(
            num_cores,
            policy.mshr_aware,
            hit_latency=l2.hit_latency,
            mshr_latency=l2.mshr_latency,
        )
    if kind == ArbitrationKind.COBRRA:
        return CobrraArbiter(num_cores, policy.cobrra)
    raise ConfigError(f"unsupported arbitration kind {kind}")
