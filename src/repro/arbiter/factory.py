"""Construct the arbiter instance requested by a :class:`PolicyConfig`.

Every arbitration policy is registered in the :data:`repro.registry.ARBITERS`
registry under its :class:`ArbitrationKind` value, so new policies plug in
with one decorator and are automatically covered by the arbiter conformance
suite (``tests/arbiter/test_conformance.py``), which pins the response-drain
guarantee and grant-count conservation for every registered entry.
"""

from __future__ import annotations

from repro.arbiter.balanced import BalancedArbiter
from repro.arbiter.base import BaseArbiter
from repro.arbiter.cobrra import CobrraArbiter
from repro.arbiter.fcfs import FcfsArbiter
from repro.arbiter.mshr_aware import BalancedMshrAwareArbiter, MshrAwareArbiter
from repro.common.errors import ConfigError
from repro.config.policies import ArbitrationKind, PolicyConfig
from repro.config.system import L2Config
from repro.registry import ARBITERS, register_arbiter


@register_arbiter(ArbitrationKind.FCFS.value, description="First-come first-served")
def _build_fcfs(policy: PolicyConfig, l2: L2Config, num_cores: int) -> BaseArbiter:
    return FcfsArbiter(num_cores)


@register_arbiter(
    ArbitrationKind.BALANCED.value,
    description="'B': smallest per-core progress counter first",
)
def _build_balanced(policy: PolicyConfig, l2: L2Config, num_cores: int) -> BaseArbiter:
    return BalancedArbiter(num_cores)


@register_arbiter(
    ArbitrationKind.MSHR_AWARE.value,
    description="'MA': predicted cache hits > MSHR hits > others",
)
def _build_mshr_aware(policy: PolicyConfig, l2: L2Config, num_cores: int) -> BaseArbiter:
    return MshrAwareArbiter(
        num_cores,
        policy.mshr_aware,
        hit_latency=l2.hit_latency,
        mshr_latency=l2.mshr_latency,
    )


@register_arbiter(
    ArbitrationKind.BALANCED_MSHR_AWARE.value,
    description="'BMA': MSHR-aware with balanced tie-breaking",
)
def _build_balanced_mshr_aware(
    policy: PolicyConfig, l2: L2Config, num_cores: int
) -> BaseArbiter:
    return BalancedMshrAwareArbiter(
        num_cores,
        policy.mshr_aware,
        hit_latency=l2.hit_latency,
        mshr_latency=l2.mshr_latency,
    )


@register_arbiter(
    ArbitrationKind.COBRRA.value,
    description="COBRRA baseline: occupancy-driven request/response arbitration",
)
def _build_cobrra(policy: PolicyConfig, l2: L2Config, num_cores: int) -> BaseArbiter:
    return CobrraArbiter(num_cores, policy.cobrra)


def make_arbiter(policy: PolicyConfig, l2: L2Config, num_cores: int) -> BaseArbiter:
    """Build one arbiter (per LLC slice) for the configured arbitration policy."""

    kind = policy.arbitration
    try:
        builder = ARBITERS.get(kind.value)
    except ConfigError as exc:
        raise ConfigError(f"unsupported arbitration kind {kind}") from exc
    return builder(policy, l2, num_cores)
