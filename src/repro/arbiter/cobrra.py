"""COBRRA baseline (Bagchi, Joshi, Panda -- ACM TECS 2024), as used in §6.2.3.

COBRRA combines contention-aware cache bypassing with request-response
arbitration.  The paper disables bypassing for all policies "for fairness and
clarity" (§3.2), so what remains -- and what this baseline reproduces -- is its
request-response arbitration: requests are prioritised over responses, and only
once the response queue fills beyond a threshold are responses and requests
served in alternation.  Request selection from the request queue itself stays
FCFS, which is why the paper observes COBRRA's performance to be largely
insensitive to throttling and to trail the MSHR-aware policies in the
miss-handling-bound regime.
"""

from __future__ import annotations

from repro.arbiter.base import BaseArbiter
from repro.config.policies import CobrraParams


class CobrraArbiter(BaseArbiter):
    """FCFS request selection + occupancy-driven request/response arbitration."""

    name = "cobrra"

    def __init__(self, num_cores: int, params: CobrraParams) -> None:
        super().__init__(num_cores)
        params.validate()
        self.params = params
        self._serve_response_next = False

    def wants_response_priority(
        self, resp_queue_len: int, resp_queue_capacity: int, req_queue_len: int
    ) -> bool | None:
        """Prioritise requests until the response queue crosses the threshold.

        Above the threshold, alternate between responses and requests so the
        response queue drains without starving the request path.  When the
        request queue is empty there is nothing to prioritise: pending
        responses get the storage port unconditionally, which guarantees the
        response queue drains once the request stream dries up (below the
        occupancy threshold the old behaviour kept forcing request priority
        forever, livelocking the uncore drain at the end of the operator).
        """

        if resp_queue_len == 0:
            return False
        if req_queue_len == 0:
            return True
        occupancy = resp_queue_len / resp_queue_capacity if resp_queue_capacity else 0.0
        if occupancy < self.params.resp_priority_threshold:
            return False
        # Saturated response queue: serve responses and requests in turn.
        self._serve_response_next = not self._serve_response_next
        return self._serve_response_next
