"""Default first-come first-served arbitration (the unoptimized baseline)."""

from __future__ import annotations

from repro.arbiter.base import BaseArbiter


class FcfsArbiter(BaseArbiter):
    """Serve the oldest queued request; no reordering at all."""

    name = "fcfs"

    # ``BaseArbiter.select`` already returns index 0; this class exists so the
    # policy has an explicit name and can be extended independently.
