"""LLC-slice arbitration policies (§4.1, §4.3) and the COBRRA baseline.

Each LLC slice owns one arbiter instance.  The arbiter decides which request to
pop from the slice's request queue each cycle and (for COBRRA) may also
override the request-vs-response arbitration at the shared storage port.
"""

from repro.arbiter.balanced import BalancedArbiter
from repro.arbiter.base import ArbiterStats, BaseArbiter
from repro.arbiter.cobrra import CobrraArbiter
from repro.arbiter.factory import make_arbiter
from repro.arbiter.fcfs import FcfsArbiter
from repro.arbiter.mshr_aware import BalancedMshrAwareArbiter, MshrAwareArbiter
from repro.arbiter.speculation import HitBuffer, SentReqs

__all__ = [
    "ArbiterStats",
    "BalancedArbiter",
    "BalancedMshrAwareArbiter",
    "BaseArbiter",
    "CobrraArbiter",
    "FcfsArbiter",
    "HitBuffer",
    "MshrAwareArbiter",
    "SentReqs",
    "make_arbiter",
]
