"""Balanced arbitration ("B", §4.1): serve the core with the smallest progress."""

from __future__ import annotations

from repro.arbiter.base import BaseArbiter
from repro.common.fifo import BoundedFifo
from repro.common.types import MemRequest


class BalancedArbiter(BaseArbiter):
    """Pick the queued request whose requester has the smallest progress counter.

    Requests served earlier consume the limited MSHR / DRAM resources, so an
    FCFS arbiter lets fast cores starve slow ones.  The balanced policy equalises
    service across cores; ties are broken in FIFO order.
    """

    name = "balanced"

    def select(
        self, queue: BoundedFifo[MemRequest], mshr_lines: set[int], cycle: int
    ) -> int:
        counters = self.progress_counters
        best_index = 0
        best_count = counters[queue.peek(0).core_id]
        for i, req in enumerate(queue):
            count = counters[req.core_id]
            if count < best_count:
                best_count = count
                best_index = i
        return best_index
