"""MSHR-aware arbitration ("MA") and its balanced variant ("BMA"), §4.3.

Priority rules (highest first):

1. requests speculated to be cache hits (their line is in the ``hit_buffer``);
2. requests speculated to be MSHR hits (their line appears in the combined
   MSHR snapshot + unexpired ``sent_reqs`` view);
3. everything else.

Ties are broken FIFO for MA and by the balanced progress counters for BMA.
Prioritising hits and MSHR hits lets more requests enter the cache before an
MSHR-reservation stall and turns would-be misses into merges whose latency
overlaps the DRAM access already in flight.
"""

from __future__ import annotations

from repro.arbiter.base import BaseArbiter
from repro.arbiter.speculation import HitBuffer, SentReqs
from repro.common.fifo import BoundedFifo
from repro.common.types import MemRequest
from repro.config.policies import MshrAwareParams


class MshrAwareArbiter(BaseArbiter):
    """"MA": speculative hit / MSHR-hit prioritisation with FIFO tie-breaking."""

    name = "ma"
    balanced_tiebreak = False

    def __init__(
        self,
        num_cores: int,
        params: MshrAwareParams,
        hit_latency: int,
        mshr_latency: int,
    ) -> None:
        super().__init__(num_cores)
        params.validate()
        self.params = params
        self.hit_buffer = HitBuffer(params.hit_buffer_size)
        self.sent_reqs = SentReqs(
            capacity=params.sent_reqs_size,
            lifetime=max(1, hit_latency + mshr_latency),
        )
        self._last_speculation: dict[int, int] = {}

    # -- selection -------------------------------------------------------------------
    def _rank(self, req: MemRequest, mshr_view: set[int]) -> int:
        if self.hit_buffer.contains(req.line_addr):
            return 0
        if req.line_addr in mshr_view:
            return 1
        return 2

    def select(
        self, queue: BoundedFifo[MemRequest], mshr_lines: set[int], cycle: int
    ) -> int:
        # Step 1 of Fig 5: combine the real-time MSHR snapshot with the
        # not-yet-visible sent requests (masked by their speculated-hit bits).
        mshr_view = mshr_lines | self.sent_reqs.pending_mshr_lines(cycle)

        best_index = 0
        best_rank = 3
        best_counter = 0
        counters = self.progress_counters
        for i, req in enumerate(queue):
            rank = self._rank(req, mshr_view)
            if rank < best_rank:
                best_rank = rank
                best_index = i
                best_counter = counters[req.core_id]
                if rank == 0 and not self.balanced_tiebreak:
                    break  # FIFO tie-break: the first rank-0 request wins
            elif rank == best_rank and self.balanced_tiebreak:
                counter = counters[req.core_id]
                if counter < best_counter:
                    best_counter = counter
                    best_index = i
        chosen = queue.peek(best_index)
        self._last_speculation[chosen.req_id] = best_rank
        return best_index

    def notify_selected(self, req: MemRequest, cycle: int) -> None:
        super().notify_selected(req, cycle)
        rank = self._last_speculation.pop(req.req_id, None)
        if rank is None:
            # The request was selected without a prior ``select`` call (e.g. the
            # queue had a single element); recompute the speculation.
            rank = self._rank(req, self.sent_reqs.pending_mshr_lines(cycle))
        speculated_hit = rank == 0
        if speculated_hit:
            self.stats.predicted_hits += 1
        elif rank == 1:
            self.stats.predicted_mshr_hits += 1
        # Step 4 of Fig 5: the chosen request enters sent_reqs with its
        # speculated-hit bit.
        self.sent_reqs.record(req.line_addr, speculated_hit, cycle)

    # -- feedback ---------------------------------------------------------------------
    def notify_hit(self, line_addr: int, cycle: int) -> None:
        self.hit_buffer.record_hit(line_addr)

    def notify_outcome(self, req: MemRequest, was_hit: bool, was_mshr_hit: bool) -> None:
        rank = None
        # Outcome accounting is best-effort: speculation entries are popped on
        # selection, so only track aggregate accuracy via hit buffer contents.
        predicted_hit = self.hit_buffer.contains(req.line_addr)
        if predicted_hit == was_hit:
            self.stats.prediction_correct += 1
        else:
            self.stats.prediction_wrong += 1
        del rank


class BalancedMshrAwareArbiter(MshrAwareArbiter):
    """"BMA": MA with balanced-progress tie-breaking (the paper's final policy)."""

    name = "bma"
    balanced_tiebreak = True
