"""Interconnect between cores and LLC slices."""

from repro.noc.interconnect import Interconnect

__all__ = ["Interconnect"]
