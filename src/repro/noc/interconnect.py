"""Fixed-latency crossbar between cores and LLC slices.

The interconnect models (1) a fixed request latency from any core to any LLC
slice, (2) a per-slice injection port of limited width with a small staging
queue in front of the slice's request queue (the source of back-pressure that
stalls cores), and (3) the response path back to the cores.  Responses are
delivered with a fixed latency and are never back-pressured, matching the
paper's assumption that DRAM returns are forwarded straight to the requesting
cores (Fig 4, step 4').
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

from repro.common.address import AddressMap
from repro.common.types import MemRequest, MemResponse
from repro.config.system import NoCConfig

#: Depth of the per-slice staging queue between the crossbar and the slice's
#: request queue.  Small by design: once the slice queue and this staging queue
#: are full, cores see back-pressure.
STAGING_DEPTH = 4


class Interconnect:
    """Crossbar connecting ``num_cores`` cores to ``num_slices`` LLC slices."""

    def __init__(
        self,
        config: NoCConfig,
        address_map: AddressMap,
        num_cores: int,
        num_slices: int,
    ) -> None:
        config.validate()
        self.config = config
        self.address_map = address_map
        self.num_cores = num_cores
        self.num_slices = num_slices

        self._req_in_flight: list[tuple[int, int, int, MemRequest]] = []  # (cycle, seq, slice, req)
        self._resp_in_flight: list[tuple[int, int, MemResponse]] = []     # (cycle, seq, resp)
        self._staging: list[deque[MemRequest]] = [deque() for _ in range(num_slices)]
        # Requests in transit or staged per slice, used for O(1) back-pressure checks.
        self._slice_load: list[int] = [0] * num_slices
        self._slice_load_limit = STAGING_DEPTH + config.request_latency
        self._seq = 0

        # statistics
        self.requests_sent = 0
        self.responses_sent = 0
        self.backpressure_rejects = 0

    # -- request path ------------------------------------------------------------------
    def slice_of(self, addr: int) -> int:
        return self.address_map.slice_of(addr)

    def can_accept_request(self, addr: int) -> bool:
        """True when a request to ``addr`` can be injected this cycle."""

        slice_id = self.slice_of(addr)
        if self._slice_load[slice_id] >= self._slice_load_limit:
            self.backpressure_rejects += 1
            return False
        return True

    def send_request(self, req: MemRequest, cycle: int) -> bool:
        """Inject a request; returns False under back-pressure."""

        slice_id = self.address_map.slice_of(req.addr)
        if self._slice_load[slice_id] >= self._slice_load_limit:
            self.backpressure_rejects += 1
            return False
        deliver = cycle + self.config.request_latency
        heapq.heappush(self._req_in_flight, (deliver, self._seq, slice_id, req))
        self._slice_load[slice_id] += 1
        self._seq += 1
        self.requests_sent += 1
        return True

    # -- response path ------------------------------------------------------------------
    def send_response(self, resp: MemResponse, cycle: int, extra_delay: int = 0) -> None:
        """Send a response back to its core after the NoC response latency."""

        deliver = cycle + self.config.response_latency + extra_delay
        heapq.heappush(self._resp_in_flight, (deliver, self._seq, resp))
        self._seq += 1
        self.responses_sent += 1

    # -- per-cycle advance ----------------------------------------------------------------
    def tick(
        self,
        cycle: int,
        slice_sinks: list[Callable[[MemRequest, int], bool]],
        core_sinks: list[Callable[[MemResponse, int], None]],
    ) -> None:
        """Deliver due requests into slices and due responses into cores.

        ``slice_sinks[i]`` pushes a request into slice ``i``'s request queue and
        returns False when that queue is full (the request then waits in the
        staging queue); ``core_sinks[i]`` delivers a response to core ``i``.
        """

        # Requests whose transit delay elapsed move into the staging queues.
        while self._req_in_flight and self._req_in_flight[0][0] <= cycle:
            _, _, slice_id, req = heapq.heappop(self._req_in_flight)
            self._staging[slice_id].append(req)

        # Each slice port accepts a limited number of staged requests per cycle.
        for slice_id, staging in enumerate(self._staging):
            if not staging:
                continue
            accepted = 0
            sink = slice_sinks[slice_id]
            while staging and accepted < self.config.slice_port_width:
                req = staging[0]
                if not sink(req, cycle):
                    break
                staging.popleft()
                self._slice_load[slice_id] -= 1
                accepted += 1

        # Responses are never back-pressured.
        while self._resp_in_flight and self._resp_in_flight[0][0] <= cycle:
            _, _, resp = heapq.heappop(self._resp_in_flight)
            core_sinks[resp.core_id](resp, cycle)

    # -- engine support ----------------------------------------------------------------------
    @property
    def in_flight_requests(self) -> int:
        return len(self._req_in_flight)

    @property
    def in_flight_responses(self) -> int:
        return len(self._resp_in_flight)

    @property
    def staged_requests(self) -> int:
        return sum(len(staging) for staging in self._staging)

    def has_work(self) -> bool:
        return bool(self._req_in_flight or self._resp_in_flight) or any(self._staging)

    def next_event_cycle(self) -> int | None:
        candidates = []
        if self._req_in_flight:
            candidates.append(self._req_in_flight[0][0])
        if self._resp_in_flight:
            candidates.append(self._resp_in_flight[0][0])
        if any(self._staging):
            return None  # staged requests retry every cycle (waiting on queue space)
        return min(candidates) if candidates else None
