"""DRAM timing parameters converted from DRAM-clock cycles to core cycles."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.config.system import DramConfig


@dataclass(frozen=True, slots=True)
class DramTiming:
    """All DRAM timings in *core* cycles (integers, rounded up).

    The conversion factor is ``core_freq / dram_io_freq``; rounding up keeps the
    model conservative (never faster than the real device).
    """

    tCL: int
    tRCD: int
    tRP: int
    tRAS: int
    tRC: int
    tCCD: int
    tRRD: int
    tWR: int
    tBURST: int            # data-bus occupancy of one 64-byte transfer
    tOVERHEAD: int         # controller + PHY latency per access (no bus occupancy)
    core_cycles_per_dram_cycle: float

    @classmethod
    def from_config(cls, dram: DramConfig, core_frequency_ghz: float) -> "DramTiming":
        if core_frequency_ghz <= 0:
            raise ConfigError("core frequency must be positive")
        dram.validate()
        ratio = (core_frequency_ghz * 1e9) / (dram.io_freq_mhz * 1e6)

        def cvt(dram_cycles: int) -> int:
            return max(1, math.ceil(dram_cycles * ratio))

        # One 64-byte line needs line_bytes / (channel_width/8) beats; DDR transfers
        # two beats per clock.
        beats = 64 // (dram.channel_width_bits // 8)
        burst_clocks = max(1, beats // 2)
        overhead_cycles = math.ceil(dram.controller_overhead_ns * core_frequency_ghz)
        return cls(
            tCL=cvt(dram.tCL),
            tRCD=cvt(dram.tRCD),
            tRP=cvt(dram.tRP),
            tRAS=cvt(dram.tRAS),
            tRC=cvt(dram.tRC),
            tCCD=cvt(dram.tCCD),
            tRRD=cvt(dram.tRRD),
            tWR=cvt(dram.tWR),
            tBURST=cvt(burst_clocks),
            tOVERHEAD=overhead_cycles,
            core_cycles_per_dram_cycle=ratio,
        )

    @property
    def row_hit_latency(self) -> int:
        """Core cycles from command issue to last data beat for an open-row access."""

        return self.tOVERHEAD + self.tCL + self.tBURST

    @property
    def row_closed_latency(self) -> int:
        return self.tOVERHEAD + self.tRCD + self.tCL + self.tBURST

    @property
    def row_conflict_latency(self) -> int:
        return self.tOVERHEAD + self.tRP + self.tRCD + self.tCL + self.tBURST
