"""Multi-channel DRAM system facade used by the LLC."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from repro.common.address import DramAddressMap
from repro.common.mathutils import safe_div
from repro.config.system import DramConfig
from repro.dram.channel import DramChannel, DramTransaction
from repro.dram.timing import DramTiming


@dataclass(frozen=True, slots=True)
class DramStats:
    """Aggregate DRAM statistics for one simulation."""

    reads: int
    writes: int
    row_hits: int
    row_misses: int
    row_conflicts: int
    bytes_transferred: int
    busy_cycles: int
    avg_queue_wait: float

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        return safe_div(self.row_hits, self.accesses)

    def bandwidth_gbps(self, cycles: int, frequency_ghz: float) -> float:
        """Achieved bandwidth over a run of ``cycles`` core cycles."""

        seconds = safe_div(cycles, frequency_ghz * 1e9)
        return safe_div(self.bytes_transferred, seconds) / 1e9

    # -- serialization (sweep result store) --------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping of the raw counters; round-trips via :meth:`from_dict`."""

        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "DramStats":
        return cls(**{f.name: data[f.name] for f in fields(cls)})


class DramSystem:
    """All channels plus the address interleaving map."""

    def __init__(self, config: DramConfig, core_frequency_ghz: float, line_size: int = 64):
        config.validate()
        self.config = config
        self.timing = DramTiming.from_config(config, core_frequency_ghz)
        self.line_size = line_size
        self.address_map = DramAddressMap(
            line_size=line_size,
            num_channels=config.num_channels,
            num_ranks=config.num_ranks,
            num_banks=config.num_banks,
            row_bytes=config.row_bytes,
        )
        self.channels = [
            DramChannel(
                channel_id=c,
                timing=self.timing,
                num_ranks=config.num_ranks,
                num_banks=config.num_banks,
                queue_depth=config.queue_depth,
                line_size=line_size,
            )
            for c in range(config.num_channels)
        ]

    # -- request interface -----------------------------------------------------------
    def can_accept(self, line_addr: int) -> bool:
        """True when the owning channel's controller queue has room."""

        return self.channels[self.address_map.channel_of(line_addr)].can_accept

    def enqueue(self, line_addr: int, is_write: bool, payload: Any, cycle: int) -> bool:
        """Enqueue a line access; returns False when the channel queue is full."""

        channel_id, rank, bank, row = self.address_map.decompose(line_addr)
        txn = DramTransaction(
            line_addr=line_addr,
            rank=rank,
            bank=bank,
            row=row,
            is_write=is_write,
            payload=payload,
            enqueue_cycle=cycle,
        )
        return self.channels[channel_id].enqueue(txn)

    def tick(self, cycle: int) -> list[tuple[Any, int, bool]]:
        """Advance all channels; return completed (payload, line_addr, is_write)."""

        completed: list[tuple[Any, int, bool]] = []
        for channel in self.channels:
            if channel.has_work:
                completed.extend(channel.tick(cycle))
        return completed

    def has_work(self) -> bool:
        return any(channel.has_work for channel in self.channels)

    def next_event_cycle(self) -> int | None:
        events = [c.next_event_cycle() for c in self.channels]
        events = [e for e in events if e is not None]
        return min(events) if events else None

    # -- statistics --------------------------------------------------------------------
    def stats(self) -> DramStats:
        reads = sum(c.reads for c in self.channels)
        writes = sum(c.writes for c in self.channels)
        accesses = reads + writes
        return DramStats(
            reads=reads,
            writes=writes,
            row_hits=sum(c.row_hits for c in self.channels),
            row_misses=sum(c.row_misses for c in self.channels),
            row_conflicts=sum(c.row_conflicts for c in self.channels),
            bytes_transferred=sum(c.bytes_transferred for c in self.channels),
            busy_cycles=sum(c.busy_cycles for c in self.channels),
            avg_queue_wait=safe_div(sum(c.total_queue_wait for c in self.channels), accesses),
        )
