"""Per-bank state: open row and availability."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class BankState:
    """State of one DRAM bank (within one rank of one channel)."""

    open_row: int | None = None
    #: Earliest core cycle at which the bank can accept a new column/activate command.
    ready_cycle: int = 0
    #: Statistics.
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0

    def classify(self, row: int) -> str:
        """Classify an access to ``row``: 'hit', 'closed' or 'conflict'."""

        if self.open_row is None:
            return "closed"
        if self.open_row == row:
            return "hit"
        return "conflict"


@dataclass(slots=True)
class BankArray:
    """All banks of one channel, addressed by (rank, bank)."""

    num_ranks: int
    num_banks: int
    banks: dict[tuple[int, int], BankState] = field(default_factory=dict)

    def get(self, rank: int, bank: int) -> BankState:
        key = (rank, bank)
        state = self.banks.get(key)
        if state is None:
            state = BankState()
            self.banks[key] = state
        return state

    def all_banks(self) -> list[BankState]:
        return list(self.banks.values())
