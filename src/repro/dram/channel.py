"""One DRAM channel: bounded controller queue, FR-FCFS scheduling, bank timing."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.dram.bank import BankArray
from repro.dram.timing import DramTiming


@dataclass(slots=True)
class DramTransaction:
    """A queued DRAM access (already at line granularity)."""

    line_addr: int
    rank: int
    bank: int
    row: int
    is_write: bool
    payload: Any
    enqueue_cycle: int


@dataclass(slots=True)
class DramChannel:
    """One channel with its own controller queue, banks and data bus."""

    channel_id: int
    timing: DramTiming
    num_ranks: int
    num_banks: int
    queue_depth: int
    line_size: int = 64

    queue: list[DramTransaction] = field(default_factory=list)
    banks: BankArray = field(init=False)
    bus_free_cycle: int = 0
    #: min-heap of (complete_cycle, sequence, transaction) for in-flight accesses.
    in_flight: list[tuple[int, int, DramTransaction]] = field(default_factory=list)
    _seq: int = 0

    # statistics
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    busy_cycles: int = 0
    bytes_transferred: int = 0
    total_queue_wait: int = 0

    def __post_init__(self) -> None:
        self.banks = BankArray(num_ranks=self.num_ranks, num_banks=self.num_banks)

    # -- queue management ---------------------------------------------------------
    @property
    def can_accept(self) -> bool:
        return len(self.queue) < self.queue_depth

    @property
    def has_work(self) -> bool:
        return bool(self.queue) or bool(self.in_flight)

    def enqueue(self, txn: DramTransaction) -> bool:
        if not self.can_accept:
            return False
        self.queue.append(txn)
        return True

    def next_event_cycle(self) -> int | None:
        """Earliest cycle at which this channel needs to be ticked again."""

        candidates = []
        if self.in_flight:
            candidates.append(self.in_flight[0][0])
        if self.queue:
            # A queued transaction can potentially issue as soon as the bus frees.
            candidates.append(self.bus_free_cycle)
        if not candidates:
            return None
        return min(candidates)

    # -- scheduling ------------------------------------------------------------------
    def _pick_fr_fcfs(self, cycle: int) -> int:
        """FR-FCFS: oldest row-buffer hit first, otherwise the oldest request."""

        best_hit = -1
        for i, txn in enumerate(self.queue):
            bank = self.banks.get(txn.rank, txn.bank)
            if bank.open_row == txn.row and bank.ready_cycle <= cycle:
                best_hit = i
                break
        if best_hit >= 0:
            return best_hit
        return 0

    def tick(self, cycle: int) -> list[tuple[Any, int, bool]]:
        """Advance the channel; return completed (payload, line_addr, is_write) tuples."""

        completed: list[tuple[Any, int, bool]] = []
        while self.in_flight and self.in_flight[0][0] <= cycle:
            _, _, txn = heapq.heappop(self.in_flight)
            completed.append((txn.payload, txn.line_addr, txn.is_write))

        # Issue at most one new transaction per cycle.  The issue window is sized
        # so that column/activate latencies fully overlap with earlier data
        # bursts (keeping the data bus at peak utilisation) while still leaving
        # most of the backlog in the queue where FR-FCFS can reorder it.
        if self.queue and len(self.in_flight) < self._pipeline_depth():
            idx = self._pick_fr_fcfs(cycle)
            txn = self.queue.pop(idx)
            self._issue(txn, cycle)
        return completed

    def _pipeline_depth(self) -> int:
        """Number of overlapping accesses needed to hide the worst-case latency."""

        timing = self.timing
        return max(4, -(-timing.row_conflict_latency // timing.tBURST) + 1)

    def _issue(self, txn: DramTransaction, cycle: int) -> None:
        timing = self.timing
        bank = self.banks.get(txn.rank, txn.bank)
        kind = bank.classify(txn.row)

        # ``bank.ready_cycle`` is the earliest cycle the bank can accept its next
        # command sequence (PRE/ACT/CAS as needed).  Column-to-column spacing on
        # the same open row is tCCD; a precharge or activate pushes the next
        # command further out.
        command = max(cycle, bank.ready_cycle)
        overhead = timing.tOVERHEAD
        if kind == "hit":
            data_ready = command + overhead + timing.tCL + timing.tBURST
            bank.ready_cycle = command + timing.tCCD
            bank.row_hits += 1
            self.row_hits += 1
        elif kind == "closed":
            data_ready = command + overhead + timing.tRCD + timing.tCL + timing.tBURST
            bank.ready_cycle = command + timing.tRCD + timing.tCCD
            bank.row_misses += 1
            bank.activations += 1
            self.row_misses += 1
        else:
            data_ready = command + overhead + timing.tRP + timing.tRCD + timing.tCL + timing.tBURST
            bank.ready_cycle = command + timing.tRP + timing.tRCD + timing.tCCD
            bank.row_conflicts += 1
            bank.activations += 1
            self.row_conflicts += 1

        # Data bursts on the shared bus cannot overlap: the burst of this access
        # ends no earlier than one burst time after the previous one ended.  CAS
        # and activate latencies overlap with earlier bursts (including on the
        # same bank, where only tCCD separates column commands), which is what
        # gives the channel its pipelined peak bandwidth.
        complete = max(data_ready, self.bus_free_cycle + timing.tBURST)
        bank.open_row = txn.row
        if txn.is_write:
            # Write recovery holds the bank after the data burst lands.
            bank.ready_cycle = complete + timing.tWR
        self.bus_free_cycle = complete
        self.busy_cycles += timing.tBURST

        if txn.is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.bytes_transferred += self.line_size
        self.total_queue_wait += max(0, cycle - txn.enqueue_cycle)

        heapq.heappush(self.in_flight, (complete, self._seq, txn))
        self._seq += 1
