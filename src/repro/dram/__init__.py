"""DRAM subsystem: a light-weight Ramulator2-style DDR5 timing model.

The model keeps the parts of DRAM behaviour that matter to LLC policy research
(bank-level parallelism, row-buffer hits/misses/conflicts, per-channel data-bus
bandwidth, FR-FCFS scheduling, bounded controller queues) and drops command-bus
micro-details.  DRAM-clock timing parameters from :class:`repro.config.DramConfig`
are converted to core cycles once at construction.
"""

from repro.dram.bank import BankState
from repro.dram.channel import DramChannel
from repro.dram.system import DramStats, DramSystem
from repro.dram.timing import DramTiming

__all__ = ["BankState", "DramChannel", "DramStats", "DramSystem", "DramTiming"]
