"""Forward-progress tracking and livelock detection for the cycle engine.

A simulation that can no longer make progress used to burn silently to the
20M-cycle engine guard (the cobrra drain livelock was found exactly this way:
every thread block complete, zero outstanding core requests, yet
``SimulatedSystem.finished()`` never went true because below-threshold
responses starved in the LLC response queues).  This module gives the engine a
cheap, deterministic watchdog:

* :func:`progress_signature` samples one monotone counter per kind of forward
  progress in every component -- thread-block retirements, core issues, NoC
  flit injections, LLC transactions (hits/misses/MSHR merges/allocations/
  storage fills), DRAM bursts and arbiter request selections.  Pure stall
  counters (``stall_cycles``, ``busy_cycles``, idle/mem-stall cycles, port
  arbitration calls) are deliberately excluded: they keep incrementing in a
  livelocked system and would mask the hang.
* :class:`LivenessWatchdog` compares consecutive signatures at the engine's
  finish-check cadence and raises :class:`~repro.common.errors.LivelockError`
  once ``patience`` cycles pass without any counter moving -- long before the
  cycle guard.
* :class:`StallReport` is the structured payload carried by the error: queue
  occupancies, MSHR state and arbiter grant counts per slice, plus the first
  stuck cycle, rendered into the report ``llamcat run/sweep`` print.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import LivelockError, SimulationError

if TYPE_CHECKING:
    from repro.sim.system import SimulatedSystem

#: Default number of cycles without forward progress before the watchdog
#: fires.  The longest legitimate quiet stretch in any component is a DRAM
#: round-trip (hundreds of cycles), so this is conservative by two orders of
#: magnitude while still firing ~200x earlier than the 20M-cycle guard.
DEFAULT_PATIENCE_CYCLES = 100_000


class TerminationStatus(str, enum.Enum):
    """How a simulation run ended (serialized into :class:`SimResult`)."""

    COMPLETED = "completed"      # drained normally
    MAX_CYCLES = "max_cycles"    # hit the engine cycle guard while still moving
    LIVELOCK = "livelock"        # the no-progress watchdog fired


@dataclass(frozen=True, slots=True)
class LivenessConfig:
    """Watchdog knobs handed to :class:`~repro.sim.engine.SimulationEngine`."""

    patience: int = DEFAULT_PATIENCE_CYCLES
    enabled: bool = True

    def validate(self) -> "LivenessConfig":
        if self.patience <= 0:
            raise SimulationError("liveness patience must be positive")
        return self


def progress_signature(system: "SimulatedSystem") -> tuple[int, ...]:
    """Tuple of monotone progress counters across every component.

    Two equal signatures mean *nothing* moved in between: no thread block was
    dispatched or retired, no core issued or computed, no flit entered the
    NoC, no LLC slice served a request or wrote a fill, and no DRAM burst
    completed.  Counters that also increment while stuck (stall/busy/idle
    cycles, storage-port arbitration grants) must never be added here.
    """

    scheduler = system.scheduler
    sig: list[int] = [scheduler.dispatched, scheduler.completed]
    for core in system.cores:
        sig.append(core.stat_issued_requests)
        sig.append(core.stat_completed_blocks)
        sig.append(core.stat_l1_hits)
        sig.append(core.stat_compute_cycles)
    sig.append(system.noc.requests_sent)
    sig.append(system.noc.responses_sent)
    for llc_slice in system.llc.slices:
        sig.append(llc_slice.hits)
        sig.append(llc_slice.misses)
        sig.append(llc_slice.mshr_merges)
        sig.append(llc_slice.mshr_allocations)
        sig.append(llc_slice.fills_written)
        sig.append(llc_slice.requests_accepted)
        sig.append(llc_slice.dram_reads_issued)
        sig.append(llc_slice.dram_writes_issued)
        sig.append(llc_slice.writebacks)
        sig.append(llc_slice.arbiter.stats.selections)
    for channel in system.dram.channels:
        sig.append(channel.reads)
        sig.append(channel.writes)
    return tuple(sig)


@dataclass(frozen=True, slots=True)
class SliceStall:
    """Snapshot of one LLC slice at the moment the watchdog fired."""

    slice_id: int
    request_queue: int
    request_queue_capacity: int
    response_queue: int
    response_queue_capacity: int
    mshr_occupancy: int
    mshr_stage: int
    pending_fills: int
    dram_backlog: int
    stalled: bool
    last_activity_cycle: int
    selections: int
    response_priority_grants: int
    request_priority_grants: int
    default_priority_grants: int
    arbitration_calls: int

    def render(self) -> str:
        return (
            f"slice {self.slice_id}: "
            f"reqq {self.request_queue}/{self.request_queue_capacity} "
            f"respq {self.response_queue}/{self.response_queue_capacity} "
            f"mshr {self.mshr_occupancy} stage {self.mshr_stage} "
            f"pending-fills {self.pending_fills} dram-backlog {self.dram_backlog} "
            f"stalled={self.stalled} last-activity={self.last_activity_cycle} | "
            f"arbiter: {self.selections} selections, "
            f"grants resp={self.response_priority_grants} "
            f"req={self.request_priority_grants} "
            f"default={self.default_priority_grants} "
            f"of {self.arbitration_calls} calls"
        )


@dataclass(frozen=True, slots=True)
class StallReport:
    """Component-level stall state carried by :class:`LivelockError`."""

    cycle: int
    first_stuck_cycle: int
    patience: int
    blocks_completed: int
    blocks_total: int
    core_outstanding: int
    noc_requests_in_flight: int
    noc_responses_in_flight: int
    noc_staged: int
    dram_busy: bool
    slices: tuple[SliceStall, ...]

    def render(self) -> str:
        """Human-readable stall report (printed by ``llamcat run/sweep``)."""

        lines = [
            f"no forward progress since cycle {self.first_stuck_cycle} "
            f"(watchdog fired at cycle {self.cycle}, patience {self.patience})",
            f"thread blocks {self.blocks_completed}/{self.blocks_total} complete, "
            f"{self.core_outstanding} core requests outstanding",
            f"NoC: {self.noc_requests_in_flight} requests / "
            f"{self.noc_responses_in_flight} responses in flight, "
            f"{self.noc_staged} staged; DRAM {'busy' if self.dram_busy else 'idle'}",
        ]
        lines.extend(s.render() for s in self.slices)
        return "\n".join(lines)


def build_stall_report(
    system: "SimulatedSystem", cycle: int, first_stuck_cycle: int, patience: int
) -> StallReport:
    """Snapshot every component of ``system`` into a :class:`StallReport`."""

    slices = []
    for llc_slice in system.llc.slices:
        arbiter = llc_slice.arbiter
        slices.append(
            SliceStall(
                slice_id=llc_slice.slice_id,
                request_queue=len(llc_slice.request_queue),
                request_queue_capacity=llc_slice.request_queue.capacity,
                response_queue=len(llc_slice.response_queue),
                response_queue_capacity=llc_slice.response_queue.capacity,
                mshr_occupancy=llc_slice.mshr.occupancy,
                mshr_stage=len(llc_slice._mshr_stage),
                pending_fills=len(llc_slice._pending_fills),
                dram_backlog=len(llc_slice._dram_backlog),
                stalled=llc_slice.stalled,
                last_activity_cycle=llc_slice.last_activity_cycle,
                selections=arbiter.stats.selections,
                response_priority_grants=arbiter.response_priority_grants,
                request_priority_grants=arbiter.request_priority_grants,
                default_priority_grants=arbiter.default_priority_grants,
                arbitration_calls=arbiter.arbitration_calls,
            )
        )
    return StallReport(
        cycle=cycle,
        first_stuck_cycle=first_stuck_cycle,
        patience=patience,
        blocks_completed=system.scheduler.completed,
        blocks_total=system.scheduler.total_blocks,
        core_outstanding=sum(c.outstanding_requests for c in system.cores),
        noc_requests_in_flight=system.noc.in_flight_requests,
        noc_responses_in_flight=system.noc.in_flight_responses,
        noc_staged=system.noc.staged_requests,
        dram_busy=system.dram.has_work(),
        slices=tuple(slices),
    )


class LivenessWatchdog:
    """Raises :class:`LivelockError` after ``patience`` cycles of no progress.

    Entirely deterministic: driven by the cycle counter and the component
    progress counters, never by wall-clock time.
    """

    def __init__(self, system: "SimulatedSystem", config: LivenessConfig) -> None:
        config.validate()
        self.system = system
        self.config = config
        self._signature: tuple[int, ...] | None = None
        self.last_progress_cycle = 0

    def observe(self, cycle: int) -> None:
        """Sample the progress signature; raise once patience is exhausted."""

        if not self.config.enabled:
            return
        signature = progress_signature(self.system)
        if signature != self._signature:
            self._signature = signature
            self.last_progress_cycle = cycle
            return
        if cycle - self.last_progress_cycle < self.config.patience:
            return
        report = build_stall_report(
            self.system,
            cycle=cycle,
            first_stuck_cycle=self.last_progress_cycle,
            patience=self.config.patience,
        )
        raise LivelockError(
            f"livelock detected: {report.render()}",
            report=report,
        )
