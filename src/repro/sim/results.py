"""Simulation results: the statistics reported throughout the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar

from repro.common.mathutils import safe_div
from repro.dram.system import DramStats
from repro.llc.llc import LLCStats


@dataclass(frozen=True, slots=True)
class CoreResult:
    """Per-core summary."""

    core_id: int
    issued_requests: int
    l1_hits: int
    mem_stall_cycles: int
    idle_cycles: int
    active_cycles: int
    completed_blocks: int
    final_max_running_blocks: int

    def to_dict(self) -> dict:
        """JSON-ready mapping of the counters; round-trips via :meth:`from_dict`."""

        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CoreResult":
        return cls(**{f.name: data[f.name] for f in fields(cls)})


@dataclass(frozen=True, slots=True)
class SimResult:
    """Complete result of one simulation run.

    The fields mirror the metrics of Fig 8: execution time (cycles), L2 hit
    rate, MSHR hit rate, MSHR entry utilisation and DRAM bandwidth, plus enough
    raw counters to derive anything else the experiments need.
    """

    #: Result-kind tag used by the sweep store to pick the right deserializer.
    result_kind: ClassVar[str] = "sim"

    label: str
    workload: str
    cycles: int
    frequency_ghz: float
    llc: LLCStats
    dram: DramStats
    cores: tuple[CoreResult, ...] = ()
    thread_blocks: int = 0
    total_requests_issued: int = 0
    noc_requests: int = 0
    noc_responses: int = 0
    #: How the run terminated: "completed", "max_cycles" or "livelock" (the
    #: :class:`~repro.sim.liveness.TerminationStatus` values).  Anything other
    #: than "completed" means the counters describe a truncated run.
    status: str = "completed"
    meta: dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    # -- headline metrics ------------------------------------------------------------------
    @property
    def execution_time_us(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e3)

    @property
    def l2_hit_rate(self) -> float:
        return self.llc.hit_rate

    @property
    def mshr_hit_rate(self) -> float:
        return self.llc.mshr_hit_rate

    @property
    def mshr_entry_utilization(self) -> float:
        return self.llc.mshr_entry_utilization

    @property
    def dram_bandwidth_gbps(self) -> float:
        return self.dram.bandwidth_gbps(self.cycles, self.frequency_ghz)

    @property
    def dram_accesses(self) -> int:
        return self.dram.accesses

    @property
    def cache_stall_ratio(self) -> float:
        """t_cs of Table 3, averaged over slices and the whole run."""

        slices = max(1, self.meta.get("num_slices", 1))
        return safe_div(self.llc.stall_cycles, self.cycles * slices)

    @property
    def requests_per_cycle(self) -> float:
        return safe_div(self.llc.accesses, self.cycles)

    def speedup_over(self, baseline: "SimResult") -> float:
        """Speedup of this run relative to ``baseline`` (same workload)."""

        return baseline.cycles / self.cycles

    # -- formatting ---------------------------------------------------------------------------
    def summary(self) -> str:
        return (
            f"[{self.label}] {self.workload}: {self.cycles} cycles "
            f"({self.execution_time_us:.1f} us), L2 hit {self.l2_hit_rate:.2%}, "
            f"MSHR hit {self.mshr_hit_rate:.2%}, MSHR util {self.mshr_entry_utilization:.2f}, "
            f"DRAM {self.dram_bandwidth_gbps:.1f} GB/s, stall ratio {self.cache_stall_ratio:.2%}"
        )

    def headline_metrics(self) -> dict:
        """Flat dictionary of the headline metrics (for tables / JSON dumps)."""

        return {
            "label": self.label,
            "workload": self.workload,
            "cycles": self.cycles,
            "execution_time_us": self.execution_time_us,
            "l2_hit_rate": self.l2_hit_rate,
            "mshr_hit_rate": self.mshr_hit_rate,
            "mshr_entry_utilization": self.mshr_entry_utilization,
            "dram_bandwidth_gbps": self.dram_bandwidth_gbps,
            "dram_accesses": self.dram_accesses,
            "cache_stall_ratio": self.cache_stall_ratio,
            "thread_blocks": self.thread_blocks,
        }

    # -- serialization (sweep result store) ---------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready nested mapping that round-trips via :meth:`from_dict`.

        The raw counters are authoritative; the derived headline metrics ride
        along under ``"metrics"`` for human consumers and are ignored (and
        recomputed on demand) when a result is rebuilt.
        """

        return {
            "label": self.label,
            "workload": self.workload,
            "cycles": self.cycles,
            "frequency_ghz": self.frequency_ghz,
            "llc": self.llc.to_dict(),
            "dram": self.dram.to_dict(),
            "cores": [core.to_dict() for core in self.cores],
            "thread_blocks": self.thread_blocks,
            "total_requests_issued": self.total_requests_issued,
            "noc_requests": self.noc_requests,
            "noc_responses": self.noc_responses,
            "status": self.status,
            "meta": dict(self.meta),
            # Derived ride-along block for humans/dashboards; recomputed from
            # the component stats on load, so from_dict never reads it.
            "metrics": self.headline_metrics(),  # repro: noqa[SER001]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        return cls(
            label=data["label"],
            workload=data["workload"],
            cycles=data["cycles"],
            frequency_ghz=data["frequency_ghz"],
            llc=LLCStats.from_dict(data["llc"]),
            dram=DramStats.from_dict(data["dram"]),
            cores=tuple(CoreResult.from_dict(core) for core in data["cores"]),
            thread_blocks=data["thread_blocks"],
            total_requests_issued=data["total_requests_issued"],
            noc_requests=data["noc_requests"],
            noc_responses=data["noc_responses"],
            # Pre-PR-9 stores have no termination status; those runs could
            # only have been written after a successful drain.
            status=data.get("status", "completed"),
            meta=dict(data["meta"]),
        )
