"""Top-level simulation API.

:func:`simulate` is the single entry point most users need: give it a system, a
policy and either a workload (a trace is generated via the dataflow mapper) or
a ready-made trace, and it returns a :class:`SimResult` with every metric the
paper reports.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.config.policies import PolicyConfig
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.sim.engine import DEFAULT_MAX_CYCLES, SimulationEngine
from repro.sim.liveness import LivenessConfig
from repro.sim.results import CoreResult, SimResult
from repro.sim.system import SimulatedSystem
from repro.trace.generator import generate_trace
from repro.trace.threadblock import Trace


class Simulator:
    """Object-oriented wrapper around one simulation run."""

    def __init__(
        self,
        system: SystemConfig,
        policy: PolicyConfig,
        trace: Trace,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        label: str | None = None,
        workload_name: str | None = None,
        liveness: LivenessConfig | None = None,
    ) -> None:
        self.system_config = system
        self.policy = policy
        self.trace = trace
        self.max_cycles = max_cycles
        self.liveness = liveness
        self.label = label if label is not None else policy.label
        self.workload_name = workload_name or trace.name
        self.system = SimulatedSystem(system, policy, trace)

    def run(self, raise_on_stall: bool = True) -> SimResult:
        """Run to completion.

        With ``raise_on_stall=False`` a livelocked or guard-limited run
        returns a truncated :class:`SimResult` whose ``status`` records the
        termination kind instead of raising.
        """

        engine = SimulationEngine(
            self.system, max_cycles=self.max_cycles, liveness=self.liveness
        )
        report = engine.run(raise_on_stall=raise_on_stall)
        return self._collect(report.cycles, status=report.status.value)

    # -- result assembly ----------------------------------------------------------------------
    def _collect(self, cycles: int, status: str = "completed") -> SimResult:
        system = self.system
        cfg = self.system_config
        core_results = tuple(
            CoreResult(
                core_id=core.core_id,
                issued_requests=core.stat_issued_requests,
                l1_hits=core.stat_l1_hits,
                mem_stall_cycles=core.stat_mem_stall_cycles,
                idle_cycles=core.stat_idle_cycles,
                active_cycles=core.stat_active_cycles,
                completed_blocks=core.stat_completed_blocks,
                final_max_running_blocks=core.max_running_blocks,
            )
            for core in system.cores
        )
        return SimResult(
            label=self.label,
            workload=self.workload_name,
            cycles=cycles,
            frequency_ghz=cfg.frequency_ghz,
            llc=system.llc.stats(cycles),
            dram=system.dram.stats(),
            cores=core_results,
            thread_blocks=system.scheduler.total_blocks,
            total_requests_issued=sum(c.stat_issued_requests for c in system.cores),
            noc_requests=system.noc.requests_sent,
            noc_responses=system.noc.responses_sent,
            status=status,
            meta={
                "num_slices": cfg.l2.num_slices,
                "num_cores": cfg.core.num_cores,
                "l2_bytes": cfg.l2.size_bytes,
                "policy": self.policy.label,
                "throttle": self.policy.throttle.value,
                "arbitration": self.policy.arbitration.value,
            },
        )


def simulate(
    system: SystemConfig,
    policy: PolicyConfig,
    workload: WorkloadConfig | None = None,
    trace: Trace | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    label: str | None = None,
    liveness: LivenessConfig | None = None,
) -> SimResult:
    """Run one simulation and return its :class:`SimResult`.

    Exactly one of ``workload`` and ``trace`` must be provided; passing a
    workload generates the trace through the dataflow mapper (Fig 6 flow).
    """

    if (workload is None) == (trace is None):
        raise ConfigError("provide exactly one of `workload` or `trace`")
    if trace is None:
        assert workload is not None
        trace = generate_trace(workload, system)
        workload_name = workload.name
    else:
        workload_name = trace.name
    sim = Simulator(
        system,
        policy,
        trace,
        max_cycles=max_cycles,
        label=label,
        workload_name=workload_name,
        liveness=liveness,
    )
    return sim.run()
