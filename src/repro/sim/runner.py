"""Experiment runner: policy sweeps, trace caching and speedup comparisons."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.mathutils import geomean
from repro.config.policies import PolicyConfig
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.ordering import ThreadBlockOrdering
from repro.sim.results import SimResult
from repro.sim.simulator import simulate
from repro.trace.generator import generate_trace
from repro.trace.threadblock import Trace

# ---------------------------------------------------------------------------------
# trace cache: the trace depends only on the workload shape, the line size, the
# mapper constraints and the dispatch ordering, so it is shared across every
# policy / cache-size point of an experiment (regenerating it is the most
# expensive non-simulation step).  Traces for long sequences are large, so the
# cache is a bounded LRU rather than an ever-growing dict.
# ---------------------------------------------------------------------------------

#: Most-recently-used traces kept alive; a full figure sweep touches well under
#: this many distinct (workload, ordering, constraints) combinations.
TRACE_CACHE_MAX_ENTRIES = 32

_TRACE_CACHE: OrderedDict[tuple, Trace] = OrderedDict()


def _trace_key(
    workload: WorkloadConfig,
    system: SystemConfig,
    ordering: ThreadBlockOrdering,
    constraints: DataflowConstraints | None,
) -> tuple:
    s = workload.shape
    return (
        workload.name,
        workload.operator.value,
        workload.element_bytes,
        s.num_kv_heads,
        s.group_size,
        s.head_dim,
        s.seq_len,
        system.l2.line_size,
        system.core.vector_lanes,
        ordering.value,
        constraints,
    )


def cached_trace(
    workload: WorkloadConfig,
    system: SystemConfig,
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
    constraints: DataflowConstraints | None = None,
) -> Trace:
    """Generate (or reuse) the trace for a workload/system/constraints tuple."""

    key = _trace_key(workload, system, ordering, constraints)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = generate_trace(workload, system, constraints=constraints, ordering=ordering)
        _TRACE_CACHE[key] = trace
        while len(_TRACE_CACHE) > TRACE_CACHE_MAX_ENTRIES:
            _TRACE_CACHE.popitem(last=False)
    else:
        _TRACE_CACHE.move_to_end(key)
    return trace


def trace_cache_size() -> int:
    return len(_TRACE_CACHE)


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


# ---------------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------------


def run_policy(
    system: SystemConfig,
    workload: WorkloadConfig,
    policy: PolicyConfig,
    label: str | None = None,
    max_cycles: int | None = None,
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
    constraints: DataflowConstraints | None = None,
) -> SimResult:
    """Simulate one (system, workload, policy) point, reusing cached traces."""

    trace = cached_trace(workload, system, ordering, constraints)
    kwargs = {}
    if max_cycles is not None:
        kwargs["max_cycles"] = max_cycles
    return simulate(system, policy, trace=trace, label=label, **kwargs)


@dataclass(slots=True)
class PolicyComparison:
    """Results of several policies on the same workload, with speedups."""

    workload: str
    baseline_label: str
    results: dict[str, SimResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SimResult:
        return self.results[self.baseline_label]

    def speedup(self, label: str) -> float:
        """Speedup of ``label`` over the comparison's baseline."""

        return self.results[label].speedup_over(self.baseline)

    def speedups(self) -> dict[str, float]:
        return {label: self.speedup(label) for label in self.results}

    def relative_speedup(self, label: str, reference: str) -> float:
        """Speedup of ``label`` relative to another policy (e.g. BMA vs dynmg)."""

        return self.results[reference].cycles / self.results[label].cycles

    def table(self) -> str:
        lines = [f"{'policy':<16} {'cycles':>10} {'speedup':>8}"]
        for label, result in self.results.items():
            lines.append(f"{label:<16} {result.cycles:>10} {self.speedup(label):>8.3f}")
        return "\n".join(lines)


def compare_policies(
    system: SystemConfig,
    workload: WorkloadConfig,
    policies: dict[str, PolicyConfig],
    baseline_label: str,
    max_cycles: int | None = None,
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
    constraints: DataflowConstraints | None = None,
) -> PolicyComparison:
    """Run every policy on the same workload and collect speedups.

    ``baseline_label`` must be one of the keys of ``policies``; every speedup is
    normalised against it (the paper normalises against the unoptimized run).
    ``ordering`` and ``constraints`` apply to every run, so non-default
    dataflow comparisons compare like with like.
    """

    if baseline_label not in policies:
        raise KeyError(f"baseline {baseline_label!r} not among policies {list(policies)}")
    comparison = PolicyComparison(workload=workload.name, baseline_label=baseline_label)
    for label, policy in policies.items():
        comparison.results[label] = run_policy(
            system,
            workload,
            policy,
            label=label,
            max_cycles=max_cycles,
            ordering=ordering,
            constraints=constraints,
        )
    return comparison


def geomean_speedup(comparisons: list[PolicyComparison], label: str) -> float:
    """Geometric-mean speedup of ``label`` across several workload points."""

    return geomean([c.speedup(label) for c in comparisons])
