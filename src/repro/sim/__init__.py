"""Simulation layer: system assembly, cycle engine, statistics and runners."""

from repro.sim.results import SimResult
from repro.sim.runner import (
    PolicyComparison,
    clear_trace_cache,
    compare_policies,
    run_policy,
)
from repro.sim.simulator import Simulator, simulate
from repro.sim.system import SimulatedSystem

__all__ = [
    "PolicyComparison",
    "SimResult",
    "SimulatedSystem",
    "Simulator",
    "clear_trace_cache",
    "compare_policies",
    "run_policy",
    "simulate",
]
