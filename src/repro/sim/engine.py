"""Cycle-level simulation engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.sim.liveness import (
    LivenessConfig,
    LivenessWatchdog,
    StallReport,
    TerminationStatus,
    build_stall_report,
)
from repro.sim.system import SimulatedSystem

#: Default safety bound; a decode-operator run at CI scale finishes in well under
#: a million cycles, so hitting this indicates a model deadlock, not a long run.
DEFAULT_MAX_CYCLES = 20_000_000

#: How often to re-evaluate the (comparatively expensive) completion predicate.
_FINISH_CHECK_INTERVAL = 64


@dataclass(slots=True)
class EngineReport:
    """Outcome of driving one system to completion."""

    cycles: int
    finished: bool
    finish_checks: int
    status: TerminationStatus = TerminationStatus.COMPLETED
    #: Component-level stall snapshot; set only when ``status`` is not
    #: ``completed`` and the engine ran with ``raise_on_stall=False``.
    stall_report: StallReport | None = None


class SimulationEngine:
    """Drives a :class:`SimulatedSystem` cycle by cycle until it drains.

    A :class:`~repro.sim.liveness.LivenessWatchdog` samples per-component
    forward-progress counters at the finish-check cadence and aborts the run
    with a :class:`~repro.common.errors.LivelockError` long before the cycle
    guard when nothing moves for ``liveness.patience`` cycles.
    """

    def __init__(
        self,
        system: SimulatedSystem,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        liveness: LivenessConfig | None = None,
    ) -> None:
        if max_cycles <= 0:
            raise SimulationError("max_cycles must be positive")
        self.system = system
        self.max_cycles = max_cycles
        self.liveness = (liveness if liveness is not None else LivenessConfig()).validate()

    def run(self, raise_on_stall: bool = True) -> EngineReport:
        """Run to completion; ``raise_on_stall=False`` returns a report with a
        ``livelock`` / ``max_cycles`` status instead of raising."""

        system = self.system
        watchdog = LivenessWatchdog(system, self.liveness)
        finish_checks = 0
        cycle = 0
        for cycle in range(self.max_cycles):
            system.step(cycle)
            # The completion predicate touches every component, so only evaluate
            # it periodically; the few extra idle cycles this costs are noise.
            if (cycle & (_FINISH_CHECK_INTERVAL - 1)) == 0:
                finish_checks += 1
                if system.finished():
                    return EngineReport(cycles=cycle + 1, finished=True, finish_checks=finish_checks)
                try:
                    watchdog.observe(cycle)
                except SimulationError as exc:
                    if raise_on_stall:
                        raise
                    return EngineReport(
                        cycles=cycle + 1,
                        finished=False,
                        finish_checks=finish_checks,
                        status=TerminationStatus.LIVELOCK,
                        stall_report=getattr(exc, "report", None),
                    )
        if system.finished():
            return EngineReport(cycles=cycle + 1, finished=True, finish_checks=finish_checks)
        if not raise_on_stall:
            return EngineReport(
                cycles=cycle + 1,
                finished=False,
                finish_checks=finish_checks,
                status=TerminationStatus.MAX_CYCLES,
                stall_report=build_stall_report(
                    system,
                    cycle=cycle,
                    first_stuck_cycle=watchdog.last_progress_cycle,
                    patience=self.liveness.patience,
                ),
            )
        raise SimulationError(
            f"simulation did not complete within {self.max_cycles} cycles: "
            f"{system.scheduler.completed}/{system.scheduler.total_blocks} thread blocks done, "
            f"{sum(c.outstanding_requests for c in system.cores)} requests outstanding"
        )
