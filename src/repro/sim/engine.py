"""Cycle-level simulation engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.sim.system import SimulatedSystem

#: Default safety bound; a decode-operator run at CI scale finishes in well under
#: a million cycles, so hitting this indicates a model deadlock, not a long run.
DEFAULT_MAX_CYCLES = 20_000_000

#: How often to re-evaluate the (comparatively expensive) completion predicate.
_FINISH_CHECK_INTERVAL = 64


@dataclass(slots=True)
class EngineReport:
    """Outcome of driving one system to completion."""

    cycles: int
    finished: bool
    finish_checks: int


class SimulationEngine:
    """Drives a :class:`SimulatedSystem` cycle by cycle until it drains."""

    def __init__(self, system: SimulatedSystem, max_cycles: int = DEFAULT_MAX_CYCLES) -> None:
        if max_cycles <= 0:
            raise SimulationError("max_cycles must be positive")
        self.system = system
        self.max_cycles = max_cycles

    def run(self) -> EngineReport:
        system = self.system
        finish_checks = 0
        cycle = 0
        for cycle in range(self.max_cycles):
            system.step(cycle)
            # The completion predicate touches every component, so only evaluate
            # it periodically; the few extra idle cycles this costs are noise.
            if (cycle & (_FINISH_CHECK_INTERVAL - 1)) == 0:
                finish_checks += 1
                if system.finished():
                    return EngineReport(cycles=cycle + 1, finished=True, finish_checks=finish_checks)
        if system.finished():
            return EngineReport(cycles=cycle + 1, finished=True, finish_checks=finish_checks)
        raise SimulationError(
            f"simulation did not complete within {self.max_cycles} cycles: "
            f"{system.scheduler.completed}/{system.scheduler.total_blocks} thread blocks done, "
            f"{sum(c.outstanding_requests for c in system.cores)} requests outstanding"
        )
